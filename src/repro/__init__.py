"""repro: a reproduction of "The Semantics of Transactions and Weak
Memory in x86, Power, ARM, and C++" (Chong, Sorensen & Wickerson,
PLDI 2018).

The package provides:

* ``repro.events`` / ``repro.relations`` -- execution graphs and the
  relational algebra they are judged with (§2);
* ``repro.models`` -- the SC/TSC, x86, Power, ARMv8 and C++ models with
  their transactional extensions (§3, §5-§7);
* ``repro.cat`` -- a .cat-style model language and interpreter;
* ``repro.litmus`` -- litmus-test programs, conversion to/from
  executions, and a herd-style candidate-execution pipeline;
* ``repro.enumeration`` -- the Memalloy-replacement synthesis engine
  that generates the Forbid/Allow conformance suites (§4);
* ``repro.sim`` -- simulated hardware used for empirical validation
  (§5.3, §6.2);
* ``repro.metatheory`` -- monotonicity, compilation, and lock-elision
  checking (§8);
* ``repro.catalog`` -- every execution discussed in the paper;
* ``repro.harness`` -- drivers regenerating Tables 1-2 and Figure 7;
* ``repro.api`` -- the stable facade (``load_model`` / ``check`` /
  ``synthesize`` / ``run_table``) new code should program against.
"""

__version__ = "1.0.0"

from .events import Execution, ExecutionBuilder
from .models import get_model, model_names

__all__ = [
    "Execution",
    "ExecutionBuilder",
    "api",
    "get_model",
    "model_names",
    "__version__",
]


def __getattr__(name: str):
    # ``repro.api`` imports lazily so that ``import repro`` stays cheap
    # (the facade pulls in the harness only when actually used).
    if name == "api":
        import importlib

        module = importlib.import_module(".api", __name__)
        globals()["api"] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
