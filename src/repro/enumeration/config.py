"""Per-architecture enumeration vocabularies.

The candidate-execution space differs per target: which fence flavours
exist, which events carry acquire/release/mode annotations, whether
dependencies matter (they do not appear in the x86 model of Fig. 5, so
enumerating them for x86 would only produce isomorphic duplicates), and
how events *downgrade* for the ⊏-order of §4.2 step (iii).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events import (
    ACQ,
    DMB,
    DMBLD,
    DMBST,
    LWSYNC,
    MFENCE,
    NA,
    REL,
    RLX,
    SC,
    SYNC,
    Event,
)


@dataclass(frozen=True)
class EnumerationConfig:
    """What the skeleton enumerator may generate for one target."""

    name: str
    model_name: str  # transactional model in the registry
    read_tag_options: tuple[frozenset[str], ...] = (frozenset(),)
    write_tag_options: tuple[frozenset[str], ...] = (frozenset(),)
    fence_flavours: tuple[str, ...] = ()
    enumerate_deps: bool = False
    allow_rmw: bool = True
    allow_txns: bool = True
    #: C++ only: transactions may be atomic{} as well as synchronized{}
    atomic_txn_variants: bool = False

    def downgrades(self, event: Event) -> list[Event]:
        """⊏-step (iii): the strictly weaker variants of one event."""
        out: list[Event] = []
        if event.is_fence:
            flavour = event.fence_flavour
            for weaker in _FENCE_DOWNGRADES.get((self.name, flavour), ()):
                out.append(event.with_tags((event.tags - {flavour}) | {weaker}))
            return out
        lattice = _TAG_DOWNGRADES.get(self.name, {})
        for tag in event.tags:
            for weaker in lattice.get((event.kind, tag), ()):
                new_tags = event.tags - {tag}
                if weaker is not None:
                    new_tags = new_tags | {weaker}
                out.append(event.with_tags(frozenset(new_tags)))
        return out


# Fence downgrade lattices, per (config name, flavour).
_FENCE_DOWNGRADES: dict[tuple[str, str], tuple[str, ...]] = {
    ("power", SYNC): (LWSYNC,),
    ("armv8", DMB): (DMBLD, DMBST),
}

# Tag downgrade lattices, per config name then (kind, tag) → weaker tags
# (None means "drop the tag entirely").
_TAG_DOWNGRADES: dict[str, dict[tuple[str, str], tuple[str | None, ...]]] = {
    "armv8": {
        ("R", ACQ): (None,),
        ("W", REL): (None,),
    },
    "cpp": {
        ("R", SC): (ACQ,),
        ("R", ACQ): (RLX,),
        ("R", RLX): (NA,),
        ("W", SC): (REL,),
        ("W", REL): (RLX,),
        ("W", RLX): (NA,),
    },
}


X86_CONFIG = EnumerationConfig(
    name="x86",
    model_name="x86tm",
    fence_flavours=(MFENCE,),
    enumerate_deps=False,  # Fig. 5 mentions no dependency relations
)

POWER_CONFIG = EnumerationConfig(
    name="power",
    model_name="powertm",
    fence_flavours=(SYNC, LWSYNC),
    enumerate_deps=True,
)

ARMV8_CONFIG = EnumerationConfig(
    name="armv8",
    model_name="armv8tm",
    read_tag_options=(frozenset(), frozenset({ACQ})),
    write_tag_options=(frozenset(), frozenset({REL})),
    fence_flavours=(DMB,),
    enumerate_deps=True,
)

CPP_CONFIG = EnumerationConfig(
    name="cpp",
    model_name="cpptm",
    read_tag_options=(
        frozenset({NA}),
        frozenset({RLX}),
        frozenset({ACQ}),
        frozenset({SC}),
    ),
    write_tag_options=(
        frozenset({NA}),
        frozenset({RLX}),
        frozenset({REL}),
        frozenset({SC}),
    ),
    fence_flavours=(),
    enumerate_deps=False,  # RC11 carries no dependency relations
    atomic_txn_variants=True,
)

SC_CONFIG = EnumerationConfig(
    name="sc",
    model_name="tsc",
    fence_flavours=(),
    enumerate_deps=False,
)

CONFIGS = {
    "x86": X86_CONFIG,
    "power": POWER_CONFIG,
    "armv8": ARMV8_CONFIG,
    "cpp": CPP_CONFIG,
    "sc": SC_CONFIG,
}


def get_config(name: str) -> EnumerationConfig:
    key = name.lower()
    if key not in CONFIGS:
        raise KeyError(f"unknown enumeration target {name!r}")
    return CONFIGS[key]
