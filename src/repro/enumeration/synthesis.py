"""Conformance-test synthesis: the Forbid and Allow suites (§4.2, §5.3).

``synthesise(target, max_events)`` reproduces the paper's Memalloy
pipeline:

* **Forbid** -- every execution, up to the event bound and up to
  isomorphism, that is (a) *inconsistent* under the transactional model,
  (b) *consistent* under the non-transactional baseline (so the test is
  genuinely about transactions), and (c) *minimal* in the ⊏ order;
* **Allow** -- the one-step ⊏-weakenings of the Forbid tests (all
  consistent, by minimality), deduplicated.

Discovery timestamps are recorded per Forbid test so that Figure 7's
"fraction of tests found vs. time" distribution can be regenerated, and
a wall-clock budget makes a row "non-exhaustive" exactly like the
paper's 2-hour SAT timeout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..events import Execution
from ..models import get_model
from ..models.base import MemoryModel
from ..obs import REGISTRY, TRACER
from .canonical import canonical_key
from .complete import complete_skeleton
from .config import EnumerationConfig, get_config
from .minimality import is_minimal_inconsistent, weakenings
from .shapes import enumerate_skeletons


@dataclass
class SynthesisResult:
    """The output of one synthesis run."""

    target: str
    max_events: int
    #: canonical Forbid representatives, in discovery order
    forbidden: list[Execution] = field(default_factory=list)
    #: canonical Allow representatives
    allowed: list[Execution] = field(default_factory=list)
    #: seconds since start, one entry per Forbid discovery
    discovery_times: list[float] = field(default_factory=list)
    #: total candidates examined
    candidates_examined: int = 0
    elapsed: float = 0.0
    complete: bool = True

    def forbidden_by_size(self) -> dict[int, list[Execution]]:
        out: dict[int, list[Execution]] = {}
        for x in self.forbidden:
            out.setdefault(len(x), []).append(x)
        return out

    def allowed_by_size(self) -> dict[int, list[Execution]]:
        out: dict[int, list[Execution]] = {}
        for x in self.allowed:
            out.setdefault(len(x), []).append(x)
        return out

    def transaction_histogram(self) -> dict[int, int]:
        """Forbid tests by number of transactions (§5.3 reports this)."""
        out: dict[int, int] = {}
        for x in self.forbidden:
            n = len(x.txn_classes)
            out[n] = out.get(n, 0) + 1
        return out


def synthesise(
    target: str,
    max_events: int,
    time_budget: float | None = None,
    model: MemoryModel | None = None,
    config: EnumerationConfig | None = None,
) -> SynthesisResult:
    """Generate the Forbid and Allow suites for one target.

    Args:
        target: enumeration target ("x86", "power", "armv8", "cpp", "sc").
        max_events: synthesise Forbid tests with 2..max_events events.
        time_budget: optional wall-clock cap in seconds; when exceeded
            the result is marked incomplete (the paper's timeout rows).
        model / config: overrides for experiments (e.g. injected-bug
            models).
    """
    config = config or get_config(target)
    model = model or get_model(config.model_name)
    baseline = model.baseline()

    result = SynthesisResult(target=target, max_events=max_events)
    start = time.monotonic()
    seen_forbidden: set[tuple] = set()

    with TRACER.span(f"synthesis:{target}"):
        for n_events in range(2, max_events + 1):
            _synthesise_bound(
                result,
                target,
                n_events,
                model,
                baseline,
                config,
                seen_forbidden,
                start,
                time_budget,
            )
            if not result.complete:
                break

        # Allow = one-step weakenings of the Forbid tests, deduplicated.
        with TRACER.span(f"synthesis:{target}:weakenings"):
            seen_allowed: set[tuple] = set()
            for x in result.forbidden:
                for child in weakenings(x, config):
                    if len(child) == 0:
                        continue
                    key = canonical_key(child)
                    if key in seen_allowed or key in seen_forbidden:
                        continue
                    seen_allowed.add(key)
                    result.allowed.append(child)

    result.elapsed = time.monotonic() - start
    return result


def _synthesise_bound(
    result: SynthesisResult,
    target: str,
    n_events: int,
    model: MemoryModel,
    baseline: MemoryModel,
    config: EnumerationConfig,
    seen_forbidden: set[tuple],
    start: float,
    time_budget: float | None,
) -> None:
    """One event bound's enumeration pass, with per-bound metrics.

    Candidates are attributed to exactly one outcome -- consistent,
    baseline-inconsistent, non-minimal, duplicate, or forbidden -- so
    the per-bound prune counters sum back to the candidate counter.
    """
    prefix = f"enumeration.{target}.bound{n_events}"
    c_skeletons = REGISTRY.counter(f"{prefix}.skeletons")
    c_candidates = REGISTRY.counter(f"{prefix}.candidates")
    c_consistent = REGISTRY.counter(f"{prefix}.pruned_consistent")
    c_baseline = REGISTRY.counter(f"{prefix}.pruned_baseline")
    c_nonminimal = REGISTRY.counter(f"{prefix}.pruned_nonminimal")
    c_duplicate = REGISTRY.counter(f"{prefix}.pruned_duplicate")
    c_forbidden = REGISTRY.counter(f"{prefix}.forbidden")
    with TRACER.span(f"synthesis:{target}:bound{n_events}"), REGISTRY.timed(
        f"{prefix}.seconds"
    ):
        for skeleton in enumerate_skeletons(config, n_events):
            if time_budget is not None and time.monotonic() - start > time_budget:
                result.complete = False
                return
            c_skeletons.inc()
            for x in complete_skeleton(skeleton):
                result.candidates_examined += 1
                c_candidates.inc()
                if model.consistent(x):
                    c_consistent.inc()
                    continue
                if not baseline.consistent(x):
                    c_baseline.inc()
                    continue  # not a transactional relaxation
                if not is_minimal_inconsistent(
                    x, model, config, known_inconsistent=True
                ):
                    c_nonminimal.inc()
                    continue
                key = canonical_key(x)
                if key in seen_forbidden:
                    c_duplicate.inc()
                    continue
                seen_forbidden.add(key)
                c_forbidden.inc()
                result.forbidden.append(x)
                result.discovery_times.append(time.monotonic() - start)
