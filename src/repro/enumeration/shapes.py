"""Skeleton enumeration: every program shape up to a size bound.

A *skeleton* fixes everything about an execution except rf and co: the
partition of events into threads, event kinds and annotations, fence
flavours, locations, dependency edges, rmw pairs, and the transaction
structure.  :mod:`repro.enumeration.complete` then closes each skeleton
under all rf/co choices, yielding candidate executions (§2).

Mild, soundness-preserving pruning keeps the space manageable:

* locations are assigned as restricted-growth strings (canonical per
  event order), so location renamings are never enumerated twice;
* thread sizes are generated in non-increasing order (thread renamings
  of *different-size* threads are never enumerated twice; equal-size
  duplicates are removed later by canonicalisation);
* fences are never first or last in a thread (such fences induce empty
  fence relations, so they cannot appear in minimal tests);
* at most one dependency kind per (read, target) pair (a minimal test
  never carries two: removing the redundant one must keep it forbidden,
  contradicting minimality).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from ..events import Event, FENCE, NA, READ, WRITE
from .config import EnumerationConfig


@dataclass
class Skeleton:
    """An execution minus its rf and co choices."""

    events: tuple[Event, ...]
    threads: tuple[tuple[int, ...], ...]
    addr: frozenset[tuple[int, int]] = frozenset()
    ctrl: frozenset[tuple[int, int]] = frozenset()
    data: frozenset[tuple[int, int]] = frozenset()
    rmw: frozenset[tuple[int, int]] = frozenset()
    txn_of: dict[int, int] = field(default_factory=dict)
    atomic_txns: frozenset[int] = frozenset()


def partitions(n: int) -> Iterator[tuple[int, ...]]:
    """Integer partitions of ``n`` in non-increasing order."""

    def rec(remaining: int, maximum: int) -> Iterator[tuple[int, ...]]:
        if remaining == 0:
            yield ()
            return
        for first in range(min(remaining, maximum), 0, -1):
            for rest in rec(remaining - first, first):
                yield (first,) + rest

    yield from rec(n, n)


def interval_sets(length: int) -> Iterator[tuple[tuple[int, int], ...]]:
    """All sets of disjoint, contiguous, non-empty intervals of
    ``range(length)`` -- the possible transaction layouts of one thread.
    Intervals are (start, end-exclusive) pairs in order."""

    def rec(pos: int) -> Iterator[tuple[tuple[int, int], ...]]:
        if pos >= length:
            yield ()
            return
        # position unboxed
        for rest in rec(pos + 1):
            yield rest
        # box starting here, of each length
        for end in range(pos + 1, length + 1):
            for rest in rec(end):
                yield ((pos, end),) + rest

    yield from rec(0)


def restricted_growth_strings(n: int) -> Iterator[tuple[int, ...]]:
    """Canonical set-partition codes: s[0]=0 and s[i] ≤ max(s[:i])+1."""

    def rec(prefix: tuple[int, ...], top: int) -> Iterator[tuple[int, ...]]:
        if len(prefix) == n:
            yield prefix
            return
        for value in range(top + 2):
            yield from rec(prefix + (value,), max(top, value))

    if n == 0:
        yield ()
        return
    yield from rec((0,), 0)


_LOC_NAMES = "xyzwvu"

#: Public alias for consumers sampling the same location vocabulary
#: (the fuzzer's random generator draws from it).
LOC_NAMES = _LOC_NAMES


def sample_partition(rng, n: int, max_parts: int | None = None) -> tuple[int, ...]:
    """One random thread-size partition of ``n`` (non-increasing), the
    sampling counterpart of :func:`partitions` used by the fuzzer.

    Uniformly random cut points rather than uniform over partitions --
    bias is fine for fuzzing, determinism under a seeded ``rng`` is the
    requirement.
    """
    if n <= 0:
        return ()
    parts = max_parts if max_parts is not None else n
    count = rng.randint(1, max(1, min(parts, n)))
    cuts = sorted(rng.sample(range(1, n), count - 1)) if count > 1 else []
    sizes = []
    prev = 0
    for cut in cuts + [n]:
        sizes.append(cut - prev)
        prev = cut
    return tuple(sorted(sizes, reverse=True))


def sample_interval_set(
    rng, length: int, open_probability: float = 0.3
) -> tuple[tuple[int, int], ...]:
    """One random member of :func:`interval_sets` -- a transaction
    layout for a thread of ``length`` events."""
    intervals = []
    pos = 0
    while pos < length:
        if rng.random() < open_probability:
            end = rng.randint(pos + 1, length)
            intervals.append((pos, end))
            pos = end
        else:
            pos += 1
    return tuple(intervals)


def sample_growth_string(rng, n: int, spread: float = 0.6) -> tuple[int, ...]:
    """One random restricted-growth string of length ``n`` (a canonical
    location assignment; see :func:`restricted_growth_strings`).

    ``spread`` is the probability of introducing a fresh value at each
    position; lower values bias toward fewer distinct locations, which
    is where the interesting coherence interactions live.
    """
    if n == 0:
        return ()
    out = [0]
    top = 0
    for _ in range(n - 1):
        ceiling = min(top + 1, len(_LOC_NAMES) - 1)
        if top < ceiling and rng.random() < spread:
            value = top + 1
        else:
            value = rng.randint(0, top)
        out.append(value)
        top = max(top, value)
    return tuple(out)


def enumerate_skeletons(
    config: EnumerationConfig, n_events: int
) -> Iterator[Skeleton]:
    """All skeletons with exactly ``n_events`` events."""
    for sizes in partitions(n_events):
        for kinds in _kind_assignments(config, sizes):
            yield from _elaborate(config, sizes, kinds)


def _kind_assignments(
    config: EnumerationConfig, sizes: tuple[int, ...]
) -> Iterator[tuple[tuple[str, ...], ...]]:
    """Per-thread kind strings (R/W/F), fences only interior."""
    per_thread_options = []
    for size in sizes:
        options = []
        for kinds in itertools.product((READ, WRITE, FENCE), repeat=size):
            if kinds and (kinds[0] == FENCE or kinds[-1] == FENCE):
                continue
            if FENCE in kinds and not config.fence_flavours:
                continue
            options.append(kinds)
        per_thread_options.append(options)
    yield from itertools.product(*per_thread_options)


def _elaborate(
    config: EnumerationConfig,
    sizes: tuple[int, ...],
    kinds: tuple[tuple[str, ...], ...],
) -> Iterator[Skeleton]:
    # Lay out event ids thread by thread.
    threads: list[tuple[int, ...]] = []
    flat_kinds: list[str] = []
    tids: list[int] = []
    eid = 0
    for tid, thread_kinds in enumerate(kinds):
        seq = []
        for kind in thread_kinds:
            seq.append(eid)
            flat_kinds.append(kind)
            tids.append(tid)
            eid += 1
        threads.append(tuple(seq))
    n = eid
    memory_eids = [i for i in range(n) if flat_kinds[i] != FENCE]
    fence_eids = [i for i in range(n) if flat_kinds[i] == FENCE]

    for loc_code in restricted_growth_strings(len(memory_eids)):
        locs: dict[int, str] = {
            e: _LOC_NAMES[code] for e, code in zip(memory_eids, loc_code)
        }
        for flavour_choice in itertools.product(
            config.fence_flavours, repeat=len(fence_eids)
        ):
            flavours = dict(zip(fence_eids, flavour_choice))
            for tag_choice in _tag_assignments(config, flat_kinds, memory_eids):
                events = tuple(
                    Event(
                        eid=i,
                        tid=tids[i],
                        kind=flat_kinds[i],
                        loc=locs.get(i),
                        tags=(
                            frozenset({flavours[i]})
                            if i in flavours
                            else tag_choice.get(i, frozenset())
                        ),
                    )
                    for i in range(n)
                )
                yield from _elaborate_structure(config, events, tuple(threads))


def _tag_assignments(
    config: EnumerationConfig,
    flat_kinds: list[str],
    memory_eids: list[int],
) -> Iterator[dict[int, frozenset[str]]]:
    options_per_event = []
    for e in memory_eids:
        if flat_kinds[e] == READ:
            options_per_event.append(config.read_tag_options)
        else:
            options_per_event.append(config.write_tag_options)
    for combo in itertools.product(*options_per_event):
        yield dict(zip(memory_eids, combo))


def _elaborate_structure(
    config: EnumerationConfig,
    events: tuple[Event, ...],
    threads: tuple[tuple[int, ...], ...],
) -> Iterator[Skeleton]:
    """Attach rmw pairs, dependencies, and transactions."""
    for rmw in _rmw_choices(config, events, threads):
        for addr, ctrl, data in _dep_choices(config, events, threads):
            for txn_of, atomic_txns in _txn_choices(config, events, threads):
                yield Skeleton(
                    events=events,
                    threads=threads,
                    addr=addr,
                    ctrl=ctrl,
                    data=data,
                    rmw=rmw,
                    txn_of=dict(txn_of),
                    atomic_txns=atomic_txns,
                )


def _rmw_choices(
    config: EnumerationConfig,
    events: tuple[Event, ...],
    threads: tuple[tuple[int, ...], ...],
) -> Iterator[frozenset[tuple[int, int]]]:
    if not config.allow_rmw:
        yield frozenset()
        return
    by_eid = {e.eid: e for e in events}
    candidates = []
    for seq in threads:
        for a, b in zip(seq, seq[1:]):
            ea, eb = by_eid[a], by_eid[b]
            if ea.kind == READ and eb.kind == WRITE and ea.loc == eb.loc:
                if config.atomic_txn_variants:
                    # C++ RMWs are atomic operations on both halves.
                    if NA in ea.tags or NA in eb.tags:
                        continue
                candidates.append((a, b))
    # Adjacent-pair candidates sharing an event cannot coexist.
    for r in range(len(candidates) + 1):
        for combo in itertools.combinations(candidates, r):
            used = [e for pair in combo for e in pair]
            if len(used) == len(set(used)):
                yield frozenset(combo)


def _dep_choices(
    config: EnumerationConfig,
    events: tuple[Event, ...],
    threads: tuple[tuple[int, ...], ...],
) -> Iterator[
    tuple[
        frozenset[tuple[int, int]],
        frozenset[tuple[int, int]],
        frozenset[tuple[int, int]],
    ]
]:
    if not config.enumerate_deps:
        yield frozenset(), frozenset(), frozenset()
        return
    by_eid = {e.eid: e for e in events}
    pairs: list[tuple[int, int]] = []
    for seq in threads:
        for i, a in enumerate(seq):
            if by_eid[a].kind != READ:
                continue
            for b in seq[i + 1 :]:
                if by_eid[b].kind == FENCE:
                    continue
                pairs.append((a, b))
    # Per pair: no dep, addr, ctrl, or (targets a write) data.
    per_pair_options = []
    for a, b in pairs:
        options: list[str | None] = [None, "addr", "ctrl"]
        if by_eid[b].kind == WRITE:
            options.append("data")
        per_pair_options.append(options)
    for combo in itertools.product(*per_pair_options):
        addr, ctrl, data = set(), set(), set()
        for (pair, kind) in zip(pairs, combo):
            if kind == "addr":
                addr.add(pair)
            elif kind == "ctrl":
                ctrl.add(pair)
            elif kind == "data":
                data.add(pair)
        yield frozenset(addr), frozenset(ctrl), frozenset(data)


def _txn_choices(
    config: EnumerationConfig,
    events: tuple[Event, ...],
    threads: tuple[tuple[int, ...], ...],
) -> Iterator[tuple[dict[int, int], frozenset[int]]]:
    if not config.allow_txns:
        yield {}, frozenset()
        return
    by_eid = {e.eid: e for e in events}
    per_thread = [list(interval_sets(len(seq))) for seq in threads]
    for layout in itertools.product(*per_thread):
        txn_of: dict[int, int] = {}
        txn_events: dict[int, list[int]] = {}
        txn_id = 0
        for seq, intervals in zip(threads, layout):
            for start, end in intervals:
                members = [seq[i] for i in range(start, end)]
                for e in members:
                    txn_of[e] = txn_id
                txn_events[txn_id] = members
                txn_id += 1
        if not config.atomic_txn_variants:
            yield txn_of, frozenset()
            continue
        # C++: each transaction is relaxed or atomic; atomic{} blocks may
        # not contain atomic operations (§7), so only all-NA transactions
        # have an atomic variant.
        atomisable = [
            t
            for t, members in txn_events.items()
            if all(NA in by_eid[e].tags for e in members)
        ]
        for r in range(len(atomisable) + 1):
            for combo in itertools.combinations(atomisable, r):
                yield txn_of, frozenset(combo)
