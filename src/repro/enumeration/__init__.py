"""Exhaustive execution enumeration and conformance-test synthesis (§4)."""

from .canonical import canonical_key, dedup
from .complete import complete_skeleton, enumerate_executions
from .config import (
    ARMV8_CONFIG,
    CONFIGS,
    CPP_CONFIG,
    POWER_CONFIG,
    SC_CONFIG,
    X86_CONFIG,
    EnumerationConfig,
    get_config,
)
from .minimality import is_minimal_inconsistent, weakenings
from .sharding import (
    complete_shard_range,
    complete_skeleton_range,
    completion_count,
    cumulative_counts,
    shard_completion_counts,
    shard_signatures,
    shard_skeletons,
    signature_label,
)
from .shapes import (
    LOC_NAMES,
    Skeleton,
    enumerate_skeletons,
    interval_sets,
    partitions,
    restricted_growth_strings,
    sample_growth_string,
    sample_interval_set,
    sample_partition,
)
from .synthesis import SynthesisResult, synthesise

__all__ = [
    "ARMV8_CONFIG",
    "CONFIGS",
    "CPP_CONFIG",
    "LOC_NAMES",
    "POWER_CONFIG",
    "SC_CONFIG",
    "X86_CONFIG",
    "EnumerationConfig",
    "Skeleton",
    "SynthesisResult",
    "canonical_key",
    "complete_shard_range",
    "complete_skeleton",
    "complete_skeleton_range",
    "completion_count",
    "cumulative_counts",
    "dedup",
    "enumerate_executions",
    "enumerate_skeletons",
    "get_config",
    "interval_sets",
    "is_minimal_inconsistent",
    "partitions",
    "restricted_growth_strings",
    "sample_growth_string",
    "sample_interval_set",
    "sample_partition",
    "shard_completion_counts",
    "shard_signatures",
    "shard_skeletons",
    "signature_label",
    "synthesise",
    "weakenings",
]
