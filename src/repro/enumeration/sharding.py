"""Sharding the synthesis enumeration space by skeleton signature.

One *shard* is the set of skeletons sharing a canonical signature --
the per-thread kind strings produced by
:func:`~repro.enumeration.shapes.enumerate_skeletons`'s outer two loops
(thread-size partition × kind assignment).  Signatures enumerate in
exactly the order ``enumerate_skeletons`` visits them, so concatenating
shard outputs in signature order reproduces the sequential enumeration
stream verbatim -- the invariant the work-stealing scheduler's
deterministic fold rests on.

Within a shard, every candidate execution has a global *completion
index*: skeletons in elaboration order, and within one skeleton the
mixed-radix index of its rf/co choice (rf digits outermost, co digits
innermost -- the iteration order of
:func:`~repro.enumeration.complete.complete_skeleton`).  A work unit is
then just ``(signature, start, stop)``: self-describing, splittable at
any index (how idle workers steal half of a remaining range), and
resumable (a checkpoint stores completed ranges as plain data).

:func:`completion_count` prices a skeleton arithmetically --
``Π (1 + |writes at the read's location|) × Π |writes at loc|!`` --
without materialising anything, so counting a shard is far cheaper than
enumerating it.
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_right
from typing import Iterator

from ..events import Execution, READ, WRITE
from ..events.execution import SkeletonCompleter
from .config import EnumerationConfig
from .shapes import Skeleton, _elaborate, _kind_assignments, partitions

#: One shard signature: per-thread kind strings, e.g. ``("RW", "W")``.
Signature = tuple[str, ...]


def shard_signatures(
    config: EnumerationConfig, n_events: int
) -> Iterator[Signature]:
    """All shard signatures at one event bound, in enumeration order."""
    for sizes in partitions(n_events):
        for kinds in _kind_assignments(config, sizes):
            yield tuple("".join(thread) for thread in kinds)


def signature_label(signature: Signature) -> str:
    """A compact human label for one shard, e.g. ``"RW+W"``."""
    return "+".join(signature) or "empty"


def shard_skeletons(
    config: EnumerationConfig, signature: Signature
) -> list[Skeleton]:
    """The skeletons of one shard, in elaboration order."""
    kinds = tuple(tuple(thread) for thread in signature)
    sizes = tuple(len(thread) for thread in kinds)
    return list(_elaborate(config, sizes, kinds))


def _choice_space(skeleton: Skeleton):
    """The rf/co choice space of one skeleton, mirroring
    :func:`~repro.enumeration.complete.complete_skeleton` exactly."""
    reads = [e.eid for e in skeleton.events if e.kind == READ]
    writes_by_loc: dict[str, list[int]] = {}
    for e in skeleton.events:
        if e.kind == WRITE:
            writes_by_loc.setdefault(e.loc, []).append(e.eid)
    by_eid = {e.eid: e for e in skeleton.events}
    read_options: list[list[int | None]] = [
        [None] + writes_by_loc.get(by_eid[r].loc, []) for r in reads
    ]
    locs = sorted(writes_by_loc)
    return reads, read_options, writes_by_loc, locs


def completion_count(skeleton: Skeleton) -> int:
    """How many rf/co completions the skeleton has (pure arithmetic)."""
    _, read_options, writes_by_loc, locs = _choice_space(skeleton)
    count = 1
    for options in read_options:
        count *= len(options)
    for loc in locs:
        count *= math.factorial(len(writes_by_loc[loc]))
    return count


def shard_completion_counts(
    config: EnumerationConfig, signature: Signature
) -> list[int]:
    """Per-skeleton completion counts for one shard (same order as
    :func:`shard_skeletons`)."""
    return [
        completion_count(s) for s in shard_skeletons(config, signature)
    ]


def _decode(index: int, sizes: list[int]) -> list[int]:
    """Mixed-radix digits of ``index`` (most-significant first), for
    radices ``sizes`` -- the inverse of ``itertools.product`` order."""
    digits = [0] * len(sizes)
    for position in range(len(sizes) - 1, -1, -1):
        size = sizes[position]
        digits[position] = index % size
        index //= size
    return digits


def complete_skeleton_range(
    skeleton: Skeleton, start: int, stop: int
) -> Iterator[Execution]:
    """Completions ``start <= index < stop`` of one skeleton.

    ``complete_skeleton_range(s, 0, completion_count(s))`` yields
    exactly the same executions, in the same order, as
    :func:`~repro.enumeration.complete.complete_skeleton` -- pinned by
    ``tests/test_sharding.py``.  Slicing by index instead of islicing
    the full product keeps a tail range cheap: whole rf blocks before
    ``start`` are skipped by arithmetic, not enumerated.
    """
    reads, read_options, writes_by_loc, locs = _choice_space(skeleton)
    co_options = [
        list(itertools.permutations(writes_by_loc[loc])) for loc in locs
    ]
    co_sizes = [len(options) for options in co_options]
    rf_sizes = [len(options) for options in read_options]
    block = math.prod(co_sizes)
    total = block * math.prod(rf_sizes)
    start = max(0, start)
    stop = min(stop, total)
    if start >= stop:
        return

    completer = SkeletonCompleter(
        events=skeleton.events,
        threads=skeleton.threads,
        addr=skeleton.addr,
        ctrl=skeleton.ctrl,
        data=skeleton.data,
        rmw=skeleton.rmw,
        txn_of=skeleton.txn_of,
        atomic_txns=skeleton.atomic_txns,
    )
    for rf_index in range(start // block, (stop - 1) // block + 1):
        rf_digits = _decode(rf_index, rf_sizes)
        rf_choice = [
            read_options[i][digit] for i, digit in enumerate(rf_digits)
        ]
        completer.start_rf(
            (src, r)
            for src, r in zip(rf_choice, reads)
            if src is not None
        )
        lo = max(start - rf_index * block, 0)
        hi = min(stop - rf_index * block, block)
        for co_index in range(lo, hi):
            co_digits = _decode(co_index, co_sizes)
            co_pairs = tuple(
                (a, b)
                for j, digit in enumerate(co_digits)
                for a, b in zip(co_options[j][digit], co_options[j][digit][1:])
            )
            yield completer.complete(co_pairs)


def complete_shard_range(
    skeletons: list[Skeleton],
    cumulative: list[int],
    start: int,
    stop: int,
) -> Iterator[Execution]:
    """Completions ``start <= index < stop`` of a whole shard.

    ``cumulative[i]`` is the total completion count of skeletons
    ``0..i`` inclusive (as built by :func:`cumulative_counts`); the
    shard-global index space is their concatenation.
    """
    if not skeletons or start >= stop:
        return
    first = bisect_right(cumulative, start)
    for index in range(first, len(skeletons)):
        base = cumulative[index - 1] if index > 0 else 0
        if base >= stop:
            break
        yield from complete_skeleton_range(
            skeletons[index], start - base, stop - base
        )


def cumulative_counts(counts: list[int]) -> list[int]:
    """Inclusive prefix sums, the index structure of a shard."""
    out: list[int] = []
    running = 0
    for count in counts:
        running += count
        out.append(running)
    return out
