"""The ⊏ weakening order of §4.2 and minimality checking.

``X ⊏ Y`` holds when X is obtained from Y by one of:

  (i)   removing an event (plus its incident edges);
  (ii)  removing a dependency edge (addr, ctrl, data, rmw);
  (iii) downgrading an event (e.g. acquire-read → plain read);
  (v)   making the first or last event of a transaction
        non-transactional (never the middle, which would leave a
        non-contiguous -- ill-formed -- transaction);

plus, for C++, demoting an atomic transaction to a relaxed one (the
transactional analogue of a mode downgrade).

``min-inconsistent(M)`` is the set of inconsistent executions all of
whose one-step weakenings are consistent; ``max-consistent(M)`` is
approximated as the one-step weakenings of min-inconsistent executions
(§4.2, "Generating Allowed Tests").
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..events import Execution
from ..models.base import MemoryModel
from .config import EnumerationConfig


def weakenings(
    execution: Execution, config: EnumerationConfig
) -> Iterator[Execution]:
    """All one-step ⊏-weakenings of an execution."""
    # (i) remove an event
    for eid in sorted(execution.eids):
        yield execution.without_event(eid)
    # (ii) remove a dependency edge
    for name in ("addr", "ctrl", "data", "rmw"):
        for pair in sorted(getattr(execution, name).pairs):
            yield execution.without_dep_edge(name, pair)
    # (iii) downgrade an event
    for event in execution.events:
        for weaker in config.downgrades(event):
            yield execution.with_event_tags(event.eid, weaker.tags)
    # (v) detransactionalise a boundary event
    for members in execution.txn_classes.values():
        yield execution.without_txn_membership(members[0])
        if len(members) > 1:
            yield execution.without_txn_membership(members[-1])
    # C++ only: demote an atomic transaction to relaxed
    if config.atomic_txn_variants:
        for txn in sorted(execution.atomic_txns):
            yield execution.replace(atomic_txns=execution.atomic_txns - {txn})


def is_minimal_inconsistent(
    execution: Execution,
    model: MemoryModel,
    config: EnumerationConfig,
    known_inconsistent: bool = False,
    consistent: "Callable[[Execution], bool] | None" = None,
) -> bool:
    """Is the execution in ``min-inconsistent(model)``?

    ``consistent`` overrides how each execution is judged (default:
    ``model.consistent``) -- the hook the harness verdict cache uses to
    answer weakening checks from disk without changing this module's
    semantics.
    """
    if consistent is None:
        consistent = model.consistent
    if not known_inconsistent and consistent(execution):
        return False
    for child in weakenings(execution, config):
        if not consistent(child):
            return False
    return True
