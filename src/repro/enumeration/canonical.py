"""Canonicalisation: deduplicating executions up to isomorphism.

Two executions are isomorphic when one maps onto the other by renaming
threads, renaming locations, and renumbering events consistently with
thread order.  Synthesis deduplicates the Forbid/Allow sets under this
relation, mirroring how Memalloy's symmetry-breaking reports each test
once.

The canonical key is computed by brute force over thread permutations
(executions have at most a handful of threads): for each permutation,
events are renumbered in the new thread order, locations are renamed by
first occurrence, and the lexicographically least full encoding wins.
"""

from __future__ import annotations

import itertools

from ..events import Execution


def canonical_key(execution: Execution) -> tuple:
    """A total invariant: equal iff the executions are isomorphic."""
    thread_ids = range(len(execution.threads))
    best: tuple | None = None
    for perm in itertools.permutations(thread_ids):
        encoding = _encode(execution, perm)
        if best is None or encoding < best:
            best = encoding
    return best if best is not None else ()


def dedup(executions) -> list[Execution]:
    """Keep one representative per isomorphism class, preserving order."""
    seen: set[tuple] = set()
    out: list[Execution] = []
    for x in executions:
        key = canonical_key(x)
        if key not in seen:
            seen.add(key)
            out.append(x)
    return out


def _encode(execution: Execution, perm: tuple[int, ...]) -> tuple:
    order = [eid for tid in perm for eid in execution.threads[tid]]
    renumber = {eid: i for i, eid in enumerate(order)}

    loc_rename: dict[str, int] = {}
    event_codes = []
    sizes = tuple(len(execution.threads[tid]) for tid in perm)
    for eid in order:
        event = execution.event(eid)
        if event.loc is None:
            loc_code = -1
        else:
            if event.loc not in loc_rename:
                loc_rename[event.loc] = len(loc_rename)
            loc_code = loc_rename[event.loc]
        event_codes.append((event.kind, loc_code, tuple(sorted(event.tags))))

    def rel_code(pairs) -> tuple:
        return tuple(sorted((renumber[a], renumber[b]) for a, b in pairs))

    txn_rename: dict[int, int] = {}
    txn_codes = []
    for eid in order:
        txn = execution.txn_of.get(eid)
        if txn is None:
            txn_codes.append(-1)
        else:
            if txn not in txn_rename:
                txn_rename[txn] = len(txn_rename)
            txn_codes.append(txn_rename[txn])
    atomic_codes = tuple(
        sorted(
            txn_rename[t] for t in execution.atomic_txns if t in txn_rename
        )
    )

    return (
        sizes,
        tuple(event_codes),
        rel_code(execution.rf.pairs),
        rel_code(execution.co.pairs),
        rel_code(execution.addr.pairs),
        rel_code(execution.ctrl.pairs),
        rel_code(execution.data.pairs),
        rel_code(execution.rmw.pairs),
        tuple(txn_codes),
        atomic_codes,
    )
