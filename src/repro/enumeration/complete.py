"""Completing skeletons with rf and co choices (§2's candidate step).

Every read observes one same-location write or the initial value; every
location's writes take every total order.  The product of these choices
over a skeleton gives its candidate executions.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..events import Execution, READ, WRITE
from ..events.execution import SkeletonCompleter
from .shapes import Skeleton


def complete_skeleton(skeleton: Skeleton) -> Iterator[Execution]:
    """All rf/co completions of one skeleton."""
    reads = [e.eid for e in skeleton.events if e.kind == READ]
    writes_by_loc: dict[str, list[int]] = {}
    for e in skeleton.events:
        if e.kind == WRITE:
            writes_by_loc.setdefault(e.loc, []).append(e.eid)

    read_options: list[list[int | None]] = []
    by_eid = {e.eid: e for e in skeleton.events}
    for r in reads:
        loc = by_eid[r].loc
        read_options.append([None] + writes_by_loc.get(loc, []))

    locs = sorted(writes_by_loc)
    co_options = [
        list(itertools.permutations(writes_by_loc[loc])) for loc in locs
    ]

    # The completer owns the shared static parts (sorted events, dep
    # relations, lookup tables) and the template-adoption protocol, so
    # skeleton-static derived relations (po, sloc, stxn, fences, ...)
    # are computed once and inherited by every completion.
    completer = SkeletonCompleter(
        events=skeleton.events,
        threads=skeleton.threads,
        addr=skeleton.addr,
        ctrl=skeleton.ctrl,
        data=skeleton.data,
        rmw=skeleton.rmw,
        txn_of=skeleton.txn_of,
        atomic_txns=skeleton.atomic_txns,
    )
    for rf_choice in itertools.product(*read_options):
        completer.start_rf(
            (src, r) for src, r in zip(rf_choice, reads) if src is not None
        )
        for co_perms in itertools.product(*co_options):
            co_pairs = tuple(
                (a, b)
                for perm in co_perms
                for a, b in zip(perm, perm[1:])
            )
            yield completer.complete(co_pairs)


def enumerate_executions(config, n_events: int) -> Iterator[Execution]:
    """All candidate executions with exactly ``n_events`` events."""
    from .shapes import enumerate_skeletons

    for skeleton in enumerate_skeletons(config, n_events):
        yield from complete_skeleton(skeleton)
