"""Events: the vertices of execution graphs (§2.1, §3.1, §8.3).

An event is a runtime memory action.  The paper partitions events into
reads ``R``, writes ``W``, and fences ``F`` (fences are events, not
edges -- footnote 1), and §8.3 adds four *method-call* event kinds for
the lock-elision study: ``L``/``U`` (lock/unlock implemented normally)
and ``Lt``/``Ut`` (lock/unlock to be transactionalised).

Architecture- and language-specific attributes (acquire/release
annotations, C++ consistency modes, fence flavours) are carried as string
*tags* so that one event type serves every model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

# ---------------------------------------------------------------------------
# Event kinds
# ---------------------------------------------------------------------------

READ = "R"
WRITE = "W"
FENCE = "F"
LOCK = "L"  # §8.3: lock() implemented by really taking the lock
UNLOCK = "U"  # §8.3: matching unlock()
LOCK_T = "Lt"  # §8.3: lock() to be transactionalised (elided)
UNLOCK_T = "Ut"  # §8.3: matching unlock()

KINDS = (READ, WRITE, FENCE, LOCK, UNLOCK, LOCK_T, UNLOCK_T)
MEMORY_KINDS = (READ, WRITE)
CALL_KINDS = (LOCK, UNLOCK, LOCK_T, UNLOCK_T)

# ---------------------------------------------------------------------------
# Tags: acquire/release/SC annotations and C++ consistency modes
# ---------------------------------------------------------------------------

ACQ = "ACQ"  # ARMv8 LDAR / C++ acquire
REL = "REL"  # ARMv8 STLR / C++ release
SC = "SC"  # C++ seq_cst
ACQ_REL = "ACQ_REL"  # C++ acq_rel (fences only)
RLX = "RLX"  # C++ relaxed (atomic but unordered)
NA = "NA"  # C++ non-atomic

CPP_ACCESS_MODES = (NA, RLX, ACQ, REL, SC)
CPP_READ_MODES = (NA, RLX, ACQ, SC)
CPP_WRITE_MODES = (NA, RLX, REL, SC)
CPP_FENCE_MODES = (ACQ, REL, ACQ_REL, SC)

# ---------------------------------------------------------------------------
# Fence flavours (one tag on each fence event)
# ---------------------------------------------------------------------------

MFENCE = "MFENCE"  # x86
SYNC = "SYNC"  # Power heavyweight
LWSYNC = "LWSYNC"  # Power lightweight
ISYNC = "ISYNC"  # Power instruction barrier
DMB = "DMB"  # ARMv8 full barrier
DMBLD = "DMBLD"  # ARMv8 load barrier
DMBST = "DMBST"  # ARMv8 store barrier
ISB = "ISB"  # ARMv8 instruction barrier
CPPF = "CPPF"  # C++ atomic_thread_fence (mode given by a mode tag)

FENCE_FLAVOURS = (MFENCE, SYNC, LWSYNC, ISYNC, DMB, DMBLD, DMBST, ISB, CPPF)


@dataclass(frozen=True)
class Event:
    """One vertex of an execution graph.

    Attributes:
        eid: unique identifier within the execution.
        tid: identifier of the thread the event belongs to.
        kind: one of :data:`KINDS`.
        loc: the shared location accessed (``None`` for fences and for the
            §8.3 call events, whose lock variable is implicit).
        tags: annotations -- acquire/release/SC, C++ modes, fence flavours.
    """

    eid: int
    tid: int
    kind: str
    loc: str | None = None
    tags: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if not isinstance(self.tags, frozenset):
            object.__setattr__(self, "tags", frozenset(self.tags))

    # -- classification helpers ------------------------------------------

    @property
    def is_read(self) -> bool:
        return self.kind == READ

    @property
    def is_write(self) -> bool:
        return self.kind == WRITE

    @property
    def is_fence(self) -> bool:
        return self.kind == FENCE

    @property
    def is_memory_access(self) -> bool:
        return self.kind in MEMORY_KINDS

    @property
    def is_call(self) -> bool:
        return self.kind in CALL_KINDS

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    @property
    def cpp_mode(self) -> str | None:
        """The single C++ consistency mode tag on the event, if any."""
        modes = self.tags & set(CPP_ACCESS_MODES + (ACQ_REL,))
        if not modes:
            return None
        if len(modes) > 1:
            raise ValueError(f"event {self.eid} has several modes: {modes}")
        return next(iter(modes))

    @property
    def fence_flavour(self) -> str | None:
        """The fence flavour tag on the event, if any."""
        flavours = self.tags & set(FENCE_FLAVOURS)
        if not flavours:
            return None
        if len(flavours) > 1:
            raise ValueError(f"event {self.eid} has several flavours: {flavours}")
        return next(iter(flavours))

    # -- functional updates -----------------------------------------------

    def with_tags(self, tags: frozenset[str]) -> "Event":
        return replace(self, tags=frozenset(tags))

    def without_tag(self, tag: str) -> "Event":
        return replace(self, tags=self.tags - {tag})

    def with_tag(self, tag: str) -> "Event":
        return replace(self, tags=self.tags | {tag})

    def with_eid(self, eid: int) -> "Event":
        return replace(self, eid=eid)

    def with_tid(self, tid: int) -> "Event":
        return replace(self, tid=tid)

    # -- printing ----------------------------------------------------------

    def label(self) -> str:
        """A short human-readable label, e.g. ``a: R x [ACQ]``."""
        name = chr(ord("a") + self.eid) if self.eid < 26 else f"e{self.eid}"
        body = self.kind
        if self.loc is not None:
            body += f" {self.loc}"
        if self.tags:
            body += " [" + ",".join(sorted(self.tags)) + "]"
        return f"{name}: {body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.label()} @T{self.tid}>"
