"""Executions: labelled event graphs (§2.1) with transactions (§3.1).

An :class:`Execution` packages the events, the primitive relations chosen
by the candidate-execution semantics (``po`` via per-thread sequences,
``rf``, ``co``, the dependency relations, ``rmw``), and the transaction
structure, and computes every derived relation the paper's models use
(``fr``, ``com``, ``stxn``, ``tfence``, per-flavour fence relations, ...).

Executions are treated as immutable: all "edits" (used by the ⊏-weakening
steps of §4.2 and the transformations of §8) return new objects.
"""

from __future__ import annotations

import itertools
from functools import cached_property
from typing import Iterable, Mapping, Sequence

from ..relations import Relation, RelationContext
from ..relations.context import global_intern
from ..relations.relation import _universe
from .event import (
    ACQ,
    ACQ_REL,
    CPPF,
    DMB,
    DMBLD,
    DMBST,
    FENCE,
    ISB,
    ISYNC,
    LWSYNC,
    MFENCE,
    NA,
    READ,
    REL,
    RLX,
    SC,
    SYNC,
    WRITE,
    Event,
)


#: Distinguishes executions whose universes escaped interning; ids from
#: this counter are negated so they can never collide with a real id().
_INTERN_UID_FALLBACK = itertools.count(1)


class Execution:
    """An execution graph.

    Args:
        events: the events, in any order (they are sorted by ``eid``).
        threads: per-thread sequences of event ids in program order.  The
            per-thread total ``po`` is derived from these sequences.
        rf: reads-from pairs ``(write-eid, read-eid)``.  A read with no
            incoming ``rf`` edge observes the initial value (zero).
        co: coherence pairs; only the per-location total order matters,
            and :meth:`co` is stored transitively closed.
        addr/ctrl/data: dependency pairs, within ``po``, sourced at reads.
        rmw: pairs linking the read of a read-modify-write to its write.
        txn_of: maps event ids to transaction identifiers; events sharing
            an identifier are in the same successful transaction (§3.1).
        atomic_txns: transaction ids that are C++ *atomic* transactions
            (``stxnat``, §7.2); must be a subset of ``txn_of``'s values.
    """

    def __init__(
        self,
        events: Iterable[Event],
        threads: Sequence[Sequence[int]],
        rf: Iterable[tuple[int, int]] = (),
        co: Iterable[tuple[int, int]] = (),
        addr: Iterable[tuple[int, int]] = (),
        ctrl: Iterable[tuple[int, int]] = (),
        data: Iterable[tuple[int, int]] = (),
        rmw: Iterable[tuple[int, int]] = (),
        txn_of: Mapping[int, int] | None = None,
        atomic_txns: Iterable[int] = (),
    ):
        self.events: tuple[Event, ...] = tuple(sorted(events, key=lambda e: e.eid))
        self.threads: tuple[tuple[int, ...], ...] = tuple(
            tuple(t) for t in threads if len(t) > 0
        )
        self._eids = frozenset(e.eid for e in self.events)
        self._by_eid = {e.eid: e for e in self.events}
        uni = self._eids
        self._rf = self._as_relation(rf, uni)
        self._co_input = self._as_relation(co, uni)
        self._addr = self._as_relation(addr, uni)
        self._ctrl = self._as_relation(ctrl, uni)
        self._data = self._as_relation(data, uni)
        self._rmw = self._as_relation(rmw, uni)
        # Defensive copy: callers may reuse and mutate their mapping.
        # (Candidate enumeration avoids the copy via from_skeleton_parts,
        # whose SkeletonCompleter owns a private dict.)
        self.txn_of: dict[int, int] = dict(txn_of or {})
        self.atomic_txns: frozenset[int] = frozenset(atomic_txns)

    @classmethod
    def from_skeleton_parts(
        cls,
        *,
        events: tuple[Event, ...],
        threads: tuple[tuple[int, ...], ...],
        eids: frozenset[int],
        by_eid: dict[int, Event],
        rf: Relation,
        co,
        addr: Relation,
        ctrl: Relation,
        data: Relation,
        rmw: Relation,
        txn_of: dict[int, int],
        atomic_txns: frozenset[int],
    ) -> "Execution":
        """Fast constructor for candidate enumeration.

        The caller passes pre-sorted events, prebuilt lookup tables, and
        prebuilt relations shared across one skeleton's completions, so
        none of the per-instance normalisation of ``__init__`` runs.
        """
        x = cls.__new__(cls)
        x.events = events
        x.threads = threads
        x._eids = eids
        x._by_eid = by_eid
        x._rf = rf
        x._co_input = co if isinstance(co, Relation) else Relation(co, eids)
        x._addr = addr
        x._ctrl = ctrl
        x._data = data
        x._rmw = rmw
        x.txn_of = txn_of
        x.atomic_txns = atomic_txns
        return x

    @staticmethod
    def _as_relation(value, uni: frozenset[int]) -> Relation:
        """Accept either pair iterables or ready-made :class:`Relation`
        instances over the execution's universe (candidate enumeration
        builds the skeleton-fixed relations once and reuses them)."""
        if isinstance(value, Relation) and value.universe == uni:
            return value
        return Relation(value, uni)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def event(self, eid: int) -> Event:
        return self._by_eid[eid]

    @property
    def eids(self) -> frozenset[int]:
        return self._eids

    def __len__(self) -> int:
        return len(self.events)

    def events_of_kind(self, kind: str) -> frozenset[int]:
        return frozenset(e.eid for e in self.events if e.kind == kind)

    def events_with_tag(self, tag: str) -> frozenset[int]:
        return frozenset(e.eid for e in self.events if tag in e.tags)

    @cached_property
    def reads(self) -> frozenset[int]:
        """The set R."""
        return self.events_of_kind(READ)

    @cached_property
    def writes(self) -> frozenset[int]:
        """The set W."""
        return self.events_of_kind(WRITE)

    @cached_property
    def fences(self) -> frozenset[int]:
        """The set F."""
        return self.events_of_kind(FENCE)

    @cached_property
    def memory_events(self) -> frozenset[int]:
        return self.reads | self.writes

    @cached_property
    def locations(self) -> tuple[str, ...]:
        locs = {e.loc for e in self.events if e.loc is not None}
        return tuple(sorted(locs))

    def writes_to(self, loc: str) -> list[int]:
        return [e.eid for e in self.events if e.is_write and e.loc == loc]

    def thread_of(self, eid: int) -> int:
        return self._by_eid[eid].tid

    # ------------------------------------------------------------------
    # Primitive relations
    # ------------------------------------------------------------------

    @cached_property
    def _intern_uid(self) -> int:
        """A stable identifier for this execution's universe, used as an
        intern-table key component.  When the universe is not interned
        (cache overflow), falls back to a fresh negative counter value --
        unique forever, so it disables cross-execution sharing without
        ever aliasing another execution's cache entries."""
        uni = _universe(self._eids)
        if uni.interned:
            return id(uni)
        return -next(_INTERN_UID_FALLBACK)

    @cached_property
    def _loc_key(self) -> tuple:
        """Per-event location assignment (None for non-memory events)."""
        return tuple(
            e.loc if e.is_memory_access else None for e in self.events
        )

    @cached_property
    def _kind_key(self) -> tuple:
        return tuple(e.kind for e in self.events)

    @cached_property
    def _tag_key(self) -> tuple:
        """Per-event mode tags (acquire/release/SC/fence flavours)."""
        return tuple(tuple(sorted(e.tags)) for e in self.events)

    @cached_property
    def _txn_key(self) -> tuple:
        return tuple(sorted(self.txn_of.items()))

    @cached_property
    def po(self) -> Relation:
        """Program order: per-thread strict total order from ``threads``."""

        def compute() -> Relation:
            pairs = []
            for seq in self.threads:
                for i, a in enumerate(seq):
                    for b in seq[i + 1 :]:
                        pairs.append((a, b))
            return Relation(pairs, self._eids)

        return global_intern(("po", self._intern_uid, self.threads), compute)

    @cached_property
    def po_imm(self) -> Relation:
        """Immediate (adjacent) program-order pairs."""

        def compute() -> Relation:
            pairs = []
            for seq in self.threads:
                for a, b in zip(seq, seq[1:]):
                    pairs.append((a, b))
            return Relation(pairs, self._eids)

        return global_intern(
            ("poimm", self._intern_uid, self.threads), compute
        )

    @property
    def rf(self) -> Relation:
        return self._rf

    @cached_property
    def co(self) -> Relation:
        """Coherence order, stored transitively closed."""
        return self._co_input.transitive_closure()

    @property
    def addr(self) -> Relation:
        return self._addr

    @property
    def ctrl(self) -> Relation:
        return self._ctrl

    @property
    def data(self) -> Relation:
        return self._data

    @property
    def rmw(self) -> Relation:
        return self._rmw

    @cached_property
    def deps(self) -> Relation:
        """All dependency edges: ``addr ∪ ctrl ∪ data``."""
        return self._addr | self._ctrl | self._data

    # ------------------------------------------------------------------
    # Derived relations (§2.1)
    # ------------------------------------------------------------------

    @cached_property
    def sloc(self) -> Relation:
        """Same-location equivalence over memory events."""

        def compute() -> Relation:
            by_loc: dict[str, list[int]] = {}
            for e in self.events:
                if e.is_memory_access and e.loc is not None:
                    by_loc.setdefault(e.loc, []).append(e.eid)
            pairs = [
                (a, b)
                for group in by_loc.values()
                for a in group
                for b in group
            ]
            return Relation(pairs, self._eids)

        return global_intern(
            ("sloc", self._intern_uid, self._loc_key), compute
        )

    @cached_property
    def poloc(self) -> Relation:
        """``po ∩ sloc``."""
        return global_intern(
            ("poloc", self._intern_uid, self.threads, self._loc_key),
            lambda: self.po & self.sloc,
        )

    @cached_property
    def fr(self) -> Relation:
        """From-read: ``([R] ; sloc ; [W]) \\ (rf⁻¹ ; (co⁻¹)*)`` (§2.1).

        A read with no rf edge observes the initial value, and is
        correctly fr-before *every* write to its location under this
        definition.
        """
        # co is stored transitively closed, so (co⁻¹)* is co⁻¹ ∪ id.
        seen_or_earlier = self._rf.inverse().compose(
            self.co.inverse().optional()
        )
        return self._fr_static - seen_or_earlier

    @cached_property
    def _fr_static(self) -> Relation:
        """``[R] ; sloc ; [W]`` minus the diagonal -- the rf/co-free part
        of ``fr``, shared across a skeleton's completions."""
        return global_intern(
            ("frs", self._intern_uid, self._loc_key, self._kind_key),
            lambda: self.sloc.restrict(
                self.reads, self.writes
            ).irreflexive_part(),
        )

    @cached_property
    def com(self) -> Relation:
        """Communication: ``rf ∪ co ∪ fr`` (§2.1)."""
        return Relation.union_of(self._rf, self.co, self.fr)

    # External (inter-thread) / internal (intra-thread) restrictions.

    @cached_property
    def same_thread(self) -> Relation:
        """``(po ∪ po⁻¹)*`` -- the same-thread equivalence every
        internal/external restriction shares.  Since po is a per-thread
        total order, this is just "same thread or same event", built
        directly from the thread sequences (no closure computation)."""

        def compute() -> Relation:
            out = Relation.empty(self._eids)
            for seq in self.threads:
                out = out | Relation.cross(seq, seq, self._eids)
            return out.optional()

        return global_intern(("st", self._intern_uid, self.threads), compute)

    @cached_property
    def rfe(self) -> Relation:
        return self._rf - self.same_thread

    @cached_property
    def rfi(self) -> Relation:
        return self._rf & self.same_thread

    @cached_property
    def coe(self) -> Relation:
        return self.co - self.same_thread

    @cached_property
    def coi(self) -> Relation:
        return self.co & self.same_thread

    @cached_property
    def fre(self) -> Relation:
        return self.fr - self.same_thread

    @cached_property
    def fri(self) -> Relation:
        return self.fr & self.same_thread

    @cached_property
    def come(self) -> Relation:
        return Relation.union_of(self.rfe, self.coe, self.fre)

    # ------------------------------------------------------------------
    # Transactions (§3.1)
    # ------------------------------------------------------------------

    @cached_property
    def transactional_events(self) -> frozenset[int]:
        return frozenset(self.txn_of)

    @cached_property
    def stxn(self) -> Relation:
        """Successful-transaction PER: all pairs within one class,
        including the diagonal (§3.1)."""

        def compute() -> Relation:
            classes: dict[int, list[int]] = {}
            for eid, txn in self.txn_of.items():
                classes.setdefault(txn, []).append(eid)
            pairs = [
                (a, b)
                for group in classes.values()
                for a in group
                for b in group
            ]
            return Relation(pairs, self._eids)

        return global_intern(
            ("stxn", self._intern_uid, self._txn_key), compute
        )

    @cached_property
    def stxnat(self) -> Relation:
        """The sub-PER of atomic transactions (§7.2)."""
        classes: dict[int, list[int]] = {}
        for eid, txn in self.txn_of.items():
            if txn in self.atomic_txns:
                classes.setdefault(txn, []).append(eid)
        pairs = [
            (a, b) for group in classes.values() for a in group for b in group
        ]
        return Relation(pairs, self._eids)

    @cached_property
    def txn_classes(self) -> dict[int, tuple[int, ...]]:
        """Transaction id → its events in program order."""
        classes: dict[int, list[int]] = {}
        for seq in self.threads:
            for eid in seq:
                txn = self.txn_of.get(eid)
                if txn is not None:
                    classes.setdefault(txn, []).append(eid)
        return {txn: tuple(evs) for txn, evs in classes.items()}

    @cached_property
    def tfence(self) -> Relation:
        """Implicit transaction fences (§5.2):
        ``tfence = po ∩ ((¬stxn ; stxn) ∪ (stxn ; ¬stxn))`` -- po edges
        that enter or exit a successful transaction."""
        if not self.txn_of:
            return Relation.empty(self._eids)

        def compute() -> Relation:
            stxn = self.stxn
            not_stxn = ~stxn
            boundary = not_stxn.compose(stxn) | stxn.compose(not_stxn)
            return self.po & boundary

        return global_intern(
            ("tfence", self._intern_uid, self.threads, self._txn_key),
            compute,
        )

    # ------------------------------------------------------------------
    # Fence relations (events of flavour k induce a po-pair relation)
    # ------------------------------------------------------------------

    def _fence_relation(self, flavour: str) -> Relation:
        fence_eids = tuple(
            e.eid
            for e in self.events
            if e.kind == FENCE and flavour in e.tags
        )
        if not fence_eids:
            return Relation.empty(self._eids)

        def compute() -> Relation:
            po = self.po
            pairs = set()
            for f in fence_eids:
                before = po.predecessors(f)
                after = po.successors(f)
                pairs |= {(a, b) for a in before for b in after}
            return Relation(pairs, self._eids)

        return global_intern(
            ("fence", self._intern_uid, self.threads, fence_eids), compute
        )

    @cached_property
    def mfence(self) -> Relation:
        return self._fence_relation(MFENCE)

    @cached_property
    def sync(self) -> Relation:
        return self._fence_relation(SYNC)

    @cached_property
    def lwsync(self) -> Relation:
        return self._fence_relation(LWSYNC)

    @cached_property
    def isync(self) -> Relation:
        return self._fence_relation(ISYNC)

    @cached_property
    def dmb(self) -> Relation:
        return self._fence_relation(DMB)

    @cached_property
    def dmbld(self) -> Relation:
        return self._fence_relation(DMBLD)

    @cached_property
    def dmbst(self) -> Relation:
        return self._fence_relation(DMBST)

    @cached_property
    def isb(self) -> Relation:
        return self._fence_relation(ISB)

    # ------------------------------------------------------------------
    # Tag-derived sets
    # ------------------------------------------------------------------

    @cached_property
    def acq(self) -> frozenset[int]:
        """Acquire events: tag ACQ, or C++ modes that include acquire."""
        out = set()
        for e in self.events:
            if e.tags & {ACQ, ACQ_REL}:
                out.add(e.eid)
            elif SC in e.tags and (e.is_read or e.is_fence):
                out.add(e.eid)
        return frozenset(out)

    @cached_property
    def rel(self) -> frozenset[int]:
        """Release events: tag REL, or C++ modes that include release."""
        out = set()
        for e in self.events:
            if e.tags & {REL, ACQ_REL}:
                out.add(e.eid)
            elif SC in e.tags and (e.is_write or e.is_fence):
                out.add(e.eid)
        return frozenset(out)

    @cached_property
    def sc_events(self) -> frozenset[int]:
        return self.events_with_tag(SC)

    @cached_property
    def atomics(self) -> frozenset[int]:
        """C++ ``Ato``: events from atomic operations (mode ≠ NA).

        Fences are always atomic operations.  Memory accesses carrying no
        C++ mode tag at all are treated as non-atomic.
        """
        out = set()
        for e in self.events:
            if e.is_fence:
                out.add(e.eid)
            elif e.tags & {RLX, ACQ, REL, ACQ_REL, SC}:
                out.add(e.eid)
        return frozenset(out)

    @cached_property
    def non_atomics(self) -> frozenset[int]:
        return frozenset(
            e.eid
            for e in self.events
            if e.is_memory_access and e.eid not in self.atomics
        )

    # ------------------------------------------------------------------
    # Derived-relation sharing
    # ------------------------------------------------------------------

    @property
    def context(self) -> RelationContext:
        """The interned per-execution relation cache (identity/full, the
        cat environment, cross-axiom memo slots)."""
        return RelationContext.of(self)

    #: Cached attributes that depend only on the *skeleton* -- events,
    #: threads, dependencies, and transaction structure -- not on the
    #: rf/co completion.  Candidate enumeration completes one skeleton
    #: thousands of times; these values are identical across all of its
    #: completions and are shared via :meth:`adopt_skeleton_caches`.
    _SKELETON_STATIC = (
        "_intern_uid",
        "_loc_key",
        "_kind_key",
        "_tag_key",
        "_txn_key",
        "reads",
        "writes",
        "fences",
        "memory_events",
        "locations",
        "po",
        "po_imm",
        "deps",
        "sloc",
        "poloc",
        "_fr_static",
        "same_thread",
        "transactional_events",
        "stxn",
        "stxnat",
        "txn_classes",
        "tfence",
        "mfence",
        "sync",
        "lwsync",
        "isync",
        "dmb",
        "dmbld",
        "dmbst",
        "isb",
        "acq",
        "rel",
        "sc_events",
        "atomics",
        "non_atomics",
    )
    _SKELETON_STATIC_SET = frozenset(_SKELETON_STATIC)

    #: Cached attributes that depend only on the skeleton plus the rf
    #: choice (not on co): shareable across one rf choice's co completions.
    _RF_STATIC = ("rfe", "rfi")

    def adopt_rf_caches(self, template: "Execution") -> "Execution":
        """Copy rf-derived cached relations from ``template``, which must
        share this execution's skeleton *and* rf choice."""
        own = self.__dict__
        for name in self._RF_STATIC:
            value = template.__dict__.get(name)
            if value is not None and name not in own:
                own[name] = value
        return self

    def adopt_skeleton_caches(self, template: "Execution") -> "Execution":
        """Copy skeleton-derived cached relations from ``template``.

        The caller guarantees that ``template`` has the same events,
        threads, dependency edges, and transaction structure -- only the
        ``rf``/``co`` completion may differ.  Whatever the template has
        already computed is inherited; the rest stays lazy.
        """
        own = self.__dict__
        for name, value in template.__dict__.items():
            if name in self._SKELETON_STATIC_SET and name not in own:
                own[name] = value
        # Model-derived relations marked skeleton-static (keys prefixed
        # "static:") are shared through the RelationContext as well.
        template_ctx = template.__dict__.get("_relation_context")
        if template_ctx is not None:
            own_cache = RelationContext.of(self)._cache
            for key, value in template_ctx._cache.items():
                if key.startswith("static:") and key not in own_cache:
                    own_cache[key] = value
        return self

    # ------------------------------------------------------------------
    # Functional updates (used by §4.2 weakenings and §8 transforms)
    # ------------------------------------------------------------------

    def _relation_pairs(self) -> dict[str, frozenset[tuple[int, int]]]:
        return {
            "rf": self._rf.pairs,
            "co": self.co.pairs,
            "addr": self._addr.pairs,
            "ctrl": self._ctrl.pairs,
            "data": self._data.pairs,
            "rmw": self._rmw.pairs,
        }

    def replace(self, **overrides) -> "Execution":
        """Copy with some components replaced."""
        base = {
            "events": self.events,
            "threads": self.threads,
            "txn_of": self.txn_of,
            "atomic_txns": self.atomic_txns,
        }
        base.update(self._relation_pairs())
        base.update(overrides)
        return Execution(**base)

    def without_event(self, eid: int) -> "Execution":
        """⊏-step (i): remove an event plus its incident edges (§4.2).

        A thread emptied by the removal disappears, and the remaining
        threads (and their events' tids) are renumbered to stay dense.
        """
        threads = [
            tuple(x for x in seq if x != eid) for seq in self.threads
        ]
        tid_map: dict[int, int] = {}
        for old_tid, seq in enumerate(threads):
            if seq:
                tid_map[old_tid] = len(tid_map)
        events = [
            e.with_tid(tid_map[e.tid])
            for e in self.events
            if e.eid != eid
        ]
        drop = lambda pairs: frozenset(
            (a, b) for a, b in pairs if a != eid and b != eid
        )
        rels = {k: drop(v) for k, v in self._relation_pairs().items()}
        txn_of = {k: v for k, v in self.txn_of.items() if k != eid}
        return Execution(
            events,
            [seq for seq in threads if seq],
            txn_of=txn_of,
            atomic_txns=self.atomic_txns,
            **rels,
        )

    def without_dep_edge(self, name: str, pair: tuple[int, int]) -> "Execution":
        """⊏-step (ii): remove one dependency edge (§4.2)."""
        if name not in ("addr", "ctrl", "data", "rmw"):
            raise ValueError(f"not a dependency relation: {name}")
        rels = self._relation_pairs()
        rels[name] = rels[name] - {pair}
        return self.replace(**rels)

    def with_event_tags(self, eid: int, tags: frozenset[str]) -> "Execution":
        """⊏-step (iii): downgrade an event by replacing its tags (§4.2)."""
        events = [
            e.with_tags(tags) if e.eid == eid else e for e in self.events
        ]
        return self.replace(events=tuple(events))

    def without_txn_membership(self, eid: int) -> "Execution":
        """⊏-step (v): make one (boundary) event non-transactional (§4.2)."""
        txn_of = {k: v for k, v in self.txn_of.items() if k != eid}
        return self.replace(txn_of=txn_of)

    def with_txn_of(
        self, txn_of: Mapping[int, int], atomic_txns: Iterable[int] = ()
    ) -> "Execution":
        """Replace the whole transaction structure."""
        return self.replace(txn_of=dict(txn_of), atomic_txns=frozenset(atomic_txns))

    def erase_transactions(self) -> "Execution":
        """Forget all transactions: the non-TM baseline view (§5.3)."""
        return self.replace(txn_of={}, atomic_txns=frozenset())

    # ------------------------------------------------------------------
    # Fingerprinting (used for deduplication; isomorphism-insensitive
    # canonicalisation lives in repro.enumeration.canonical)
    # ------------------------------------------------------------------

    def fingerprint(self) -> tuple:
        """A hashable, structure-complete encoding of the execution."""
        return (
            tuple(
                (e.eid, e.tid, e.kind, e.loc, tuple(sorted(e.tags)))
                for e in self.events
            ),
            self.threads,
            tuple(sorted(self._rf.pairs)),
            tuple(sorted(self.co.pairs)),
            tuple(sorted(self._addr.pairs)),
            tuple(sorted(self._ctrl.pairs)),
            tuple(sorted(self._data.pairs)),
            tuple(sorted(self._rmw.pairs)),
            tuple(sorted(self.txn_of.items())),
            tuple(sorted(self.atomic_txns)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Execution):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __getstate__(self) -> dict:
        # The IR evaluation state must not ride along: its __reduce__
        # rebuilds via _State(x), whose constructor reads execution
        # attributes -- during *unpickling* the owning execution is
        # still half-built, so a worker process would die mid-load
        # (and a dead pool worker hangs imap forever).  It is a pure
        # cache; the receiving process rebuilds it on first use.
        state = self.__dict__.copy()
        state.pop("_ir_state", None)
        return state

    # ------------------------------------------------------------------
    # Pretty-printing
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """A multi-line textual rendering (threads as columns of labels,
        then the non-po edges)."""
        lines = []
        for tid, seq in enumerate(self.threads):
            parts = []
            for eid in seq:
                lbl = self.event(eid).label()
                txn = self.txn_of.get(eid)
                if txn is not None:
                    lbl = f"[{lbl} #T{txn}]"
                parts.append(lbl)
            lines.append(f"thread {tid}: " + " ; ".join(parts))
        for name in ("rf", "co", "addr", "ctrl", "data", "rmw"):
            rel = getattr(self, name if name != "co" else "co")
            if name == "rf":
                rel = self._rf
            if rel.pairs:
                edges = ", ".join(f"{a}->{b}" for a, b in sorted(rel.pairs))
                lines.append(f"{name}: {edges}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Execution |E|={len(self.events)} threads={len(self.threads)}>"


class SkeletonCompleter:
    """Builds one skeleton's rf/co completions with shared static parts.

    Both candidate enumerators (``repro.enumeration.complete`` and
    ``repro.litmus.candidates``) complete a fixed skeleton -- events,
    threads, dependency edges, transaction structure -- with many rf/co
    choices.  This helper owns the per-skeleton invariants they must
    agree on: events sorted by eid, empty threads dropped (matching
    ``Execution.__init__`` normalisation), dependency relations and
    lookup tables built once, and the skeleton-template /
    rf-template cache-adoption protocol applied in that order.

    Usage::

        completer = SkeletonCompleter(events, threads, addr, ctrl,
                                      data, rmw, txn_of, atomic_txns)
        for rf_pairs in ...:
            completer.start_rf(rf_pairs)
            for co_pairs in ...:
                execution = completer.complete(co_pairs)
    """

    def __init__(
        self,
        events: Iterable[Event],
        threads: Sequence[Sequence[int]],
        addr: Iterable[tuple[int, int]],
        ctrl: Iterable[tuple[int, int]],
        data: Iterable[tuple[int, int]],
        rmw: Iterable[tuple[int, int]],
        txn_of: Mapping[int, int],
        atomic_txns: Iterable[int],
    ):
        self.events = tuple(sorted(events, key=lambda e: e.eid))
        self.threads = tuple(tuple(t) for t in threads if len(t) > 0)
        self.uni = frozenset(e.eid for e in self.events)
        self.by_eid = {e.eid: e for e in self.events}
        self.addr = Relation(addr, self.uni)
        self.ctrl = Relation(ctrl, self.uni)
        self.data = Relation(data, self.uni)
        self.rmw = Relation(rmw, self.uni)
        self.txn_of = dict(txn_of)
        self.atomic_txns = frozenset(atomic_txns)
        self._template: Execution | None = None
        self._rf_rel: Relation | None = None
        self._rf_template: Execution | None = None

    def start_rf(self, rf_pairs: Iterable[tuple[int, int]]) -> None:
        """Fix the rf choice for the completions that follow."""
        self._rf_rel = Relation(rf_pairs, self.uni)
        self._rf_template = None

    def complete(self, co_pairs: Iterable[tuple[int, int]]) -> Execution:
        """One completion of the current rf choice."""
        execution = Execution.from_skeleton_parts(
            events=self.events,
            threads=self.threads,
            eids=self.uni,
            by_eid=self.by_eid,
            rf=self._rf_rel,
            co=co_pairs,
            addr=self.addr,
            ctrl=self.ctrl,
            data=self.data,
            rmw=self.rmw,
            txn_of=self.txn_of,
            atomic_txns=self.atomic_txns,
        )
        if self._template is None:
            self._template = execution
        else:
            execution.adopt_skeleton_caches(self._template)
        if self._rf_template is None:
            self._rf_template = execution
        else:
            execution.adopt_rf_caches(self._rf_template)
        return execution
