"""A fluent builder for execution graphs.

The paper communicates through dozens of small executions (Figs. 1-3, 10,
the §5.2 executions, the §8 counterexamples...).  This builder makes those
diagrams read almost like the paper's pictures::

    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.write("x")
    c = t1.write("x")
    r = t1.read("x")
    b.rf(a, r)
    b.co(a, c)
    x = b.build()          # the execution of Fig. 1

Transactions are opened with a context manager::

    with t0.transaction():
        t0.write("x")
        t0.read("x")
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from .event import (
    FENCE,
    LOCK,
    LOCK_T,
    READ,
    UNLOCK,
    UNLOCK_T,
    WRITE,
    Event,
)
from .execution import Execution
from .wellformed import assert_well_formed


class ThreadBuilder:
    """Accumulates one thread's events in program order."""

    def __init__(self, parent: "ExecutionBuilder", tid: int):
        self._parent = parent
        self.tid = tid
        self.sequence: list[int] = []

    def _add(self, kind: str, loc: str | None, tags: frozenset[str]) -> int:
        eid = self._parent._next_eid()
        event = Event(eid=eid, tid=self.tid, kind=kind, loc=loc, tags=tags)
        self._parent._events.append(event)
        self.sequence.append(eid)
        txn = self._parent._open_txn.get(self.tid)
        if txn is not None:
            self._parent._txn_of[eid] = txn
        return eid

    def read(self, loc: str, tags: set[str] | frozenset[str] = frozenset()) -> int:
        """Append a read of ``loc``; returns its event id."""
        return self._add(READ, loc, frozenset(tags))

    def write(self, loc: str, tags: set[str] | frozenset[str] = frozenset()) -> int:
        """Append a write of ``loc``; returns its event id."""
        return self._add(WRITE, loc, frozenset(tags))

    def fence(self, flavour: str, tags: set[str] | frozenset[str] = frozenset()) -> int:
        """Append a fence event of the given flavour."""
        return self._add(FENCE, None, frozenset(tags) | {flavour})

    def lock(self) -> int:
        """Append an §8.3 ``L`` (ordinary lock) call event."""
        return self._add(LOCK, None, frozenset())

    def unlock(self) -> int:
        """Append an §8.3 ``U`` call event."""
        return self._add(UNLOCK, None, frozenset())

    def lock_elided(self) -> int:
        """Append an §8.3 ``Lt`` (to-be-transactionalised lock) event."""
        return self._add(LOCK_T, None, frozenset())

    def unlock_elided(self) -> int:
        """Append an §8.3 ``Ut`` event."""
        return self._add(UNLOCK_T, None, frozenset())

    @contextlib.contextmanager
    def transaction(self, atomic: bool = False) -> Iterator[int]:
        """Group the events appended inside the block into one successful
        transaction; yields the transaction id."""
        txn = self._parent._next_txn()
        if atomic:
            self._parent._atomic_txns.add(txn)
        self._parent._open_txn[self.tid] = txn
        try:
            yield txn
        finally:
            del self._parent._open_txn[self.tid]


class ExecutionBuilder:
    """Top-level builder; create threads, add cross-thread edges, build."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._threads: list[ThreadBuilder] = []
        self._rf: set[tuple[int, int]] = set()
        self._co: set[tuple[int, int]] = set()
        self._addr: set[tuple[int, int]] = set()
        self._ctrl: set[tuple[int, int]] = set()
        self._data: set[tuple[int, int]] = set()
        self._rmw: set[tuple[int, int]] = set()
        self._txn_of: dict[int, int] = {}
        self._atomic_txns: set[int] = set()
        self._open_txn: dict[int, int] = {}
        self._eid = 0
        self._txn = 0

    def _next_eid(self) -> int:
        eid = self._eid
        self._eid += 1
        return eid

    def _next_txn(self) -> int:
        txn = self._txn
        self._txn += 1
        return txn

    def thread(self) -> ThreadBuilder:
        """Create a new thread."""
        builder = ThreadBuilder(self, len(self._threads))
        self._threads.append(builder)
        return builder

    # -- edges -------------------------------------------------------------

    def rf(self, write: int, read: int) -> "ExecutionBuilder":
        """Add a reads-from edge."""
        self._rf.add((write, read))
        return self

    def co(self, first: int, *rest: int) -> "ExecutionBuilder":
        """Chain writes in coherence order: ``co(a, b, c)`` adds a→b→c."""
        chain = (first,) + rest
        for a, b in zip(chain, chain[1:]):
            self._co.add((a, b))
        return self

    def addr(self, read: int, target: int) -> "ExecutionBuilder":
        self._addr.add((read, target))
        return self

    def ctrl(self, read: int, target: int) -> "ExecutionBuilder":
        self._ctrl.add((read, target))
        return self

    def data(self, read: int, write: int) -> "ExecutionBuilder":
        self._data.add((read, write))
        return self

    def rmw(self, read: int, write: int) -> "ExecutionBuilder":
        self._rmw.add((read, write))
        return self

    # -- building ------------------------------------------------------------

    def build(self, check: bool = True) -> Execution:
        """Assemble the execution; validates well-formedness by default."""
        execution = Execution(
            events=self._events,
            threads=[t.sequence for t in self._threads],
            rf=self._rf,
            co=self._co,
            addr=self._addr,
            ctrl=self._ctrl,
            data=self._data,
            rmw=self._rmw,
            txn_of=self._txn_of,
            atomic_txns=self._atomic_txns,
        )
        if check:
            assert_well_formed(execution)
        return execution
