"""Execution well-formedness (§2.1, §3.1).

The paper restricts attention to well-formed executions:

* ``po`` forms, for each thread, a strict total order over that thread's
  events (guaranteed here by construction, but the thread sequences are
  validated);
* ``addr``, ``ctrl`` and ``data`` are within ``po`` and originate at
  reads; ``data`` edges target writes;
* ``rmw`` links the read of an RMW to its corresponding write (same
  location, program-order adjacent);
* ``rf`` connects writes to reads of the same location, with no read
  having more than one incoming edge;
* ``co`` relates only writes to the same location and forms a
  per-location strict total order;
* ``stxn`` is a partial equivalence whose classes coincide with
  contiguous subsets of ``po`` (§3.1), and atomic transactions are a
  subset of transactions (§7.2).

:func:`well_formedness_violations` reports *all* problems (for test
diagnostics); :func:`is_well_formed` just says yes/no.
"""

from __future__ import annotations

from .event import FENCE, READ, WRITE
from .execution import Execution


def well_formedness_violations(execution: Execution) -> list[str]:
    """Return a list of human-readable violations (empty when OK)."""
    problems: list[str] = []
    problems.extend(_check_threads(execution))
    problems.extend(_check_events(execution))
    problems.extend(_check_dependencies(execution))
    problems.extend(_check_rmw(execution))
    problems.extend(_check_rf(execution))
    problems.extend(_check_co(execution))
    problems.extend(_check_transactions(execution))
    return problems


def is_well_formed(execution: Execution) -> bool:
    return not well_formedness_violations(execution)


def assert_well_formed(execution: Execution) -> Execution:
    """Raise ``ValueError`` on the first violation; return the execution
    otherwise (handy for builder pipelines)."""
    problems = well_formedness_violations(execution)
    if problems:
        raise ValueError(
            "ill-formed execution:\n  " + "\n  ".join(problems)
        )
    return execution


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------


def _check_threads(x: Execution) -> list[str]:
    problems = []
    seen: set[int] = set()
    for tid, seq in enumerate(x.threads):
        for eid in seq:
            if eid in seen:
                problems.append(f"event {eid} appears in several threads")
            seen.add(eid)
            if eid not in x.eids:
                problems.append(f"thread {tid} mentions unknown event {eid}")
                continue
            if x.event(eid).tid != tid:
                problems.append(
                    f"event {eid} has tid {x.event(eid).tid} but sits in "
                    f"thread {tid}"
                )
    missing = x.eids - seen
    if missing:
        problems.append(f"events {sorted(missing)} belong to no thread")
    return problems


def _check_events(x: Execution) -> list[str]:
    problems = []
    for e in x.events:
        if e.is_memory_access and e.loc is None:
            problems.append(f"memory event {e.eid} has no location")
        if e.kind == FENCE and e.loc is not None:
            problems.append(f"fence {e.eid} has a location")
    return problems


def _check_dependencies(x: Execution) -> list[str]:
    problems = []
    po = x.po
    # §2.1: dependencies originate at reads -- except that "in Power,
    # ctrl edges can begin at a store-exclusive" (Table 3, footnote 3):
    # the spinlock's bne tests the store-exclusive's success flag.
    store_exclusives = x.rmw.range()
    for name, rel in (("addr", x.addr), ("ctrl", x.ctrl), ("data", x.data)):
        for a, b in rel.pairs:
            if (a, b) not in po.pairs:
                problems.append(f"{name} edge {a}->{b} is not within po")
            if a in x.eids and x.event(a).kind != READ:
                if name == "ctrl" and a in store_exclusives:
                    continue
                problems.append(f"{name} edge {a}->{b} does not start at a read")
        if name == "data":
            for a, b in rel.pairs:
                if b in x.eids and x.event(b).kind != WRITE:
                    problems.append(f"data edge {a}->{b} does not target a write")
        if name == "addr":
            for a, b in rel.pairs:
                if b in x.eids and not x.event(b).is_memory_access:
                    problems.append(
                        f"addr edge {a}->{b} does not target a memory access"
                    )
    return problems


def _check_rmw(x: Execution) -> list[str]:
    problems = []
    for a, b in x.rmw.pairs:
        if a not in x.eids or b not in x.eids:
            problems.append(f"rmw edge {a}->{b} mentions unknown events")
            continue
        ea, eb = x.event(a), x.event(b)
        if ea.kind != READ or eb.kind != WRITE:
            problems.append(f"rmw edge {a}->{b} is not read-to-write")
        if ea.loc != eb.loc:
            problems.append(f"rmw edge {a}->{b} crosses locations")
        if (a, b) not in x.po_imm.pairs:
            problems.append(f"rmw edge {a}->{b} is not po-adjacent")
    return problems


def _check_rf(x: Execution) -> list[str]:
    problems = []
    incoming: dict[int, int] = {}
    for w, r in x.rf.pairs:
        if w not in x.eids or r not in x.eids:
            problems.append(f"rf edge {w}->{r} mentions unknown events")
            continue
        ew, er = x.event(w), x.event(r)
        if ew.kind != WRITE or er.kind != READ:
            problems.append(f"rf edge {w}->{r} is not write-to-read")
        elif ew.loc != er.loc:
            problems.append(f"rf edge {w}->{r} crosses locations")
        incoming[r] = incoming.get(r, 0) + 1
    for r, n in incoming.items():
        if n > 1:
            problems.append(f"read {r} has {n} incoming rf edges")
    return problems


def _check_co(x: Execution) -> list[str]:
    problems = []
    for a, b in x.co.pairs:
        if a not in x.eids or b not in x.eids:
            problems.append(f"co edge {a}->{b} mentions unknown events")
            continue
        ea, eb = x.event(a), x.event(b)
        if ea.kind != WRITE or eb.kind != WRITE:
            problems.append(f"co edge {a}->{b} is not write-to-write")
        elif ea.loc != eb.loc:
            problems.append(f"co edge {a}->{b} crosses locations")
    for loc in x.locations:
        writes = x.writes_to(loc)
        if len(writes) > 1 and not x.co.is_strict_total_order_on(writes):
            problems.append(f"co is not a strict total order on writes to {loc}")
    return problems


def _check_transactions(x: Execution) -> list[str]:
    problems = []
    if not x.stxn.is_partial_equivalence():
        problems.append("stxn is not a partial equivalence")
    # Each class must coincide with a contiguous subset of po (§3.1).
    for txn, members in x.txn_classes.items():
        tids = {x.event(eid).tid for eid in members}
        if len(tids) != 1:
            problems.append(f"transaction {txn} spans threads {sorted(tids)}")
            continue
        seq = x.threads[next(iter(tids))]
        positions = sorted(seq.index(eid) for eid in members)
        if positions != list(range(positions[0], positions[0] + len(positions))):
            problems.append(f"transaction {txn} is not po-contiguous")
    for txn in x.atomic_txns:
        if txn not in x.txn_classes:
            problems.append(f"atomic transaction {txn} has no events")
    return problems
