"""Finite binary relations over event identifiers.

Every axiomatic memory model in the paper is phrased as constraints over
binary relations between events (``po``, ``rf``, ``co``, ``hb``, ...).
This module provides the :class:`Relation` value type those constraints
are computed with.

A :class:`Relation` is an immutable set of ``(int, int)`` pairs together
with an explicit *universe* of event identifiers.  The universe is needed
so that complements (``~r``), identity restrictions, and "all pairs"
constructions are well defined -- the paper's models use complements such
as ``¬ stxn`` (Figs. 5, 6, 8), which only make sense relative to the set
of events of the execution under consideration.

Internally a relation is an *adjacency bitset*: the universe is
dense-indexed (sorted element ``i`` gets bit ``i``) and the relation is a
tuple of ``int`` bitmasks, one row per source element, where bit ``j`` of
row ``i`` means element ``i`` relates to element ``j``.  Union,
intersection, difference, and complement are then single bitwise
operations per row; composition ORs target rows; transitive closure is
Floyd–Warshall over rows; and acyclicity is Warshall with an early exit
on the diagonal.  Universes are interned (:class:`_Universe`) so that
all relations of one execution share the same index map and operations
between them hit the aligned fast path.

The pair-set view (:attr:`Relation.pairs`) is materialised lazily and
cached, so consumers that iterate pairs (diagnostics, canonicalisation,
fingerprints) see exactly the frozenset they always did.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ..obs import REGISTRY

Pair = tuple[int, int]


class _Universe:
    """An interned, dense-indexed universe of event identifiers.

    Holds the sorted element tuple, the element → bit-position map, the
    all-ones row mask, and per-universe caches of the identity and full
    relations (which the cat evaluator and the models request for every
    axiom of every execution).
    """

    __slots__ = (
        "elements",
        "index",
        "full_mask",
        "frozen",
        "interned",
        "_identity",
        "_full",
    )

    def __init__(self, eids: frozenset[int]):
        self.elements: tuple[int, ...] = tuple(sorted(eids))
        self.index: dict[int, int] = {e: i for i, e in enumerate(self.elements)}
        self.full_mask: int = (1 << len(self.elements)) - 1
        self.frozen: frozenset[int] = eids
        self.interned: bool = False
        self._identity: "Relation | None" = None
        self._full: "Relation | None" = None


_UNIVERSE_CACHE: dict[frozenset[int], _Universe] = {}
_UNIVERSE_CACHE_MAX = 1 << 16


def _universe(eids: frozenset[int]) -> _Universe:
    uni = _UNIVERSE_CACHE.get(eids)
    if uni is None:
        uni = _Universe(eids)
        if len(_UNIVERSE_CACHE) < _UNIVERSE_CACHE_MAX:
            _UNIVERSE_CACHE[eids] = uni
            uni.interned = True
    return uni


def _decode(mask: int, elements: tuple[int, ...]) -> Iterator[int]:
    """Yield the universe elements whose bits are set in ``mask``."""
    while mask:
        bit = mask & -mask
        yield elements[bit.bit_length() - 1]
        mask ^= bit


# ---------------------------------------------------------------------------
# Raw-row kernels.  These operate on plain lists/tuples of int bitmasks so
# that hot paths (the IR executor's node evaluators) can chain them
# without allocating intermediate Relation objects; the Relation methods
# delegate to them.
# ---------------------------------------------------------------------------


def compose_rows(a, b) -> list[int]:
    """Rows of the composition ``a ; b`` (same universe, same indexing)."""
    out = []
    for row in a:
        acc = 0
        mask = row
        while mask:
            bit = mask & -mask
            acc |= b[bit.bit_length() - 1]
            mask ^= bit
        out.append(acc)
    return out


def transpose_rows(rows) -> list[int]:
    """Rows of the inverse relation."""
    out = [0] * len(rows)
    for i, row in enumerate(rows):
        bit_i = 1 << i
        mask = row
        while mask:
            bit = mask & -mask
            out[bit.bit_length() - 1] |= bit_i
            mask ^= bit
    return out


def closure_rows(rows) -> list[int]:
    """Rows of the transitive closure (Floyd–Warshall over bitmasks)."""
    rows = list(rows)
    for k, row_k in enumerate(rows):
        if not row_k:
            continue
        bit = 1 << k
        for i, row_i in enumerate(rows):
            if row_i & bit:
                rows[i] = row_i | rows[k]
    return rows


def acyclic_rows(rows) -> bool:
    """Warshall with an early exit the moment any element reaches itself."""
    for i, row in enumerate(rows):
        if row >> i & 1:
            return False
    rows = list(rows)
    for k, row_k in enumerate(rows):
        if not row_k:
            continue
        bit = 1 << k
        for i, row_i in enumerate(rows):
            if row_i & bit:
                row_i |= rows[k]
                if row_i >> i & 1:
                    return False
                rows[i] = row_i
    return True


def _rebuild(pairs: tuple[Pair, ...], elements: tuple[int, ...]) -> "Relation":
    return Relation(pairs, elements)


#: Acyclicity verdicts interned across relation instances.  Candidate
#: enumeration checks acyclic(hb)/acyclic(poloc ∪ com) for thousands of
#: completions whose derived relations coincide; keying on the interned
#: universe and the row tuple turns repeats into one dict probe.
_ACYCLIC_CACHE: dict[tuple[int, tuple[int, ...]], bool] = {}
_ACYCLIC_CACHE_MAX = 1 << 20

# Uncached evaluations (uninterned universes) count as misses, so
# hits + misses == lookups holds for every path through the cache.
_ACYC_LOOKUPS = REGISTRY.counter("relations.acyclic_cache.lookups")
_ACYC_HITS = REGISTRY.counter("relations.acyclic_cache.hits")
_ACYC_MISSES = REGISTRY.counter("relations.acyclic_cache.misses")


def acyclic_rows_cached(uni: _Universe, rows: tuple[int, ...]) -> bool:
    """``acyclic_rows`` with the verdict interned per (universe, rows)."""
    _ACYC_LOOKUPS.inc()
    if uni.interned:
        # Interned universes are immortal, so their id is a stable key.
        key = (id(uni), rows)
        verdict = _ACYCLIC_CACHE.get(key)
        if verdict is None:
            _ACYC_MISSES.inc()
            verdict = acyclic_rows(rows)
            if len(_ACYCLIC_CACHE) >= _ACYCLIC_CACHE_MAX:
                # Reset rather than stop caching: bounds memory while
                # keeping the cache effective for the current workload.
                _ACYCLIC_CACHE.clear()
            _ACYCLIC_CACHE[key] = verdict
        else:
            _ACYC_HITS.inc()
        return verdict
    _ACYC_MISSES.inc()
    return acyclic_rows(rows)


#: Transitive closures interned across relation instances, same scheme as
#: the acyclicity cache.  Power computes three reflexive-transitive
#: closures per execution (fc, thb's head, hb*) and C++ closes hb and com
#: for every candidate; completions of one skeleton repeat the same row
#: tuples constantly.
_CLOSURE_CACHE: dict[tuple[int, tuple[int, ...]], tuple[int, ...]] = {}
_CLOSURE_CACHE_MAX = 1 << 18

_CLOS_LOOKUPS = REGISTRY.counter("relations.closure_cache.lookups")
_CLOS_HITS = REGISTRY.counter("relations.closure_cache.hits")
_CLOS_MISSES = REGISTRY.counter("relations.closure_cache.misses")


def closure_rows_cached(uni: _Universe, rows: tuple[int, ...]) -> tuple[int, ...]:
    """``closure_rows`` with the result interned per (universe, rows)."""
    _CLOS_LOOKUPS.inc()
    if uni.interned:
        key = (id(uni), rows)
        closed = _CLOSURE_CACHE.get(key)
        if closed is None:
            _CLOS_MISSES.inc()
            closed = tuple(closure_rows(rows))
            if len(_CLOSURE_CACHE) >= _CLOSURE_CACHE_MAX:
                _CLOSURE_CACHE.clear()
            _CLOSURE_CACHE[key] = closed
        else:
            _CLOS_HITS.inc()
        return closed
    _CLOS_MISSES.inc()
    return tuple(closure_rows(rows))


def rtc_rows_cached(uni: _Universe, rows: tuple[int, ...]) -> tuple[int, ...]:
    """Reflexive-transitive closure rows, interned per (universe, rows)."""
    return tuple(
        row | (1 << i) for i, row in enumerate(closure_rows_cached(uni, rows))
    )


class Relation:
    """An immutable binary relation over a finite universe of ints."""

    __slots__ = ("_uni", "_rows", "_pairs", "_hash", "_acyclic")

    def __init__(self, pairs: Iterable[Pair] = (), universe: Iterable[int] = ()):
        pair_list = [(int(a), int(b)) for a, b in pairs]
        eids = set(int(u) for u in universe)
        for a, b in pair_list:
            eids.add(a)
            eids.add(b)
        uni = _universe(frozenset(eids))
        index = uni.index
        rows = [0] * len(uni.elements)
        for a, b in pair_list:
            rows[index[a]] |= 1 << index[b]
        self._uni = uni
        self._rows: tuple[int, ...] = tuple(rows)
        self._pairs: frozenset[Pair] | None = None
        self._hash: int | None = None
        self._acyclic: bool | None = None

    @classmethod
    def _make(cls, uni: _Universe, rows: Iterable[int]) -> "Relation":
        rel = cls.__new__(cls)
        rel._uni = uni
        rel._rows = tuple(rows)
        rel._pairs = None
        rel._hash = None
        rel._acyclic = None
        return rel

    def __reduce__(self):
        return (_rebuild, (tuple(self.pairs), self._uni.elements))

    # ------------------------------------------------------------------
    # Universe alignment
    # ------------------------------------------------------------------

    def _realigned_rows(self, uni: _Universe) -> list[int]:
        """This relation's rows re-indexed into ``uni`` (a superset)."""
        old = self._uni
        if old is uni:
            return list(self._rows)
        rows = [0] * len(uni.elements)
        index = uni.index
        elements = old.elements
        for i, row in enumerate(self._rows):
            if not row:
                continue
            new_row = 0
            mask = row
            while mask:
                bit = mask & -mask
                new_row |= 1 << index[elements[bit.bit_length() - 1]]
                mask ^= bit
            rows[index[elements[i]]] = new_row
        return rows

    def _aligned(
        self, other: "Relation"
    ) -> tuple[_Universe, list[int] | tuple[int, ...], list[int] | tuple[int, ...]]:
        """A shared universe plus both relations' rows over it."""
        if self._uni is other._uni:
            return self._uni, self._rows, other._rows
        merged = _universe(self._uni.frozen | other._uni.frozen)
        return merged, self._realigned_rows(merged), other._realigned_rows(merged)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def pairs(self) -> frozenset[Pair]:
        """The set of pairs in the relation."""
        if self._pairs is None:
            elements = self._uni.elements
            self._pairs = frozenset(
                (elements[i], b)
                for i, row in enumerate(self._rows)
                for b in _decode(row, elements)
            )
        return self._pairs

    @property
    def universe(self) -> frozenset[int]:
        """The universe the relation (and its complement) ranges over."""
        return self._uni.frozen

    def domain(self) -> frozenset[int]:
        """Elements appearing as the source of some pair."""
        elements = self._uni.elements
        return frozenset(
            elements[i] for i, row in enumerate(self._rows) if row
        )

    def range(self) -> frozenset[int]:
        """Elements appearing as the target of some pair."""
        acc = 0
        for row in self._rows:
            acc |= row
        return frozenset(_decode(acc, self._uni.elements))

    def field(self) -> frozenset[int]:
        """Elements appearing in some pair, as source or target."""
        return self.domain() | self.range()

    def successors(self, a: int) -> frozenset[int]:
        """All ``b`` with ``(a, b)`` in the relation."""
        i = self._uni.index.get(a)
        if i is None:
            return frozenset()
        return frozenset(_decode(self._rows[i], self._uni.elements))

    def predecessors(self, b: int) -> frozenset[int]:
        """All ``a`` with ``(a, b)`` in the relation."""
        j = self._uni.index.get(b)
        if j is None:
            return frozenset()
        bit = 1 << j
        elements = self._uni.elements
        return frozenset(
            elements[i] for i, row in enumerate(self._rows) if row & bit
        )

    def is_empty(self) -> bool:
        return not any(self._rows)

    def __len__(self) -> int:
        return sum(row.bit_count() for row in self._rows)

    def __iter__(self) -> Iterator[Pair]:
        return iter(sorted(self.pairs))

    def __contains__(self, pair: object) -> bool:
        try:
            a, b = pair  # type: ignore[misc]
        except (TypeError, ValueError):
            return False
        index = self._uni.index
        i = index.get(a)
        j = index.get(b)
        if i is None or j is None:
            return False
        return bool(self._rows[i] >> j & 1)

    def __bool__(self) -> bool:
        return any(self._rows)

    # ------------------------------------------------------------------
    # Equality / hashing / printing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self._uni is other._uni:
            return self._rows == other._rows
        return self.pairs == other.pairs

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.pairs)
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(f"({a},{b})" for a, b in sorted(self.pairs))
        return f"Relation({{{body}}})"

    # ------------------------------------------------------------------
    # Derived constructors
    # ------------------------------------------------------------------

    @staticmethod
    def empty(universe: Iterable[int] = ()) -> "Relation":
        """The empty relation over ``universe``."""
        uni = _universe(frozenset(int(u) for u in universe))
        return Relation._make(uni, (0,) * len(uni.elements))

    @staticmethod
    def identity(universe: Iterable[int]) -> "Relation":
        """The identity relation over ``universe``."""
        uni = _universe(frozenset(int(u) for u in universe))
        if uni._identity is None:
            uni._identity = Relation._make(
                uni, (1 << i for i in range(len(uni.elements)))
            )
        return uni._identity

    @staticmethod
    def full(universe: Iterable[int]) -> "Relation":
        """The complete relation ``universe × universe``."""
        uni = _universe(frozenset(int(u) for u in universe))
        if uni._full is None:
            uni._full = Relation._make(
                uni, (uni.full_mask,) * len(uni.elements)
            )
        return uni._full

    @staticmethod
    def from_set(elements: Iterable[int], universe: Iterable[int] = ()) -> "Relation":
        """Lift a set to a relation: ``[s] = {(x, x) | x ∈ s}`` (§2.1)."""
        elems = frozenset(int(e) for e in elements)
        uni = _universe(frozenset(int(u) for u in universe) | elems)
        index = uni.index
        rows = [0] * len(uni.elements)
        for e in elems:
            rows[index[e]] = 1 << index[e]
        return Relation._make(uni, rows)

    @staticmethod
    def cross(
        lhs: Iterable[int], rhs: Iterable[int], universe: Iterable[int] = ()
    ) -> "Relation":
        """The Cartesian product ``lhs × rhs`` (e.g. ``W × R`` in Fig. 6)."""
        left = frozenset(int(e) for e in lhs)
        right = frozenset(int(e) for e in rhs)
        uni = _universe(frozenset(int(u) for u in universe) | left | right)
        index = uni.index
        target = 0
        for b in right:
            target |= 1 << index[b]
        rows = [0] * len(uni.elements)
        for a in left:
            rows[index[a]] = target
        return Relation._make(uni, rows)

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------

    def __or__(self, other: "Relation") -> "Relation":
        """Union."""
        if self._uni is other._uni:
            return Relation._make(
                self._uni, [x | y for x, y in zip(self._rows, other._rows)]
            )
        uni, a, b = self._aligned(other)
        return Relation._make(uni, [x | y for x, y in zip(a, b)])

    def __and__(self, other: "Relation") -> "Relation":
        """Intersection."""
        if self._uni is other._uni:
            return Relation._make(
                self._uni, [x & y for x, y in zip(self._rows, other._rows)]
            )
        uni, a, b = self._aligned(other)
        return Relation._make(uni, [x & y for x, y in zip(a, b)])

    def __sub__(self, other: "Relation") -> "Relation":
        """Difference."""
        if self._uni is other._uni:
            return Relation._make(
                self._uni, [x & ~y for x, y in zip(self._rows, other._rows)]
            )
        uni, a, b = self._aligned(other)
        return Relation._make(uni, [x & ~y for x, y in zip(a, b)])

    @staticmethod
    def union_of(first: "Relation", *rest: "Relation") -> "Relation":
        """N-ary union in one pass (the models build ``com``/``hb`` as
        unions of four to six relations; fusing skips the temporaries).
        Falls back to pairwise union when universes differ."""
        uni = first._uni
        if all(r._uni is uni for r in rest):
            rows = list(first._rows)
            for rel in rest:
                rows = [x | y for x, y in zip(rows, rel._rows)]
            return Relation._make(uni, rows)
        out = first
        for rel in rest:
            out = out | rel
        return out

    def __invert__(self) -> "Relation":
        """Complement with respect to ``universe × universe`` (written ¬r)."""
        full = self._uni.full_mask
        return Relation._make(self._uni, [full & ~row for row in self._rows])

    # ------------------------------------------------------------------
    # Relational operators from §2.1
    # ------------------------------------------------------------------

    def inverse(self) -> "Relation":
        """``r⁻¹``."""
        return Relation._make(self._uni, transpose_rows(self._rows))

    def compose(self, other: "Relation") -> "Relation":
        """Relational composition ``r₁ ; r₂`` (§2.1)."""
        if self._uni is other._uni:
            uni, a, b = self._uni, self._rows, other._rows
        else:
            uni, a, b = self._aligned(other)
        return Relation._make(uni, compose_rows(a, b))

    def __rshift__(self, other: "Relation") -> "Relation":
        """``r1 >> r2`` is composition ``r1 ; r2`` -- reads left to right."""
        return self.compose(other)

    def optional(self) -> "Relation":
        """Reflexive closure ``r?``: ``r ∪ id`` over the universe."""
        return Relation._make(
            self._uni, [row | (1 << i) for i, row in enumerate(self._rows)]
        )

    def _closure_rows(self) -> list[int]:
        """Transitive closure, Floyd–Warshall over bitmask rows (interned
        globally per (universe, rows) when the universe is interned)."""
        return list(closure_rows_cached(self._uni, self._rows))

    def transitive_closure(self) -> "Relation":
        """Transitive closure ``r⁺`` (Floyd–Warshall on bitmask rows)."""
        return Relation._make(self._uni, self._closure_rows())

    def reflexive_transitive_closure(self) -> "Relation":
        """``r* = r⁺ ∪ id``."""
        return Relation._make(
            self._uni,
            [row | (1 << i) for i, row in enumerate(self._closure_rows())],
        )

    def restrict(self, sources: Iterable[int], targets: Iterable[int]) -> "Relation":
        """``[sources] ; r ; [targets]``."""
        index = self._uni.index
        source_mask = 0
        for a in sources:
            i = index.get(a)
            if i is not None:
                source_mask |= 1 << i
        target_mask = 0
        for b in targets:
            j = index.get(b)
            if j is not None:
                target_mask |= 1 << j
        return Relation._make(
            self._uni,
            (
                (row & target_mask) if source_mask >> i & 1 else 0
                for i, row in enumerate(self._rows)
            ),
        )

    def filter(self, predicate: Callable[[int, int], bool]) -> "Relation":
        """Pairs satisfying an arbitrary predicate."""
        index = self._uni.index
        rows = [0] * len(self._uni.elements)
        for a, b in self.pairs:
            if predicate(a, b):
                rows[index[a]] |= 1 << index[b]
        return Relation._make(self._uni, rows)

    def irreflexive_part(self) -> "Relation":
        """The relation with all ``(x, x)`` pairs removed."""
        return Relation._make(
            self._uni, [row & ~(1 << i) for i, row in enumerate(self._rows)]
        )

    # ------------------------------------------------------------------
    # Predicates used by the models' axioms
    # ------------------------------------------------------------------

    def is_irreflexive(self) -> bool:
        """``irreflexive(r)``: no ``(x, x)`` pair."""
        return not any(row >> i & 1 for i, row in enumerate(self._rows))

    def is_acyclic(self) -> bool:
        """``acyclic(r)``: the transitive closure is irreflexive.

        Warshall over bitmask rows with an early exit the moment any
        element reaches itself -- this is the single hottest predicate in
        enumeration loops, so the verdict is cached on the instance and
        interned globally by (universe, rows).
        """
        if self._acyclic is None:
            self._acyclic = acyclic_rows_cached(self._uni, self._rows)
        return self._acyclic

    def is_transitive(self) -> bool:
        return self._closure_rows() == list(self._rows)

    def is_symmetric(self) -> bool:
        return self._rows == self.inverse()._rows

    def is_partial_equivalence(self) -> bool:
        """Symmetric and transitive (the well-formedness condition on
        ``stxn`` from §3.1)."""
        if not self.is_symmetric():
            return False
        composed = self.compose(self)
        return all(c & ~r == 0 for c, r in zip(composed._rows, self._rows))

    def is_strict_total_order_on(self, elements: Iterable[int]) -> bool:
        """Strict total order over ``elements`` (used for per-thread po and
        per-location co, §2.1)."""
        elems = sorted(frozenset(elements))
        for i, a in enumerate(elems):
            if (a, a) in self:
                return False
            for b in elems[i + 1 :]:
                forward = (a, b) in self
                backward = (b, a) in self
                if forward == backward:
                    return False
        members = frozenset(elems)
        return self.restrict(members, members).is_acyclic()

    def equivalence_classes(self) -> list[frozenset[int]]:
        """Connected classes of a partial equivalence relation, sorted by
        minimum element."""
        remaining = set(self.field())
        classes: list[frozenset[int]] = []
        while remaining:
            seed = min(remaining)
            cls = {seed}
            frontier = [seed]
            while frontier:
                node = frontier.pop()
                for nxt in self.successors(node) | self.predecessors(node):
                    if nxt not in cls:
                        cls.add(nxt)
                        frontier.append(nxt)
            classes.append(frozenset(cls))
            remaining -= cls
        return classes

    def cycle_witness(self) -> list[int] | None:
        """Return one cycle (as a list of nodes) if the relation has one.

        Used for diagnostics: axiom violations are reported with the cycle
        that witnesses them.
        """
        succ: dict[int, list[int]] = {}
        for a, b in sorted(self.pairs):
            if a == b:
                return [a]
            succ.setdefault(a, []).append(b)
        colour: dict[int, int] = {}
        parent: dict[int, int] = {}

        for start in succ:
            if colour.get(start, 0) != 0:
                continue
            stack: list[tuple[int, int]] = [(start, 0)]
            colour[start] = 1
            while stack:
                node, index = stack[-1]
                children = succ.get(node, ())
                if index < len(children):
                    stack[-1] = (node, index + 1)
                    child = children[index]
                    state = colour.get(child, 0)
                    if state == 1:
                        cycle = [child, node]
                        cur = node
                        while cur != child:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.pop()
                        cycle.reverse()
                        return cycle
                    if state == 0:
                        colour[child] = 1
                        parent[child] = node
                        stack.append((child, 0))
                else:
                    colour[node] = 2
                    stack.pop()
        return None
