"""Finite binary relations over event identifiers.

Every axiomatic memory model in the paper is phrased as constraints over
binary relations between events (``po``, ``rf``, ``co``, ``hb``, ...).
This module provides the :class:`Relation` value type those constraints
are computed with.

A :class:`Relation` is an immutable set of ``(int, int)`` pairs together
with an explicit *universe* of event identifiers.  The universe is needed
so that complements (``~r``), identity restrictions, and "all pairs"
constructions are well defined -- the paper's models use complements such
as ``¬ stxn`` (Figs. 5, 6, 8), which only make sense relative to the set
of events of the execution under consideration.

Executions in this reproduction are small (≤ ~14 events), so the
implementation favours clarity over asymptotic cleverness; the only
performance-sensitive consumers are the enumeration loops, which mainly
rely on cheap construction and on :meth:`Relation.is_acyclic`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

Pair = tuple[int, int]


class Relation:
    """An immutable binary relation over a finite universe of ints."""

    __slots__ = ("_pairs", "_universe", "_hash")

    def __init__(self, pairs: Iterable[Pair] = (), universe: Iterable[int] = ()):
        pair_set = frozenset((int(a), int(b)) for a, b in pairs)
        uni = frozenset(int(u) for u in universe)
        for a, b in pair_set:
            if a not in uni or b not in uni:
                uni = uni | {a, b}
        self._pairs = pair_set
        self._universe = uni
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def pairs(self) -> frozenset[Pair]:
        """The set of pairs in the relation."""
        return self._pairs

    @property
    def universe(self) -> frozenset[int]:
        """The universe the relation (and its complement) ranges over."""
        return self._universe

    def domain(self) -> frozenset[int]:
        """Elements appearing as the source of some pair."""
        return frozenset(a for a, _ in self._pairs)

    def range(self) -> frozenset[int]:
        """Elements appearing as the target of some pair."""
        return frozenset(b for _, b in self._pairs)

    def field(self) -> frozenset[int]:
        """Elements appearing in some pair, as source or target."""
        return self.domain() | self.range()

    def successors(self, a: int) -> frozenset[int]:
        """All ``b`` with ``(a, b)`` in the relation."""
        return frozenset(y for x, y in self._pairs if x == a)

    def predecessors(self, b: int) -> frozenset[int]:
        """All ``a`` with ``(a, b)`` in the relation."""
        return frozenset(x for x, y in self._pairs if y == b)

    def is_empty(self) -> bool:
        return not self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(sorted(self._pairs))

    def __contains__(self, pair: object) -> bool:
        return pair in self._pairs

    def __bool__(self) -> bool:
        return bool(self._pairs)

    # ------------------------------------------------------------------
    # Equality / hashing / printing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._pairs)
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(f"({a},{b})" for a, b in sorted(self._pairs))
        return f"Relation({{{body}}})"

    # ------------------------------------------------------------------
    # Derived constructors
    # ------------------------------------------------------------------

    def _with(self, pairs: Iterable[Pair], universe: frozenset[int]) -> "Relation":
        rel = Relation.__new__(Relation)
        rel._pairs = frozenset(pairs)
        rel._universe = universe
        rel._hash = None
        return rel

    @staticmethod
    def empty(universe: Iterable[int] = ()) -> "Relation":
        """The empty relation over ``universe``."""
        return Relation((), universe)

    @staticmethod
    def identity(universe: Iterable[int]) -> "Relation":
        """The identity relation over ``universe``."""
        uni = frozenset(universe)
        return Relation(((u, u) for u in uni), uni)

    @staticmethod
    def full(universe: Iterable[int]) -> "Relation":
        """The complete relation ``universe × universe``."""
        uni = frozenset(universe)
        return Relation(((a, b) for a in uni for b in uni), uni)

    @staticmethod
    def from_set(elements: Iterable[int], universe: Iterable[int] = ()) -> "Relation":
        """Lift a set to a relation: ``[s] = {(x, x) | x ∈ s}`` (§2.1)."""
        elems = frozenset(elements)
        return Relation(((e, e) for e in elems), frozenset(universe) | elems)

    @staticmethod
    def cross(
        lhs: Iterable[int], rhs: Iterable[int], universe: Iterable[int] = ()
    ) -> "Relation":
        """The Cartesian product ``lhs × rhs`` (e.g. ``W × R`` in Fig. 6)."""
        left = frozenset(lhs)
        right = frozenset(rhs)
        uni = frozenset(universe) | left | right
        return Relation(((a, b) for a in left for b in right), uni)

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------

    def _merged_universe(self, other: "Relation") -> frozenset[int]:
        if self._universe == other._universe:
            return self._universe
        return self._universe | other._universe

    def __or__(self, other: "Relation") -> "Relation":
        """Union."""
        return self._with(self._pairs | other._pairs, self._merged_universe(other))

    def __and__(self, other: "Relation") -> "Relation":
        """Intersection."""
        return self._with(self._pairs & other._pairs, self._merged_universe(other))

    def __sub__(self, other: "Relation") -> "Relation":
        """Difference."""
        return self._with(self._pairs - other._pairs, self._merged_universe(other))

    def __invert__(self) -> "Relation":
        """Complement with respect to ``universe × universe`` (written ¬r)."""
        uni = self._universe
        missing = [(a, b) for a in uni for b in uni if (a, b) not in self._pairs]
        return self._with(missing, uni)

    # ------------------------------------------------------------------
    # Relational operators from §2.1
    # ------------------------------------------------------------------

    def inverse(self) -> "Relation":
        """``r⁻¹``."""
        return self._with(((b, a) for a, b in self._pairs), self._universe)

    def compose(self, other: "Relation") -> "Relation":
        """Relational composition ``r₁ ; r₂`` (§2.1)."""
        by_source: dict[int, list[int]] = {}
        for a, b in other._pairs:
            by_source.setdefault(a, []).append(b)
        out: set[Pair] = set()
        for a, mid in self._pairs:
            for c in by_source.get(mid, ()):
                out.add((a, c))
        return self._with(out, self._merged_universe(other))

    def __rshift__(self, other: "Relation") -> "Relation":
        """``r1 >> r2`` is composition ``r1 ; r2`` -- reads left to right."""
        return self.compose(other)

    def optional(self) -> "Relation":
        """Reflexive closure ``r?``: ``r ∪ id`` over the universe."""
        return self._with(
            self._pairs | {(u, u) for u in self._universe}, self._universe
        )

    def transitive_closure(self) -> "Relation":
        """Transitive closure ``r⁺`` (Floyd–Warshall style on small graphs)."""
        succ: dict[int, set[int]] = {}
        for a, b in self._pairs:
            succ.setdefault(a, set()).add(b)
        # Iterate to a fixpoint; universes are tiny so this is cheap.
        closed: dict[int, set[int]] = {a: set(bs) for a, bs in succ.items()}
        changed = True
        while changed:
            changed = False
            for a, bs in closed.items():
                new = set()
                for b in bs:
                    new |= closed.get(b, frozenset())
                if not new <= bs:
                    bs |= new
                    changed = True
        out = {(a, b) for a, bs in closed.items() for b in bs}
        return self._with(out, self._universe)

    def reflexive_transitive_closure(self) -> "Relation":
        """``r* = r⁺ ∪ id``."""
        return self.transitive_closure().optional()

    def restrict(self, sources: Iterable[int], targets: Iterable[int]) -> "Relation":
        """``[sources] ; r ; [targets]``."""
        src = frozenset(sources)
        tgt = frozenset(targets)
        return self._with(
            ((a, b) for a, b in self._pairs if a in src and b in tgt),
            self._universe,
        )

    def filter(self, predicate: Callable[[int, int], bool]) -> "Relation":
        """Pairs satisfying an arbitrary predicate."""
        return self._with(
            ((a, b) for a, b in self._pairs if predicate(a, b)), self._universe
        )

    def irreflexive_part(self) -> "Relation":
        """The relation with all ``(x, x)`` pairs removed."""
        return self._with(((a, b) for a, b in self._pairs if a != b), self._universe)

    # ------------------------------------------------------------------
    # Predicates used by the models' axioms
    # ------------------------------------------------------------------

    def is_irreflexive(self) -> bool:
        """``irreflexive(r)``: no ``(x, x)`` pair."""
        return all(a != b for a, b in self._pairs)

    def is_acyclic(self) -> bool:
        """``acyclic(r)``: the transitive closure is irreflexive.

        Implemented as an iterative cycle search (colour-marking DFS)
        rather than by materialising the closure, because this is the
        single hottest predicate in enumeration loops.
        """
        succ: dict[int, list[int]] = {}
        for a, b in self._pairs:
            if a == b:
                return False
            succ.setdefault(a, []).append(b)
        white, grey, black = 0, 1, 2
        colour: dict[int, int] = {}
        for start in succ:
            if colour.get(start, white) != white:
                continue
            stack: list[tuple[int, int]] = [(start, 0)]
            colour[start] = grey
            while stack:
                node, index = stack[-1]
                children = succ.get(node, ())
                if index < len(children):
                    stack[-1] = (node, index + 1)
                    child = children[index]
                    state = colour.get(child, white)
                    if state == grey:
                        return False
                    if state == white:
                        colour[child] = grey
                        stack.append((child, 0))
                else:
                    colour[node] = black
                    stack.pop()
        return True

    def is_transitive(self) -> bool:
        return self.transitive_closure() == self.irreflexive_part() | self

    def is_symmetric(self) -> bool:
        return all((b, a) in self._pairs for a, b in self._pairs)

    def is_partial_equivalence(self) -> bool:
        """Symmetric and transitive (the well-formedness condition on
        ``stxn`` from §3.1)."""
        if not self.is_symmetric():
            return False
        composed = self.compose(self)
        return composed.pairs <= self._pairs

    def is_strict_total_order_on(self, elements: Iterable[int]) -> bool:
        """Strict total order over ``elements`` (used for per-thread po and
        per-location co, §2.1)."""
        elems = sorted(frozenset(elements))
        for i, a in enumerate(elems):
            if (a, a) in self._pairs:
                return False
            for b in elems[i + 1 :]:
                forward = (a, b) in self._pairs
                backward = (b, a) in self._pairs
                if forward == backward:
                    return False
        return self.filter(lambda a, b: a in elems and b in elems).is_acyclic()

    def equivalence_classes(self) -> list[frozenset[int]]:
        """Connected classes of a partial equivalence relation, sorted by
        minimum element."""
        remaining = set(self.field())
        classes: list[frozenset[int]] = []
        while remaining:
            seed = min(remaining)
            cls = {seed}
            frontier = [seed]
            while frontier:
                node = frontier.pop()
                for nxt in self.successors(node) | self.predecessors(node):
                    if nxt not in cls:
                        cls.add(nxt)
                        frontier.append(nxt)
            classes.append(frozenset(cls))
            remaining -= cls
        return classes

    def cycle_witness(self) -> list[int] | None:
        """Return one cycle (as a list of nodes) if the relation has one.

        Used for diagnostics: axiom violations are reported with the cycle
        that witnesses them.
        """
        succ: dict[int, list[int]] = {}
        for a, b in self._pairs:
            if a == b:
                return [a]
            succ.setdefault(a, []).append(b)
        colour: dict[int, int] = {}
        parent: dict[int, int] = {}

        for start in succ:
            if colour.get(start, 0) != 0:
                continue
            stack: list[tuple[int, int]] = [(start, 0)]
            colour[start] = 1
            while stack:
                node, index = stack[-1]
                children = succ.get(node, ())
                if index < len(children):
                    stack[-1] = (node, index + 1)
                    child = children[index]
                    state = colour.get(child, 0)
                    if state == 1:
                        cycle = [child, node]
                        cur = node
                        while cur != child:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.pop()
                        cycle.reverse()
                        return cycle
                    if state == 0:
                        colour[child] = 1
                        parent[child] = node
                        stack.append((child, 0))
                else:
                    colour[node] = 2
                    stack.pop()
        return None
