"""Per-execution interning of derived relational values.

The models and the cat evaluator repeatedly ask one execution the same
questions: the identity relation over its events, the full relation, the
builtin environment mapping cat identifiers to sets/relations.  Before
this module each :class:`~repro.cat.eval.Evaluator` (one per
``axiom_thunks`` call, i.e. one per model per execution) rebuilt all of
them from scratch.

:class:`RelationContext` is created at most once per execution (it lives
in the execution's ``__dict__``, so sharing skeleton caches between
candidate executions also shares contexts' inputs) and memoises those
values, so derived relations are computed once per execution instead of
once per axiom.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..obs import REGISTRY
from .relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..events.execution import Execution


#: Cross-execution intern table for derived relations, keyed by their
#: true inputs (e.g. ``po`` by the interned universe and the thread
#: sequences).  Enumeration visits thousands of skeletons that share
#: thread shapes, location assignments, or transaction structures; the
#: intern table computes each distinct derived relation once globally.
_GLOBAL_STATIC: dict[tuple, object] = {}
_GLOBAL_STATIC_MAX = 1 << 18

_GI_LOOKUPS = REGISTRY.counter("relations.global_intern.lookups")
_GI_HITS = REGISTRY.counter("relations.global_intern.hits")
_GI_MISSES = REGISTRY.counter("relations.global_intern.misses")


def global_intern(key: tuple, compute: Callable[[], object]) -> object:
    """Memoise ``compute()`` under ``key`` across all executions.

    The key must capture every input the computed value depends on;
    values must be immutable.
    """
    _GI_LOOKUPS.inc()
    value = _GLOBAL_STATIC.get(key)
    if value is None:
        _GI_MISSES.inc()
        value = compute()
        if len(_GLOBAL_STATIC) >= _GLOBAL_STATIC_MAX:
            # Reset rather than stop caching: bounds memory while keeping
            # the table effective for the current workload.
            _GLOBAL_STATIC.clear()
        _GLOBAL_STATIC[key] = value
    else:
        _GI_HITS.inc()
    return value


_CTX_LOOKUPS = REGISTRY.counter("relations.context.lookups")
_CTX_HITS = REGISTRY.counter("relations.context.hits")
_CTX_MISSES = REGISTRY.counter("relations.context.misses")


class RelationContext:
    """Interned per-execution cache of derived relational values."""

    __slots__ = ("execution", "_cache")

    def __init__(self, execution: "Execution"):
        self.execution = execution
        self._cache: dict[str, object] = {}

    def __reduce__(self):
        # The cache may hold closures (cat builtin functions); pickle the
        # context empty and let it refill lazily.
        return (RelationContext, (self.execution,))

    @classmethod
    def of(cls, execution: "Execution") -> "RelationContext":
        """The (unique) context of an execution, created on first use."""
        ctx = execution.__dict__.get("_relation_context")
        if ctx is None:
            ctx = cls(execution)
            execution.__dict__["_relation_context"] = ctx
        return ctx

    def get(self, key: str, compute: Callable[[], object]) -> object:
        """Generic memo slot (used by models sharing work across axioms)."""
        _CTX_LOOKUPS.inc()
        cache = self._cache
        if key not in cache:
            _CTX_MISSES.inc()
            cache[key] = compute()
        else:
            _CTX_HITS.inc()
        return cache[key]

    # ------------------------------------------------------------------
    # Canonical relations over the execution's universe
    # ------------------------------------------------------------------

    @property
    def identity(self) -> Relation:
        rel = self._cache.get("identity")
        if rel is None:
            rel = Relation.identity(self.execution.eids)
            self._cache["identity"] = rel
        return rel

    @property
    def full(self) -> Relation:
        rel = self._cache.get("full")
        if rel is None:
            rel = Relation.full(self.execution.eids)
            self._cache["full"] = rel
        return rel

    # ------------------------------------------------------------------
    # The cat evaluator's builtin environment
    # ------------------------------------------------------------------

    def cat_environment(self) -> dict:
        """The builtin identifier environment for the cat evaluator.

        Computed once per execution; callers that mutate the environment
        (``let`` bindings) must copy it first.
        """
        env = self._cache.get("cat_env")
        if env is None:
            from ..cat.stdlib import build_environment

            env = build_environment(self.execution, self)
            self._cache["cat_env"] = env
        return env  # type: ignore[return-value]

    def cat_functions(self) -> dict:
        """The builtin function table for the cat evaluator."""
        functions = self._cache.get("cat_functions")
        if functions is None:
            from ..cat.stdlib import build_functions

            functions = build_functions(self.execution)
            self._cache["cat_functions"] = functions
        return functions  # type: ignore[return-value]
