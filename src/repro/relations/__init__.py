"""Relational algebra over finite event sets (§2.1 of the paper)."""

from .algebra import (
    acyclic,
    empty,
    inter_thread,
    intra_thread,
    irreflexive,
    stronglift,
    union_all,
    weaklift,
)
from .context import RelationContext
from .relation import Pair, Relation

__all__ = [
    "Pair",
    "Relation",
    "RelationContext",
    "acyclic",
    "empty",
    "inter_thread",
    "intra_thread",
    "irreflexive",
    "stronglift",
    "union_all",
    "weaklift",
]
