"""Derived relational operators used throughout the paper.

The two central constructions are the *lifting* operators of §3.3::

    weaklift(r, t)   = t ; (r \\ t) ; t
    stronglift(r, t) = t? ; (r \\ t) ; t?

If ``r`` relates events in different transactions, ``weaklift`` relates
every event of the first transaction to every event of the second; the
``stronglift`` version additionally keeps edges whose source and/or
target lie outside any transaction.  Cycles in these liftings are how the
paper axiomatises weak/strong isolation and transactional ordering.
"""

from __future__ import annotations

from .relation import Relation


def weaklift(rel: Relation, txn: Relation) -> Relation:
    """``weaklift(r, t) = t ; (r \\ t) ; t`` (§3.3)."""
    return txn.compose(rel - txn).compose(txn)


def stronglift(rel: Relation, txn: Relation) -> Relation:
    """``stronglift(r, t) = t? ; (r \\ t) ; t?`` (§3.3)."""
    txn_opt = txn.optional()
    return txn_opt.compose(rel - txn).compose(txn_opt)


def acyclic(rel: Relation) -> bool:
    """``acyclic(r)``: the axiom shape used by Order, TxnOrder, etc."""
    return rel.is_acyclic()


def irreflexive(rel: Relation) -> bool:
    """``irreflexive(r)``: the axiom shape used by Observation, HbCom."""
    return rel.is_irreflexive()


def empty(rel: Relation) -> bool:
    """``empty(r)``: the axiom shape used by RMWIsol, TxnCancelsRMW."""
    return rel.is_empty()


def union_all(rels: list[Relation], universe: frozenset[int]) -> Relation:
    """Union of a list of relations (empty list allowed)."""
    out = Relation.empty(universe)
    for rel in rels:
        out = out | rel
    return out


def intra_thread(rel: Relation, po: Relation) -> Relation:
    """``rⁱ = r ∩ (po ∪ po⁻¹)*`` -- restrict to same-thread pairs (§2.1)."""
    same_thread = (po | po.inverse()).reflexive_transitive_closure()
    return rel & same_thread


def inter_thread(rel: Relation, po: Relation) -> Relation:
    """``rᵉ = r \\ (po ∪ po⁻¹)*`` -- restrict to cross-thread pairs (§2.1)."""
    same_thread = (po | po.inverse()).reflexive_transitive_closure()
    return rel - same_thread
