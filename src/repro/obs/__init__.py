"""Observability: the process-global metrics registry and tracer.

Every instrumented layer (relations, cat, enumeration, sim, harness)
records into :data:`REGISTRY` and :data:`TRACER`.  The harness CLI dumps
both with :func:`stats_snapshot` / :func:`write_stats`; tests isolate
themselves with :func:`reset_observability`.

See ``docs/observability.md`` for the metric naming scheme and how to
read a stats dump.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import Counter, Gauge, MetricsRegistry, Timer, UniqueSet
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACER",
    "Timer",
    "Tracer",
    "UniqueSet",
    "reset_observability",
    "stats_snapshot",
    "write_stats",
]

#: The process-global registry all instrumented layers record into.
REGISTRY = MetricsRegistry()

#: The process-global tracer (per-thread span stacks).
TRACER = Tracer()


def stats_snapshot() -> dict:
    """Merged metrics + span trees, ready for ``json.dump``."""
    snapshot = REGISTRY.snapshot()
    cache_prefixes = (
        "relations.global_intern",
        "relations.context",
        "relations.acyclic_cache",
        "relations.closure_cache",
        "cat.compile_cache",
        "pipeline.checkpoint",
    )
    hit_rates = {}
    for prefix in cache_prefixes:
        rate = REGISTRY.hit_rate(prefix)
        if rate is not None:
            hit_rates[prefix] = rate
    return {
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "timers": snapshot["timers"],
        "uniques": snapshot["uniques"],
        "hit_rates": hit_rates,
        "spans": TRACER.snapshot(),
    }


def write_stats(path: str | Path) -> Path:
    """Write :func:`stats_snapshot` as JSON; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(stats_snapshot(), indent=2, sort_keys=True) + "\n")
    return path


def reset_observability() -> None:
    """Drop all recorded metrics and spans (test isolation)."""
    REGISTRY.reset()
    TRACER.reset()
