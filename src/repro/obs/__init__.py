"""Observability: the process-global metrics registry and tracer.

Every instrumented layer (relations, cat, enumeration, sim, harness)
records into :data:`REGISTRY` and :data:`TRACER`.  The harness CLI dumps
both with :func:`stats_snapshot` / :func:`write_stats`; tests isolate
themselves with :func:`reset_observability`.  The opt-in per-plan-node
profiler lives at :data:`PROFILER` (:mod:`repro.obs.profile`); span
forests export to Chrome trace JSON via
:func:`~repro.obs.trace_export.write_chrome_trace`; long runs leave a
JSONL event log via :class:`~repro.obs.runlog.RunLog`.

See ``docs/observability.md`` for the metric naming scheme and how to
read a stats dump.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    UniqueSet,
)
from .profile import PROFILER, PlanProfiler
from .runlog import RunLog, read_runlog
from .trace_export import chrome_trace_events, write_chrome_trace
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROFILER",
    "PlanProfiler",
    "REGISTRY",
    "RunLog",
    "Span",
    "TRACER",
    "Timer",
    "Tracer",
    "UniqueSet",
    "chrome_trace_events",
    "read_runlog",
    "reset_observability",
    "stats_snapshot",
    "write_chrome_trace",
    "write_stats",
]

#: The process-global registry all instrumented layers record into.
REGISTRY = MetricsRegistry()

#: The process-global tracer (per-thread span stacks).
TRACER = Tracer()


def stats_snapshot() -> dict:
    """Merged metrics + span trees, ready for ``json.dump``."""
    snapshot = REGISTRY.snapshot()
    cache_prefixes = (
        "relations.global_intern",
        "relations.context",
        "relations.acyclic_cache",
        "relations.closure_cache",
        "cat.compile_cache",
        "pipeline.checkpoint",
        "verdict_cache",
    )
    hit_rates = {}
    for prefix in cache_prefixes:
        rate = REGISTRY.hit_rate(prefix)
        if rate is not None:
            hit_rates[prefix] = rate
    out = {
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "timers": snapshot["timers"],
        "histograms": snapshot["histograms"],
        "uniques": snapshot["uniques"],
        "hit_rates": hit_rates,
        "spans": TRACER.snapshot(),
    }
    profile = PROFILER.snapshot()
    if profile["nodes"] or profile["plans"]:
        out["profile"] = profile
    return out


def write_stats(path: str | Path) -> Path:
    """Write :func:`stats_snapshot` as JSON; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(stats_snapshot(), indent=2, sort_keys=True) + "\n")
    return path


def reset_observability() -> None:
    """Drop all recorded metrics, spans and profile samples (test
    isolation)."""
    REGISTRY.reset()
    TRACER.reset()
    PROFILER.reset()
