"""Span-based tracing: where does a pipeline run spend its time?

A *span* is a named wall-clock interval with children: driver runs open
a root span (``table1:x86``), the synthesis they trigger opens a child
(``synthesis:x86``) with one grandchild per event bound, and every
pipeline batch opens a sibling (``pipeline.batch``).  The resulting
trees are part of the ``--stats`` JSON dump, giving per-stage wall-clock
structure that flat timers cannot (the same batch span may appear under
different drivers).

Spans nest per-thread: each thread has its own open-span stack, so a
span opened inside another on the same thread becomes its child, while
spans on other threads form their own roots.  Finished root spans are
collected on the tracer (lock-protected).

**Across processes** the story mirrors the metrics registry's
merge-on-join: a pool worker's finished root spans ride each job's
``flush_delta`` payload back to the parent (:meth:`Tracer.flush_roots`),
which :meth:`grafts <Tracer.graft>` them under its currently-open
``pipeline.batch`` span tagged with the worker's pid -- so the stats
dump and the Chrome-trace export (:mod:`repro.obs.trace_export`) show
where worker time goes, per process.

Span ``started`` timestamps come from :func:`time.monotonic`, which on
the platforms we run on (Linux ``CLOCK_MONOTONIC``) shares one epoch
across forked processes -- grafted worker spans therefore line up with
parent spans on a common timeline in trace exports.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class Span:
    """One named interval plus its children (closed spans only)."""

    __slots__ = ("name", "started", "elapsed", "children", "tags")

    def __init__(self, name: str, started: float):
        self.name = name
        self.started = started
        self.elapsed = 0.0
        self.children: list[Span] = []
        #: Optional string->scalar annotations (worker pid, job kind).
        self.tags: dict | None = None

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "started": self.started,
            "elapsed": self.elapsed,
            "children": [child.to_dict() for child in self.children],
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree from its :meth:`to_dict` form (tolerant of
        missing fields, so hand-edited or older dumps still load)."""
        span = cls(data.get("name", "?"), data.get("started", 0.0))
        span.elapsed = data.get("elapsed", 0.0)
        tags = data.get("tags")
        if tags:
            span.tags = dict(tags)
        span.children = [
            cls.from_dict(child) for child in data.get("children", ())
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} {self.elapsed:.3f}s ({len(self.children)} children)>"


class Tracer:
    """Collects per-thread span trees."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **tags) -> Iterator[Span]:
        """Open a span; it closes (and records its elapsed time) on exit.

        Exceptions propagate, but the span still closes -- a crashed
        batch's partial timing is exactly what post-mortem debugging
        wants to see.
        """
        stack = self._stack()
        span = Span(name, time.monotonic())
        if tags:
            span.tags = tags
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.elapsed = time.monotonic() - span.started
            stack.pop()
            if not stack:
                with self._lock:
                    self._roots.append(span)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def snapshot(self) -> list[dict]:
        """All finished root span trees, as JSON-serialisable dicts."""
        with self._lock:
            return [root.to_dict() for root in self._roots]

    def flush_roots(self) -> list[dict]:
        """Drain the finished root spans (and return them as dicts).

        Pool workers call this after each job so the parent can graft
        exactly the spans that job produced, once -- the span twin of
        :meth:`MetricsRegistry.flush_delta`.
        """
        with self._lock:
            roots = self._roots
            self._roots = []
        return [root.to_dict() for root in roots]

    def graft(self, span_dicts: list[dict], tags: dict | None = None) -> None:
        """Adopt serialised span trees (from a worker's flush) into this
        tracer: under the currently-open span on this thread when there
        is one, as new roots otherwise.  ``tags`` (e.g. the worker pid)
        are merged into each adopted root, where trace exports and the
        stats renderer read them.
        """
        spans = [Span.from_dict(data) for data in span_dicts]
        if tags:
            for span in spans:
                span.tags = {**(span.tags or {}), **tags}
        parent = self.current()
        if parent is not None:
            parent.children.extend(spans)
            return
        with self._lock:
            self._roots.extend(spans)

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
        self._local = threading.local()
