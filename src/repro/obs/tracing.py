"""Span-based tracing: where does a pipeline run spend its time?

A *span* is a named wall-clock interval with children: driver runs open
a root span (``table1:x86``), the synthesis they trigger opens a child
(``synthesis:x86``) with one grandchild per event bound, and every
pipeline batch opens a sibling (``pipeline.batch``).  The resulting
trees are part of the ``--stats`` JSON dump, giving per-stage wall-clock
structure that flat timers cannot (the same batch span may appear under
different drivers).

Spans nest per-thread: each thread has its own open-span stack, so a
span opened inside another on the same thread becomes its child, while
spans on other threads form their own roots.  Finished root spans are
collected on the tracer (lock-protected); worker *processes* do not
ship spans back -- their per-job costs surface through the pipeline's
timers instead.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class Span:
    """One named interval plus its children (closed spans only)."""

    __slots__ = ("name", "started", "elapsed", "children")

    def __init__(self, name: str, started: float):
        self.name = name
        self.started = started
        self.elapsed = 0.0
        self.children: list[Span] = []

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "elapsed": self.elapsed,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} {self.elapsed:.3f}s ({len(self.children)} children)>"


class Tracer:
    """Collects per-thread span trees."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a span; it closes (and records its elapsed time) on exit.

        Exceptions propagate, but the span still closes -- a crashed
        batch's partial timing is exactly what post-mortem debugging
        wants to see.
        """
        stack = self._stack()
        span = Span(name, time.monotonic())
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.elapsed = time.monotonic() - span.started
            stack.pop()
            if not stack:
                with self._lock:
                    self._roots.append(span)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def snapshot(self) -> list[dict]:
        """All finished root span trees, as JSON-serialisable dicts."""
        with self._lock:
            return [root.to_dict() for root in self._roots]

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
        self._local = threading.local()
