"""Chrome trace-event export: span forests as Perfetto-loadable JSON.

The tracer's span trees (:mod:`repro.obs.tracing`) already carry
everything a trace viewer needs -- names, start times, durations, and
(for spans grafted from pool workers) the owning pid.  This module
flattens a forest into the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and https://ui.perfetto.dev: one
complete ("X") event per span, grouped into per-process lanes by the
``pid`` tag, with a process-name metadata row per lane.

Timestamps are re-based to the earliest span in the forest, so traces
start at t=0 regardless of the machine's monotonic-clock epoch.  Spans
from forked workers share the parent's monotonic epoch (Linux
``CLOCK_MONOTONIC``), so worker lanes line up with the main lane on one
consistent timeline.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Lane label for spans with no pid tag (the driver process).
MAIN_LANE = "main"


def _earliest(spans: list[dict]) -> float:
    starts = [s.get("started", 0.0) for s in spans]
    for span in spans:
        child_min = _earliest(span.get("children", ()))
        if child_min is not None:
            starts.append(child_min)
    return min(starts) if starts else None


def chrome_trace_events(spans: list[dict], main_pid: int = 0) -> list[dict]:
    """Flatten a span forest (``Tracer.snapshot()`` dicts) into Chrome
    trace events.  Spans inherit their lane (pid) from the nearest
    tagged ancestor; untagged trees land in the ``main_pid`` lane."""
    base = _earliest(spans) or 0.0
    events: list[dict] = []
    lanes: set[int] = set()

    def walk(span: dict, pid: int) -> None:
        tags = dict(span.get("tags") or {})
        pid = int(tags.pop("pid", pid))
        lanes.add(pid)
        event = {
            "name": span.get("name", "?"),
            "ph": "X",
            "ts": round((span.get("started", base) - base) * 1e6),
            "dur": round(span.get("elapsed", 0.0) * 1e6),
            "pid": pid,
            "tid": 1,
        }
        if tags:
            event["args"] = tags
        events.append(event)
        for child in span.get("children", ()):
            walk(child, pid)

    for span in spans:
        walk(span, main_pid)

    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {
                "name": MAIN_LANE if pid == main_pid else f"worker-{pid}"
            },
        }
        for pid in sorted(lanes)
    ]
    return metadata + events


def write_chrome_trace(
    path: str | Path,
    spans: list[dict] | None = None,
    main_pid: int | None = None,
) -> Path:
    """Write the span forest (default: the process-global tracer's) as a
    Chrome trace JSON file; returns the written path."""
    if spans is None:
        from . import TRACER

        spans = TRACER.snapshot()
    if main_pid is None:
        main_pid = os.getpid()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(spans, main_pid),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


def trace_pid_lanes(events: list[dict]) -> dict[int, list[dict]]:
    """Group a trace's "X" events by pid lane (test/analysis helper)."""
    lanes: dict[int, list[dict]] = {}
    for event in events:
        if event.get("ph") == "X":
            lanes.setdefault(event["pid"], []).append(event)
    return lanes
