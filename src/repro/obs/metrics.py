"""Zero-dependency metrics registry: counters, timers, gauges.

The pipeline, the relation engine, the cat evaluator, and the candidate
enumerator all record into one process-global :data:`REGISTRY` (exposed
via :mod:`repro.obs`).  Five metric kinds cover every call site:

* **counters** -- monotone event counts (cache hits/misses, candidates
  examined, retries);
* **timers** -- accumulated durations with call counts and maxima
  (per-job wall time, queue wait, per-bound synthesis time);
* **gauges** -- last-written values (worker count, utilization);
* **histograms** -- log2-bucketed duration distributions with
  p50/p90/p99 (per-job wall time, queue wait, fuzz per-case time);
* **unique-sets** -- distinct-key counts (fuzz coverage).

Concurrency model.  Within a process, every mutation takes the owning
registry's lock, so concurrent threads never corrupt a metric.  Across
processes the registry is **per-process accumulated and merged on
join**: each :mod:`multiprocessing` pool worker records into its own
(freshly reset) registry, ships incremental :meth:`~MetricsRegistry.
flush_delta` snapshots back with its results, and the parent
:meth:`~MetricsRegistry.merge`\\ s them in -- no shared memory, no
cross-process locks.

Snapshots are plain dicts of JSON-serialisable scalars, so a merged
snapshot dumps directly to the ``repro-harness ... --stats`` JSON file.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Iterator


class Counter:
    """A monotone event counter.

    ``inc`` is deliberately lock-free: counters sit on hot cache-lookup
    paths (millions of calls per synthesis run) where a lock acquisition
    per increment costs more than the guarded work.  Under the GIL the
    read-add-store can lose an increment only across a thread switch --
    an acceptable error for statistics -- and the cross-*process* story
    is per-process accumulation + merge-on-join, which needs no lock
    here either.  Snapshot/merge/reset take the registry lock.
    """

    __slots__ = ("name", "_value")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._value = 0

    def inc(self, n: int = 1) -> None:
        self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Timer:
    """Accumulated durations: total seconds, observation count, maximum."""

    __slots__ = ("name", "_lock", "count", "total", "max")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            if seconds > self.max:
                self.max = seconds

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.monotonic()
        try:
            yield
        finally:
            self.observe(time.monotonic() - start)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


#: Bucket-exponent clamp: 2**-30 s (~1 ns) .. 2**10 s (~17 min) spans
#: every duration the harness measures; out-of-range observations land
#: in the edge buckets.
_BUCKET_MIN = -30
_BUCKET_MAX = 10


def _bucket_of(seconds: float) -> int:
    """``floor(log2(seconds))``, clamped, via exact frexp arithmetic."""
    if seconds <= 0.0:
        return _BUCKET_MIN
    exponent = math.frexp(seconds)[1] - 1  # 2**e <= seconds < 2**(e+1)
    if exponent < _BUCKET_MIN:
        return _BUCKET_MIN
    if exponent > _BUCKET_MAX:
        return _BUCKET_MAX
    return exponent


def _bucket_quantile(buckets: dict[int, int], count: int, q: float) -> float:
    """The upper edge (seconds) of the bucket holding the q-quantile."""
    if count <= 0:
        return 0.0
    rank = max(1, math.ceil(q * count))
    cumulative = 0
    for exponent in sorted(buckets):
        cumulative += buckets[exponent]
        if cumulative >= rank:
            return 2.0 ** (exponent + 1)
    return 2.0 ** (_BUCKET_MAX + 1)  # pragma: no cover - counts disagree


class Histogram:
    """A log2-bucketed duration distribution.

    An observation of ``s`` seconds lands in bucket ``floor(log2(s))``
    (clamped to ``[-30, 10]``).  Bucket counts are monotone counters, so
    the cross-process story is the same per-bucket differencing and
    summation as timers: merging a worker's flush deltas reproduces its
    snapshot exactly, at any batch boundary.  Percentiles read off the
    holding bucket's upper edge (``2**(i+1)`` seconds) -- within a
    factor of two of the true value, which is the resolution
    tail-latency questions need, at O(1) memory per metric.
    """

    __slots__ = ("name", "_lock", "count", "total", "max", "buckets")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.buckets: dict[int, int] = {}

    def observe(self, seconds: float) -> None:
        bucket = _bucket_of(seconds)
        with self._lock:
            self.count += 1
            self.total += seconds
            if seconds > self.max:
                self.max = seconds
            self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.monotonic()
        try:
            yield
        finally:
            self.observe(time.monotonic() - start)

    def quantile(self, q: float) -> float:
        """The value at or below which a fraction ``q`` of observations
        fall (bucket upper-edge estimate)."""
        with self._lock:
            return _bucket_quantile(self.buckets, self.count, q)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """Snapshot entry: accumulators, buckets (string keys so the
        dict JSON-dumps), and headline percentiles."""
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "buckets": {str(e): n for e, n in sorted(self.buckets.items())},
            "p50": _bucket_quantile(self.buckets, self.count, 0.50),
            "p90": _bucket_quantile(self.buckets, self.count, 0.90),
            "p99": _bucket_quantile(self.buckets, self.count, 0.99),
        }


class UniqueSet:
    """A distinct-key counter: its value is how many different string
    keys have been added.

    The fuzzer's coverage guidance records *distinct* observations
    (constraint-plan verdict patterns, axiom-violation sets) rather than
    event counts, so a plain :class:`Counter` cannot represent it.  Keys
    are strings so snapshots stay JSON-serialisable; pool workers ship
    the keys added since the last flush and the parent unions them in.
    """

    __slots__ = ("name", "_lock", "_keys", "_unflushed")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self._keys: set[str] = set()
        self._unflushed: set[str] = set()

    def add(self, key: str) -> bool:
        """Record one key; returns True when it was not seen before."""
        with self._lock:
            if key in self._keys:
                return False
            self._keys.add(key)
            self._unflushed.add(key)
            return True

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    @property
    def value(self) -> int:
        return len(self._keys)


class MetricsRegistry:
    """A named collection of counters, timers, gauges, and unique-sets.

    Metric objects are created on first use and live for the registry's
    lifetime, so hot paths can bind them once (``C = REGISTRY.counter(
    "x")``) and pay only the increment afterwards.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}
        self._uniques: dict[str, UniqueSet] = {}
        # Baseline for flush_delta: the snapshot state already reported.
        self._flushed: dict = _empty_snapshot()

    # -- metric access ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name, self._lock)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name, self._lock)
            return metric

    def timer(self, name: str) -> Timer:
        with self._lock:
            metric = self._timers.get(name)
            if metric is None:
                metric = self._timers[name] = Timer(name, self._lock)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, self._lock)
            return metric

    def unique(self, name: str) -> UniqueSet:
        with self._lock:
            metric = self._uniques.get(name)
            if metric is None:
                metric = self._uniques[name] = UniqueSet(name, self._lock)
            return metric

    # -- convenience wrappers --------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, seconds: float) -> None:
        self.timer(name).observe(seconds)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        with self.timer(name).time():
            yield

    # -- snapshots, deltas, merging --------------------------------------

    def snapshot(self) -> dict:
        """The registry as a JSON-serialisable dict."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {name: g.value for name, g in self._gauges.items()},
                "timers": {
                    name: {"count": t.count, "total": t.total, "max": t.max}
                    for name, t in self._timers.items()
                },
                "histograms": {
                    name: h.to_dict() for name, h in self._histograms.items()
                },
                "uniques": {
                    name: u.value for name, u in self._uniques.items()
                },
            }

    def flush_delta(self) -> dict:
        """The snapshot delta since the previous flush (and mark it flushed).

        Pool workers call this after each job so the parent process can
        merge exactly the metrics that job produced, once.
        """
        with self._lock:
            current = self.snapshot()
            delta = _snapshot_difference(current, self._flushed)
            self._flushed = current
            unique_keys = {}
            for name, metric in self._uniques.items():
                if metric._unflushed:
                    unique_keys[name] = sorted(metric._unflushed)
                    metric._unflushed = set()
            if unique_keys:
                delta["unique_keys"] = unique_keys
            return delta

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot (or delta) into this one.

        Counters and timer count/total accumulate; timer maxima take the
        larger side; gauges take the incoming value (last write wins).
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counter(name).inc(value)
            for name, value in snapshot.get("gauges", {}).items():
                self.gauge(name).set(value)
            for name, stats in snapshot.get("timers", {}).items():
                timer = self.timer(name)
                timer.count += stats.get("count", 0)
                timer.total += stats.get("total", 0.0)
                timer.max = max(timer.max, stats.get("max", 0.0))
            for name, stats in snapshot.get("histograms", {}).items():
                histogram = self.histogram(name)
                histogram.count += stats.get("count", 0)
                histogram.total += stats.get("total", 0.0)
                histogram.max = max(histogram.max, stats.get("max", 0.0))
                for exponent, n in stats.get("buckets", {}).items():
                    exponent = int(exponent)
                    histogram.buckets[exponent] = (
                        histogram.buckets.get(exponent, 0) + n
                    )
            # Unique-sets merge by key (shipped in flush deltas); the
            # "uniques" counts in a plain snapshot carry no keys, so
            # they cannot be merged and are informational only.
            for name, keys in snapshot.get("unique_keys", {}).items():
                metric = self.unique(name)
                for key in keys:
                    metric.add(key)

    def reset(self) -> None:
        """Zero all metrics and the flush baseline (fresh worker state).

        Metric *objects* survive the reset: hot paths bind them once at
        module import (``C = REGISTRY.counter("x")``), so clearing the
        dicts would orphan those references -- their increments would
        keep landing on objects no snapshot ever reads.
        """
        with self._lock:
            for counter in self._counters.values():
                counter._value = 0
            for gauge in self._gauges.values():
                gauge._value = 0.0
            for timer in self._timers.values():
                timer.count = 0
                timer.total = 0.0
                timer.max = 0.0
            for histogram in self._histograms.values():
                histogram.count = 0
                histogram.total = 0.0
                histogram.max = 0.0
                histogram.buckets.clear()
            for unique in self._uniques.values():
                unique._keys = set()
                unique._unflushed = set()
            self._flushed = _empty_snapshot()

    def hit_rate(self, prefix: str) -> float | None:
        """``hits / lookups`` for a cache instrumented under ``prefix``
        (``{prefix}.hits`` / ``{prefix}.lookups``), or None if unused."""
        with self._lock:
            hits = self._counters.get(f"{prefix}.hits")
            lookups = self._counters.get(f"{prefix}.lookups")
            if lookups is None or lookups.value == 0:
                return None
            return (hits.value if hits else 0) / lookups.value


def _empty_snapshot() -> dict:
    return {"counters": {}, "gauges": {}, "timers": {}, "histograms": {}}


def _snapshot_difference(current: dict, baseline: dict) -> dict:
    """``current - baseline`` for the accumulating fields; gauges pass
    through as-is (they are last-value, not cumulative)."""
    base_counters = baseline.get("counters", {})
    base_timers = baseline.get("timers", {})
    counters = {
        name: value - base_counters.get(name, 0)
        for name, value in current["counters"].items()
        if value != base_counters.get(name, 0)
    }
    timers = {}
    for name, stats in current["timers"].items():
        base = base_timers.get(name, {"count": 0, "total": 0.0, "max": 0.0})
        if stats["count"] != base["count"]:
            timers[name] = {
                "count": stats["count"] - base["count"],
                "total": stats["total"] - base["total"],
                # Maxima do not difference; report the current maximum
                # (merge takes the larger side, so this is safe).
                "max": stats["max"],
            }
    base_hists = baseline.get("histograms", {})
    histograms = {}
    for name, stats in current.get("histograms", {}).items():
        base = base_hists.get(name, {"count": 0, "total": 0.0, "buckets": {}})
        if stats["count"] != base["count"]:
            base_buckets = base.get("buckets", {})
            histograms[name] = {
                "count": stats["count"] - base["count"],
                "total": stats["total"] - base["total"],
                "max": stats["max"],
                "buckets": {
                    exponent: n - base_buckets.get(exponent, 0)
                    for exponent, n in stats["buckets"].items()
                    if n != base_buckets.get(exponent, 0)
                },
            }
    return {
        "counters": counters,
        "gauges": dict(current["gauges"]),
        "timers": timers,
        "histograms": histograms,
    }
