"""JSONL run-event log: what happened, when, at what rate.

Checkpoints (:mod:`repro.harness.checkpoint`) record *results*; the run
log records *progress*: one JSON line per event, wall-clock timestamped,
written next to the checkpoint file so a long campaign leaves a durable
operational record -- when the run started and with what configuration,
heartbeats with throughput and ETA while batches drain, and how it
ended.  ``tail -f`` on the log answers "is it still making progress and
when will it finish" without attaching a debugger to the run.

Event shape::

    {"ts": 1754650000.123, "type": "run.start", "workers": 2, ...}

``type`` namespaces follow the metric naming scheme: ``run.*`` from the
pipeline itself, ``driver.*`` from the experiment drivers, ``fuzz.*``
from the fuzzing engine.  Unknown fields are free-form -- the log is
for operators and scripts, not for resume logic (that is the
checkpoint's job, keyed by stable digests; this file is append-only
and never read back by the harness).
"""

from __future__ import annotations

import json
import time
from pathlib import Path


class RunLog:
    """An append-only JSONL event stream (opened lazily, flushed per
    event, torn-tail tolerant like the checkpoint store)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file = None

    def event(self, type: str, **fields) -> None:
        """Append one timestamped event (flushed immediately)."""
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a", encoding="utf-8")
            # A torn trailing line (crash mid-append) must not swallow
            # the next event too: start appends on a fresh line.
            if self._file.tell() > 0:
                with self.path.open("rb") as tail:
                    tail.seek(-1, 2)
                    if tail.read(1) != b"\n":
                        self._file.write("\n")
        record = {"ts": time.time(), "type": type}
        record.update(fields)
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def read_runlog(path: str | Path) -> list[dict]:
    """All well-formed events in a run log (torn lines dropped)."""
    events = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events
