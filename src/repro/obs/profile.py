"""Per-IR-plan-node cost profiler: which nodes does a model spend in?

The IR executor (:mod:`repro.ir.executor`) evaluates hash-consed term
DAGs; this profiler, when enabled, attributes wall time to individual
plan nodes keyed by ``(model, constraint, node uid)``, recording per
node:

* evaluation count and cumulative wall time (inclusive of children),
* *self* time (inclusive minus time spent evaluating child nodes --
  the number that actually ranks hot nodes, since a root's inclusive
  time is always the whole constraint),
* result-row cardinality (bits set in the produced rows/mask), and
* memo hits (evaluations answered from the per-execution cache).

Profiling is **off by default** and costs one ``PROFILER.enabled``
attribute check per node evaluation when off.  Enable it with
``--profile`` on the harness commands or ``REPRO_PROFILE=1`` in the
environment (the older ``REPRO_IR_PROFILE`` is honoured as an alias).
While enabled the executor takes the interpretive path instead of the
compiled runners, so the profiler sees every node -- profiled runs are
slower *and more instrumentable* by design.

Outputs:

* :meth:`PlanProfiler.hot_table` -- the top-N nodes by self time;
* :meth:`PlanProfiler.dot` -- a Graphviz rendering of one plan's
  constraint DAGs annotated with observed cost;
* :meth:`PlanProfiler.calibration` -- per model, the planner's static
  cheapest-first schedule against observed per-constraint cost, with
  out-of-order pairs flagged (the check that keeps
  :mod:`repro.ir.plan`'s cost model honest).

Cross-process: pool workers drain their samples with
:meth:`flush_delta` into each job's result payload; the parent
:meth:`merges <PlanProfiler.merge>` them.  Node uids are deterministic
(terms are hash-consed in import order), so samples from forked or
spawned workers key to the same nodes; labels ride along as a guard for
human consumption either way.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..ir.plan import Plan
    from ..ir.terms import Term

#: Stats-list slots for one (model, constraint, uid) key.
_COUNT, _SECONDS, _SELF, _ROWS, _HITS = range(5)

#: Context used for node evaluations outside any constraint check
#: (direct ``ir.evaluate`` calls, term materialisation in tests).
_NO_CONSTRAINT = ("-", "-")


def term_label(t: "Term") -> str:
    """A short, deterministic label for a term node (leaves spell their
    base name; inner nodes their operator)."""
    if t.op in ("base", "set"):
        return f"{t.args[0]}#{t.uid}"
    if t.op == "var":
        return f"var{t.args[0]}#{t.uid}"
    return f"{t.op}#{t.uid}"


def _cardinality(value) -> int:
    """Bits set in a produced value: pairs for relation rows, events for
    set masks."""
    if isinstance(value, int):
        return value.bit_count()
    if isinstance(value, tuple):
        total = 0
        for row in value:
            if isinstance(row, int):
                total += row.bit_count()
        return total
    return 0


def _env_enabled() -> bool:
    from .._env import env_str

    return bool(env_str("REPRO_PROFILE"))


class PlanProfiler:
    """Per-plan-node sample accumulator (process-global singleton at
    :data:`PROFILER`)."""

    def __init__(self) -> None:
        #: Read on the executor's hot path; everything else is cold.
        self.enabled = _env_enabled()
        self._lock = threading.Lock()
        self._local = threading.local()
        #: (model, constraint, uid) -> [count, seconds, self, rows, hits]
        self._stats: dict[tuple, list] = {}
        #: uid -> short label (for rendering; uids are deterministic).
        self._labels: dict[int, str] = {}
        #: model name -> noted schedule (for the calibration report).
        self._plans: dict[str, dict] = {}

    # -- control ----------------------------------------------------------

    def enable(self, on: bool = True) -> None:
        self.enabled = on

    def reset(self) -> None:
        """Drop all samples and return to the environment's default
        enablement (test isolation, via ``reset_observability``)."""
        with self._lock:
            self._stats.clear()
            self._labels.clear()
            self._plans.clear()
        self._local = threading.local()
        self.enabled = _env_enabled()

    # -- executor hooks ----------------------------------------------------

    def _frame(self):
        local = self._local
        key = getattr(local, "key", _NO_CONSTRAINT)
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
        return key, stack

    @contextmanager
    def constraint(self, model: str, name: str) -> Iterator[None]:
        """Attribute node evaluations inside the block to
        ``(model, name)``."""
        local = self._local
        previous = getattr(local, "key", _NO_CONSTRAINT)
        local.key = (model, name)
        try:
            yield
        finally:
            local.key = previous

    def begin(self) -> None:
        """A node evaluation starts: push a child-time accumulator."""
        _, stack = self._frame()
        stack.append(0.0)

    def end(self, t: "Term", elapsed: float, value) -> None:
        """A node evaluation finished: charge ``elapsed`` to the node
        (self time = elapsed minus children) and to the parent's
        child-time accumulator."""
        key, stack = self._frame()
        child_seconds = stack.pop() if stack else 0.0
        if stack:
            stack[-1] += elapsed
        skey = (key[0], key[1], t.uid)
        with self._lock:
            stat = self._stats.get(skey)
            if stat is None:
                stat = self._stats[skey] = [0, 0.0, 0.0, 0, 0]
                self._labels.setdefault(t.uid, term_label(t))
            stat[_COUNT] += 1
            stat[_SECONDS] += elapsed
            stat[_SELF] += max(0.0, elapsed - child_seconds)
            stat[_ROWS] += _cardinality(value)

    def abort(self, elapsed: float) -> None:
        """A node evaluation raised: drop its accumulator but still
        charge the time to the parent (a crashed child is time the
        parent spent)."""
        _, stack = self._frame()
        if stack:
            stack.pop()
        if stack:
            stack[-1] += elapsed

    def hit(self, t: "Term") -> None:
        """A node answered from the per-execution memo."""
        key, _ = self._frame()
        skey = (key[0], key[1], t.uid)
        with self._lock:
            stat = self._stats.get(skey)
            if stat is None:
                stat = self._stats[skey] = [0, 0.0, 0.0, 0, 0]
                self._labels.setdefault(t.uid, term_label(t))
            stat[_HITS] += 1

    def note_plan(self, plan: "Plan") -> None:
        """Record a plan's schedule (once per model name) so the
        calibration report can compare it against observed cost."""
        if plan.name in self._plans:
            return
        with self._lock:
            self._plans.setdefault(
                plan.name,
                {
                    "constraints": [
                        {
                            "name": c.name,
                            "kind": c.kind,
                            "cost": c.cost,
                            "uid": c.term.uid,
                        }
                        for c in plan.constraints
                    ],
                    "scheduled": [c.name for c in plan.scheduled],
                },
            )

    # -- cross-process merge ----------------------------------------------

    def flush_delta(self) -> dict | None:
        """Drain accumulated samples for shipping to a parent process
        (the profiler twin of ``MetricsRegistry.flush_delta``); ``None``
        when there is nothing to ship."""
        with self._lock:
            if not self._stats:
                return None
            nodes = [
                [model, constraint, uid, self._labels.get(uid, "?"), *stat]
                for (model, constraint, uid), stat in self._stats.items()
            ]
            self._stats = {}
        return {"nodes": nodes}

    def merge(self, delta: dict | None) -> None:
        """Fold a worker's :meth:`flush_delta` payload into this
        profiler."""
        if not delta:
            return
        with self._lock:
            for model, constraint, uid, label, *values in delta.get(
                "nodes", ()
            ):
                skey = (model, constraint, uid)
                stat = self._stats.get(skey)
                if stat is None:
                    stat = self._stats[skey] = [0, 0.0, 0.0, 0, 0]
                    self._labels.setdefault(uid, label)
                stat[_COUNT] += values[_COUNT]
                stat[_SECONDS] += values[_SECONDS]
                stat[_SELF] += values[_SELF]
                stat[_ROWS] += values[_ROWS]
                stat[_HITS] += values[_HITS]

    # -- reports -----------------------------------------------------------

    def snapshot(self) -> dict:
        """All samples + noted schedules, JSON-serialisable, hot first."""
        with self._lock:
            nodes = [
                {
                    "model": model,
                    "constraint": constraint,
                    "uid": uid,
                    "label": self._labels.get(uid, "?"),
                    "count": stat[_COUNT],
                    "seconds": stat[_SECONDS],
                    "self_seconds": stat[_SELF],
                    "rows": stat[_ROWS],
                    "hits": stat[_HITS],
                }
                for (model, constraint, uid), stat in self._stats.items()
            ]
            plans = {name: dict(plan) for name, plan in self._plans.items()}
        nodes.sort(
            key=lambda n: (-n["self_seconds"], -n["count"], n["uid"])
        )
        return {
            "nodes": nodes,
            "plans": plans,
            "calibration": self.calibration(),
        }

    def hot_nodes(self, limit: int = 20) -> list[dict]:
        return self.snapshot()["nodes"][:limit]

    def hot_table(self, limit: int = 20) -> str:
        """The top-``limit`` nodes by self time, as an aligned text
        table."""
        nodes = self.hot_nodes(limit)
        if not nodes:
            return "profile: no node samples recorded"
        header = (
            f"{'self-s':>9} {'total-s':>9} {'evals':>8} {'hits':>8} "
            f"{'rows':>10}  node"
        )
        lines = [header, "-" * len(header)]
        for n in nodes:
            where = f"{n['model']}/{n['constraint']}"
            lines.append(
                f"{n['self_seconds']:>9.4f} {n['seconds']:>9.4f} "
                f"{n['count']:>8} {n['hits']:>8} {n['rows']:>10}  "
                f"{n['label']} [{where}]"
            )
        return "\n".join(lines)

    def constraint_seconds(self) -> dict[tuple[str, str], float]:
        """Observed cost per (model, constraint): summed node self time
        (self times partition a constraint's wall time, so the sum does
        not double count shared subterms)."""
        totals: dict[tuple[str, str], float] = {}
        with self._lock:
            for (model, constraint, _uid), stat in self._stats.items():
                key = (model, constraint)
                totals[key] = totals.get(key, 0.0) + stat[_SELF]
        return totals

    def calibration(self) -> list[dict]:
        """Per noted plan: the static cheapest-first schedule against
        observed per-constraint seconds, flagging scheduled-earlier /
        observed-costlier pairs.  A flagged pair means the planner's
        syntactic cost model mis-ranked those constraints on this
        workload."""
        observed = self.constraint_seconds()
        reports = []
        for model in sorted(self._plans):
            plan = self._plans[model]
            scheduled = plan["scheduled"]
            seconds = {
                name: observed.get((model, name), 0.0) for name in scheduled
            }
            mismatches = [
                [earlier, later]
                for i, earlier in enumerate(scheduled)
                for later in scheduled[i + 1 :]
                if seconds[earlier] > seconds[later]
                and seconds[earlier] > 0.0
            ]
            reports.append(
                {
                    "model": model,
                    "scheduled": list(scheduled),
                    "observed_seconds": seconds,
                    "mismatches": mismatches,
                    "agrees": not mismatches,
                }
            )
        return reports

    def calibration_report(self) -> str:
        """The calibration as human-readable text."""
        reports = self.calibration()
        if not reports:
            return "calibration: no plans noted (nothing profiled)"
        lines = []
        for report in reports:
            verdict = (
                "schedule agrees with observed cost"
                if report["agrees"]
                else f"{len(report['mismatches'])} out-of-order pair(s)"
            )
            lines.append(f"{report['model']}: {verdict}")
            for name in report["scheduled"]:
                seconds = report["observed_seconds"][name]
                lines.append(f"  {seconds:>9.4f}s  {name}")
            for earlier, later in report["mismatches"]:
                lines.append(
                    f"  ! {earlier!r} scheduled before {later!r} "
                    f"but observed costlier"
                )
        return "\n".join(lines)

    def dot(self, plan: "Plan") -> str:
        """One plan's constraint term DAGs as Graphviz dot, each node
        annotated (and shaded) by its observed self time."""
        with self._lock:
            per_uid: dict[int, list] = {}
            for (model, _constraint, uid), stat in self._stats.items():
                if model != plan.name:
                    continue
                agg = per_uid.setdefault(uid, [0, 0.0, 0.0, 0, 0])
                for i, value in enumerate(stat):
                    agg[i] += value
        hottest = max(
            (agg[_SELF] for agg in per_uid.values()), default=0.0
        )
        lines = [
            f'digraph "{plan.name}" {{',
            "  rankdir=BT;",
            '  node [shape=box, style=filled, fillcolor="#ffffff", '
            'fontname="monospace"];',
        ]
        seen: set[int] = set()

        def emit(t: "Term") -> None:
            if t.uid in seen:
                return
            seen.add(t.uid)
            agg = per_uid.get(t.uid)
            label = term_label(t)
            if agg:
                label += (
                    f"\\n{agg[_SELF]:.4f}s self / {agg[_COUNT]} evals"
                    f"\\n{agg[_ROWS]} rows, {agg[_HITS]} hits"
                )
                heat = agg[_SELF] / hottest if hottest else 0.0
                # White (cold) to red (hot) by self-time share.
                channel = 255 - int(round(170 * heat))
                fill = f"#ff{channel:02x}{channel:02x}"
            else:
                fill = "#f0f0f0"
            lines.append(
                f'  n{t.uid} [label="{label}", fillcolor="{fill}"];'
            )
            for arg in t.args:
                if hasattr(arg, "uid") and hasattr(arg, "op"):
                    lines.append(f"  n{arg.uid} -> n{t.uid};")
                    emit(arg)

        for constraint in plan.constraints:
            lines.append(
                f'  c_{constraint.name.replace(" ", "_")} '
                f'[label="{constraint.kind} {constraint.name}", '
                'shape=ellipse, fillcolor="#e8f0fe"];'
            )
            lines.append(
                f"  n{constraint.term.uid} -> "
                f'c_{constraint.name.replace(" ", "_")};'
            )
            emit(constraint.term)
        lines.append("}")
        return "\n".join(lines)


#: The process-global profiler the IR executor's hooks consult.
PROFILER = PlanProfiler()
