"""The fuzzing engine: generate → evaluate → diagnose → shrink → record.

One :func:`run_fuzz` call is a deterministic function of its
:class:`FuzzConfig`: the generator and all probabilistic choices hang
off one ``random.Random(seed)``, cases are evaluated in fixed-size
batches through :class:`~repro.harness.pipeline.CheckPipeline` (whose
``map`` returns results in submission order even when fanned out), and
coverage/pool updates happen between batches in the parent only -- so
the corpus file is byte-identical for a given seed and budget, with any
worker count.

The loop:

1. generate a batch (fresh samples, or mutations of pooled
   "interesting" inputs once the pool is non-empty), plus each case's
   metamorphic axiom-drop choices;
2. evaluate every case through the full oracle matrix
   (:func:`~repro.fuzz.oracles.evaluate_case`), possibly in parallel;
3. diagnose disagreements; shrink each one to a minimal witness
   (sequentially, in the parent) and append it to the corpus;
4. fold verdict coverage into the :class:`~repro.fuzz.coverage.
   CoverageMap`; cases that reached new territory join the mutation
   pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

from .._env import env_int
from ..enumeration.config import get_config
from ..events import Execution
from ..harness.pipeline import CheckPipeline
from ..litmus.convert import execution_to_litmus
from ..litmus.format import write_litmus
from ..obs import REGISTRY
from .corpus import (
    CorpusWriter,
    execution_digest,
    execution_from_json,
    execution_to_json,
)
from .coverage import CoverageMap, record_ir_node_kinds
from .generator import sample_execution
from .mutate import mutate
from .oracles import (
    DIFF_MODELS,
    FuzzCase,
    case_has_discrepancy,
    diagnose,
    discrepancy_key,
    evaluate_case,
    model_axioms,
)
from .shrink import shrink

_DISCREPANCIES = REGISTRY.counter("fuzz.discrepancies")

#: Batch size between coverage updates.  A constant: making it depend
#: on the worker count would change generation order and break
#: byte-reproducibility across ``--workers`` settings.
_BATCH = 16

#: Mutation-pool knobs.
_POOL_LIMIT = 64
_MUTATE_PROBABILITY = 0.4
_META_PROBABILITY = 0.25


@dataclass(frozen=True)
class FuzzConfig:
    """Everything one reproducible fuzz run depends on."""

    arch: str = "x86"
    seed: int | None = None  # None → REPRO_SEED env (default 0)
    budget: int = 100
    max_events: int = 7
    min_events: int = 2
    shrink: bool = True
    corpus: str | None = "results/fuzz-corpus.jsonl"
    workers: int | None = None
    #: "diff" (oracle matrix only), "meta" (metamorphic only), "all".
    mode: str = "all"
    #: test-only injected mutation: (model name, dropped axiom names).
    mutant: tuple | None = None
    #: input corpus whose executions seed the mutation pool.
    seed_corpus: str | None = None
    sim_event_limit: int = 6
    #: JSONL checkpoint file for the pipeline (resume support).
    checkpoint: str | None = None
    #: cross-run verdict-cache directory.
    cache: str | None = None

    def resolved_seed(self) -> int:
        if self.seed is not None:
            return self.seed
        return env_int("REPRO_SEED", 0)


@dataclass
class FuzzReport:
    """What one run did -- printed by the CLI, asserted on by tests."""

    config: FuzzConfig
    cases: int = 0
    discrepancies: list = field(default_factory=list)
    corpus_records: int = 0
    coverage: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.discrepancies

    def render(self) -> str:
        lines = [
            f"fuzz: arch={self.config.arch} seed="
            f"{self.config.resolved_seed()} budget={self.config.budget} "
            f"mode={self.config.mode}",
            f"  cases evaluated : {self.cases}",
            f"  verdict patterns: {self.coverage.get('verdict_patterns', 0)}",
            f"  violation sets  : {self.coverage.get('violation_sets', 0)}",
            f"  structures      : {self.coverage.get('structures', 0)}",
            f"  ir node kinds   : {self.coverage.get('ir_node_kinds', 0)}",
            f"  discrepancies   : {len(self.discrepancies)}",
        ]
        for record in self.discrepancies:
            lines.append(
                f"    [{record['kind']}] {record['model']} "
                f"witness={record['digest'][:12]} "
                f"events={len(record['execution']['events'])}"
            )
        if self.config.corpus and self.corpus_records:
            lines.append(
                f"  corpus          : {self.corpus_records} record(s) -> "
                f"{self.config.corpus}"
            )
        return "\n".join(lines)


def _generate_case(
    rng: random.Random,
    config: FuzzConfig,
    enum_config,
    pool: list[Execution],
    axioms_by_model: dict[str, tuple[str, ...]],
    case_index: int,
) -> FuzzCase:
    execution = None
    if pool and rng.random() < _MUTATE_PROBABILITY:
        parent = rng.choice(pool)
        donor = rng.choice(pool) if len(pool) > 1 else None
        execution = mutate(rng, parent, enum_config, donor=donor)
    if execution is None:
        n = rng.randint(config.min_events, config.max_events)
        execution = sample_execution(rng, enum_config, n)
    meta_drops: dict[str, tuple[str, ...]] = {}
    if config.mode in ("meta", "all"):
        for name in DIFF_MODELS:
            if rng.random() < _META_PROBABILITY:
                axioms = axioms_by_model[name]
                count = rng.randint(1, max(1, len(axioms) - 1))
                meta_drops[name] = tuple(sorted(rng.sample(axioms, count)))
    return FuzzCase(
        execution=execution,
        arch=config.arch,
        meta_drops=meta_drops,
        mutant=config.mutant,
        check_sim=config.mode in ("diff", "all"),
        sim_event_limit=config.sim_event_limit,
    )


def _witness_record(
    config: FuzzConfig,
    case: FuzzCase,
    finding: dict,
    witness: Execution,
    original_digest: str,
    case_index: int,
) -> dict:
    record = {
        "digest": execution_digest(witness),
        "kind": finding["kind"],
        "model": finding["model"],
        "detail": finding["detail"],
        "arch": config.arch,
        "seed": config.resolved_seed(),
        "case": case_index,
        "original_digest": original_digest,
        "execution": execution_to_json(witness),
        "litmus": None,
    }
    try:
        test = execution_to_litmus(witness.replace(), name="witness")
        record["litmus"] = write_litmus(test.program)
    except ValueError:
        pass  # non-convertible witness; the execution field stands alone
    return record


def run_fuzz(config: FuzzConfig, pipeline: CheckPipeline | None = None) -> FuzzReport:
    """One deterministic fuzzing campaign; see the module docstring."""
    seed = config.resolved_seed()
    rng = random.Random(seed)
    enum_config = get_config(config.arch)
    axioms_by_model = {name: model_axioms(name) for name in DIFF_MODELS}
    coverage = CoverageMap()
    ir_kinds = record_ir_node_kinds()
    report = FuzzReport(config=config)

    pool: list[Execution] = []
    if config.seed_corpus:
        from .corpus import load_corpus

        for record in load_corpus(config.seed_corpus):
            if "execution" in record and len(pool) < _POOL_LIMIT:
                pool.append(execution_from_json(record["execution"]))

    own_pipeline = pipeline is None
    if own_pipeline:
        runlog = None
        if config.corpus:
            corpus_path = Path(config.corpus)
            runlog = corpus_path.with_name(
                corpus_path.stem + ".events.jsonl"
            )
        pipeline = CheckPipeline(
            workers=config.workers,
            runlog=runlog,
            checkpoint=config.checkpoint,
            cache=config.cache,
        )
    writer = CorpusWriter(config.corpus) if config.corpus else None
    pipeline.log_event(
        "fuzz.start",
        arch=config.arch,
        seed=seed,
        budget=config.budget,
        max_events=config.max_events,
        mode=config.mode,
        corpus=config.corpus,
    )
    try:

        def generate(start: int, count: int) -> list[FuzzCase]:
            return [
                _generate_case(
                    rng, config, enum_config, pool, axioms_by_model, start + i
                )
                for i in range(count)
            ]

        def fold(start: int, cases, results) -> None:
            for offset, (case, result) in enumerate(zip(cases, results)):
                case_index = start + offset
                findings = diagnose(case, result)
                for finding in findings:
                    _DISCREPANCIES.inc()
                    witness = case.execution
                    if config.shrink:
                        key = discrepancy_key(finding)
                        witness = shrink(
                            case.execution,
                            lambda x: case_has_discrepancy(
                                FuzzCase(
                                    execution=x,
                                    arch=case.arch,
                                    meta_drops=case.meta_drops,
                                    mutant=case.mutant,
                                    check_sim=case.check_sim,
                                    sim_event_limit=case.sim_event_limit,
                                ),
                                key,
                            ),
                            config=enum_config,
                        )
                    record = _witness_record(
                        config,
                        case,
                        finding,
                        witness,
                        execution_digest(case.execution),
                        case_index,
                    )
                    report.discrepancies.append(record)
                    if writer is not None:
                        writer.write(record)
                if coverage.observe(case.execution, result):
                    pool.append(case.execution)
                    if len(pool) > _POOL_LIMIT:
                        pool.pop(0)

        report.cases = pipeline.map_batched(
            evaluate_case, generate, config.budget, _BATCH, fold
        )
    finally:
        if writer is not None:
            report.corpus_records = writer.written
            writer.close()
        pipeline.log_event(
            "fuzz.end",
            cases=report.cases,
            discrepancies=len(report.discrepancies),
        )
        if own_pipeline:
            pipeline.close()
    report.coverage = {
        "verdict_patterns": coverage.verdict_pattern_count,
        "violation_sets": coverage.violation_set_count,
        "structures": coverage.structure_count,
        "ir_node_kinds": ir_kinds,
    }
    return report


def replay(corpus_path: str, digest: str) -> tuple[dict | None, list[dict]]:
    """Re-evaluate a corpus witness by digest (prefix accepted).

    Returns ``(record, findings)``; ``record`` is None when the digest
    is not in the corpus.  A still-disagreeing witness reproduces its
    findings; an empty list means the disagreement no longer occurs
    (e.g. after a fix).
    """
    from .corpus import find_record

    record = find_record(corpus_path, digest)
    if record is None:
        return None, []
    execution = execution_from_json(record["execution"])
    case = FuzzCase(
        execution=execution,
        arch=record.get("arch", "x86"),
        meta_drops={},
        mutant=None,
    )
    return record, diagnose(case, evaluate_case(case))
