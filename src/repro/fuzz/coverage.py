"""Coverage guidance: which verdict territory has the fuzzer visited?

Three signals, each recorded as a distinct-key metric
(:meth:`repro.obs.MetricsRegistry.unique`) so runs report them under
``--stats``:

* **verdict patterns** (``fuzz.coverage.verdict_patterns``) -- the
  tuple of per-model consistency verdicts across the six-model matrix.
  64 patterns are possible; most random executions land in a handful,
  so a new pattern is a strong "keep this input" signal.
* **axiom-violation sets** (``fuzz.coverage.violation_sets``) -- per
  model, the exact set of violated axioms.  Finer-grained than the
  verdict bit: two inconsistent executions violating different axioms
  exercise different constraint plans.
* **structure signatures** (``fuzz.coverage.structures``) -- the shape
  vocabulary exercised (event-kind/tag multiset, thread sizes,
  dependency/rmw/transaction counts), which tracks generator coverage
  independently of the models.

The plans' IR node kinds are recorded once per run
(``fuzz.coverage.ir_node_kinds``): every term op reachable from the six
scheduled plans, i.e. the IR surface the differential paths exercise.

:meth:`CoverageMap.observe` returns True when a case contributed any
new key; the engine adds such cases to the mutation pool.
"""

from __future__ import annotations

from ..events import Execution
from ..obs import REGISTRY
from .oracles import DIFF_MODELS, model_for

_NEW_PATTERNS = REGISTRY.counter("fuzz.coverage.new_verdict_patterns")
_NEW_VIOLATIONS = REGISTRY.counter("fuzz.coverage.new_violation_sets")
_NEW_STRUCTURES = REGISTRY.counter("fuzz.coverage.new_structures")


def structure_signature(execution: Execution) -> str:
    """A compact, stable shape key for one execution."""
    kinds = sorted(
        f"{e.kind}:{','.join(sorted(e.tags))}" for e in execution.events
    )
    sizes = sorted((len(seq) for seq in execution.threads), reverse=True)
    return "|".join(
        [
            ";".join(kinds),
            ",".join(map(str, sizes)),
            f"deps={len(execution.deps.pairs)}",
            f"rmw={len(execution.rmw.pairs)}",
            f"txns={len(execution.txn_classes)}",
            f"atomic={len(execution.atomic_txns)}",
        ]
    )


def record_ir_node_kinds() -> int:
    """Register every term op reachable from the six plans' schedules
    under ``fuzz.coverage.ir_node_kinds``; returns the distinct count."""
    metric = REGISTRY.unique("fuzz.coverage.ir_node_kinds")
    seen: set[int] = set()
    ops: set[str] = set()

    def walk(term) -> None:
        if term.uid in seen:
            return
        seen.add(term.uid)
        metric.add(term.op)
        ops.add(term.op)
        for arg in term.args:
            if hasattr(arg, "op"):
                walk(arg)
            elif isinstance(arg, tuple):
                for item in arg:
                    if hasattr(item, "op"):
                        walk(item)
        group = getattr(term, "group", None)
        if group is not None:
            for body in group.bodies:
                walk(body)

    for name in DIFF_MODELS:
        for constraint in model_for(name).plan().constraints:
            walk(constraint.term)
    return len(ops)


class CoverageMap:
    """Tracks visited verdict territory; feeds the mutation pool.

    Novelty decisions come from *run-local* sets -- the registry's
    distinct-key metrics are written through for ``--stats`` but never
    read, so a second run in the same process (tests, back-to-back CLI
    invocations) sees exactly the same novelty sequence as a fresh one.
    """

    def __init__(self) -> None:
        self._patterns: set[str] = set()
        self._violations: set[str] = set()
        self._structures: set[str] = set()
        self._metrics = {
            "patterns": REGISTRY.unique("fuzz.coverage.verdict_patterns"),
            "violations": REGISTRY.unique("fuzz.coverage.violation_sets"),
            "structures": REGISTRY.unique("fuzz.coverage.structures"),
        }

    @property
    def verdict_pattern_count(self) -> int:
        return len(self._patterns)

    @property
    def violation_set_count(self) -> int:
        return len(self._violations)

    @property
    def structure_count(self) -> int:
        return len(self._structures)

    def observe(self, execution: Execution, result: dict) -> bool:
        """Fold one evaluated case in; True when anything was new."""
        models = result["models"]
        pattern = ",".join(
            f"{name}={int(models[name]['compiled'])}" for name in DIFF_MODELS
        )
        self._metrics["patterns"].add(pattern)
        new = pattern not in self._patterns
        self._patterns.add(pattern)
        if new:
            _NEW_PATTERNS.inc()
        for name in DIFF_MODELS:
            violated = models[name]["interp"]
            if violated:
                key = f"{name}:{'+'.join(sorted(violated))}"
                self._metrics["violations"].add(key)
                if key not in self._violations:
                    self._violations.add(key)
                    _NEW_VIOLATIONS.inc()
                    new = True
        signature = structure_signature(execution)
        self._metrics["structures"].add(signature)
        if signature not in self._structures:
            self._structures.add(signature)
            _NEW_STRUCTURES.inc()
            new = True
        return new
