"""The differential oracle matrix: every redundant verdict path.

For each generated execution and each of the six models the repo ships
(the five architectures' transactional models plus SC/TSC), four
implementations of "is this execution consistent?" are evaluated and
cross-checked:

* **compiled** -- ``ir.consistent``, which prefers the generated-code
  runner (:mod:`repro.ir.codegen`);
* **interp** -- ``ir.violated_axioms``, the interpretive per-constraint
  executor (it never uses the runner);
* **reference** -- per-constraint :func:`repro.ir.fallback_value`, the
  ``Relation``-level reference semantics;
* **cat** -- the bundled ``.cat`` twin, lowered through the same IR but
  from independently-written source.

On top of that, where a litmus-program conversion exists, the simulated
machines act as an *operational* oracle: the exhaustive TSX machine for
x86 (soundness direction: anything the machine observes must be model-
consistent), and the axiomatic-oracle machines for Power/ARMv8/SC
(exact agreement, which exercises the litmus conversion and candidate
enumeration end to end).

Path isolation is load-bearing: the executor memoises verdicts *on the
execution object* (``_ir_state``, ``_relation_context``), so running
two paths on the same object would answer the second from the first's
memo and mask any disagreement.  Every path therefore gets a **fresh
copy** of the execution, rebuilt from primitive data.

:func:`evaluate_case` is module-level and its cases pickle by value
(models are referenced by *name*, per the pipeline's job philosophy),
so batches fan out across ``CheckPipeline`` workers unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import ir
from ..events import FENCE, READ, WRITE, Execution
from ..harness.pipeline import hardware_for, model_for
from ..litmus.convert import execution_to_litmus
from ..obs import REGISTRY

#: Every model with a bundled cat twin -- the full differential matrix.
DIFF_MODELS = ("sc", "tsc", "x86tm", "powertm", "armv8tm", "cpptm")

#: Generation arch -> (machine arch, model the machine oracles).
SIM_ORACLES = {
    "x86": ("x86", "x86tm"),
    "power": ("power", "powertm"),
    "armv8": ("armv8", "armv8tm"),
    "sc": ("sc", "tsc"),
}

_CASES = REGISTRY.counter("fuzz.cases")
_SIM_CHECKED = REGISTRY.counter("fuzz.sim.checked")
_SIM_SKIPPED = REGISTRY.counter("fuzz.sim.skipped")
_META_CHECKED = REGISTRY.counter("fuzz.metatheory.checked")


def fresh_copy(execution: Execution) -> Execution:
    """A cache-free copy: same primitive data, no adopted memos."""
    return execution.replace()


def model_axioms(name: str) -> tuple[str, ...]:
    """Axiom names of a model's plan, in declaration order."""
    return tuple(c.name for c in model_for(name).plan().constraints)


@dataclass(frozen=True)
class FuzzCase:
    """One fuzz case: the execution plus everything the verdict matrix
    needs, chosen deterministically by the parent process."""

    execution: Execution
    arch: str
    #: model name -> axioms to drop in the metamorphic check (may be
    #: empty; chosen by the parent's seeded rng).
    meta_drops: dict = field(default_factory=dict)
    #: test-only injected mutation: (model name, dropped axioms); the
    #: mutant is compared against the pristine model.
    mutant: tuple | None = None
    check_sim: bool = True
    sim_event_limit: int = 6


def _reference_violations(plan, execution: Execution) -> list[str]:
    """Violated axiom names under the Relation-level reference path."""
    out = []
    for constraint in plan.constraints:
        value = ir.fallback_value(constraint.term, execution)
        if constraint.kind == "acyclic":
            ok = value.is_acyclic()
        elif constraint.kind == "irreflexive":
            ok = value.is_irreflexive()
        else:
            ok = value.is_empty()
        if not ok:
            out.append(constraint.name)
    return out


def _sim_skip_reason(case: FuzzCase) -> str | None:
    x = case.execution
    if case.arch not in SIM_ORACLES:
        return f"no simulated machine for {case.arch}"
    if len(x.events) > case.sim_event_limit:
        return "execution above the sim size bound"
    if len(x.threads) > 3:
        return "more threads than the sim bound"
    if any(e.kind not in (READ, WRITE, FENCE) for e in x.events):
        return "event kinds outside the litmus conversion"
    if case.arch == "x86" and any(
        x.txn_of.get(a) != x.txn_of.get(b) for a, b in x.rmw.pairs
    ):
        # A split rmw renders as load-linked/store-conditional, which
        # the TSX machine (faithfully) refuses to execute.
        return "split rmw has no x86 rendering"
    return None


def _evaluate_sim(case: FuzzCase) -> dict:
    reason = _sim_skip_reason(case)
    if reason is not None:
        _SIM_SKIPPED.inc()
        return {"skipped": reason}
    _SIM_CHECKED.inc()
    arch, model_name = SIM_ORACLES[case.arch]
    test = execution_to_litmus(fresh_copy(case.execution), name="fuzz")
    observed = bool(
        hardware_for(arch).observable(test.program, test.intended_co)
    )
    x = fresh_copy(case.execution)
    consistent = bool(model_for(model_name).consistent(x))
    lb_filtered = False
    if case.arch == "power":
        # The POWER8-like oracle never manifests load-buffering shapes.
        lb_filtered = not (x.po | x.rf).is_acyclic()
    return {
        "skipped": None,
        "arch": arch,
        "model": model_name,
        "observed": observed,
        "consistent": consistent,
        "lb_filtered": lb_filtered,
    }


def evaluate_case(case: FuzzCase) -> dict:
    """All verdict paths for one case; returns primitive data only.

    Comparison happens in :func:`diagnose` (parent side), so worker
    processes stay policy-free.
    """
    _CASES.inc()
    with REGISTRY.histogram("fuzz.case.seconds").time():
        return _evaluate_case(case)


def _evaluate_case(case: FuzzCase) -> dict:
    x = case.execution
    models: dict[str, dict] = {}
    for name in DIFF_MODELS:
        model = model_for(name)
        plan = model.plan()
        compiled = bool(model.consistent(fresh_copy(x)))
        interp = list(model.violated_axioms(fresh_copy(x)))
        reference = _reference_violations(plan, fresh_copy(x))
        cat = bool(_cat_model(name).consistent(fresh_copy(x)))
        entry: dict = {
            "compiled": compiled,
            "interp": interp,
            "reference": reference,
            "cat": cat,
            "meta": None,
            "mutant": None,
        }
        drops = tuple(case.meta_drops.get(name, ()))
        if drops:
            _META_CHECKED.inc()
            filtered = model_for(name, drops)
            entry["meta"] = {
                "dropped": list(drops),
                "violated": list(filtered.violated_axioms(fresh_copy(x))),
            }
        if case.mutant is not None and case.mutant[0] == name:
            mutant = model_for(name, tuple(case.mutant[1]))
            entry["mutant"] = bool(mutant.consistent(fresh_copy(x)))
        models[name] = entry
    result = {"models": models, "sim": None}
    if case.check_sim:
        result["sim"] = _evaluate_sim(case)
    return result


def _cat_model(name: str):
    from ..cat import load_cat_model

    return load_cat_model(name)


def diagnose(case: FuzzCase, result: dict) -> list[dict]:
    """Cross-check the verdict matrix; one record per disagreement.

    Record fields are primitive (they land in corpus JSONL): ``kind``
    identifies the disagreeing pair of paths, ``model`` the model (or
    machine), ``detail`` the raw verdicts.
    """
    findings: list[dict] = []
    for name, entry in result["models"].items():
        interp_ok = not entry["interp"]
        if entry["compiled"] != interp_ok:
            findings.append(
                {
                    "kind": "compiled-vs-interp",
                    "model": name,
                    "detail": {
                        "compiled": entry["compiled"],
                        "interp_violated": entry["interp"],
                    },
                }
            )
        if sorted(entry["interp"]) != sorted(entry["reference"]):
            findings.append(
                {
                    "kind": "interp-vs-reference",
                    "model": name,
                    "detail": {
                        "interp_violated": entry["interp"],
                        "reference_violated": entry["reference"],
                    },
                }
            )
        if entry["cat"] != entry["compiled"]:
            findings.append(
                {
                    "kind": "native-vs-cat",
                    "model": name,
                    "detail": {
                        "native": entry["compiled"],
                        "cat": entry["cat"],
                    },
                }
            )
        meta = entry["meta"]
        if meta is not None:
            # Axiom-dropping monotonicity, exactly: the filtered model's
            # violations must be the base model's minus the dropped
            # axioms.  (This is the metamorphic property that is true by
            # construction at the spec level; §8.1's transaction-
            # coarsening monotonicity has genuine counterexamples on
            # Power/ARM and is checked separately in repro.metatheory.)
            expected = sorted(set(entry["interp"]) - set(meta["dropped"]))
            if sorted(meta["violated"]) != expected:
                findings.append(
                    {
                        "kind": "metatheory",
                        "model": name,
                        "detail": {
                            "dropped": meta["dropped"],
                            "expected_violated": expected,
                            "filtered_violated": meta["violated"],
                        },
                    }
                )
        if entry["mutant"] is not None and entry["mutant"] != entry["compiled"]:
            findings.append(
                {
                    "kind": "mutant",
                    "model": name,
                    "detail": {
                        "pristine": entry["compiled"],
                        "mutant": entry["mutant"],
                    },
                }
            )
    sim = result.get("sim")
    if sim and sim.get("skipped") is None:
        if case.arch == "x86":
            # The TSX machine is genuinely operational; completeness
            # relative to the axiomatic model is not promised, so only
            # the soundness direction is a discrepancy.
            disagrees = sim["observed"] and not sim["consistent"]
        else:
            expected = sim["consistent"] and not sim["lb_filtered"]
            disagrees = sim["observed"] != expected
        if disagrees:
            findings.append(
                {
                    "kind": "sim",
                    "model": sim["model"],
                    "detail": {
                        "machine": sim["arch"],
                        "observed": sim["observed"],
                        "consistent": sim["consistent"],
                        "lb_filtered": sim["lb_filtered"],
                    },
                }
            )
    return findings


def discrepancy_key(finding: dict) -> tuple[str, str]:
    """The (kind, model) identity a shrink step must preserve."""
    return (finding["kind"], finding["model"])


def case_has_discrepancy(case: FuzzCase, key: tuple[str, str]) -> bool:
    """Re-evaluate a (shrunk) case and ask whether the identified
    disagreement is still present -- the shrinker's predicate."""
    findings = diagnose(case, evaluate_case(case))
    return any(discrepancy_key(f) == key for f in findings)
