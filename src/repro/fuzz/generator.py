"""Random well-formed executions beyond the enumeration bounds.

The exhaustive enumerator (:mod:`repro.enumeration`) covers *every*
skeleton up to a small size; the fuzzer instead *samples* the same shape
space at sizes the exhaustive sweep cannot reach, using the skeleton
machinery's sampling counterparts (:func:`~repro.enumeration.shapes.
sample_partition` and friends) plus randomised rf/co completion.

Everything is driven by one caller-owned ``random.Random``; the same
seed always yields the same execution sequence, which is what makes
fuzz corpora byte-reproducible.

Sampling deliberately does *not* inherit all of the enumerator's
pruning: fences may sit first or last in a thread, dependency edges are
sparse rather than exhaustive, and transaction layouts are sampled --
the point is to reach shapes the bounded sweep never visits.  Every
sampled execution is checked with
:func:`~repro.events.wellformed.is_well_formed` before it is handed to
the oracles (a generator bug must never masquerade as a model
discrepancy).
"""

from __future__ import annotations

import random

from ..enumeration.config import EnumerationConfig
from ..enumeration.shapes import (
    LOC_NAMES,
    Skeleton,
    sample_growth_string,
    sample_interval_set,
    sample_partition,
)
from ..events import FENCE, NA, READ, WRITE, Event, Execution
from ..events.execution import SkeletonCompleter
from ..events.wellformed import is_well_formed
from ..obs import REGISTRY

_REJECTS = REGISTRY.counter("fuzz.generator.wellformed_rejects")

#: Probability knobs.  Constants, not config: varying them would change
#: the meaning of a seed.
_FENCE_PROBABILITY = 0.15
_RMW_PROBABILITY = 0.25
_DEP_PROBABILITY = 0.2
_TXN_OPEN_PROBABILITY = 0.25
_ATOMIC_TXN_PROBABILITY = 0.5
_MAX_THREADS = 3


def sample_skeleton(
    rng: random.Random, config: EnumerationConfig, n_events: int
) -> Skeleton:
    """One random skeleton with ``n_events`` events in ``config``'s
    vocabulary (kinds, tags, fence flavours, deps, transactions)."""
    sizes = sample_partition(rng, n_events, _MAX_THREADS)

    # Kinds, locations, tags -- thread by thread, event ids dense in
    # program order (matching the enumerator's layout).
    threads: list[tuple[int, ...]] = []
    events: list[Event] = []
    eid = 0
    kinds: list[str] = []
    for tid, size in enumerate(sizes):
        seq = []
        for _ in range(size):
            if config.fence_flavours and rng.random() < _FENCE_PROBABILITY:
                kinds.append(FENCE)
            else:
                kinds.append(READ if rng.random() < 0.5 else WRITE)
            seq.append(eid)
            eid += 1
        threads.append(tuple(seq))
    memory_eids = [i for i in range(eid) if kinds[i] != FENCE]
    loc_code = sample_growth_string(rng, len(memory_eids))
    locs = {e: LOC_NAMES[c] for e, c in zip(memory_eids, loc_code)}
    for i in range(eid):
        kind = kinds[i]
        if kind == FENCE:
            tags = frozenset({rng.choice(config.fence_flavours)})
        elif kind == READ:
            tags = rng.choice(config.read_tag_options)
        else:
            tags = rng.choice(config.write_tag_options)
        tid = next(t for t, seq in enumerate(threads) if i in seq)
        events.append(
            Event(eid=i, tid=tid, kind=kind, loc=locs.get(i), tags=tags)
        )

    by_eid = {e.eid: e for e in events}

    # rmw: adjacent read->write same-location pairs, sampled.
    rmw: set[tuple[int, int]] = set()
    used: set[int] = set()
    for seq in threads:
        for a, b in zip(seq, seq[1:]):
            ea, eb = by_eid[a], by_eid[b]
            if ea.kind != READ or eb.kind != WRITE or ea.loc != eb.loc:
                continue
            if a in used or b in used:
                continue
            if config.atomic_txn_variants and (
                NA in ea.tags or NA in eb.tags
            ):
                continue
            if rng.random() < _RMW_PROBABILITY:
                rmw.add((a, b))
                used.update((a, b))

    # Dependencies: sparse choices over (read, later-in-thread) pairs.
    addr: set[tuple[int, int]] = set()
    ctrl: set[tuple[int, int]] = set()
    data: set[tuple[int, int]] = set()
    if config.enumerate_deps:
        for seq in threads:
            for i, a in enumerate(seq):
                if by_eid[a].kind != READ:
                    continue
                for b in seq[i + 1 :]:
                    if by_eid[b].kind == FENCE:
                        continue
                    if rng.random() >= _DEP_PROBABILITY:
                        continue
                    options = ["addr", "ctrl"]
                    if by_eid[b].kind == WRITE:
                        options.append("data")
                    choice = rng.choice(options)
                    {"addr": addr, "ctrl": ctrl, "data": data}[choice].add(
                        (a, b)
                    )

    # Transactions: a sampled interval layout per thread.
    txn_of: dict[int, int] = {}
    atomic_txns: set[int] = set()
    if config.allow_txns:
        txn_id = 0
        for seq in threads:
            for start, end in sample_interval_set(
                rng, len(seq), _TXN_OPEN_PROBABILITY
            ):
                members = [seq[i] for i in range(start, end)]
                for e in members:
                    txn_of[e] = txn_id
                if (
                    config.atomic_txn_variants
                    and all(NA in by_eid[e].tags for e in members)
                    and rng.random() < _ATOMIC_TXN_PROBABILITY
                ):
                    atomic_txns.add(txn_id)
                txn_id += 1

    return Skeleton(
        events=tuple(events),
        threads=tuple(threads),
        addr=frozenset(addr),
        ctrl=frozenset(ctrl),
        data=frozenset(data),
        rmw=frozenset(rmw),
        txn_of=txn_of,
        atomic_txns=frozenset(atomic_txns),
    )


def sample_completion(rng: random.Random, skeleton: Skeleton) -> Execution:
    """One random rf/co completion of a skeleton.

    Each read reads from a random same-location write or the initial
    value (rf constrained to rmw semantics is *not* enforced here; the
    models decide what such executions mean).  Each location's writes
    get a random coherence permutation.
    """
    by_eid = {e.eid: e for e in skeleton.events}
    writes_by_loc: dict[str, list[int]] = {}
    for e in skeleton.events:
        if e.kind == WRITE and e.loc is not None:
            writes_by_loc.setdefault(e.loc, []).append(e.eid)

    rf_pairs: list[tuple[int, int]] = []
    for e in skeleton.events:
        if e.kind != READ or e.loc is None:
            continue
        sources: list[int | None] = [None] + writes_by_loc.get(e.loc, [])
        src = rng.choice(sources)
        if src is not None:
            rf_pairs.append((src, e.eid))

    co_pairs: list[tuple[int, int]] = []
    for loc in sorted(writes_by_loc):
        order = list(writes_by_loc[loc])
        rng.shuffle(order)
        co_pairs.extend(zip(order, order[1:]))

    completer = SkeletonCompleter(
        skeleton.events,
        skeleton.threads,
        skeleton.addr,
        skeleton.ctrl,
        skeleton.data,
        skeleton.rmw,
        skeleton.txn_of,
        skeleton.atomic_txns,
    )
    completer.start_rf(rf_pairs)
    return completer.complete(co_pairs)


def sample_execution(
    rng: random.Random,
    config: EnumerationConfig,
    n_events: int,
    max_attempts: int = 20,
) -> Execution:
    """One random well-formed execution.

    Sampling is constructive, so ill-formedness should be impossible --
    the well-formedness check is a safety net, with rejections counted
    (``fuzz.generator.wellformed_rejects``) so a generator regression
    is visible instead of silently shrinking coverage.
    """
    for _ in range(max_attempts):
        execution = sample_completion(rng, sample_skeleton(rng, config, n_events))
        if is_well_formed(execution):
            return execution
        _REJECTS.inc()
    raise RuntimeError(
        f"could not sample a well-formed execution of {n_events} events "
        f"for {config.name} in {max_attempts} attempts"
    )
