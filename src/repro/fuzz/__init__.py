"""Differential conformance fuzzing for the consistency models.

Random well-formed executions (beyond the enumeration bounds) are run
through every redundant verdict path the repo ships -- compiled IR,
interpretive executor, Relation-level reference, cat twins, and the
simulated machines where a litmus conversion exists -- and any
disagreement is delta-debugged down to a minimal witness and recorded
in a replayable JSONL corpus.  See ``docs/fuzzing.md``.
"""

from .corpus import (
    CorpusWriter,
    execution_digest,
    execution_from_json,
    execution_to_json,
    find_record,
    load_corpus,
)
from .coverage import CoverageMap, record_ir_node_kinds, structure_signature
from .engine import FuzzConfig, FuzzReport, replay, run_fuzz
from .generator import sample_completion, sample_execution, sample_skeleton
from .mutate import OPERATORS, mutate, splice_thread
from .oracles import (
    DIFF_MODELS,
    SIM_ORACLES,
    FuzzCase,
    case_has_discrepancy,
    diagnose,
    discrepancy_key,
    evaluate_case,
    model_axioms,
)
from .shrink import shrink

__all__ = [
    "CorpusWriter",
    "CoverageMap",
    "DIFF_MODELS",
    "FuzzCase",
    "FuzzConfig",
    "FuzzReport",
    "OPERATORS",
    "SIM_ORACLES",
    "case_has_discrepancy",
    "diagnose",
    "discrepancy_key",
    "evaluate_case",
    "execution_digest",
    "execution_from_json",
    "execution_to_json",
    "find_record",
    "load_corpus",
    "model_axioms",
    "mutate",
    "record_ir_node_kinds",
    "replay",
    "run_fuzz",
    "sample_completion",
    "sample_execution",
    "sample_skeleton",
    "shrink",
    "splice_thread",
    "structure_signature",
]
