"""The fuzz corpus: JSONL witness records, replayable by digest.

Every discrepancy the fuzzer finds lands as one JSON line in
``results/fuzz-corpus.jsonl`` (or wherever ``--corpus`` points):

* ``digest`` -- a PYTHONHASHSEED-stable SHA-256 of the (shrunk)
  execution, the replay key (same scheme as the PR 3 checkpoints);
* ``execution`` -- the shrunk witness, as primitive JSON (events,
  threads, rf/co/deps/rmw pairs, transaction structure), rebuildable
  with :func:`execution_from_json`;
* ``litmus`` -- the rendered litmus-format text of the witness, when a
  program conversion exists (diagnostic convenience; the execution
  field is authoritative);
* provenance: the discrepancy ``kind``, the disagreeing paths/models,
  generation ``arch``/``seed``/``case`` index, and the original
  (pre-shrink) execution's digest.

Records are written in case order with sorted keys and no timestamps,
so the same seed and budget produce a byte-identical file -- including
under ``--workers 2`` (pipeline results return in submission order).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..events import Event, Execution


def execution_to_json(execution: Execution) -> dict:
    """A primitive (JSON-serialisable) encoding of an execution."""
    return {
        "events": [
            [e.eid, e.tid, e.kind, e.loc, sorted(e.tags)]
            for e in execution.events
        ],
        "threads": [list(seq) for seq in execution.threads],
        "rf": sorted(list(p) for p in execution.rf.pairs),
        "co": sorted(list(p) for p in execution.co.pairs),
        "addr": sorted(list(p) for p in execution.addr.pairs),
        "ctrl": sorted(list(p) for p in execution.ctrl.pairs),
        "data": sorted(list(p) for p in execution.data.pairs),
        "rmw": sorted(list(p) for p in execution.rmw.pairs),
        "txn_of": sorted([eid, txn] for eid, txn in execution.txn_of.items()),
        "atomic_txns": sorted(execution.atomic_txns),
    }


def execution_from_json(data: dict) -> Execution:
    """Rebuild an execution from :func:`execution_to_json` output."""
    events = [
        Event(eid=eid, tid=tid, kind=kind, loc=loc, tags=frozenset(tags))
        for eid, tid, kind, loc, tags in data["events"]
    ]
    pairs = lambda name: [tuple(p) for p in data.get(name, [])]
    return Execution(
        events,
        [tuple(seq) for seq in data["threads"]],
        rf=pairs("rf"),
        co=pairs("co"),
        addr=pairs("addr"),
        ctrl=pairs("ctrl"),
        data=pairs("data"),
        rmw=pairs("rmw"),
        txn_of=dict(tuple(item) for item in data.get("txn_of", [])),
        atomic_txns=data.get("atomic_txns", []),
    )


def execution_digest(execution: Execution) -> str:
    """A stable hex digest of an execution (the corpus replay key)."""
    encoded = json.dumps(
        execution_to_json(execution), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def encode_record(record: dict) -> str:
    """One canonical JSONL line (sorted keys, compact separators)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class CorpusWriter:
    """Appends witness records to a corpus file, creating (truncating)
    it up front so a clean run leaves a verifiably empty corpus."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.written = 0

    def write(self, record: dict) -> None:
        self._handle.write(encode_record(record) + "\n")
        self._handle.flush()
        self.written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CorpusWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_corpus(path: str | Path) -> list[dict]:
    """All records of a corpus file (tolerates a torn trailing line,
    like the checkpoint store)."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return records


def find_record(path: str | Path, digest: str) -> dict | None:
    """The corpus record with the given digest (prefix match allowed,
    like git), or None."""
    for record in load_corpus(path):
        if record.get("digest", "").startswith(digest):
            return record
    return None
