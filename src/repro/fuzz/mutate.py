"""Mutation operators over corpus executions.

Coverage-guided fuzzing keeps a pool of "interesting" executions (ones
that reached new verdict territory) and perturbs them instead of always
sampling fresh: small steps from an interesting input tend to stay
interesting.  Each operator takes an execution and the caller's seeded
rng and returns a mutated execution, or ``None`` when the operator does
not apply (the engine then falls back to another operator or a fresh
sample).  Every successful mutation is well-formed by construction of
the functional-update API, but the engine re-checks anyway.

The operator vocabulary follows the shapes the paper's ⊏-order and §8
transformations care about: fence insertion/removal, transaction
boundary flips, rf/co permutation, tag downgrades, and thread splicing
between two corpus entries.
"""

from __future__ import annotations

import random

from ..enumeration.config import EnumerationConfig
from ..events import FENCE, READ, WRITE, Event, Execution
from ..events.wellformed import is_well_formed
from ..obs import REGISTRY

_APPLIED = REGISTRY.counter("fuzz.mutations.applied")
_REJECTED = REGISTRY.counter("fuzz.mutations.rejected")


def add_fence(
    rng: random.Random, x: Execution, config: EnumerationConfig
) -> Execution | None:
    """Insert a random-flavour fence at a random thread position."""
    if not config.fence_flavours or not x.threads:
        return None
    tid = rng.randrange(len(x.threads))
    seq = x.threads[tid]
    pos = rng.randint(0, len(seq))
    eid = max(x.eids) + 1
    flavour = rng.choice(config.fence_flavours)
    fence = Event(eid=eid, tid=tid, kind=FENCE, loc=None, tags=frozenset({flavour}))
    threads = list(x.threads)
    threads[tid] = seq[:pos] + (eid,) + seq[pos:]
    # A fence landing inside a transaction's span joins it, keeping the
    # class po-contiguous.
    txn_of = dict(x.txn_of)
    if 0 < pos < len(seq):
        before, after = x.txn_of.get(seq[pos - 1]), x.txn_of.get(seq[pos])
        if before is not None and before == after:
            txn_of[eid] = before
    return x.replace(
        events=x.events + (fence,), threads=tuple(threads), txn_of=txn_of
    )


def remove_fence(rng: random.Random, x: Execution, config) -> Execution | None:
    fences = sorted(x.fences)
    if not fences:
        return None
    return x.without_event(rng.choice(fences))


def flip_txn_boundary(rng: random.Random, x: Execution, config) -> Execution | None:
    """Move a transaction boundary: evict a member, or absorb a
    po-adjacent non-member into the transaction."""
    choices: list[tuple[str, int, int]] = []
    for txn, members in sorted(x.txn_classes.items()):
        # Evicting an interior member would break po-contiguity, so
        # only the boundary members may leave.
        choices.append(("evict", members[0], txn))
        if members[-1] != members[0]:
            choices.append(("evict", members[-1], txn))
        seq = x.threads[x.event(members[0]).tid]
        first, last = seq.index(members[0]), seq.index(members[-1])
        for pos in (first - 1, last + 1):
            if 0 <= pos < len(seq) and seq[pos] not in x.txn_of:
                choices.append(("absorb", seq[pos], txn))
    if not choices:
        return None
    op, eid, txn = rng.choice(choices)
    if op == "evict":
        return x.without_txn_membership(eid)
    txn_of = dict(x.txn_of)
    txn_of[eid] = txn
    return x.replace(txn_of=txn_of)


def permute_rf(rng: random.Random, x: Execution, config) -> Execution | None:
    """Re-choose one read's rf source (including "reads initial")."""
    reads = sorted(x.reads)
    if not reads:
        return None
    read = rng.choice(reads)
    loc = x.event(read).loc
    current = next((w for w, r in x.rf.pairs if r == read), None)
    options = [None] + [w for w in x.writes_to(loc)]
    options = [w for w in options if w != current]
    if not options:
        return None
    chosen = rng.choice(options)
    rf = {(w, r) for w, r in x.rf.pairs if r != read}
    if chosen is not None:
        rf.add((chosen, read))
    return x.replace(rf=frozenset(rf))


def permute_co(rng: random.Random, x: Execution, config) -> Execution | None:
    """Swap two adjacent writes in one location's coherence order."""
    candidates = [
        loc for loc in x.locations if len(x.writes_to(loc)) >= 2
    ]
    if not candidates:
        return None
    loc = rng.choice(candidates)
    order = sorted(
        x.writes_to(loc), key=lambda w: len(x.co.predecessors(w))
    )
    i = rng.randrange(len(order) - 1)
    order[i], order[i + 1] = order[i + 1], order[i]
    co = {
        (a, b)
        for a, b in x.co.pairs
        if x.event(a).loc != loc
    }
    co.update(zip(order, order[1:]))
    return x.replace(co=frozenset(co))


def downgrade_tag(
    rng: random.Random, x: Execution, config: EnumerationConfig
) -> Execution | None:
    """Apply one ⊏-order event downgrade from the config's lattice."""
    options: list[tuple[int, frozenset]] = []
    for e in x.events:
        for weaker in config.downgrades(e):
            options.append((e.eid, weaker.tags))
    if not options:
        return None
    eid, tags = rng.choice(options)
    return x.with_event_tags(eid, tags)


def splice_thread(
    rng: random.Random, x: Execution, donor: Execution
) -> Execution | None:
    """Graft one of ``donor``'s threads onto ``x`` as a new thread.

    Donor events are renumbered past ``x``'s ids; intra-thread edges
    (deps, rmw, transactions) survive, cross-thread edges (rf, co) are
    dropped -- the grafted thread's reads observe the initial value and
    its writes enter each location's co as a fresh chain suffix.
    """
    if not donor.threads:
        return None
    donor_tid = rng.randrange(len(donor.threads))
    donor_seq = donor.threads[donor_tid]
    base = max(x.eids) + 1 if x.eids else 0
    remap = {eid: base + i for i, eid in enumerate(donor_seq)}
    new_tid = len(x.threads)
    grafted = [
        Event(
            eid=remap[eid],
            tid=new_tid,
            kind=donor.event(eid).kind,
            loc=donor.event(eid).loc,
            tags=donor.event(eid).tags,
        )
        for eid in donor_seq
    ]
    keep = lambda pairs: frozenset(
        (remap[a], remap[b])
        for a, b in pairs
        if a in remap and b in remap
    )
    rels = x._relation_pairs()
    merged = {
        name: rels[name] | keep(getattr(donor, name).pairs)
        for name in ("addr", "ctrl", "data", "rmw")
    }
    # rf survives only within the donor thread; co chains the grafted
    # writes after x's existing per-location chains.
    merged["rf"] = rels["rf"] | keep(donor.rf.pairs)
    co = set(rels["co"])
    last_write: dict[str, int] = {}
    for loc in x.locations:
        writes = x.writes_to(loc)
        if writes:
            last_write[loc] = max(
                writes, key=lambda w: len(x.co.predecessors(w))
            )
    for event in grafted:
        if event.kind == WRITE and event.loc is not None:
            prev = last_write.get(event.loc)
            if prev is not None:
                co.add((prev, event.eid))
            last_write[event.loc] = event.eid
    merged["co"] = frozenset(co)
    txn_base = max(x.txn_of.values(), default=-1) + 1
    txn_of = dict(x.txn_of)
    donor_txns: dict[int, int] = {}
    for eid in donor_seq:
        txn = donor.txn_of.get(eid)
        if txn is not None:
            donor_txns.setdefault(txn, txn_base + len(donor_txns))
            txn_of[remap[eid]] = donor_txns[txn]
    atomic = set(x.atomic_txns)
    atomic.update(
        donor_txns[t] for t in donor.atomic_txns if t in donor_txns
    )
    return x.replace(
        events=x.events + tuple(grafted),
        threads=x.threads + (tuple(remap[eid] for eid in donor_seq),),
        txn_of=txn_of,
        atomic_txns=frozenset(atomic),
        **merged,
    )


#: Single-parent operators, in a fixed order (rng picks among them).
OPERATORS = (
    add_fence,
    remove_fence,
    flip_txn_boundary,
    permute_rf,
    permute_co,
    downgrade_tag,
)


def mutate(
    rng: random.Random,
    x: Execution,
    config: EnumerationConfig,
    donor: Execution | None = None,
    attempts: int = 8,
) -> Execution | None:
    """One random applicable mutation of ``x`` (well-formed), or None.

    With a ``donor``, thread splicing joins the operator pool.
    """
    pool = list(OPERATORS)
    if donor is not None:
        pool.append(None)  # sentinel for splice_thread
    for _ in range(attempts):
        op = rng.choice(pool)
        if op is None:
            mutated = splice_thread(rng, x, donor)
        else:
            mutated = op(rng, x, config)
        if mutated is None:
            continue
        if is_well_formed(mutated):
            _APPLIED.inc()
            return mutated
        _REJECTED.inc()
    return None
