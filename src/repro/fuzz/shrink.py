"""Delta-debugging shrinker: minimise a disagreement witness.

Given an execution on which two verdict paths disagree, greedily apply
structure-removing steps -- drop a whole thread, drop an event, strip a
transaction membership, remove a dependency/rmw/rf edge, downgrade a
tag -- keeping a step only if the *same* disagreement (same kind, same
model) still reproduces on the smaller execution.  Runs to a fixpoint:
the result is 1-minimal with respect to the step vocabulary, which in
practice lands the ≤6-event witnesses the corpus is for.

The predicate re-runs the full oracle matrix per candidate, so shrink
cost is bounded by keeping candidates small and the step order
deterministic (threads first: one accepted thread-removal skips all of
its events' individual steps).
"""

from __future__ import annotations

from typing import Callable

from ..enumeration.config import EnumerationConfig
from ..events import Execution
from ..events.wellformed import is_well_formed
from ..obs import REGISTRY

_ATTEMPTS = REGISTRY.counter("fuzz.shrink.attempts")
_ACCEPTED = REGISTRY.counter("fuzz.shrink.accepted")


def _without_events(x: Execution, eids: list[int]) -> Execution:
    for eid in eids:
        x = x.without_event(eid)
    return x


def _candidates(x: Execution, config: EnumerationConfig | None):
    """Deterministically-ordered shrink steps, coarsest first."""
    # Whole threads (events removed one by one; eids are stable under
    # without_event, only tids renumber).
    if len(x.threads) > 1:
        for seq in x.threads:
            yield _without_events(x, list(seq))
    # Single events.
    if len(x.events) > 1:
        for e in x.events:
            yield x.without_event(e.eid)
    # Transaction memberships.
    for eid in sorted(x.txn_of):
        yield x.without_txn_membership(eid)
    # Dependency and rmw edges.
    for name in ("addr", "ctrl", "data", "rmw"):
        for pair in sorted(getattr(x, name).pairs):
            yield x.without_dep_edge(name, pair)
    # rf edges (the read falls back to the initial value).
    for pair in sorted(x.rf.pairs):
        yield x.replace(rf=x.rf.pairs - {pair})
    # Tag downgrades (⊏-order step iii), when a config lattice is known.
    if config is not None:
        for e in x.events:
            for weaker in config.downgrades(e):
                yield x.with_event_tags(e.eid, weaker.tags)


def shrink(
    execution: Execution,
    predicate: Callable[[Execution], bool],
    config: EnumerationConfig | None = None,
    max_steps: int = 2000,
) -> Execution:
    """Greedy fixpoint minimisation of ``execution`` under ``predicate``.

    ``predicate(candidate)`` must return True while the disagreement
    reproduces; it is never called on ill-formed candidates.  Returns
    the smallest execution reached (possibly the input).
    """
    current = execution
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _candidates(current, config):
            steps += 1
            if steps >= max_steps:
                break
            if not is_well_formed(candidate):
                continue
            _ATTEMPTS.inc()
            if predicate(candidate):
                _ACCEPTED.inc()
                current = candidate
                improved = True
                break
    return current
