"""A disk-backed, content-addressed cache of model verdicts.

Every synthesis run re-proves verdicts the IR executor already settled
in the previous run: the same canonical execution, judged by the same
model, is consistent (or not) forever.  This module persists those
verdicts across runs, keyed by::

    (model digest, canonical execution digest, check kind)

* The **model digest** comes from :func:`repro.ir.model_digest` -- a
  structural hash of the model's compiled constraint plan, so editing a
  model's axioms silently invalidates its old entries (the key changes;
  stale verdicts are unreachable, not wrong).
* The **execution digest** hashes
  :func:`repro.enumeration.canonical.canonical_key`, so isomorphic
  executions (thread/location renamings) share one entry -- sound
  because every model judges structure only.
* ``kind`` is ``"consistent"`` (bool) or ``"violated"`` (axiom-name
  list), the two verdict shapes the pipeline evaluates.

On disk the cache is a directory of JSONL *segments*
(``segment-000001.jsonl``, one record per line).  Appends go to a new
segment per writing process; :meth:`VerdictCache.compact` merges all
segments into one (atomically, via tmp+rename).  Loading tolerates a
torn trailing line and skips malformed records -- the same crash
posture as :class:`~repro.harness.checkpoint.CheckpointStore`: a bad
line costs one re-computation, never a crash.

Process roles mirror the pipeline's: the **parent** opens the cache as
the single writer; **pool workers** (re)open it read-only from the
``REPRO_CACHE`` environment variable after fork/spawn, collect their
fresh verdicts in a pending list, and ship them home in the worker
delta (:class:`~repro.harness.pipeline._PoolTask`), where the parent
absorbs and persists them.

Metrics: ``verdict_cache.lookups/hits/misses/appends`` (hit rate
surfaces in ``--stats`` via the standard ``hits/lookups`` convention).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..enumeration.canonical import canonical_key
from ..events import Execution
from ..obs import REGISTRY

#: Auto-compact on close once this many segments accumulate.
_COMPACT_SEGMENTS = 8

#: Buffered appends are flushed to disk every this many records.
_FLUSH_EVERY = 128

_VALID_KINDS = ("consistent", "violated")


def execution_digest(execution: Execution) -> str:
    """The canonical (isomorphism-invariant) digest of one execution."""
    return hashlib.sha256(
        repr(canonical_key(execution)).encode("utf-8")
    ).hexdigest()


class VerdictCache:
    """One open verdict cache (see the module docstring for the model).

    Args:
        root: the cache directory (created on first append).
        writer: whether this process persists new verdicts.  The
            pipeline parent passes ``True``; pool workers open with
            ``False`` and accumulate new verdicts in :attr:`pending`
            for the parent to :meth:`absorb`.
    """

    def __init__(self, root: str | Path, writer: bool = False):
        self.root = Path(root)
        self.writer = writer
        self._entries: dict[tuple[str, str, str], object] = {}
        self._file = None
        self._unflushed = 0
        #: Worker-side records awaiting shipment in the next delta.
        self.pending: list[dict] = []
        self._lookups = REGISTRY.counter("verdict_cache.lookups")
        self._hits = REGISTRY.counter("verdict_cache.hits")
        self._misses = REGISTRY.counter("verdict_cache.misses")
        self._appends = REGISTRY.counter("verdict_cache.appends")
        self._load()

    # -- loading ---------------------------------------------------------

    def _segments(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("segment-*.jsonl"))

    def _load(self) -> None:
        for segment in self._segments():
            try:
                text = segment.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = (record["m"], record["x"], record["k"])
                    verdict = record["v"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # Torn tail or hand-mangled line: skip, re-compute.
                    continue
                if record["k"] not in _VALID_KINDS:
                    continue
                self._entries[key] = verdict
        self.loaded = len(self._entries)

    # -- lookups and appends ---------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, model_digest: str, exec_digest: str, kind: str):
        """``(hit, verdict)`` for one key; counts the lookup."""
        self._lookups.inc()
        key = (model_digest, exec_digest, kind)
        if key in self._entries:
            self._hits.inc()
            return True, self._entries[key]
        self._misses.inc()
        return False, None

    def record(
        self, model_digest: str, exec_digest: str, kind: str, verdict
    ) -> None:
        """Store one freshly computed verdict.

        Writers append to their segment (buffered); non-writers queue
        the record for the next worker delta.
        """
        key = (model_digest, exec_digest, kind)
        if key in self._entries:
            return
        self._entries[key] = verdict
        record = {
            "m": model_digest,
            "x": exec_digest,
            "k": kind,
            "v": verdict,
        }
        if self.writer:
            self._append(record)
        else:
            self.pending.append(record)

    def absorb(self, records: list[dict]) -> None:
        """Fold a worker's pending records in (parent side), persisting
        the ones this process had not seen yet."""
        for record in records:
            try:
                self.record(record["m"], record["x"], record["k"], record["v"])
            except (KeyError, TypeError):
                continue

    def flush_pending(self) -> list[dict]:
        """Drain the worker-side pending list (ships in the delta)."""
        pending, self.pending = self.pending, []
        return pending

    # -- persistence -----------------------------------------------------

    def _open_segment(self):
        self.root.mkdir(parents=True, exist_ok=True)
        existing = self._segments()
        if existing:
            last = existing[-1].stem.split("-")[-1]
            index = int(last) + 1
        else:
            index = 1
        path = self.root / f"segment-{index:06d}.jsonl"
        return path.open("a", encoding="utf-8")

    def _append(self, record: dict) -> None:
        if self._file is None:
            self._file = self._open_segment()
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._appends.inc()
        self._unflushed += 1
        if self._unflushed >= _FLUSH_EVERY:
            self._file.flush()
            self._unflushed = 0

    def compact(self) -> Path | None:
        """Merge every segment into one, atomically.

        Idempotent: compacting a compacted cache rewrites the same
        entries.  Returns the surviving segment path (``None`` when the
        cache is empty and nothing was ever written).
        """
        if not self.writer:
            raise RuntimeError("only the writing process may compact")
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None
            self._unflushed = 0
        segments = self._segments()
        if not segments and not self._entries:
            return None
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / "segment-000001.jsonl.tmp"
        with tmp.open("w", encoding="utf-8") as out:
            for (m, x, k), v in sorted(
                self._entries.items(), key=lambda item: item[0]
            ):
                out.write(
                    json.dumps(
                        {"m": m, "x": x, "k": k, "v": v}, sort_keys=True
                    )
                    + "\n"
                )
            out.flush()
            os.fsync(out.fileno())
        for segment in segments:
            if segment != tmp.with_suffix(""):
                segment.unlink(missing_ok=True)
        final = self.root / "segment-000001.jsonl"
        os.replace(tmp, final)
        return final

    def close(self) -> None:
        """Flush buffered appends; auto-compact a fragmented cache."""
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None
            self._unflushed = 0
        if self.writer and len(self._segments()) >= _COMPACT_SEGMENTS:
            self.compact()


# ---------------------------------------------------------------------------
# The process-active cache (parent configures; workers reopen from env)
# ---------------------------------------------------------------------------

_ACTIVE: VerdictCache | None = None


def configure(root: str | Path, writer: bool) -> VerdictCache:
    """Open ``root`` as this process's active cache and return it."""
    global _ACTIVE
    _ACTIVE = VerdictCache(root, writer=writer)
    return _ACTIVE


def deactivate() -> None:
    """Close and forget the active cache (pipeline shutdown)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None


def active() -> VerdictCache | None:
    """The process's active cache, if any."""
    return _ACTIVE


def worker_init() -> None:
    """(Re)open the cache in a fresh pool worker.

    A forked worker inherits the parent's writer handle; it must never
    write through it (two processes appending to one segment would tear
    lines), so the inherited state is dropped and the cache reopened
    read-only from ``REPRO_CACHE`` -- the same environment contract
    ``REPRO_PROFILE`` uses for the profiler.
    """
    global _ACTIVE
    _ACTIVE = None
    from .._env import env_str

    root = env_str("REPRO_CACHE")
    if root:
        configure(root, writer=False)
