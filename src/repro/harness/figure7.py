"""Figure 7: the distribution of synthesis times for Forbid tests.

The paper's figure plots, for the 7-event x86 run, the cumulative
percentage of Forbid tests found against wall-clock time, observing that
98% of tests appear within the first 6% of the run.  This driver
computes the same curve from the per-test discovery timestamps recorded
by :func:`repro.enumeration.synthesise` and renders it as an ASCII plot
plus the headline percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..enumeration import SynthesisResult
from ..obs import TRACER
from .pipeline import CheckPipeline


@dataclass
class Figure7Result:
    arch: str
    max_events: int
    discovery_times: list[float]
    elapsed: float

    def fraction_found_by(self, t: float) -> float:
        if not self.discovery_times:
            return 0.0
        return sum(1 for d in self.discovery_times if d <= t) / len(
            self.discovery_times
        )

    def time_to_fraction(self, fraction: float) -> float:
        """Wall-clock time at which the given fraction of tests had been
        found."""
        if not self.discovery_times:
            return 0.0
        ordered = sorted(self.discovery_times)
        index = max(0, int(len(ordered) * fraction + 0.999999) - 1)
        return ordered[min(index, len(ordered) - 1)]

    def render(self, width: int = 60, height: int = 12) -> str:
        lines = [
            f"Figure 7 -- discovery-time distribution "
            f"({self.arch}, |E| ≤ {self.max_events}, "
            f"{len(self.discovery_times)} Forbid tests, "
            f"total {self.elapsed:.1f}s)"
        ]
        if not self.discovery_times:
            lines.append("(no tests found)")
            return "\n".join(lines)
        horizon = self.elapsed or max(self.discovery_times) or 1.0
        grid = [[" "] * width for _ in range(height)]
        for col in range(width):
            t = horizon * (col + 1) / width
            frac = self.fraction_found_by(t)
            row = int((height - 1) * (1 - frac))
            grid[row][col] = "*"
        for i, row in enumerate(grid):
            pct = round(100 * (1 - i / (height - 1)))
            lines.append(f"{pct:>4}% |" + "".join(row))
        lines.append("      +" + "-" * width)
        lines.append(
            f"       0s{'':{width - 12}}{horizon:.1f}s"
        )
        t50 = self.time_to_fraction(0.5)
        t98 = self.time_to_fraction(0.98)
        lines.append(
            f"50% of tests by {t50:.2f}s "
            f"({100 * t50 / horizon:.0f}% of the run); "
            f"98% by {t98:.2f}s ({100 * t98 / horizon:.0f}% of the run)"
        )
        return "\n".join(lines)


def run_figure7(
    arch: str = "x86",
    max_events: int = 4,
    time_budget: float | None = None,
    synthesis: SynthesisResult | None = None,
    pipeline: CheckPipeline | None = None,
    workers: int | None = None,
    checkpoint: str | Path | None = None,
    cache: str | Path | None = None,
) -> Figure7Result:
    """Regenerate Figure 7's curve at reproduction scale.

    With a shared ``pipeline``, the synthesis run is reused across
    Table 1 / Figure 7 / ablation drivers instead of recomputed.
    """
    if synthesis is None:
        if pipeline is None:
            with CheckPipeline(
                workers=workers, checkpoint=checkpoint, cache=cache
            ) as pipeline:
                return run_figure7(
                    arch, max_events, time_budget, synthesis, pipeline
                )
        pipeline.log_event(
            "driver.start", driver="figure7", arch=arch, max_events=max_events
        )
        with TRACER.span(f"figure7:{arch}"):
            synthesis = pipeline.synthesis(arch, max_events, time_budget)
        pipeline.log_event("driver.end", driver="figure7", arch=arch)
    return Figure7Result(
        arch=arch,
        max_events=max_events,
        discovery_times=list(synthesis.discovery_times),
        elapsed=synthesis.elapsed,
    )
