"""Suite export: the reproduction's analogue of the companion material.

The paper ships "the automatically-generated litmus tests used to
validate our models" as files.  :func:`export_suite` writes a synthesis
result to a directory: one ``.litmus`` file per test, one ``.dot``
diagram per generating execution, and a manifest tying them together.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..enumeration import SynthesisResult
from ..litmus.convert import execution_to_litmus
from ..litmus.diagram import to_dot
from ..litmus.format import write_litmus


def export_suite(
    synthesis: SynthesisResult,
    directory: str | Path,
    diagrams: bool = True,
) -> dict:
    """Write the Forbid and Allow suites to disk; returns the manifest."""
    root = Path(directory)
    manifest = {
        "target": synthesis.target,
        "max_events": synthesis.max_events,
        "complete": synthesis.complete,
        "elapsed_seconds": round(synthesis.elapsed, 3),
        "candidates_examined": synthesis.candidates_examined,
        "forbid": [],
        "allow": [],
    }
    for kind, executions in (
        ("forbid", synthesis.forbidden),
        ("allow", synthesis.allowed),
    ):
        kind_dir = root / kind
        kind_dir.mkdir(parents=True, exist_ok=True)
        for index, execution in enumerate(executions):
            name = f"{synthesis.target}-{kind}-{index:04d}"
            test = execution_to_litmus(execution, name)
            (kind_dir / f"{name}.litmus").write_text(
                write_litmus(test.program)
            )
            if diagrams:
                (kind_dir / f"{name}.dot").write_text(
                    to_dot(execution, name.replace("-", "_"))
                )
            manifest[kind].append(
                {
                    "name": name,
                    "events": len(execution),
                    "transactions": len(execution.txn_classes),
                    "co_fully_pinned": test.co_fully_pinned,
                }
            )
    (root / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return manifest
