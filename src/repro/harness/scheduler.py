"""Work-stealing sharded synthesis on top of :class:`CheckPipeline`.

:func:`synthesise_sharded` reproduces
:func:`repro.enumeration.synthesise` exactly -- same Forbid/Allow
suites, same order, same ``enumeration.*`` counters -- but evaluates
the candidate space in parallel work units.  The space is split by
canonical skeleton signature (:mod:`repro.enumeration.sharding`); each
shard's completion range is dispatched in chunks; idle workers steal
half of the largest remaining range.  Three properties carry the
design:

* **Determinism.**  Chunk *boundaries* are timing-dependent (stealing
  reacts to load), but chunk *contents* are pure index ranges, and the
  fold sorts payloads by ``(shard index, range start)`` before folding
  -- so the folded result is byte-identical at any ``--workers`` count,
  and identical to the sequential enumerator's output.
* **Self-description.**  A work unit is the tuple ``("synth_chunk",
  target, bound, signature, start, stop)`` and its payload repeats
  those coordinates, so a checkpoint can replay completed ranges as
  plain data on resume (:meth:`CheckpointStore.by_kind`) even though a
  resumed run's chunk boundaries never re-digest identically.
* **Global filtering stays in the parent.**  Workers apply the
  *per-candidate* filters (model-inconsistent, baseline-consistent,
  minimal) -- answering repeat verdicts from the verdict cache when one
  is active -- and ship survivors; the order-dependent steps (canonical
  dedup, discovery order, the Allow weakening pass) run in the fold,
  where the global ``seen`` set lives.

Scheduling counters: ``scheduler.chunks`` / ``scheduler.steals``
(steals are zero at ``--workers 1`` by construction: a slot always
prefers its own shard's remainder), plus per-shard
``synthesis.shard.<target>.b<n>.<label>.{completions,survivors,chunks,
steals}`` counters and a ``.seconds`` timer feeding the ``--stats``
per-shard summary.
"""

from __future__ import annotations

import queue
import time
from functools import partial
from typing import TYPE_CHECKING

from ..enumeration.canonical import canonical_key
from ..enumeration.config import EnumerationConfig, get_config
from ..enumeration.minimality import is_minimal_inconsistent, weakenings
from ..enumeration.sharding import (
    Signature,
    complete_shard_range,
    cumulative_counts,
    shard_completion_counts,
    shard_signatures,
    shard_skeletons,
    signature_label,
)
from ..enumeration.synthesis import SynthesisResult
from ..ir import model_digest
from ..models import get_model
from ..obs import REGISTRY, TRACER
from . import verdict_cache
from .checkpoint import job_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import CheckPipeline

#: Smallest range a dispatch or a steal will carve off.  Below this the
#: per-chunk overhead (pickling survivors, merging deltas) outweighs
#: the parallelism; a remainder smaller than ``2 *`` this is not worth
#: splitting.
MIN_CHUNK = 64


# ---------------------------------------------------------------------------
# Worker side: evaluating one shard job (module-level for pickling)
# ---------------------------------------------------------------------------

#: (target, bound, signature) → (skeletons, cumulative completion counts),
#: built once per worker process per shard it touches.
_SPACE_CACHE: dict[tuple, tuple[list, list[int]]] = {}

#: target → (config, model, baseline, model digest, baseline digest).
_TARGET_CACHE: dict[str, tuple] = {}


def _target_context(target: str):
    context = _TARGET_CACHE.get(target)
    if context is None:
        config = get_config(target)
        model = get_model(config.model_name)
        baseline = model.baseline()
        context = (
            config,
            model,
            baseline,
            model_digest(model),
            model_digest(baseline),
        )
        _TARGET_CACHE[target] = context
    return context


def _shard_space(target: str, bound: int, signature: Signature):
    key = (target, bound, signature)
    space = _SPACE_CACHE.get(key)
    if space is None:
        config = _target_context(target)[0]
        skeletons = shard_skeletons(config, signature)
        cumulative = cumulative_counts(
            shard_completion_counts(config, signature)
        )
        space = (skeletons, cumulative)
        _SPACE_CACHE[key] = space
    return space


def _cached_consistent(model, digest: str | None):
    """``model.consistent`` routed through the active verdict cache.

    Falls back to the bare method when no cache is active or the model
    has no stable digest (never serve a verdict we cannot key safely).
    """
    cache = verdict_cache.active()
    if cache is None or digest is None:
        return model.consistent

    def consistent(execution) -> bool:
        exec_digest = verdict_cache.execution_digest(execution)
        hit, verdict = cache.lookup(digest, exec_digest, "consistent")
        if hit:
            return bool(verdict)
        verdict = model.consistent(execution)
        cache.record(digest, exec_digest, "consistent", verdict)
        return verdict

    return consistent


def run_shard_job(job: tuple):
    """Evaluate one shard work unit (runs in pool workers or inline).

    * ``("synth_count", target, bound, sig)`` → skeleton/completion
      counts for one shard;
    * ``("synth_chunk", target, bound, sig, start, stop)`` → the chunk
      payload: per-outcome counters plus the surviving (forbidden-
      candidate) executions as JSON, echoing its own coordinates so the
      parent can fold and checkpoint it as self-contained data.
    """
    kind = job[0]
    if kind == "synth_count":
        _, target, bound, signature = job
        signature = tuple(signature)
        skeletons, cumulative = _shard_space(target, bound, signature)
        return {
            "skeletons": len(skeletons),
            "completions": cumulative[-1] if cumulative else 0,
        }
    if kind != "synth_chunk":
        raise ValueError(f"unknown shard job kind {kind!r}")
    _, target, bound, signature, start, stop = job
    signature = tuple(signature)
    config, model, baseline, model_dig, baseline_dig = _target_context(target)
    skeletons, cumulative = _shard_space(target, bound, signature)
    model_consistent = _cached_consistent(model, model_dig)
    baseline_consistent = _cached_consistent(baseline, baseline_dig)

    from ..fuzz.corpus import execution_to_json

    counters = {
        "candidates": 0,
        "pruned_consistent": 0,
        "pruned_baseline": 0,
        "pruned_nonminimal": 0,
    }
    survivors: list[dict] = []
    began = time.monotonic()
    label = signature_label(signature)
    with TRACER.span(
        f"shard:{target}:b{bound}:{label}", start=start, stop=stop
    ):
        for x in complete_shard_range(skeletons, cumulative, start, stop):
            counters["candidates"] += 1
            if model_consistent(x):
                counters["pruned_consistent"] += 1
                continue
            if not baseline_consistent(x):
                counters["pruned_baseline"] += 1
                continue  # not a transactional relaxation
            if not is_minimal_inconsistent(
                x,
                model,
                config,
                known_inconsistent=True,
                consistent=model_consistent,
            ):
                counters["pruned_nonminimal"] += 1
                continue
            survivors.append(execution_to_json(x))
    return {
        "target": target,
        "bound": bound,
        "sig": list(signature),
        "start": start,
        "stop": stop,
        "counters": counters,
        "survivors": survivors,
        "seconds": time.monotonic() - began,
    }


# ---------------------------------------------------------------------------
# Parent side: the work-stealing dispatch loop
# ---------------------------------------------------------------------------


class _Interval:
    """One undispatched completion range of one shard, owned by the
    slot currently working that shard (or by nobody)."""

    __slots__ = ("shard", "start", "stop", "owner")

    def __init__(self, shard: int, start: int, stop: int, owner=None):
        self.shard = shard
        self.start = start
        self.stop = stop
        self.owner = owner

    def __len__(self) -> int:
        return max(0, self.stop - self.start)


class WorkStealingScheduler:
    """Drains one event bound's shard ranges through the pipeline.

    Slot-affinity dispatch: a freed slot first continues its own
    interval (front chunk, binary halving down to :data:`MIN_CHUNK`),
    then claims an unowned interval in shard order, and only then
    *steals* -- splitting the largest interval owned by a busy slot and
    taking the back half.  Stealing therefore never happens at
    ``workers=1``, and the per-chunk payload fold is independent of who
    evaluated what.
    """

    def __init__(
        self,
        pipeline: "CheckPipeline",
        target: str,
        bound: int,
        signatures: list[Signature],
        remaining: dict[int, list[tuple[int, int]]],
        deadline: float | None,
    ):
        self.pipeline = pipeline
        self.target = target
        self.bound = bound
        self.signatures = signatures
        self.deadline = deadline
        self.intervals: list[_Interval] = [
            _Interval(shard, start, stop)
            for shard in sorted(remaining)
            for start, stop in remaining[shard]
            if stop > start
        ]
        self.payloads: list[dict] = []
        self.timed_out = False
        self._chunks = REGISTRY.counter("scheduler.chunks")
        self._steals = REGISTRY.counter("scheduler.steals")

    def _shard_counter(self, shard: int, field: str):
        label = signature_label(self.signatures[shard])
        return REGISTRY.counter(
            f"synthesis.shard.{self.target}.b{self.bound}.{label}.{field}"
        )

    def _next_chunk(self, slot) -> tuple | None:
        """Pick the next range for a freed slot (None: nothing left)."""
        interval = self._own_interval(slot) or self._unowned_interval(slot)
        if interval is None:
            interval = self._steal(slot)
        if interval is None:
            return None
        size = max(MIN_CHUNK, len(interval) // 2)
        start = interval.start
        stop = min(interval.stop, start + size)
        interval.start = stop
        if not len(interval):
            self.intervals.remove(interval)
        self._chunks.inc()
        self._shard_counter(interval.shard, "chunks").inc()
        sig = self.signatures[interval.shard]
        return ("synth_chunk", self.target, self.bound, sig, start, stop)

    def _own_interval(self, slot) -> _Interval | None:
        for interval in self.intervals:
            if interval.owner == slot and len(interval):
                return interval
        return None

    def _unowned_interval(self, slot) -> _Interval | None:
        for interval in self.intervals:
            if interval.owner is None and len(interval):
                interval.owner = slot
                return interval
        return None

    def _steal(self, slot) -> _Interval | None:
        victim = max(self.intervals, key=len, default=None)
        if victim is None or len(victim) < 2 * MIN_CHUNK:
            return None
        mid = victim.start + len(victim) // 2
        stolen = _Interval(victim.shard, mid, victim.stop, owner=slot)
        victim.stop = mid
        self.intervals.append(stolen)
        self._steals.inc()
        self._shard_counter(victim.shard, "steals").inc()
        return stolen

    def _record(self, job: tuple, payload: dict) -> None:
        store = self.pipeline.checkpoint
        if store is not None:
            store.record(job_digest(job), payload, kind="synth_chunk")

    def run(self) -> list[dict]:
        """Drain every interval; returns the chunk payloads (unsorted)."""
        from .pipeline import _merge_worker_delta

        results: queue.Queue = queue.Queue()
        inflight: dict[object, tuple] = {}
        idle = list(range(self.pipeline.workers))
        while True:
            if self.deadline is not None and time.monotonic() > self.deadline:
                self.timed_out = True
            if not self.timed_out:
                for slot in list(idle):
                    job = self._next_chunk(slot)
                    if job is None:
                        # This slot found nothing to run *or steal*, but a
                        # later idle slot may still own an unfinished
                        # interval too small to steal -- keep trying them.
                        continue
                    idle.remove(slot)
                    inflight[slot] = job
                    self.pipeline.submit(
                        run_shard_job, job, partial(_deliver, results, slot)
                    )
            if not inflight:
                break
            slot, (payload, delta, error) = _take(results)
            job = inflight.pop(slot)
            idle.append(slot)
            if delta is not None:
                _merge_worker_delta(
                    delta, cache=self.pipeline.verdict_cache
                )
            if error is not None:
                raise error
            self._record(job, payload)
            self._fold_chunk_metrics(payload)
            self.payloads.append(payload)
        return self.payloads

    def _fold_chunk_metrics(self, payload: dict) -> None:
        sig = tuple(payload["sig"])
        label = signature_label(sig)
        base = f"synthesis.shard.{self.target}.b{self.bound}.{label}"
        REGISTRY.counter(f"{base}.completions").inc(
            payload["counters"]["candidates"]
        )
        REGISTRY.counter(f"{base}.survivors").inc(len(payload["survivors"]))
        REGISTRY.timer(f"{base}.seconds").observe(payload.get("seconds", 0.0))


def _deliver(results: queue.Queue, slot, packed) -> None:
    """The submit callback: hand the packed triple to the scheduler's
    thread (runs on the pool's result-handler thread)."""
    results.put((slot, packed))


def _take(results: queue.Queue):
    """One completed (slot, packed-result) pair.

    Sequential pipelines invoke the callback inline, so the queue is
    never empty when this is reached; pool pipelines block here until a
    worker finishes.
    """
    return results.get()


# ---------------------------------------------------------------------------
# The sharded synthesis driver (what CheckPipeline.synthesis calls)
# ---------------------------------------------------------------------------


def _recorded_ranges(
    pipeline: "CheckPipeline",
    target: str,
    bound: int,
    signatures: list[Signature],
) -> tuple[list[dict], dict[int, list[tuple[int, int]]]]:
    """Previously checkpointed chunk payloads for this bound, plus the
    completion ranges they cover, per shard index."""
    payloads: list[dict] = []
    covered: dict[int, list[tuple[int, int]]] = {}
    store = pipeline.checkpoint
    if store is None:
        return payloads, covered
    index_of = {sig: i for i, sig in enumerate(signatures)}
    for payload in store.by_kind("synth_chunk"):
        if not isinstance(payload, dict):
            continue
        if payload.get("target") != target or payload.get("bound") != bound:
            continue
        shard = index_of.get(tuple(payload.get("sig", ())))
        if shard is None:
            continue
        payloads.append(payload)
        covered.setdefault(shard, []).append(
            (payload["start"], payload["stop"])
        )
    return payloads, covered


def _gaps(
    total: int, covered: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """The sub-ranges of ``[0, total)`` not covered by ``covered``."""
    out: list[tuple[int, int]] = []
    position = 0
    for start, stop in sorted(covered):
        if start > position:
            out.append((position, min(start, total)))
        position = max(position, stop)
    if position < total:
        out.append((position, total))
    return out


def synthesise_sharded(
    target: str,
    max_events: int,
    time_budget: float | None = None,
    pipeline: "CheckPipeline | None" = None,
) -> SynthesisResult:
    """Sharded, work-stealing :func:`repro.enumeration.synthesise`.

    Byte-identical to the sequential enumerator at any worker count
    (pinned by ``tests/test_sharding.py``); only wall-clock and the
    ``scheduler.*`` counters vary.  Model/config overrides are not
    supported here -- experiments that inject custom models (the RTL
    bug hunt) keep using the sequential path.
    """
    if pipeline is None:
        from .pipeline import CheckPipeline

        with CheckPipeline() as own:
            return synthesise_sharded(target, max_events, time_budget, own)

    config = get_config(target)
    result = SynthesisResult(target=target, max_events=max_events)
    started = time.monotonic()
    deadline = None if time_budget is None else started + time_budget
    seen_forbidden: set[tuple] = set()

    with TRACER.span(f"synthesis:{target}"):
        for bound in range(2, max_events + 1):
            if deadline is not None and time.monotonic() > deadline:
                result.complete = False
                break
            _sharded_bound(
                result,
                pipeline,
                target,
                bound,
                config,
                seen_forbidden,
                started,
                deadline,
            )
            if not result.complete:
                break

        # Allow = one-step weakenings of the Forbid tests, deduplicated
        # (identical to the sequential enumerator's pass).
        with TRACER.span(f"synthesis:{target}:weakenings"):
            seen_allowed: set[tuple] = set()
            for x in result.forbidden:
                for child in weakenings(x, config):
                    if len(child) == 0:
                        continue
                    key = canonical_key(child)
                    if key in seen_allowed or key in seen_forbidden:
                        continue
                    seen_allowed.add(key)
                    result.allowed.append(child)

    result.elapsed = time.monotonic() - started
    return result


def _sharded_bound(
    result: SynthesisResult,
    pipeline: "CheckPipeline",
    target: str,
    bound: int,
    config: EnumerationConfig,
    seen_forbidden: set[tuple],
    started: float,
    deadline: float | None,
) -> None:
    """One event bound: count shards, drain ranges, fold in order."""
    from ..fuzz.corpus import execution_from_json

    prefix = f"enumeration.{target}.bound{bound}"
    signatures = list(shard_signatures(config, bound))
    with TRACER.span(f"synthesis:{target}:bound{bound}"), REGISTRY.timed(
        f"{prefix}.seconds"
    ):
        counts = pipeline.map_checkpointed(
            run_shard_job,
            [("synth_count", target, bound, sig) for sig in signatures],
            kind="synth_count",
        )
        REGISTRY.counter(f"{prefix}.skeletons").inc(
            sum(count["skeletons"] for count in counts)
        )
        resumed, covered = _recorded_ranges(
            pipeline, target, bound, signatures
        )
        remaining = {
            shard: _gaps(counts[shard]["completions"], covered.get(shard, []))
            for shard in range(len(signatures))
        }
        scheduler = WorkStealingScheduler(
            pipeline, target, bound, signatures, remaining, deadline
        )
        fresh = scheduler.run()
        if scheduler.timed_out:
            result.complete = False

        index_of = {sig: i for i, sig in enumerate(signatures)}
        ordered = sorted(
            resumed + fresh,
            key=lambda p: (index_of[tuple(p["sig"])], p["start"]),
        )
        c_candidates = REGISTRY.counter(f"{prefix}.candidates")
        c_consistent = REGISTRY.counter(f"{prefix}.pruned_consistent")
        c_baseline = REGISTRY.counter(f"{prefix}.pruned_baseline")
        c_nonminimal = REGISTRY.counter(f"{prefix}.pruned_nonminimal")
        c_duplicate = REGISTRY.counter(f"{prefix}.pruned_duplicate")
        c_forbidden = REGISTRY.counter(f"{prefix}.forbidden")
        for payload in ordered:
            counters = payload["counters"]
            result.candidates_examined += counters["candidates"]
            c_candidates.inc(counters["candidates"])
            c_consistent.inc(counters["pruned_consistent"])
            c_baseline.inc(counters["pruned_baseline"])
            c_nonminimal.inc(counters["pruned_nonminimal"])
            for encoded in payload["survivors"]:
                x = execution_from_json(encoded)
                key = canonical_key(x)
                if key in seen_forbidden:
                    c_duplicate.inc()
                    continue
                seen_forbidden.add(key)
                c_forbidden.inc()
                result.forbidden.append(x)
                result.discovery_times.append(time.monotonic() - started)
