"""Batched litmus-checking pipeline.

The experiment drivers (Tables 1 and 2, Figure 7, the axiom ablation)
all reduce to long lists of independent jobs: "would this litmus test be
observable on that machine?", "is this execution consistent under that
model?".  :class:`CheckPipeline` evaluates such job lists through one
shared cache layer:

* **synthesis cache** -- Table 1, Figure 7, and the ablation all consume
  the same :func:`~repro.enumeration.synthesise` run; the pipeline
  computes it once per ``(arch, max_events, time_budget)``.
* **batched evaluation** -- jobs are submitted as a list and evaluated
  in order, either sequentially (the default) or fanned out across a
  ``multiprocessing`` pool (``workers > 1``, or the
  ``REPRO_PIPELINE_WORKERS`` environment variable).  Results are
  returned in submission order, so verdicts are identical either way.

Jobs reference hardware and models *by name* so that worker processes
can rebuild them locally instead of pickling model objects; each worker
keeps a per-process registry.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence

from ..enumeration import SynthesisResult, synthesise
from ..models import get_model
from ..models.base import MemoryModel

# ---------------------------------------------------------------------------
# Per-process registries (shared by the driver process and pool workers)
# ---------------------------------------------------------------------------

_HARDWARE_CACHE: dict[str, object] = {}
_MODEL_CACHE: dict[tuple[str, tuple[str, ...]], MemoryModel] = {}


def hardware_for(arch: str):
    """The simulated machine validating ``arch`` litmus tests."""
    machine = _HARDWARE_CACHE.get(arch)
    if machine is None:
        from ..sim import OracleHardware, TSOHardware

        if arch == "x86":
            machine = TSOHardware()
        elif arch == "power":
            machine = OracleHardware.power8(get_model("powertm"))
        elif arch == "armv8":
            machine = OracleHardware(get_model("armv8tm"), name="ARM-sim")
        else:
            raise ValueError(f"no simulated hardware for {arch!r}")
        _HARDWARE_CACHE[arch] = machine
    return machine


def model_for(name: str, drop_axioms: tuple[str, ...] = ()) -> MemoryModel:
    """A (possibly axiom-filtered) model instance, cached per process."""
    key = (name, drop_axioms)
    model = _MODEL_CACHE.get(key)
    if model is None:
        model = get_model(name)
        if drop_axioms:
            from ..sim import FilteredModel

            model = FilteredModel(model, drop_axioms=drop_axioms)
        _MODEL_CACHE[key] = model
    return model


# ---------------------------------------------------------------------------
# Job evaluation (top-level so pool workers can unpickle it)
# ---------------------------------------------------------------------------


def run_job(job: tuple):
    """Evaluate one job tuple; the first element selects the kind.

    * ``("observable", arch, program, intended_co)`` → bool
    * ``("consistent", model_name, drop_axioms, execution)`` → bool
    * ``("violated", model_name, drop_axioms, execution)`` → list[str]
    """
    kind = job[0]
    if kind == "observable":
        _, arch, program, intended_co = job
        return hardware_for(arch).observable(program, intended_co)
    if kind == "consistent":
        _, name, drop, execution = job
        return model_for(name, drop).consistent(execution)
    if kind == "violated":
        _, name, drop, execution = job
        return model_for(name, drop).violated_axioms(execution)
    raise ValueError(f"unknown job kind {kind!r}")


class CheckPipeline:
    """Evaluates batches of checking jobs through shared caches.

    Args:
        workers: fan-out width.  ``None`` reads ``REPRO_PIPELINE_WORKERS``
            (defaulting to sequential); ``0``/``1`` force sequential
            evaluation; larger values use a ``multiprocessing`` pool.
    """

    def __init__(self, workers: int | None = None):
        if workers is None:
            workers = int(os.environ.get("REPRO_PIPELINE_WORKERS", "1"))
        self.workers = max(1, workers)
        self._synthesis_cache: dict[tuple, SynthesisResult] = {}
        self._pool = None

    # The pipeline owns one worker pool across batches; drivers issue
    # several small batches (one per test size), so per-batch pool
    # spawn/teardown would eat the fan-out benefit.

    def close(self) -> None:
        """Shut down the worker pool (no-op when sequential).

        Uses ``Pool.close()`` + ``join()`` -- a graceful drain -- rather
        than ``terminate()``, which can kill in-flight jobs mid-batch
        and leave a concurrently-submitted batch partially evaluated.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "CheckPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:
            pass

    # -- shared synthesis ------------------------------------------------

    def synthesis(
        self,
        arch: str,
        max_events: int,
        time_budget: float | None = None,
    ) -> SynthesisResult:
        """``synthesise(arch, max_events)``, computed once per pipeline."""
        key = (arch, max_events, time_budget)
        if key not in self._synthesis_cache:
            self._synthesis_cache[key] = synthesise(
                arch, max_events, time_budget=time_budget
            )
        return self._synthesis_cache[key]

    # -- batched evaluation ----------------------------------------------

    def map(self, fn: Callable, items: Sequence) -> list:
        """Ordered map over independent items, optionally fanned out.

        ``fn`` must be a module-level callable when ``workers > 1``
        (pool workers import it by qualified name).
        """
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            import multiprocessing

            # Jobs reference hardware/models by name, so both start
            # methods are safe; prefer fork for lower start-up cost.
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._pool = context.Pool(self.workers)
        return self._pool.map(fn, items)

    def run_jobs(self, jobs: Iterable[tuple]) -> list:
        """Evaluate job tuples (see :func:`run_job`) in submission order."""
        return self.map(run_job, list(jobs))

    def observable_batch(
        self, arch: str, tests: Sequence[tuple[object, dict | None]]
    ) -> list[bool]:
        """Batch of ``(program, intended_co)`` hardware validations."""
        return self.run_jobs(
            ("observable", arch, program, intended_co)
            for program, intended_co in tests
        )

    def consistency_batch(
        self,
        model_name: str,
        executions: Sequence,
        drop_axioms: tuple[str, ...] = (),
    ) -> list[bool]:
        """Batch of model-consistency checks, models referenced by name."""
        return self.run_jobs(
            ("consistent", model_name, drop_axioms, x) for x in executions
        )

    def violated_axioms_batch(
        self, model_name: str, executions: Sequence
    ) -> list[list[str]]:
        """Batch of violated-axiom queries."""
        return self.run_jobs(
            ("violated", model_name, (), x) for x in executions
        )
