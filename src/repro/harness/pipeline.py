"""Batched litmus-checking pipeline.

The experiment drivers (Tables 1 and 2, Figure 7, the axiom ablation)
all reduce to long lists of independent jobs: "would this litmus test be
observable on that machine?", "is this execution consistent under that
model?".  :class:`CheckPipeline` evaluates such job lists through one
shared cache layer:

* **synthesis cache** -- Table 1, Figure 7, and the ablation all consume
  the same :func:`~repro.enumeration.synthesise` run; the pipeline
  computes it once per ``(arch, max_events, time_budget)``.
* **batched evaluation** -- jobs are submitted as a list and evaluated
  in order, either sequentially (the default) or fanned out across a
  ``multiprocessing`` pool (``workers > 1``, or the
  ``REPRO_PIPELINE_WORKERS`` environment variable).  Results are
  returned in submission order, so verdicts are identical either way.
* **checkpoint/resume** -- with a ``checkpoint`` path, every completed
  job appends one JSONL record keyed by its stable digest
  (:func:`~repro.harness.checkpoint.job_digest`); a restarted run skips
  the recorded jobs and re-evaluates only the remainder, incrementally
  (records land as each job finishes, not when the batch does).
* **retry/backoff + observability** -- failing jobs retry with
  exponential backoff, slow jobs are flagged against a soft timeout,
  and per-job wall time, queue wait, and worker utilization land in
  :data:`repro.obs.REGISTRY` (both as timers and as log2 histograms
  with p50/p90/p99).  Pool workers accumulate per-process and ship
  deltas back with each result -- merge-on-join -- and the payload now
  carries the worker's finished span trees and profiler samples too:
  each job's span is grafted under the parent's open ``pipeline.batch``
  span tagged with the worker pid, so ``--stats`` and ``--trace``
  finally show where worker time goes.
* **run-event log** -- with a checkpoint configured (or an explicit
  ``runlog`` path) the pipeline appends JSONL progress events
  (``run.start``/``run.batch``/``run.heartbeat``/``run.end`` with
  throughput and ETA) next to the checkpoint file.

Jobs reference hardware and models *by name* so that worker processes
can rebuild them locally instead of pickling model objects; each worker
keeps a per-process registry.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from .._env import env_float, env_int
from ..enumeration import SynthesisResult
from ..models import get_model
from ..models.base import MemoryModel
from ..obs import PROFILER, REGISTRY, TRACER, RunLog, reset_observability
from . import verdict_cache as _verdict_cache
from .checkpoint import CheckpointStore, job_digest

#: Seconds between ``run.heartbeat`` events while a batch drains.
_HEARTBEAT_SECONDS = 30.0

# ---------------------------------------------------------------------------
# Per-process registries (shared by the driver process and pool workers)
# ---------------------------------------------------------------------------

_HARDWARE_CACHE: dict[str, object] = {}
_MODEL_CACHE: dict[tuple[str, tuple[str, ...]], MemoryModel] = {}


def hardware_for(arch: str):
    """The simulated machine validating ``arch`` litmus tests."""
    machine = _HARDWARE_CACHE.get(arch)
    if machine is None:
        from ..sim import OracleHardware, TSOHardware

        if arch == "x86":
            machine = TSOHardware()
        elif arch == "power":
            machine = OracleHardware.power8(get_model("powertm"))
        elif arch == "armv8":
            machine = OracleHardware(get_model("armv8tm"), name="ARM-sim")
        elif arch == "sc":
            # Idealised sequentially-consistent machine: the TSC model
            # itself plays the hardware oracle, so the SC/TSC rows of
            # Table 1 can run through the same pipeline as the relaxed
            # architectures.
            machine = OracleHardware(get_model("tsc"), name="SC-sim")
        else:
            raise ValueError(f"no simulated hardware for {arch!r}")
        _HARDWARE_CACHE[arch] = machine
    return machine


def model_for(name: str, drop_axioms: tuple[str, ...] = ()) -> MemoryModel:
    """A (possibly axiom-filtered) model instance, cached per process."""
    key = (name, drop_axioms)
    model = _MODEL_CACHE.get(key)
    if model is None:
        model = get_model(name)
        if drop_axioms:
            from ..sim import FilteredModel

            model = FilteredModel(model, drop_axioms=drop_axioms)
        _MODEL_CACHE[key] = model
    return model


# ---------------------------------------------------------------------------
# Job evaluation (top-level so pool workers can unpickle it)
# ---------------------------------------------------------------------------


#: (model name, dropped axioms) → stable model digest (or None when the
#: model cannot be digested and the verdict cache must be bypassed).
_MODEL_DIGEST_CACHE: dict[tuple[str, tuple[str, ...]], str | None] = {}


def _model_digest_for(name: str, drop_axioms: tuple[str, ...]) -> str | None:
    key = (name, drop_axioms)
    if key not in _MODEL_DIGEST_CACHE:
        from ..ir import model_digest

        _MODEL_DIGEST_CACHE[key] = model_digest(model_for(name, drop_axioms))
    return _MODEL_DIGEST_CACHE[key]


def _cached_verdict(kind: str, name: str, drop: tuple, execution):
    """A model verdict, answered from the active verdict cache when the
    model has a stable digest; computed (and recorded) otherwise."""
    model = model_for(name, drop)
    compute = (
        model.consistent if kind == "consistent" else model.violated_axioms
    )
    cache = _verdict_cache.active()
    if cache is None:
        return compute(execution)
    model_dig = _model_digest_for(name, drop)
    if model_dig is None:
        return compute(execution)
    exec_dig = _verdict_cache.execution_digest(execution)
    hit, verdict = cache.lookup(model_dig, exec_dig, kind)
    if hit:
        return bool(verdict) if kind == "consistent" else list(verdict)
    verdict = compute(execution)
    cache.record(model_dig, exec_dig, kind, verdict)
    return verdict


def run_job(job: tuple):
    """Evaluate one job tuple; the first element selects the kind.

    * ``("observable", arch, program, intended_co)`` → bool
    * ``("consistent", model_name, drop_axioms, execution)`` → bool
    * ``("violated", model_name, drop_axioms, execution)`` → list[str]

    Model verdicts (``consistent``/``violated``) go through the
    process-active verdict cache when one is configured; hardware
    observability runs the operational machines and is never cached.
    """
    kind = job[0]
    if kind == "observable":
        _, arch, program, intended_co = job
        return hardware_for(arch).observable(program, intended_co)
    if kind in ("consistent", "violated"):
        _, name, drop, execution = job
        return _cached_verdict(kind, name, drop, execution)
    raise ValueError(f"unknown job kind {kind!r}")


# ---------------------------------------------------------------------------
# Instrumented, retrying job invocation (sequential path and pool workers)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobPolicy:
    """Retry and soft-timeout policy for one pipeline's jobs.

    ``retries`` failing attempts re-run with exponential backoff
    (``backoff * 2**attempt`` seconds); a job slower than
    ``soft_timeout`` seconds is *flagged* (counter
    ``pipeline.jobs.soft_timeouts``), not killed -- verdicts stay
    deterministic, and the flag tells the operator which batches need a
    tighter bound or more workers.
    """

    retries: int = 0
    backoff: float = 0.05
    soft_timeout: float | None = None


def _job_span_name(fn: Callable, item) -> str:
    """A stable span name for one job: the job-tuple kind when there is
    one, the mapped function's name otherwise (fuzz cases)."""
    if isinstance(item, tuple) and item and isinstance(item[0], str):
        return f"job:{item[0]}"
    return f"job:{getattr(fn, '__name__', 'call')}"


def _invoke_with_policy(fn: Callable, item, submitted: float, policy: JobPolicy):
    """One instrumented job evaluation: queue wait, retries, wall time.

    Each job runs inside its own span -- a child of the open
    ``pipeline.batch`` span on the sequential path, a root span in a
    pool worker (shipped to the parent with the job's result).
    """
    start = time.monotonic()
    wait = start - submitted
    REGISTRY.timer("pipeline.job.queue_wait_seconds").observe(wait)
    REGISTRY.histogram("pipeline.job.queue_wait_seconds").observe(wait)
    attempt = 0
    with TRACER.span(_job_span_name(fn, item)):
        while True:
            try:
                result = fn(item)
                break
            except Exception:
                if attempt >= policy.retries:
                    REGISTRY.counter("pipeline.jobs.failed").inc()
                    raise
                REGISTRY.counter("pipeline.jobs.retries").inc()
                time.sleep(policy.backoff * (2**attempt))
                attempt += 1
    elapsed = time.monotonic() - start
    REGISTRY.timer("pipeline.job.seconds").observe(elapsed)
    REGISTRY.histogram("pipeline.job.seconds").observe(elapsed)
    REGISTRY.counter("pipeline.jobs.completed").inc()
    if policy.soft_timeout is not None and elapsed > policy.soft_timeout:
        REGISTRY.counter("pipeline.jobs.soft_timeouts").inc()
    return result


class _PoolTask:
    """The picklable callable shipped to pool workers.

    Returns ``(result, delta, error)`` where ``delta`` bundles the
    worker's metrics delta, its finished span trees, its profiler
    samples, and its pid, so the parent can merge all of them even when
    the job failed; the parent re-raises ``error`` after merging.
    """

    __slots__ = ("fn", "policy")

    def __init__(self, fn: Callable, policy: JobPolicy):
        self.fn = fn
        self.policy = policy

    def _delta(self) -> dict:
        cache = _verdict_cache.active()
        return {
            "pid": os.getpid(),
            "metrics": REGISTRY.flush_delta(),
            "spans": TRACER.flush_roots(),
            "profile": PROFILER.flush_delta(),
            "verdicts": cache.flush_pending() if cache is not None else (),
        }

    def __call__(self, packed):
        submitted, item = packed
        try:
            result = _invoke_with_policy(self.fn, item, submitted, self.policy)
            return result, self._delta(), None
        except Exception as error:
            return None, self._delta(), error


def _merge_worker_delta(delta: dict, cache=None) -> None:
    """Fold one worker payload into the parent's registry, tracer (spans
    grafted under the open ``pipeline.batch`` span, tagged by pid),
    profiler, and -- when the pipeline owns a verdict ``cache`` -- the
    cache (the worker's freshly computed verdicts get persisted)."""
    REGISTRY.merge(delta["metrics"])
    spans = delta.get("spans")
    if spans:
        TRACER.graft(spans, tags={"pid": delta["pid"]})
    PROFILER.merge(delta.get("profile"))
    verdicts = delta.get("verdicts")
    if cache is not None and verdicts:
        cache.absorb(verdicts)


def _pool_worker_init() -> None:
    """Reset the worker's observability state after fork/spawn.

    A forked worker inherits a copy of the parent's registry, span roots
    and profiler samples; without a reset its first flush would
    re-report everything the parent had already accumulated.  (The
    profiler's *enabled* flag survives the reset via the
    ``REPRO_PROFILE`` environment variable, which ``--profile`` sets;
    the verdict cache likewise reopens read-only from ``REPRO_CACHE``.)
    """
    reset_observability()
    _verdict_cache.worker_init()


class CheckPipeline:
    """Evaluates batches of checking jobs through shared caches.

    Args:
        workers: fan-out width.  ``None`` reads ``REPRO_WORKERS``
            (defaulting to sequential; the legacy
            ``REPRO_PIPELINE_WORKERS`` spelling still works, with a
            deprecation warning); ``0``/``1`` force sequential
            evaluation; larger values use a ``multiprocessing`` pool.
        checkpoint: optional path to a JSONL checkpoint file.  Completed
            jobs append one record each; a restarted pipeline pointed at
            the same file skips them (see :mod:`repro.harness.checkpoint`).
        retries / retry_backoff / soft_timeout: per-job
            :class:`JobPolicy` knobs.  ``None`` reads the
            ``REPRO_RETRIES`` / ``REPRO_BACKOFF`` /
            ``REPRO_SOFT_TIMEOUT`` environment variables.
        runlog: optional path for the JSONL run-event log.  ``None``
            derives ``<checkpoint stem>.events.jsonl`` next to the
            checkpoint file when one is configured (no checkpoint, no
            log); ``False`` disables the log explicitly.
        cache: optional directory for the cross-run verdict cache
            (:mod:`repro.harness.verdict_cache`).  ``None`` reads
            ``REPRO_CACHE``.  The parent opens it as the single writer
            and exports ``REPRO_CACHE`` so pool workers reopen it
            read-only after fork/spawn.
    """

    def __init__(
        self,
        workers: int | None = None,
        checkpoint: str | Path | None = None,
        retries: int | None = None,
        retry_backoff: float | None = None,
        soft_timeout: float | None = None,
        runlog: str | Path | None | bool = None,
        cache: str | Path | None = None,
    ):
        if workers is None:
            workers = env_int("REPRO_WORKERS", 1)
        self.workers = max(1, workers)
        if retries is None:
            retries = env_int("REPRO_RETRIES", 0)
        if retry_backoff is None:
            retry_backoff = env_float("REPRO_BACKOFF", 0.05)
        if soft_timeout is None:
            soft_timeout = env_float("REPRO_SOFT_TIMEOUT", None)
        self.policy = JobPolicy(
            retries=retries, backoff=retry_backoff, soft_timeout=soft_timeout
        )
        self.checkpoint = (
            CheckpointStore(checkpoint) if checkpoint is not None else None
        )
        if cache is None:
            from .._env import env_str

            cache = env_str("REPRO_CACHE")
        self._cache_env_set = False
        if cache is not None:
            self.verdict_cache = _verdict_cache.configure(cache, writer=True)
            if os.environ.get("REPRO_CACHE") != str(cache):
                os.environ["REPRO_CACHE"] = str(cache)
                self._cache_env_set = True
        else:
            self.verdict_cache = None
        if runlog is None and checkpoint is not None:
            path = Path(checkpoint)
            runlog = path.with_name(path.stem + ".events.jsonl")
        self.runlog = RunLog(runlog) if runlog else None
        self._jobs_done = 0
        self._last_heartbeat = time.monotonic()
        self._synthesis_cache: dict[tuple, SynthesisResult] = {}
        self._pool = None
        REGISTRY.gauge("pipeline.workers").set(self.workers)
        self.log_event(
            "run.start",
            workers=self.workers,
            retries=self.policy.retries,
            soft_timeout=self.policy.soft_timeout,
            checkpoint=str(checkpoint) if checkpoint is not None else None,
            cache=str(cache) if cache is not None else None,
            profile=PROFILER.enabled,
        )

    def log_event(self, type: str, **fields) -> None:
        """Append one event to the run log (no-op without one)."""
        if self.runlog is not None:
            self.runlog.event(type, **fields)

    def _heartbeat(self, done: int, total: int, started: float) -> None:
        """Emit a throttled ``run.heartbeat`` with rate and ETA while a
        batch (or batched campaign) drains."""
        if self.runlog is None:
            return
        now = time.monotonic()
        if now - self._last_heartbeat < _HEARTBEAT_SECONDS:
            return
        self._last_heartbeat = now
        elapsed = now - started
        rate = done / elapsed if elapsed > 0 else None
        eta = (total - done) / rate if rate else None
        self.log_event(
            "run.heartbeat",
            done=done,
            total=total,
            rate_per_s=round(rate, 3) if rate is not None else None,
            eta_seconds=round(eta, 1) if eta is not None else None,
        )

    # The pipeline owns one worker pool across batches; drivers issue
    # several small batches (one per test size), so per-batch pool
    # spawn/teardown would eat the fan-out benefit.

    def close(self) -> None:
        """Shut down the worker pool (no-op when sequential).

        Uses ``Pool.close()`` + ``join()`` -- a graceful drain -- rather
        than ``terminate()``, which can kill in-flight jobs mid-batch
        and leave a concurrently-submitted batch partially evaluated.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self.checkpoint is not None:
            self.checkpoint.close()
        if self.verdict_cache is not None:
            if _verdict_cache.active() is self.verdict_cache:
                _verdict_cache.deactivate()
            else:
                self.verdict_cache.close()
            self.verdict_cache = None
            if self._cache_env_set:
                os.environ.pop("REPRO_CACHE", None)
                self._cache_env_set = False
        if self.runlog is not None:
            self.log_event("run.end", jobs=self._jobs_done)
            self.runlog.close()
            self.runlog = None

    def __enter__(self) -> "CheckPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:
            pass

    # -- shared synthesis ------------------------------------------------

    def synthesis(
        self,
        arch: str,
        max_events: int,
        time_budget: float | None = None,
    ) -> SynthesisResult:
        """Sharded synthesis for ``arch``, computed once per pipeline.

        Runs through the work-stealing scheduler
        (:func:`repro.harness.scheduler.synthesise_sharded`): the
        enumeration fans out across this pipeline's workers and reuses
        its checkpoint and verdict cache, with results byte-identical
        to the sequential :func:`repro.enumeration.synthesise`.
        """
        key = (arch, max_events, time_budget)
        if key not in self._synthesis_cache:
            from .scheduler import synthesise_sharded

            self._synthesis_cache[key] = synthesise_sharded(
                arch, max_events, time_budget=time_budget, pipeline=self
            )
        return self._synthesis_cache[key]

    # -- batched evaluation ----------------------------------------------

    def map(
        self,
        fn: Callable,
        items: Sequence,
        on_result: Callable[[int, object], None] | None = None,
    ) -> list:
        """Ordered map over independent items, optionally fanned out.

        ``fn`` must be a module-level callable when ``workers > 1``
        (pool workers import it by qualified name).  ``on_result`` fires
        in submission order as each result lands -- the checkpoint hook,
        so completed work survives a crash mid-batch.
        """
        items = list(items)
        with TRACER.span("pipeline.batch"), REGISTRY.timed(
            "pipeline.batch.seconds"
        ):
            busy_before = REGISTRY.timer("pipeline.job.seconds").total
            batch_start = time.monotonic()
            if self.workers <= 1 or len(items) <= 1:
                results = []
                for index, item in enumerate(items):
                    result = _invoke_with_policy(
                        fn, item, time.monotonic(), self.policy
                    )
                    if on_result is not None:
                        on_result(index, result)
                    results.append(result)
                    self._heartbeat(index + 1, len(items), batch_start)
            else:
                results = self._map_pool(fn, items, on_result)
            wall = time.monotonic() - batch_start
            if wall > 0 and items:
                busy = REGISTRY.timer("pipeline.job.seconds").total - busy_before
                REGISTRY.gauge("pipeline.worker_utilization").set(
                    min(1.0, busy / (wall * self.workers))
                )
        self._jobs_done += len(items)
        if items:
            self.log_event(
                "run.batch",
                jobs=len(items),
                seconds=round(wall, 4),
                rate_per_s=round(len(items) / wall, 3) if wall > 0 else None,
            )
        return results

    def map_batched(
        self,
        fn: Callable,
        generate: Callable[[int, int], Sequence],
        total: int,
        batch_size: int,
        on_batch: Callable[[int, Sequence, list], None],
    ) -> int:
        """Feedback loop: generate a batch, map it, fold, repeat.

        For drivers whose inputs depend on earlier outputs (the fuzzer's
        coverage-guided mutation pool): ``generate(start, count)``
        produces the next batch in the parent, the batch fans out
        through :meth:`map`, then ``on_batch(start, items, results)``
        folds the ordered results back before the next batch is
        generated.  ``batch_size`` must not depend on the worker count,
        or the generation sequence (and anything derived from it, like a
        fuzz corpus) stops being reproducible across ``--workers``
        settings.  Returns the number of items processed.
        """
        produced = 0
        started = time.monotonic()
        while produced < total:
            count = min(batch_size, total - produced)
            items = list(generate(produced, count))
            if not items:
                break
            results = self.map(fn, items)
            on_batch(produced, items, results)
            produced += len(items)
            self._heartbeat(produced, total, started)
        return produced

    def _map_pool(
        self,
        fn: Callable,
        items: list,
        on_result: Callable[[int, object], None] | None,
    ) -> list:
        """Fan ``items`` out across the worker pool, in order.

        Uses ``imap`` (not ``map``) so results stream back as they
        complete: each one is checkpointed and its worker's metrics
        delta merged immediately.  A job error is re-raised in the
        parent *after* the merge, with every earlier result recorded.
        """
        self._ensure_pool()
        submitted = time.monotonic()
        task = _PoolTask(fn, self.policy)
        results = []
        for index, (result, delta, error) in enumerate(
            self._pool.imap(task, [(submitted, item) for item in items])
        ):
            _merge_worker_delta(delta, cache=self.verdict_cache)
            if error is not None:
                raise error
            if on_result is not None:
                on_result(index, result)
            results.append(result)
            self._heartbeat(index + 1, len(items), submitted)
        return results

    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        import multiprocessing

        # Jobs reference hardware/models by name, so both start
        # methods are safe; prefer fork for lower start-up cost.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._pool = context.Pool(self.workers, initializer=_pool_worker_init)

    def submit(self, fn: Callable, item, callback: Callable) -> None:
        """Asynchronously evaluate one job (the scheduler's dispatch).

        ``callback`` receives the packed ``(result, delta, error)``
        triple -- ``delta`` is ``None`` on the sequential path, a
        worker delta otherwise.  On a pool pipeline the callback fires
        on the pool's result-handler thread, so it must only hand the
        triple off (the scheduler queues it back to its own thread);
        sequential pipelines invoke it inline, before returning.
        Job errors are *delivered*, not raised: the caller decides
        where to re-raise.
        """
        if self.workers <= 1:
            try:
                result = _invoke_with_policy(
                    fn, item, time.monotonic(), self.policy
                )
                callback((result, None, None))
            except Exception as error:
                callback((None, None, error))
            return
        self._ensure_pool()
        task = _PoolTask(fn, self.policy)
        self._pool.apply_async(
            task,
            ((time.monotonic(), item),),
            callback=callback,
            error_callback=lambda error: callback((None, None, error)),
        )

    def map_checkpointed(
        self,
        fn: Callable,
        items: Sequence,
        kind: str = "map",
        encode: Callable = lambda result: result,
        decode: Callable = lambda record: record,
    ) -> list:
        """:meth:`map` with per-item checkpoint records.

        Each item is digested (:func:`~repro.harness.checkpoint.
        job_digest`); items whose digests are already in the store are
        answered from disk (``decode`` of the stored record), the rest
        are evaluated and recorded (``encode`` must make the result
        JSON-serialisable).  Without a checkpoint this is plain
        :meth:`map`.
        """
        items = list(items)
        store = self.checkpoint
        if store is None:
            return self.map(fn, items)
        digests = [job_digest(item) for item in items]
        results: list = [None] * len(items)
        pending: list[int] = []
        for index, digest in enumerate(digests):
            if digest in store:
                results[index] = decode(store.get(digest))
            else:
                pending.append(index)
        hits = len(items) - len(pending)
        REGISTRY.counter("pipeline.checkpoint.lookups").inc(len(items))
        REGISTRY.counter("pipeline.checkpoint.hits").inc(hits)
        REGISTRY.counter("pipeline.checkpoint.misses").inc(len(pending))

        def record(position: int, result) -> None:
            index = pending[position]
            store.record(digests[index], encode(result), kind)
            results[index] = result

        if pending:
            self.map(fn, [items[i] for i in pending], on_result=record)
        return results

    def run_jobs(self, jobs: Iterable[tuple]) -> list:
        """Evaluate job tuples (see :func:`run_job`) in submission order.

        With a checkpoint configured, previously completed jobs are
        answered from the store and only the remainder is evaluated.
        """
        jobs = list(jobs)
        kind = jobs[0][0] if jobs else "job"
        return self.map_checkpointed(run_job, jobs, kind=kind)

    def observable_batch(
        self, arch: str, tests: Sequence[tuple[object, dict | None]]
    ) -> list[bool]:
        """Batch of ``(program, intended_co)`` hardware validations."""
        return self.run_jobs(
            ("observable", arch, program, intended_co)
            for program, intended_co in tests
        )

    def consistency_batch(
        self,
        model_name: str,
        executions: Sequence,
        drop_axioms: tuple[str, ...] = (),
    ) -> list[bool]:
        """Batch of model-consistency checks, models referenced by name."""
        return self.run_jobs(
            ("consistent", model_name, drop_axioms, x) for x in executions
        )

    def violated_axioms_batch(
        self, model_name: str, executions: Sequence
    ) -> list[list[str]]:
        """Batch of violated-axiom queries."""
        return self.run_jobs(
            ("violated", model_name, (), x) for x in executions
        )
