"""Axiom ablation: which TM axiom pays for which Forbid test?

The paper's models add several transactional axioms per architecture
(StrongIsol, TxnOrder, TxnCancelsRMW, the tfence strengthening, Power's
tprop/thb terms).  This driver quantifies each axiom's contribution to
the synthesised Forbid suite: for every test, which axioms it violates,
and for every axiom, how many tests *only* it catches -- the ablation
study behind statements like "the §6.2 suite catches TxnOrder bugs".

A test is attributed to an axiom as *sole catcher* when dropping that
axiom (and nothing else) makes the test consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..enumeration import SynthesisResult
from ..obs import TRACER
from .pipeline import CheckPipeline


@dataclass
class AblationResult:
    target: str
    total_tests: int
    #: axiom → number of Forbid tests violating it
    violation_counts: dict[str, int] = field(default_factory=dict)
    #: axiom → number of Forbid tests ONLY it catches
    sole_catcher_counts: dict[str, int] = field(default_factory=dict)
    #: tests that remain forbidden after dropping each single TM axiom
    never_escaping: int = 0

    def render(self) -> str:
        lines = [
            f"Axiom ablation -- {self.target} "
            f"({self.total_tests} Forbid tests)",
            f"{'axiom':<16} {'violated by':>12} {'sole catcher of':>16}",
        ]
        for axiom in sorted(self.violation_counts):
            lines.append(
                f"{axiom:<16} {self.violation_counts[axiom]:>12} "
                f"{self.sole_catcher_counts.get(axiom, 0):>16}"
            )
        lines.append(
            f"tests caught redundantly by several axioms: "
            f"{self.never_escaping}"
        )
        return "\n".join(lines)


def run_ablation(
    target: str,
    max_events: int = 3,
    synthesis: SynthesisResult | None = None,
    pipeline: CheckPipeline | None = None,
    workers: int | None = None,
    checkpoint: str | Path | None = None,
    cache: str | Path | None = None,
) -> AblationResult:
    """Attribute each synthesised Forbid test to the axioms catching it.

    All model checks go through the batched ``pipeline``: one batch of
    violated-axiom queries, then one batch of dropped-axiom consistency
    probes for the (test, axiom) pairs that need them.  A privately
    constructed pipeline is closed (worker pool drained) before return.
    """
    if pipeline is None:
        with CheckPipeline(
            workers=workers, checkpoint=checkpoint, cache=cache
        ) as pipeline:
            return run_ablation(target, max_events, synthesis, pipeline)
    pipeline.log_event(
        "driver.start", driver="ablation", arch=target, max_events=max_events
    )
    with TRACER.span(f"ablation:{target}"):
        result = _run_ablation(target, max_events, synthesis, pipeline)
    pipeline.log_event("driver.end", driver="ablation", arch=target)
    return result


def _run_ablation(
    target: str,
    max_events: int,
    synthesis: SynthesisResult | None,
    pipeline: CheckPipeline,
) -> AblationResult:
    if synthesis is None:
        synthesis = pipeline.synthesis(target, max_events)
    model_name = f"{target}tm" if target != "sc" else "tsc"

    result = AblationResult(
        target=target, total_tests=len(synthesis.forbidden)
    )

    violated_per_test = pipeline.violated_axioms_batch(
        model_name, synthesis.forbidden
    )
    probes = [
        (index, axiom)
        for index, violated in enumerate(violated_per_test)
        for axiom in violated
    ]
    probe_verdicts = pipeline.run_jobs(
        ("consistent", model_name, (axiom,), synthesis.forbidden[index])
        for index, axiom in probes
    )
    escapes_per_test: dict[int, list[str]] = {}
    for (index, axiom), escaped in zip(probes, probe_verdicts):
        if escaped:
            escapes_per_test.setdefault(index, []).append(axiom)

    for index, violated in enumerate(violated_per_test):
        for axiom in violated:
            result.violation_counts[axiom] = (
                result.violation_counts.get(axiom, 0) + 1
            )
        escapes = escapes_per_test.get(index, [])
        if len(escapes) == 1:
            result.sole_catcher_counts[escapes[0]] = (
                result.sole_catcher_counts.get(escapes[0], 0) + 1
            )
        elif not escapes:
            result.never_escaping += 1
    return result
