"""Verdicts for every execution discussed in the paper.

A one-stop regeneration of the paper's figure-level claims: each row
names the execution (figure / section), the model judging it, the
verdict our implementation computes, and the verdict the paper states.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalog import classics, figures
from ..models import get_model


@dataclass(frozen=True)
class FigureClaim:
    label: str
    model: str
    expected_allowed: bool
    execution_factory: object


@dataclass
class FiguresResult:
    rows: list[tuple[FigureClaim, bool]] = field(default_factory=list)

    @property
    def all_match(self) -> bool:
        return all(
            claim.expected_allowed == got for claim, got in self.rows
        )

    def render(self) -> str:
        lines = [
            "Paper figures -- model verdicts",
            f"{'execution':<34} {'model':<10} {'paper':<8} {'ours':<8} ok",
        ]
        for claim, got in self.rows:
            expected = "allow" if claim.expected_allowed else "forbid"
            actual = "allow" if got else "forbid"
            ok = "OK" if expected == actual else "MISMATCH"
            lines.append(
                f"{claim.label:<34} {claim.model:<10} {expected:<8} "
                f"{actual:<8} {ok}"
            )
        lines.append(
            "all verdicts match the paper"
            if self.all_match
            else "SOME VERDICTS DIFFER FROM THE PAPER"
        )
        return "\n".join(lines)


CLAIMS: tuple[FigureClaim, ...] = (
    FigureClaim("Fig 1 (plain)", "x86", True, figures.fig1),
    FigureClaim("Fig 2 (transactional)", "x86tm", False, figures.fig2),
    FigureClaim("Fig 2 under baseline", "x86", True, figures.fig2),
    FigureClaim("Fig 3a", "sc", True, figures.fig3a),
    FigureClaim("Fig 3a", "tsc", False, figures.fig3a),
    FigureClaim("Fig 3b", "sc", True, figures.fig3b),
    FigureClaim("Fig 3b", "tsc", False, figures.fig3b),
    FigureClaim("Fig 3c", "sc", True, figures.fig3c),
    FigureClaim("Fig 3c", "tsc", False, figures.fig3c),
    FigureClaim("Fig 3d", "sc", True, figures.fig3d),
    FigureClaim("Fig 3d", "tsc", False, figures.fig3d),
    FigureClaim("§5.2 (1) integrated barrier", "powertm", False,
                figures.power_integrated_barrier),
    FigureClaim("§5.2 (2) txn multicopy-atomic", "powertm", False,
                figures.power_txn_multicopy_atomic),
    FigureClaim("§5.2 (3) txn ordering", "powertm", False,
                figures.power_txn_ordering),
    FigureClaim("§5.2 (3) one txn (observed)", "powertm", True,
                figures.power_txn_ordering_single),
    FigureClaim("Remark 5.1 first", "powertm", True, figures.remark51_first),
    FigureClaim("Remark 5.1 second", "powertm", True, figures.remark51_second),
    FigureClaim("§8.1 split RMW", "powertm", False,
                figures.monotonicity_split_rmw),
    FigureClaim("§8.1 coalesced RMW", "powertm", True,
                figures.monotonicity_joined_rmw),
    FigureClaim("§8.1 split RMW", "armv8tm", False,
                figures.monotonicity_split_rmw),
    FigureClaim("§8.1 coalesced RMW", "armv8tm", True,
                figures.monotonicity_joined_rmw),
    FigureClaim("§9 comparison (MP-txn)", "cpptm", False,
                figures.dongol_comparison),
    FigureClaim("§9 comparison (MP-txn)", "powertm", False,
                figures.dongol_comparison),
    FigureClaim("Fig 10 / Ex 1.1 concrete", "armv8tm", True,
                figures.fig10_concrete),
    FigureClaim("Fig 10 after DMB fix", "armv8tm", False,
                figures.fig10_concrete_fixed),
    FigureClaim("§B second elision c'ex", "armv8tm", True,
                figures.appendix_b_concrete),
    FigureClaim("SB", "sc", False, classics.sb),
    FigureClaim("SB", "x86", True, classics.sb),
    FigureClaim("SB both txn", "x86tm", False, classics.sb_txn),
    FigureClaim("MP+dmb, txn reader (§6.2)", "armv8tm", False,
                classics.mp_txn_reader),
)


def run_figures() -> FiguresResult:
    result = FiguresResult()
    for claim in CLAIMS:
        model = get_model(claim.model)
        execution = claim.execution_factory()
        result.rows.append((claim, model.consistent(execution)))
    return result
