"""Table 1: synthesis counts and hardware validation for x86 and Power.

For each event bound the paper reports: synthesis time, the number of
Forbid tests (with Seen / Not-seen tallies against hardware) and the
number of Allow tests (likewise).  This driver regenerates the table
with our bounds and simulated machines:

* x86 "hardware" is the operational TSO+TSX machine;
* Power "hardware" is the POWER8-like oracle (model-exact, minus LB
  shapes, which POWER8 has never exhibited -- §5.3).

The expected shape: **no Forbid test is ever seen** (the models are not
too strong) and **most Allow tests are seen** (not too weak), with
Power's unseen Allow tests dominated by LB shapes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from pathlib import Path

from ..enumeration import SynthesisResult
from ..litmus import execution_to_litmus
from ..obs import TRACER
from .pipeline import CheckPipeline, hardware_for


@dataclass
class Table1Row:
    events: int
    synthesis_time: float
    forbid_total: int
    forbid_seen: int
    allow_total: int
    allow_seen: int
    complete: bool

    @property
    def forbid_not_seen(self) -> int:
        return self.forbid_total - self.forbid_seen

    @property
    def allow_not_seen(self) -> int:
        return self.allow_total - self.allow_seen


@dataclass
class Table1Result:
    arch: str
    machine: str
    rows: list[Table1Row] = field(default_factory=list)
    synthesis: SynthesisResult | None = None
    #: Allow tests that went unseen, with whether they are LB-shaped
    unseen_allow_lb_shaped: int = 0
    unseen_allow_total: int = 0

    def render(self) -> str:
        lines = [
            f"Table 1 -- {self.arch} (machine: {self.machine})",
            f"{'|E|':>4} {'synth(s)':>9}  "
            f"{'Forbid T':>8} {'S':>4} {'¬S':>4}  "
            f"{'Allow T':>8} {'S':>4} {'¬S':>4}",
        ]
        for row in self.rows:
            marker = "" if row.complete else " (non-exhaustive)"
            lines.append(
                f"{row.events:>4} {row.synthesis_time:>9.1f}  "
                f"{row.forbid_total:>8} {row.forbid_seen:>4} "
                f"{row.forbid_not_seen:>4}  "
                f"{row.allow_total:>8} {row.allow_seen:>4} "
                f"{row.allow_not_seen:>4}{marker}"
            )
        total_f = sum(r.forbid_total for r in self.rows)
        total_fs = sum(r.forbid_seen for r in self.rows)
        total_a = sum(r.allow_total for r in self.rows)
        total_as = sum(r.allow_seen for r in self.rows)
        lines.append(
            f"Total ({self.arch}): Forbid {total_f} (seen {total_fs}), "
            f"Allow {total_a} (seen {total_as})"
        )
        if self.unseen_allow_total:
            lines.append(
                f"Unseen Allow tests: {self.unseen_allow_total}, of which "
                f"{self.unseen_allow_lb_shaped} are LB-shaped"
            )
        return "\n".join(lines)


def _is_lb_shaped(execution) -> bool:
    """LB shapes carry a po ∪ rf cycle (§5.3's unobserved family)."""
    return not (execution.po | execution.rf).is_acyclic()


def run_table1(
    arch: str,
    max_events: int = 4,
    time_budget: float | None = None,
    synthesis: SynthesisResult | None = None,
    pipeline: CheckPipeline | None = None,
    workers: int | None = None,
    checkpoint: str | Path | None = None,
    cache: str | Path | None = None,
) -> Table1Result:
    """Regenerate Table 1 for one architecture.

    Hardware validation runs through the batched ``pipeline`` (shared
    synthesis cache, optional multiprocessing fan-out); verdicts are
    identical to the sequential path by construction.  A privately
    constructed pipeline is closed (worker pool drained) before return;
    with ``checkpoint``, a killed run restarts from the recorded jobs,
    and ``cache`` names a cross-run verdict-cache directory.
    """
    if pipeline is None:
        with CheckPipeline(
            workers=workers, checkpoint=checkpoint, cache=cache
        ) as pipeline:
            return run_table1(
                arch, max_events, time_budget, synthesis, pipeline
            )
    pipeline.log_event(
        "driver.start", driver="table1", arch=arch, max_events=max_events
    )
    with TRACER.span(f"table1:{arch}"):
        result = _run_table1(arch, max_events, time_budget, synthesis, pipeline)
    pipeline.log_event("driver.end", driver="table1", arch=arch)
    return result


def _run_table1(
    arch: str,
    max_events: int,
    time_budget: float | None,
    synthesis: SynthesisResult | None,
    pipeline: CheckPipeline,
) -> Table1Result:
    if synthesis is None:
        synthesis = pipeline.synthesis(arch, max_events, time_budget)
    result = Table1Result(
        arch=arch, machine=hardware_for(arch).name, synthesis=synthesis
    )

    forbid_by_size = synthesis.forbidden_by_size()
    allow_by_size = synthesis.allowed_by_size()
    # Attribute the synthesis wall-clock to the largest bound (the
    # enumeration is cumulative); report per-size discovery spans.
    sizes = sorted(set(forbid_by_size) | set(allow_by_size))

    for size in sizes:
        start = time.monotonic()
        forbid_tests = [
            execution_to_litmus(x, f"{arch}-forbid-{size}-{i}")
            for i, x in enumerate(forbid_by_size.get(size, []))
        ]
        allow_tests = [
            execution_to_litmus(x, f"{arch}-allow-{size}-{i}")
            for i, x in enumerate(allow_by_size.get(size, []))
        ]
        verdicts = pipeline.observable_batch(
            arch,
            [
                (test.program, test.intended_co)
                for test in forbid_tests + allow_tests
            ],
        )
        forbid_seen = sum(verdicts[: len(forbid_tests)])
        allow_seen = 0
        for seen, x in zip(
            verdicts[len(forbid_tests) :], allow_by_size.get(size, [])
        ):
            if seen:
                allow_seen += 1
            else:
                result.unseen_allow_total += 1
                if _is_lb_shaped(x):
                    result.unseen_allow_lb_shaped += 1
        result.rows.append(
            Table1Row(
                events=size,
                synthesis_time=(
                    synthesis.elapsed if size == max(sizes) else 0.0
                )
                + (time.monotonic() - start),
                forbid_total=len(forbid_tests),
                forbid_seen=forbid_seen,
                allow_total=len(allow_tests),
                allow_seen=allow_seen,
                complete=synthesis.complete,
            )
        )
    return result
