"""Command-line driver: regenerate any of the paper's artifacts.

Usage::

    repro-harness table1 --arch x86 --events 4
    repro-harness table1 --arch power --events 4 --workers 4 \\
        --checkpoint results/table1-power.jsonl --stats
    repro-harness table2
    repro-harness figure7 --arch x86 --events 4
    repro-harness rtl-bug
    repro-harness figures
    repro-harness fuzz --arch x86 --seed 7 --budget 200
    repro-harness stats results/metrics-table1.json

The long-running drivers (``table1``, ``table2``, ``figure7``,
``ablation``) and ``fuzz`` share one flag vocabulary (one argparse
parent each for the pipeline and observability groups): ``--workers``
(multiprocessing fan-out), ``--checkpoint`` (JSONL file; a killed run
restarted with the same path resumes instead of recomputing),
``--cache`` (cross-run verdict-cache directory -- a warm rerun answers
repeat model verdicts from disk), ``--stats [PATH]`` (dump the
merged observability metrics as JSON, by default next to ``results/``),
``--trace [PATH]`` (Chrome trace-event JSON over the merged span
forest, loadable in Perfetto, one lane per worker pid), and
``--profile [PATH]`` (per-IR-plan-node cost attribution: hot-node
table + planner-calibration report on stderr, samples as JSON;
``--profile-dot PREFIX`` additionally writes one annotated Graphviz
file per profiled model).  The ``stats`` subcommand pretty-prints a
stats dump.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _observability_parent() -> argparse.ArgumentParser:
    """The shared ``--stats/--trace/--profile`` flags, as an argparse
    *parent* so every long-running subcommand spells them identically."""
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument(
        "--stats",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help=(
            "write merged metrics JSON after the run "
            "(default FILE: results/metrics-<command>.json)"
        ),
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help=(
            "write a Chrome trace-event JSON (Perfetto-loadable) after "
            "the run (default FILE: results/trace-<command>.json)"
        ),
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help=(
            "enable the per-IR-plan-node profiler; prints the hot-node "
            "table and calibration report, writes samples as JSON "
            "(default FILE: results/profile-<command>.json)"
        ),
    )
    parser.add_argument(
        "--profile-dot",
        default=None,
        metavar="PREFIX",
        help=(
            "with --profile: write Graphviz plan DAGs annotated with "
            "observed cost, one <PREFIX>-<model>.dot per profiled model"
        ),
    )
    return parser


def _pipeline_parent() -> argparse.ArgumentParser:
    """The shared ``--workers/--checkpoint/--cache`` pipeline flags."""
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="JSONL checkpoint file; rerun with the same file to resume",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help=(
            "cross-run verdict-cache directory (default: REPRO_CACHE); "
            "a warm rerun answers repeat model verdicts from disk"
        ),
    )
    return parser


def _apply_profile(args: argparse.Namespace) -> None:
    """Turn the profiler on before the run when ``--profile`` was given.

    Also exports ``REPRO_PROFILE=1`` so pool workers (whose init resets
    observability state back to the environment's defaults) come up
    profiling too, under both fork and spawn start methods.
    """
    if getattr(args, "profile", None) is None:
        return
    os.environ["REPRO_PROFILE"] = "1"
    from ..obs import PROFILER

    PROFILER.enable()


def _write_stats(args: argparse.Namespace) -> None:
    if getattr(args, "stats", None) is None:
        return
    from ..obs import write_stats

    path = args.stats or f"results/metrics-{args.command}.json"
    write_stats(path)
    print(f"metrics written to {path}", file=sys.stderr)


def _write_trace(args: argparse.Namespace) -> None:
    if getattr(args, "trace", None) is None:
        return
    from ..obs import write_chrome_trace

    path = args.trace or f"results/trace-{args.command}.json"
    write_chrome_trace(path)
    print(f"trace written to {path} (open in ui.perfetto.dev)", file=sys.stderr)


def _write_profile(args: argparse.Namespace) -> None:
    if getattr(args, "profile", None) is None:
        return
    from pathlib import Path

    from ..obs import PROFILER

    print(PROFILER.hot_table(20), file=sys.stderr)
    print(PROFILER.calibration_report(), file=sys.stderr)
    path = Path(args.profile or f"results/profile-{args.command}.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(PROFILER.snapshot(), indent=2) + "\n")
    print(f"profile written to {path}", file=sys.stderr)
    prefix = getattr(args, "profile_dot", None)
    if prefix:
        from .pipeline import model_for

        for name in sorted(PROFILER.snapshot()["plans"]):
            try:
                plan = model_for(name).plan()
            except Exception:
                continue
            dot_path = Path(f"{prefix}-{name}.dot")
            dot_path.parent.mkdir(parents=True, exist_ok=True)
            dot_path.write_text(PROFILER.dot(plan) + "\n")
            print(f"plan DAG written to {dot_path}", file=sys.stderr)


def _write_run_outputs(args: argparse.Namespace) -> None:
    """All post-run observability artifacts (--stats/--trace/--profile)."""
    _write_stats(args)
    _write_trace(args)
    _write_profile(args)


#: Span children rendered per node before eliding (big fan-out batches
#: would otherwise swamp the digest with thousands of per-job lines).
_MAX_SPAN_CHILDREN = 12


def _render_span(span: dict, parent_elapsed: float | None, depth: int, lines: list) -> None:
    elapsed = span.get("elapsed", 0.0)
    try:
        elapsed = float(elapsed)
    except (TypeError, ValueError):
        elapsed = 0.0
    share = ""
    if parent_elapsed:
        share = f" ({100 * elapsed / parent_elapsed:5.1f}% of parent)"
    tags = span.get("tags") or {}
    tag_text = "".join(f" {k}={tags[k]}" for k in sorted(tags))
    lines.append(
        f"  {'  ' * depth}{span.get('name', '?')} "
        f"{elapsed:9.3f}s{share}{tag_text}"
    )
    children = span.get("children") or []
    for child in children[:_MAX_SPAN_CHILDREN]:
        _render_span(child, elapsed, depth + 1, lines)
    hidden = children[_MAX_SPAN_CHILDREN:]
    if hidden:
        hidden_s = sum(
            child.get("elapsed", 0.0)
            for child in hidden
            if isinstance(child.get("elapsed", 0.0), (int, float))
        )
        lines.append(
            f"  {'  ' * (depth + 1)}... ({len(hidden)} more children, "
            f"{hidden_s:.3f}s)"
        )


#: Top-level dump keys with a dedicated rendering section below; any
#: other key is rendered generically instead of silently dropped.
_KNOWN_DUMP_KEYS = frozenset(
    (
        "hit_rates",
        "timers",
        "histograms",
        "counters",
        "gauges",
        "uniques",
        "spans",
        "profile",
    )
)


def _render_shard_summary(counters: dict, timers: dict, lines: list) -> None:
    """One line per synthesis shard, folded from the
    ``synthesis.shard.<target>.b<n>.<label>.<field>`` counters."""
    shards: dict[str, dict] = {}
    for name, value in counters.items():
        if not name.startswith("synthesis.shard."):
            continue
        base, _, field = name.rpartition(".")
        shards.setdefault(base, {})[field] = value
    if not shards:
        return
    lines.append("synthesis shards:")
    for base in sorted(shards):
        fields = shards[base]
        timer = timers.get(f"{base}.seconds")
        seconds = ""
        if isinstance(timer, dict):
            try:
                seconds = f" {float(timer['total']):8.3f}s"
            except (KeyError, TypeError, ValueError):
                pass
        lines.append(
            f"  {base.removeprefix('synthesis.shard.'):<32} "
            f"completions={fields.get('completions', 0):<8} "
            f"survivors={fields.get('survivors', 0):<5} "
            f"chunks={fields.get('chunks', 0):<4} "
            f"steals={fields.get('steals', 0):<4}{seconds}"
        )


def _render_stats_dump(dump: dict) -> str:
    """A human-oriented digest of a ``--stats`` JSON dump.

    Tolerates malformed records (hand-edited dumps, older versions):
    a timer/histogram entry that is not a dict, or is missing
    ``count``/``total``, is flagged as partial instead of crashing the
    renderer.  Unrecognised top-level keys (dumps from newer versions)
    are rendered generically rather than silently omitted.
    """
    lines = ["cache hit rates:"]
    hit_rates = dump.get("hit_rates", {})
    if any(rate is not None for rate in hit_rates.values()):
        for name in sorted(hit_rates):
            rate = hit_rates[name]
            if rate is not None:
                lines.append(f"  {name:<28} {100 * rate:6.2f}%")
    else:
        lines.append("  (none recorded)")
    timers = dump.get("timers", {})
    if timers:
        lines.append("timings:")
        for name in sorted(timers):
            t = timers[name]
            try:
                count = int(t["count"])
                total = float(t["total"])
                maximum = float(t.get("max", 0.0))
            except (TypeError, KeyError, ValueError):
                lines.append(f"  {name:<36} (partial record: {t!r})")
                continue
            mean = total / count if count else 0.0
            lines.append(
                f"  {name:<36} n={count:<8} total={total:9.3f}s "
                f"mean={mean:.6f}s max={maximum:.6f}s"
            )
    histograms = dump.get("histograms", {})
    if histograms:
        lines.append("latency histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            try:
                count = int(h["count"])
                p50 = float(h.get("p50", 0.0))
                p90 = float(h.get("p90", 0.0))
                p99 = float(h.get("p99", 0.0))
                maximum = float(h.get("max", 0.0))
            except (TypeError, KeyError, ValueError):
                lines.append(f"  {name:<36} (partial record: {h!r})")
                continue
            lines.append(
                f"  {name:<36} n={count:<8} p50={p50:.6f}s "
                f"p90={p90:.6f}s p99={p99:.6f}s max={maximum:.6f}s"
            )
    counters = dump.get("counters", {})
    _render_shard_summary(
        counters if isinstance(counters, dict) else {},
        timers if isinstance(timers, dict) else {},
        lines,
    )
    if counters:
        plain = {
            name: value
            for name, value in counters.items()
            if not name.startswith("synthesis.shard.")
        }
        if plain:
            lines.append("counters:")
            for name in sorted(plain):
                lines.append(f"  {name:<36} {plain[name]}")
    gauges = dump.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<36} {gauges[name]}")
    uniques = dump.get("uniques", {})
    if uniques:
        lines.append("distinct keys:")
        for name in sorted(uniques):
            lines.append(f"  {name:<36} {uniques[name]}")
    spans = dump.get("spans") or []
    if spans:
        lines.append("spans:")
        for root in spans:
            if isinstance(root, dict):
                _render_span(root, None, 0, lines)
    profile = dump.get("profile") or {}
    nodes = profile.get("nodes") or []
    if nodes:
        lines.append("hot plan nodes (self time):")
        for n in nodes[:10]:
            lines.append(
                f"  {n.get('self_seconds', 0.0):9.4f}s "
                f"{n.get('label', '?'):<20} "
                f"[{n.get('model', '?')}/{n.get('constraint', '?')}] "
                f"evals={n.get('count', 0)} hits={n.get('hits', 0)}"
            )
    unknown = sorted(set(dump) - _KNOWN_DUMP_KEYS)
    for key in unknown:
        rendered = json.dumps(dump[key], sort_keys=True, default=str)
        if len(rendered) > 200:
            rendered = rendered[:200] + "..."
        lines.append(f"{key}: {rendered}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'The Semantics of "
            "Transactions and Weak Memory in x86, Power, ARM, and C++' "
            "(PLDI 2018)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    pipeline_parent = _pipeline_parent()
    obs_parent = _observability_parent()
    shared = [pipeline_parent, obs_parent]

    p_t1 = sub.add_parser(
        "table1", help="synthesis + hardware validation", parents=shared
    )
    p_t1.add_argument("--arch", default="x86", choices=("x86", "power", "armv8"))
    p_t1.add_argument("--events", type=int, default=4)
    p_t1.add_argument("--time-budget", type=float, default=None)

    sub.add_parser("table2", help="metatheory summary", parents=shared)

    p_f7 = sub.add_parser(
        "figure7", help="discovery-time distribution", parents=shared
    )
    p_f7.add_argument("--arch", default="x86", choices=("x86", "power", "armv8"))
    p_f7.add_argument("--events", type=int, default=4)
    p_f7.add_argument("--time-budget", type=float, default=None)

    sub.add_parser("rtl-bug", help="the §6.2 buggy-RTL detection story")
    sub.add_parser("figures", help="verdicts for every paper figure")

    p_ab = sub.add_parser(
        "ablation", help="per-axiom Forbid attribution", parents=shared
    )
    p_ab.add_argument("--arch", default="x86", choices=("x86", "power", "armv8"))
    p_ab.add_argument("--events", type=int, default=3)

    p_ex = sub.add_parser("export", help="write Forbid/Allow suites to disk")
    p_ex.add_argument("--arch", default="x86", choices=("x86", "power", "armv8"))
    p_ex.add_argument("--events", type=int, default=3)
    p_ex.add_argument("--out", default="suites")

    p_fz = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing across verdict paths",
        parents=shared,
    )
    p_fz.add_argument(
        "--arch",
        default="x86",
        choices=("x86", "power", "armv8", "cpp", "sc"),
        help="architecture whose event vocabulary drives generation",
    )
    p_fz.add_argument(
        "--seed",
        type=int,
        default=None,
        help="campaign seed (default: REPRO_SEED or 0)",
    )
    p_fz.add_argument(
        "--budget", type=int, default=200, help="number of cases to evaluate"
    )
    p_fz.add_argument(
        "--max-events", type=int, default=7, help="largest generated execution"
    )
    p_fz.add_argument(
        "--mode",
        default="all",
        choices=("all", "diff", "meta"),
        help="oracle matrix only (diff), metamorphic only (meta), or both",
    )
    p_fz.add_argument(
        "--shrink",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="delta-debug each disagreement to a minimal witness",
    )
    p_fz.add_argument(
        "--corpus",
        default="results/fuzz-corpus.jsonl",
        metavar="FILE",
        help="JSONL witness corpus ('' disables writing)",
    )
    p_fz.add_argument(
        "--seed-corpus",
        default=None,
        metavar="FILE",
        help="existing corpus whose executions seed the mutation pool",
    )
    p_fz.add_argument(
        "--replay",
        default=None,
        metavar="DIGEST",
        help="re-evaluate one corpus witness by digest prefix and exit",
    )

    p_st = sub.add_parser("stats", help="pretty-print a --stats JSON dump")
    p_st.add_argument("path", help="metrics JSON written by --stats")

    args = parser.parse_args(argv)
    _apply_profile(args)

    if args.command in ("table1", "table2", "figure7", "ablation"):
        from .. import api

        print(
            api.run_table(
                args.command,
                arch=getattr(args, "arch", "x86"),
                bound=getattr(args, "events", None),
                workers=args.workers,
                checkpoint=args.checkpoint,
                cache=args.cache,
                time_budget=getattr(args, "time_budget", None),
            ).render()
        )
        _write_run_outputs(args)
    elif args.command == "rtl-bug":
        from .rtl_bug import run_rtl_bug

        print(run_rtl_bug().render())
    elif args.command == "figures":
        from .figures import run_figures

        print(run_figures().render())
    elif args.command == "export":
        from .. import api
        from .export import export_suite

        synthesis = api.synthesize(args.arch, args.events)
        manifest = export_suite(synthesis, args.out)
        print(
            f"exported {len(manifest['forbid'])} forbid + "
            f"{len(manifest['allow'])} allow tests to {args.out}/"
        )
    elif args.command == "fuzz":
        from ..fuzz import FuzzConfig, replay, run_fuzz

        corpus = args.corpus or None
        if args.replay:
            if corpus is None:
                parser.error("--replay needs --corpus")
            record, findings = replay(corpus, args.replay)
            if record is None:
                print(f"no corpus record matches {args.replay!r}")
                return 1
            print(
                f"witness {record['digest'][:12]} "
                f"[{record['kind']}] {record['model']}:"
            )
            if record.get("litmus"):
                print(record["litmus"])
            if findings:
                print(f"still disagrees ({len(findings)} finding(s)):")
                for finding in findings:
                    print(f"  [{finding['kind']}] {finding['model']}")
                return 1
            print("no longer disagrees (fixed since recording)")
            return 0
        report = run_fuzz(
            FuzzConfig(
                arch=args.arch,
                seed=args.seed,
                budget=args.budget,
                max_events=args.max_events,
                shrink=args.shrink,
                corpus=corpus,
                workers=args.workers,
                mode=args.mode,
                seed_corpus=args.seed_corpus,
                checkpoint=args.checkpoint,
                cache=args.cache,
            )
        )
        print(report.render())
        _write_run_outputs(args)
        return 0 if report.clean else 1
    elif args.command == "stats":
        with open(args.path, encoding="utf-8") as handle:
            dump = json.load(handle)
        print(_render_stats_dump(dump))
    return 0


if __name__ == "__main__":
    sys.exit(main())
