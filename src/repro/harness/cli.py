"""Command-line driver: regenerate any of the paper's artifacts.

Usage::

    repro-harness table1 --arch x86 --events 4
    repro-harness table2
    repro-harness figure7 --arch x86 --events 4
    repro-harness rtl-bug
    repro-harness figures
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'The Semantics of "
            "Transactions and Weak Memory in x86, Power, ARM, and C++' "
            "(PLDI 2018)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_t1 = sub.add_parser("table1", help="synthesis + hardware validation")
    p_t1.add_argument("--arch", default="x86", choices=("x86", "power", "armv8"))
    p_t1.add_argument("--events", type=int, default=4)
    p_t1.add_argument("--time-budget", type=float, default=None)

    sub.add_parser("table2", help="metatheory summary")

    p_f7 = sub.add_parser("figure7", help="discovery-time distribution")
    p_f7.add_argument("--arch", default="x86", choices=("x86", "power", "armv8"))
    p_f7.add_argument("--events", type=int, default=4)
    p_f7.add_argument("--time-budget", type=float, default=None)

    sub.add_parser("rtl-bug", help="the §6.2 buggy-RTL detection story")
    sub.add_parser("figures", help="verdicts for every paper figure")

    p_ab = sub.add_parser("ablation", help="per-axiom Forbid attribution")
    p_ab.add_argument("--arch", default="x86", choices=("x86", "power", "armv8"))
    p_ab.add_argument("--events", type=int, default=3)

    p_ex = sub.add_parser("export", help="write Forbid/Allow suites to disk")
    p_ex.add_argument("--arch", default="x86", choices=("x86", "power", "armv8"))
    p_ex.add_argument("--events", type=int, default=3)
    p_ex.add_argument("--out", default="suites")

    args = parser.parse_args(argv)

    if args.command == "table1":
        from .table1 import run_table1

        print(run_table1(args.arch, args.events, args.time_budget).render())
    elif args.command == "table2":
        from .table2 import run_table2

        print(run_table2().render())
    elif args.command == "figure7":
        from .figure7 import run_figure7

        print(run_figure7(args.arch, args.events, args.time_budget).render())
    elif args.command == "rtl-bug":
        from .rtl_bug import run_rtl_bug

        print(run_rtl_bug().render())
    elif args.command == "figures":
        from .figures import run_figures

        print(run_figures().render())
    elif args.command == "ablation":
        from .ablation import run_ablation

        print(run_ablation(args.arch, args.events).render())
    elif args.command == "export":
        from ..enumeration import synthesise
        from .export import export_suite

        synthesis = synthesise(args.arch, args.events)
        manifest = export_suite(synthesis, args.out)
        print(
            f"exported {len(manifest['forbid'])} forbid + "
            f"{len(manifest['allow'])} allow tests to {args.out}/"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
