"""The §6.2 story: conformance suites catch an RTL prototype bug.

ARM hardware has no TM, so the paper's ARMv8 Forbid/Allow suites could
not be run on silicon -- but ARM architects ran them against an RTL
prototype and found a TxnOrder violation.  We reproduce the *mechanism*:
an injected-bug oracle (the ARMv8 TM model with TxnOrder removed) plays
the role of the buggy RTL, and the generated Forbid suite must flag it
while passing on the faithful oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..enumeration import synthesise
from ..litmus import execution_to_litmus
from ..models import get_model
from ..sim import OracleHardware


@dataclass
class RTLBugResult:
    forbid_total: int = 0
    flagged_by_suite: list[str] = field(default_factory=list)
    false_alarms_on_good_rtl: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def bug_detected(self) -> bool:
        return bool(self.flagged_by_suite)

    def render(self) -> str:
        lines = [
            "§6.2 -- RTL prototype validation",
            f"ARMv8 Forbid suite: {self.forbid_total} tests",
            f"Buggy RTL (TxnOrder dropped): "
            f"{len(self.flagged_by_suite)} forbidden tests observable "
            f"-> bug {'DETECTED' if self.bug_detected else 'missed'}",
            f"Faithful RTL: {len(self.false_alarms_on_good_rtl)} "
            f"false alarms (expected 0)",
        ]
        for name in self.flagged_by_suite[:5]:
            lines.append(f"  flagged: {name}")
        return "\n".join(lines)


def run_rtl_bug(
    max_events: int = 3,
    time_budget: float | None = None,
    include_catalog_representatives: bool = True,
) -> RTLBugResult:
    """Generate the ARMv8 suite and run it against good and buggy RTL.

    TxnOrder-only violations need at least four events (the smaller
    Forbid tests are all caught by StrongIsol as well, which the buggy
    RTL still implements).  Exhaustive synthesis at ≥ 4 ARMv8 events
    takes tens of minutes on one core, so by default the exhaustively
    synthesised ≤ 3-event suite is extended with the catalog's
    TxnOrder-only representatives of the larger-bound suite (the
    MP-with-transactional-reader family) -- the same tests a deeper run
    discovers, verified by ``is_minimal_inconsistent`` in the suite.
    """
    synthesis = synthesise("armv8", max_events, time_budget=time_budget)
    model = get_model("armv8tm")
    buggy = OracleHardware.armv8_rtl_buggy(model)
    good = OracleHardware(model, name="ARM-RTL-good")

    suite = [
        execution_to_litmus(x, f"armv8-forbid-{i}")
        for i, x in enumerate(synthesis.forbidden)
    ]
    if include_catalog_representatives:
        from ..catalog.classics import mp_txn_reader

        suite.append(
            execution_to_litmus(mp_txn_reader("dmb"), "mp+dmb+txnreader")
        )

    result = RTLBugResult(forbid_total=len(suite), elapsed=synthesis.elapsed)
    for test in suite:
        if buggy.observable(test.program, test.intended_co):
            result.flagged_by_suite.append(test.program.name)
        if good.observable(test.program, test.intended_co):
            result.false_alarms_on_good_rtl.append(test.program.name)
    return result
