"""Job digests and the JSONL checkpoint store for resumable runs.

A multi-hour Table 1/Table 2 campaign that dies at bound 4 should not
restart from scratch.  The :class:`CheckPipeline` therefore records one
JSONL line per completed job -- ``{"digest": ..., "kind": ...,
"result": ...}`` -- keyed by a **stable digest** of the job itself, and
on restart skips every job whose digest is already on disk.

Digest stability is the load-bearing requirement: the digest must be
identical across processes and interpreter runs, so it cannot come from
``hash()`` (salted for strings) or ``repr()`` of sets (iteration order
follows the salted hash).  :func:`job_digest` instead canonicalises the
job tuple -- executions via their sorted :meth:`~repro.events.execution.
Execution.fingerprint`, dataclasses field by field, sets sorted -- and
SHA-256 hashes the canonical form.

Records append with an explicit flush per line, so a crash loses at most
the in-flight job.  A truncated trailing line (killed mid-write) is
tolerated and dropped on reload.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from ..events import Execution
from ..obs import REGISTRY
from ..relations import Relation


def _canon(obj) -> object:
    """A deterministic, process-independent encoding of ``obj``.

    The encoding is injective on the value shapes that appear in
    pipeline jobs (tuples of primitives, executions, litmus programs,
    postconditions, intended-co dicts); unknown objects raise so that a
    silently unstable digest can never ship.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Execution):
        return ("execution", _canon(obj.fingerprint()))
    if isinstance(obj, Relation):
        return ("relation", tuple(sorted(obj.pairs)), tuple(sorted(obj.universe)))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, _canon(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, (list, tuple)):
        return tuple(_canon(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted((repr(_canon(item)) for item in obj))))
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                sorted(
                    ((repr(_canon(k)), _canon(v)) for k, v in obj.items()),
                    key=lambda kv: kv[0],
                )
            ),
        )
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__!r} for a job digest"
    )


def job_digest(job) -> str:
    """A stable hex digest identifying one pipeline job across runs."""
    return hashlib.sha256(repr(_canon(job)).encode("utf-8")).hexdigest()


class CheckpointStore:
    """An append-only JSONL map from job digest to JSON result.

    One store backs one run (or one resumed chain of runs); results must
    be JSON round-trippable -- the pipeline's job verdicts (bools, lists
    of axiom names) and the drivers' encoded rows all are.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._results: dict[str, object] = {}
        self._by_kind: dict[str, list] = {}
        self._file = None
        if self.path.exists():
            self._load()
        self.loaded = len(self._results)

    def _load(self) -> None:
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A crash mid-append leaves a truncated last line; the
                # job it recorded simply re-runs.
                continue
            digest = record["digest"]
            if digest not in self._results:
                self._by_kind.setdefault(record.get("kind", "job"), []).append(
                    record["result"]
                )
            self._results[digest] = record["result"]

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, digest: str) -> bool:
        return digest in self._results

    def get(self, digest: str):
        return self._results[digest]

    def by_kind(self, kind: str) -> list:
        """Every recorded result of one ``kind``, in append order.

        This is how self-describing records (the scheduler's completed
        shard ranges, whose chunk boundaries are timing-dependent and
        therefore never re-digest identically) are read back *as data*
        on resume, instead of being matched digest-by-digest.
        """
        return list(self._by_kind.get(kind, ()))

    def record(self, digest: str, result, kind: str = "job") -> None:
        """Append one completed job's result (flushed immediately)."""
        if digest not in self._results:
            self._by_kind.setdefault(kind, []).append(result)
        self._results[digest] = result
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a", encoding="utf-8")
            # A torn trailing line (crash mid-append) must not swallow
            # the next record too: start appends on a fresh line.
            if self._file.tell() > 0:
                with self.path.open("rb") as tail:
                    tail.seek(-1, 2)
                    if tail.read(1) != b"\n":
                        self._file.write("\n")
        self._file.write(
            json.dumps(
                {"digest": digest, "kind": kind, "result": result},
                sort_keys=True,
            )
            + "\n"
        )
        self._file.flush()
        REGISTRY.counter("pipeline.checkpoint.records").inc()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
