"""Experiment drivers regenerating the paper's tables and figures."""

from .ablation import AblationResult, run_ablation
from .export import export_suite
from .figure7 import Figure7Result, run_figure7
from .pipeline import CheckPipeline, hardware_for, model_for, run_job
from .figures import FiguresResult, run_figures
from .rtl_bug import RTLBugResult, run_rtl_bug
from .table1 import Table1Result, Table1Row, run_table1
from .table2 import Table2Result, Table2Row, run_table2

__all__ = [
    "AblationResult",
    "run_ablation",
    "CheckPipeline",
    "hardware_for",
    "model_for",
    "run_job",
    "Figure7Result",
    "export_suite",
    "FiguresResult",
    "RTLBugResult",
    "Table1Result",
    "Table1Row",
    "Table2Result",
    "Table2Row",
    "run_figure7",
    "run_figures",
    "run_rtl_bug",
    "run_table1",
    "run_table2",
]
