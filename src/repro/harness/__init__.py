"""Experiment drivers regenerating the paper's tables and figures.

New code should reach the drivers through the stable facade
(:mod:`repro.api`: ``run_table("table1", arch=..., bound=...)``)
instead of importing ``run_table1``/``run_table2``/``run_figure7``/
``run_ablation`` from here -- those re-exports remain as deprecation
shims with their historical signatures, but each one warns on call.
Importing the driver *modules* (``repro.harness.table1`` etc.) stays
supported; only the package-level aliases are deprecated.
"""

import functools
import warnings

from .ablation import AblationResult
from .ablation import run_ablation as _run_ablation
from .export import export_suite
from .figure7 import Figure7Result
from .figure7 import run_figure7 as _run_figure7
from .pipeline import CheckPipeline, hardware_for, model_for, run_job
from .figures import FiguresResult, run_figures
from .rtl_bug import RTLBugResult, run_rtl_bug
from .table1 import Table1Result, Table1Row
from .table1 import run_table1 as _run_table1
from .table2 import Table2Result, Table2Row
from .table2 import run_table2 as _run_table2

__all__ = [
    "AblationResult",
    "run_ablation",
    "CheckPipeline",
    "hardware_for",
    "model_for",
    "run_job",
    "Figure7Result",
    "export_suite",
    "FiguresResult",
    "RTLBugResult",
    "Table1Result",
    "Table1Row",
    "Table2Result",
    "Table2Row",
    "run_figure7",
    "run_figures",
    "run_rtl_bug",
    "run_table1",
    "run_table2",
]


def _deprecated_alias(fn, name: str, replacement: str):
    """A shim preserving ``fn``'s historical signature, warning once
    per call site style about the :mod:`repro.api` replacement."""

    @functools.wraps(fn)
    def shim(*args, **kwargs):
        warnings.warn(
            f"repro.harness.{name} is deprecated; use {replacement}",
            DeprecationWarning,
            stacklevel=2,
        )
        return fn(*args, **kwargs)

    return shim


run_table1 = _deprecated_alias(
    _run_table1, "run_table1", 'repro.api.run_table("table1", ...)'
)
run_table2 = _deprecated_alias(
    _run_table2, "run_table2", 'repro.api.run_table("table2", ...)'
)
run_figure7 = _deprecated_alias(
    _run_figure7, "run_figure7", 'repro.api.run_table("figure7", ...)'
)
run_ablation = _deprecated_alias(
    _run_ablation, "run_ablation", 'repro.api.run_table("ablation", ...)'
)
