"""Table 2: the metatheory summary.

Rows: monotonicity (x86, Power, ARMv8, C++), compilation of C++
transactions (to x86, Power, ARMv8), and lock elision (x86, Power,
ARMv8, ARMv8 fixed).  Each row reports the bound, the wall-clock time,
and whether a counterexample was found -- mirroring the paper's ✗ / ✓ /
timeout markers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path

from ..metatheory import (
    check_compilation,
    check_lock_elision,
    check_monotonicity,
)
from ..obs import TRACER
from .pipeline import CheckPipeline


@dataclass
class Table2Row:
    property_name: str
    target: str
    bound: str
    elapsed: float
    complete: bool
    counterexample_found: bool
    note: str = ""

    @property
    def verdict(self) -> str:
        if self.counterexample_found:
            return "counterexample"
        return "none found" + ("" if self.complete else " (budget hit)")


@dataclass
class Table2Result:
    rows: list[Table2Row] = field(default_factory=list)

    def render(self) -> str:
        cex_header = "C'ex?"
        lines = [
            "Table 2 -- metatheoretical results",
            f"{'Property':<14} {'Target':<12} {'Bound':<10} "
            f"{'Time':>8}  {cex_header:<22} Note",
        ]
        for row in self.rows:
            lines.append(
                f"{row.property_name:<14} {row.target:<12} {row.bound:<10} "
                f"{row.elapsed:>7.1f}s  {row.verdict:<22} {row.note}"
            )
        return "\n".join(lines)


def _run_row(spec: tuple) -> Table2Row:
    """Evaluate one (independent) Table 2 row; top-level so the batched
    pipeline can fan rows out across worker processes."""
    kind = spec[0]
    if kind == "monotonicity":
        _, target, bound, time_budget = spec
        mono = check_monotonicity(target, bound, time_budget=time_budget)
        note = ""
        if mono.counterexample:
            x, c = mono.counterexample
            note = f"{c.description} (|E|={len(x)})"
        return Table2Row(
            property_name="Monotonicity",
            target=target,
            bound=f"{bound} events",
            elapsed=mono.elapsed,
            complete=mono.complete,
            counterexample_found=not mono.holds,
            note=note,
        )
    if kind == "compilation":
        _, target, bound, time_budget = spec
        comp = check_compilation(target, bound, time_budget=time_budget)
        return Table2Row(
            property_name="Compilation",
            target=f"C++/{target}",
            bound=f"{bound} events",
            elapsed=comp.elapsed,
            complete=comp.complete,
            counterexample_found=not comp.sound,
        )
    if kind == "elision":
        _, arch, _bound, time_budget = spec
        elision = check_lock_elision(arch, time_budget=time_budget)
        note = ""
        if elision.counterexample:
            ce = elision.counterexample
            note = (
                "bodies "
                + "+".join(op.kind for op in ce.body0)
                + " || "
                + "+".join(op.kind for op in ce.body1)
            )
        return Table2Row(
            property_name="Lock elision",
            target=arch,
            bound="body menu",
            elapsed=elision.elapsed,
            complete=elision.complete,
            counterexample_found=not elision.sound,
            note=note,
        )
    raise ValueError(f"unknown row kind {kind!r}")


def run_table2(
    monotonicity_bounds: dict[str, int] | None = None,
    compilation_bound: int = 3,
    time_budget: float | None = 600.0,
    pipeline: CheckPipeline | None = None,
    workers: int | None = None,
    checkpoint: str | Path | None = None,
    cache: str | Path | None = None,
) -> Table2Result:
    """Regenerate Table 2 (with reproduction-scale bounds).

    The rows are independent checks, so they run as one batch through
    the ``pipeline`` (optionally fanned out across processes) and are
    collected in the table's canonical order.  A privately constructed
    pipeline is closed (worker pool drained) before return.  With a
    ``checkpoint`` path, completed rows are recorded as they finish and
    a restarted run replays them from disk instead of re-checking.
    """
    if pipeline is None:
        with CheckPipeline(
            workers=workers, checkpoint=checkpoint, cache=cache
        ) as pipeline:
            return run_table2(
                monotonicity_bounds, compilation_bound, time_budget, pipeline
            )
    bounds = monotonicity_bounds or {
        "x86": 4,
        "power": 3,
        "armv8": 3,
        "cpp": 3,
    }
    specs: list[tuple] = [
        ("monotonicity", target, bound, time_budget)
        for target, bound in bounds.items()
    ]
    specs.extend(
        ("compilation", target, compilation_bound, time_budget)
        for target in ("x86", "power", "armv8")
    )
    specs.extend(
        ("elision", arch, None, time_budget)
        for arch in ("x86", "power", "armv8", "armv8-fixed")
    )
    pipeline.log_event("driver.start", driver="table2", rows=len(specs))
    with TRACER.span("table2"):
        rows = pipeline.map_checkpointed(
            _run_row,
            specs,
            kind="table2-row",
            encode=dataclasses.asdict,
            decode=lambda encoded: Table2Row(**encoded),
        )
    pipeline.log_event("driver.end", driver="table2")
    return Table2Result(rows=rows)
