"""Table 2: the metatheory summary.

Rows: monotonicity (x86, Power, ARMv8, C++), compilation of C++
transactions (to x86, Power, ARMv8), and lock elision (x86, Power,
ARMv8, ARMv8 fixed).  Each row reports the bound, the wall-clock time,
and whether a counterexample was found -- mirroring the paper's ✗ / ✓ /
timeout markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metatheory import (
    check_compilation,
    check_lock_elision,
    check_monotonicity,
)


@dataclass
class Table2Row:
    property_name: str
    target: str
    bound: str
    elapsed: float
    complete: bool
    counterexample_found: bool
    note: str = ""

    @property
    def verdict(self) -> str:
        if self.counterexample_found:
            return "counterexample"
        return "none found" + ("" if self.complete else " (budget hit)")


@dataclass
class Table2Result:
    rows: list[Table2Row] = field(default_factory=list)

    def render(self) -> str:
        cex_header = "C'ex?"
        lines = [
            "Table 2 -- metatheoretical results",
            f"{'Property':<14} {'Target':<12} {'Bound':<10} "
            f"{'Time':>8}  {cex_header:<22} Note",
        ]
        for row in self.rows:
            lines.append(
                f"{row.property_name:<14} {row.target:<12} {row.bound:<10} "
                f"{row.elapsed:>7.1f}s  {row.verdict:<22} {row.note}"
            )
        return "\n".join(lines)


def run_table2(
    monotonicity_bounds: dict[str, int] | None = None,
    compilation_bound: int = 3,
    time_budget: float | None = 600.0,
) -> Table2Result:
    """Regenerate Table 2 (with reproduction-scale bounds)."""
    result = Table2Result()
    bounds = monotonicity_bounds or {
        "x86": 4,
        "power": 3,
        "armv8": 3,
        "cpp": 3,
    }

    for target, bound in bounds.items():
        mono = check_monotonicity(target, bound, time_budget=time_budget)
        note = ""
        if mono.counterexample:
            x, c = mono.counterexample
            note = f"{c.description} (|E|={len(x)})"
        result.rows.append(
            Table2Row(
                property_name="Monotonicity",
                target=target,
                bound=f"{bound} events",
                elapsed=mono.elapsed,
                complete=mono.complete,
                counterexample_found=not mono.holds,
                note=note,
            )
        )

    for target in ("x86", "power", "armv8"):
        comp = check_compilation(
            target, compilation_bound, time_budget=time_budget
        )
        result.rows.append(
            Table2Row(
                property_name="Compilation",
                target=f"C++/{target}",
                bound=f"{compilation_bound} events",
                elapsed=comp.elapsed,
                complete=comp.complete,
                counterexample_found=not comp.sound,
            )
        )

    for arch in ("x86", "power", "armv8", "armv8-fixed"):
        elision = check_lock_elision(arch, time_budget=time_budget)
        note = ""
        if elision.counterexample:
            ce = elision.counterexample
            note = (
                "bodies "
                + "+".join(op.kind for op in ce.body0)
                + " || "
                + "+".join(op.kind for op in ce.body1)
            )
        result.rows.append(
            Table2Row(
                property_name="Lock elision",
                target=arch,
                bound="body menu",
                elapsed=elision.elapsed,
                complete=elision.complete,
                counterexample_found=not elision.sound,
                note=note,
            )
        )
    return result
