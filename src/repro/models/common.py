"""Axiom fragments shared between the architecture models.

Fig. 5 (x86), Fig. 6 (Power) and Fig. 8 (ARMv8) share several axioms
verbatim; they are factored out here:

* ``Coherence``:  ``acyclic(poloc ∪ com)``
* ``RMWIsol``:    ``empty(rmw ∩ (fre ; coe))``
* ``StrongIsol``: ``acyclic(stronglift(com, stxn))`` (§3.3)
* ``TxnCancelsRMW``: ``empty(rmw ∩ tfence*)`` (Power/ARMv8 only)
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation, stronglift


def coherence_ok(x: Execution) -> bool:
    """``acyclic(poloc ∪ com)`` -- SC-per-location."""
    return (x.poloc | x.com).is_acyclic()


def rmw_isolation_ok(x: Execution) -> bool:
    """``empty(rmw ∩ (fre ; coe))`` -- no write intervenes between the
    two halves of an atomic read-modify-write."""
    return (x.rmw & x.fre.compose(x.coe)).is_empty()


def strong_isolation_ok(x: Execution) -> bool:
    """``acyclic(stronglift(com, stxn))`` -- the StrongIsol axiom."""
    return stronglift(x.com, x.stxn).is_acyclic()


def txn_order_ok(x: Execution, hb: Relation) -> bool:
    """``acyclic(stronglift(hb, stxn))`` -- the TxnOrder axiom, for the
    model-specific happens-before/ordered-before relation."""
    return stronglift(hb, x.stxn).is_acyclic()


def txn_cancels_rmw_ok(x: Execution) -> bool:
    """``empty(rmw ∩ tfence*)`` -- an RMW whose halves straddle a
    transaction boundary always fails (Power §5.2, ARMv8 §6.1)."""
    return (x.rmw & x.tfence.reflexive_transitive_closure()).is_empty()
