"""Axiom fragments shared between the architecture models.

Fig. 5 (x86), Fig. 6 (Power) and Fig. 8 (ARMv8) share several axioms
verbatim; they are factored out here:

* ``Coherence``:  ``acyclic(poloc ∪ com)``
* ``RMWIsol``:    ``empty(rmw ∩ (fre ; coe))``
* ``StrongIsol``: ``acyclic(stronglift(com, stxn))`` (§3.3)
* ``TxnCancelsRMW``: ``empty(rmw ∩ tfence*)`` (Power/ARMv8 only)

The transaction-structure inputs (``stxn?``, ``tfence*``) depend only on
the execution's skeleton, so they are interned through the execution's
:class:`~repro.relations.RelationContext` and shared across all rf/co
completions of one skeleton.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation
from ..relations.context import global_intern


def coherence_ok(x: Execution) -> bool:
    """``acyclic(poloc ∪ com)`` -- SC-per-location."""
    return (x.poloc | x.com).is_acyclic()


def rmw_isolation_ok(x: Execution) -> bool:
    """``empty(rmw ∩ (fre ; coe))`` -- no write intervenes between the
    two halves of an atomic read-modify-write."""
    if x.rmw.is_empty():
        return True
    return (x.rmw & x.fre.compose(x.coe)).is_empty()


def _stxn_optional(x: Execution) -> Relation:
    """``stxn?``, interned per transaction structure (both lifting
    axioms use it)."""
    return x.context.get(
        "static:stxn.opt",
        lambda: global_intern(
            ("stxnopt", x._intern_uid, x._txn_key),
            lambda: x.stxn.optional(),
        ),
    )


def strong_isolation_ok(x: Execution) -> bool:
    """``acyclic(stronglift(com, stxn))`` -- the StrongIsol axiom."""
    if not x.txn_of:
        # stxn? degenerates to the identity: the lift is com itself.
        return x.com.is_acyclic()
    txn_opt = _stxn_optional(x)
    lifted = txn_opt.compose(x.com - x.stxn).compose(txn_opt)
    return lifted.is_acyclic()


def txn_order_ok(x: Execution, hb: Relation) -> bool:
    """``acyclic(stronglift(hb, stxn))`` -- the TxnOrder axiom, for the
    model-specific happens-before/ordered-before relation."""
    if not x.txn_of:
        # stxn? degenerates to the identity: the lift is hb itself, whose
        # acyclicity verdict is already cached from the Order axiom.
        return hb.is_acyclic()
    txn_opt = _stxn_optional(x)
    return txn_opt.compose(hb - x.stxn).compose(txn_opt).is_acyclic()


def txn_cancels_rmw_ok(x: Execution) -> bool:
    """``empty(rmw ∩ tfence*)`` -- an RMW whose halves straddle a
    transaction boundary always fails (Power §5.2, ARMv8 §6.1)."""
    if x.rmw.is_empty():
        return True
    tfence_star = x.context.get(
        "static:tfence.rtc",
        lambda: global_intern(
            ("tfencertc", x._intern_uid, x.threads, x._txn_key),
            lambda: x.tfence.reflexive_transitive_closure(),
        ),
    )
    return (x.rmw & tfence_star).is_empty()
