"""Axiom fragments shared between the architecture models.

Fig. 5 (x86), Fig. 6 (Power) and Fig. 8 (ARMv8) share several axioms
verbatim; they are factored out here:

* ``Coherence``:  ``acyclic(poloc ∪ com)``
* ``RMWIsol``:    ``empty(rmw ∩ (fre ; coe))``
* ``StrongIsol``: ``acyclic(stronglift(com, stxn))`` (§3.3)
* ``TxnCancelsRMW``: ``empty(rmw ∩ tfence*)`` (Power/ARMv8 only)

The transaction-structure inputs (``stxn?``, ``tfence*``) depend only on
the execution's skeleton, so they are interned through the execution's
:class:`~repro.relations.RelationContext` and shared across all rf/co
completions of one skeleton.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation
from ..relations.context import global_intern
from ..relations.relation import (
    acyclic_rows_cached,
    compose_rows,
    transpose_rows,
)


def coherence_ok(x: Execution) -> bool:
    """``acyclic(poloc ∪ com)`` -- SC-per-location."""
    return (x.poloc | x.com).is_acyclic()


def rmw_isolation_ok(x: Execution) -> bool:
    """``empty(rmw ∩ (fre ; coe))`` -- no write intervenes between the
    two halves of an atomic read-modify-write."""
    if x.rmw.is_empty():
        return True
    return (x.rmw & x.fre.compose(x.coe)).is_empty()


def _stxn_optional(x: Execution) -> Relation:
    """``stxn?``, interned per transaction structure (both lifting
    axioms use it)."""
    return x.context.get(
        "static:stxn.opt",
        lambda: global_intern(
            ("stxnopt", x._intern_uid, x._txn_key),
            lambda: x.stxn.optional(),
        ),
    )


def strong_isolation_ok(x: Execution) -> bool:
    """``acyclic(stronglift(com, stxn))`` -- the StrongIsol axiom."""
    if not x.txn_of:
        # stxn? degenerates to the identity: the lift is com itself.
        return x.com.is_acyclic()
    txn_opt = _stxn_optional(x)
    lifted = txn_opt.compose(x.com - x.stxn).compose(txn_opt)
    return lifted.is_acyclic()


def txn_order_ok(x: Execution, hb: Relation) -> bool:
    """``acyclic(stronglift(hb, stxn))`` -- the TxnOrder axiom, for the
    model-specific happens-before/ordered-before relation."""
    if not x.txn_of:
        # stxn? degenerates to the identity: the lift is hb itself, whose
        # acyclicity verdict is already cached from the Order axiom.
        return hb.is_acyclic()
    txn_opt = _stxn_optional(x)
    return txn_opt.compose(hb - x.stxn).compose(txn_opt).is_acyclic()


# ---------------------------------------------------------------------------
# Row-level kernel helpers.  The fused ``consistent`` fast paths of the
# x86/Power/ARMv8 models evaluate axioms directly over adjacency-bitset
# rows; the communication relations and the axioms shared verbatim
# between Figs. 5, 6 and 8 are factored out here.
# ---------------------------------------------------------------------------


def comm_rows(x: Execution):
    """``(uni, rf_rows, co_rows, fr_rows)`` over the execution's shared
    universe, or ``None`` when the primitive relations live in mixed
    universes (hand-built executions) and the caller must fall back to
    the generic ``axiom_thunks`` path.

    ``fr`` is derived directly at row level: every read fr-precedes all
    same-location writes except its rf source and that source's
    co-predecessors.
    """
    po = x.po
    uni = po._uni
    rf = x.rf
    co = x.co
    fr_static = x._fr_static
    if rf._uni is not uni or co._uni is not uni or fr_static._uni is not uni:
        return None

    rf_rows = rf._rows
    co_rows = co._rows

    fr_sub = None
    co_pred = None
    for w, observers in enumerate(rf_rows):
        if not observers:
            continue
        if co_pred is None:
            co_pred = transpose_rows(co_rows)
            fr_sub = [0] * len(rf_rows)
        sub = (1 << w) | co_pred[w]
        mask = observers
        while mask:
            bit = mask & -mask
            fr_sub[bit.bit_length() - 1] |= sub
            mask ^= bit
    if fr_sub is None:
        fr_rows = fr_static._rows
    else:
        fr_rows = [s & ~u for s, u in zip(fr_static._rows, fr_sub)]
    return uni, rf_rows, co_rows, fr_rows


def mask_of(uni, elements) -> int:
    """The bitmask selecting ``elements`` inside ``uni``'s indexing."""
    index = uni.index
    mask = 0
    for e in elements:
        i = index.get(e)
        if i is not None:
            mask |= 1 << i
    return mask


def coherence_rows_ok(x: Execution, uni, rf_rows, co_rows, fr_rows) -> bool:
    """Row-level ``acyclic(poloc ∪ com)``."""
    rows = tuple(
        p | a | b | c
        for p, a, b, c in zip(x.poloc._rows, rf_rows, co_rows, fr_rows)
    )
    return acyclic_rows_cached(uni, rows)


def rmw_isolation_rows_ok(
    x: Execution, same_thread_rows, co_rows, fr_rows
) -> bool:
    """Row-level ``empty(rmw ∩ (fre ; coe))``."""
    rmw_rows = x.rmw._rows
    if not any(rmw_rows):
        return True
    fre = [f & ~t for f, t in zip(fr_rows, same_thread_rows)]
    coe = [c & ~t for c, t in zip(co_rows, same_thread_rows)]
    fre_coe = compose_rows(fre, coe)
    return not any(r & m for r, m in zip(rmw_rows, fre_coe))


def lifted_acyclic_rows_ok(x: Execution, uni, rel_rows) -> bool:
    """Row-level ``acyclic(stronglift(rel, stxn))`` for an execution with
    a non-empty transaction structure (StrongIsol / TxnOrder shapes)."""
    stxn_rows = x.stxn._rows
    txn_opt = _stxn_optional(x)._rows
    minus = [r & ~s for r, s in zip(rel_rows, stxn_rows)]
    lifted = compose_rows(compose_rows(txn_opt, minus), txn_opt)
    return acyclic_rows_cached(uni, tuple(lifted))


def txn_cancels_rmw_rows_ok(x: Execution) -> bool:
    """Row-level ``empty(rmw ∩ tfence*)`` (Power/ARMv8 TM)."""
    rmw_rows = x.rmw._rows
    if not any(rmw_rows):
        return True
    tfence_star = x.context.get(
        "static:tfence.rtc",
        lambda: global_intern(
            ("tfencertc", x._intern_uid, x.threads, x._txn_key),
            lambda: x.tfence.reflexive_transitive_closure(),
        ),
    )
    return not any(r & t for r, t in zip(rmw_rows, tfence_star._rows))


def txn_cancels_rmw_ok(x: Execution) -> bool:
    """``empty(rmw ∩ tfence*)`` -- an RMW whose halves straddle a
    transaction boundary always fails (Power §5.2, ARMv8 §6.1)."""
    if x.rmw.is_empty():
        return True
    tfence_star = x.context.get(
        "static:tfence.rtc",
        lambda: global_intern(
            ("tfencertc", x._intern_uid, x.threads, x._txn_key),
            lambda: x.tfence.reflexive_transitive_closure(),
        ),
    )
    return (x.rmw & tfence_star).is_empty()
