"""The C++ memory model with transactions (Fig. 9, §7).

The baseline is RC11 (Lahav et al., PLDI 2017) -- the paper builds on it
because its fixed SC semantics makes compilation to Power sound, which
§8.2 needs.  Fig. 9 elides the synchronises-with (``sw``) and ``psc``
definitions; both are implemented in full here.

Consistency axioms::

    irreflexive(hb ; com*)                                (HbCom)
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)
    acyclic(po ∪ rf)                                      (NoThinAir)
    acyclic(psc)                                          (SeqCst)

Race freedom (a separate predicate -- racy programs are undefined)::

    empty(cnf \\ Ato² \\ (hb ∪ hb⁻¹))                      (NoRace)
      where cnf = ((W×W) ∪ (R×W) ∪ (W×R)) ∩ sloc \\ id

TM additions (§7.2, highlighted in Fig. 9): transactions synchronise in
*extended communication* order, avoiding the specification's total order
over transactions::

    ecom = com ∪ (co ; rf)
    tsw  = weaklift(ecom, stxn)
    hb   = (sw ∪ tsw ∪ po)+

Atomic transactions (``stxnat``) add no axiom: Theorem 7.2 shows they are
strongly isolated *for free* in race-free programs, because they may not
contain atomic operations.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation, weaklift
from ..relations.context import global_intern
from .base import AxiomThunk, MemoryModel
from .common import rmw_isolation_ok


class CppModel(MemoryModel):
    """RC11 C++, optionally with the paper's TM extension."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "C+++TM" if transactional else "C++"

    def baseline(self) -> MemoryModel:
        return CppModel(transactional=False) if self.is_transactional else self

    # ------------------------------------------------------------------
    # Synchronisation (RC11)
    # ------------------------------------------------------------------

    def _rs_static(self, x: Execution) -> Relation:
        """``[W] ; (poloc ∩ (W×W))? ; [W ∩ Ato]`` -- the rf-free prefix
        of the release sequence, shared across a skeleton's completions."""
        def compute() -> Relation:
            w_id = Relation.from_set(x.writes, x.eids)
            w_ato = Relation.from_set(x.writes & x.atomics, x.eids)
            same_loc_ww = (
                x.poloc & Relation.cross(x.writes, x.writes, x.eids)
            ).optional()
            return w_id.compose(same_loc_ww).compose(w_ato)

        return x.context.get(
            "static:cpp.rsbase",
            lambda: global_intern(
                (
                    "cpprsb",
                    x._intern_uid,
                    x.threads,
                    x._loc_key,
                    x._kind_key,
                    tuple(sorted(x.atomics)),
                ),
                compute,
            ),
        )

    def release_sequence(self, x: Execution) -> Relation:
        """``rs = [W] ; (poloc ∩ (W×W))? ; [W ∩ Ato] ; (rf ; rmw)*``."""
        return x.context.get(
            "cpp.rs",
            lambda: self._rs_static(x).compose(
                x.rf.compose(x.rmw).reflexive_transitive_closure()
            ),
        )

    def sw(self, x: Execution) -> Relation:
        """Synchronises-with:
        ``sw = [Rel] ; ([F] ; po)? ; rs ; rf ; [R ∩ Ato] ; (po ; [F])? ; [Acq]``.
        """

        def compute() -> Relation:
            rel_id = Relation.from_set(x.rel, x.eids)
            acq_id = Relation.from_set(x.acq, x.eids)
            fence_id = Relation.from_set(x.fences, x.eids)
            r_ato = Relation.from_set(x.reads & x.atomics, x.eids)
            pre = fence_id.compose(x.po).optional()
            post = x.po.compose(fence_id).optional()
            return (
                rel_id.compose(pre)
                .compose(self.release_sequence(x))
                .compose(x.rf)
                .compose(r_ato)
                .compose(post)
                .compose(acq_id)
            )

        return x.context.get("cpp.sw", compute)

    def ecom(self, x: Execution) -> Relation:
        """Extended communication (§7.2): ``com ∪ (co ; rf)``."""
        return x.context.get(
            "cpp.ecom", lambda: x.com | x.co.compose(x.rf)
        )

    def tsw(self, x: Execution) -> Relation:
        """Transactional synchronises-with (§7.2)."""
        return x.context.get(
            "cpp.tsw", lambda: weaklift(self.ecom(x), x.stxn)
        )

    def hb(self, x: Execution) -> Relation:
        """``hb = (sw ∪ tsw ∪ po)+`` (``tsw`` only in the TM model).

        Interned variant-keyed in ``x.context`` (``cpp.hb.tm`` vs
        ``cpp.hb.base``) like every other model, so the four axioms, the
        race predicate, repeated ``consistent`` calls, and a skeleton's
        rf/co completions all share one computation per execution.
        """
        variant = "tm" if self.is_transactional else "base"

        def compute() -> Relation:
            base = self.sw(x) | x.po
            if self.is_transactional:
                base = base | self.tsw(x)
            return base.transitive_closure()

        return x.context.get(f"cpp.hb.{variant}", compute)

    # ------------------------------------------------------------------
    # SC axiom (RC11 psc)
    # ------------------------------------------------------------------

    def eco(self, x: Execution) -> Relation:
        """``eco = com+ = rf ∪ co ∪ fr ∪ (co;rf) ∪ (fr;rf)``."""
        return x.context.get("cpp.eco", lambda: x.com.transitive_closure())

    def psc(self, x: Execution) -> Relation:
        """The RC11 partial-SC relation, interned variant-keyed (its
        ``hb`` input differs between the TM and baseline models)."""
        variant = "tm" if self.is_transactional else "base"

        def compute() -> Relation:
            hb_rel = self.hb(x)
            sc_id = Relation.from_set(x.sc_events, x.eids)
            sc_fences = x.sc_events & x.fences
            f_sc = Relation.from_set(sc_fences, x.eids)
            hb_opt = hb_rel.optional()

            po_neq_loc = x.po - x.sloc
            hb_loc = hb_rel & x.sloc
            scb = (
                x.po
                | po_neq_loc.compose(hb_rel).compose(po_neq_loc)
                | hb_loc
                | x.co
                | x.fr
            )
            ends_left = sc_id | f_sc.compose(hb_opt)
            ends_right = sc_id | hb_opt.compose(f_sc)
            psc_base = ends_left.compose(scb).compose(ends_right)
            eco = self.eco(x)
            psc_fence = f_sc.compose(
                hb_rel | hb_rel.compose(eco).compose(hb_rel)
            ).compose(f_sc)
            return psc_base | psc_fence

        return x.context.get(f"cpp.psc.{variant}", compute)

    # ------------------------------------------------------------------
    # Races (the separate NoRace predicate of Fig. 9)
    # ------------------------------------------------------------------

    def conflicts(self, x: Execution) -> Relation:
        """``cnf = ((W×W) ∪ (R×W) ∪ (W×R)) ∩ sloc \\ id``."""

        def compute() -> Relation:
            w, r = x.writes, x.reads
            shapes = (
                Relation.cross(w, w, x.eids)
                | Relation.cross(r, w, x.eids)
                | Relation.cross(w, r, x.eids)
            )
            return (shapes & x.sloc).irreflexive_part()

        return x.context.get(
            "static:cpp.cnf",
            lambda: global_intern(
                ("cppcnf", x._intern_uid, x._loc_key, x._kind_key), compute
            ),
        )

    def races(self, x: Execution) -> Relation:
        """Pairs witnessing a data race: conflicting, not both atomic,
        unordered by happens-before."""
        hb = self.hb(x)
        ato = x.atomics
        both_atomic = Relation.cross(ato, ato, x.eids)
        return self.conflicts(x) - both_atomic - (hb | hb.inverse())

    def race_free(self, x: Execution) -> bool:
        """The NoRace predicate."""
        return self.races(x).is_empty()

    # ------------------------------------------------------------------
    # Axioms
    # ------------------------------------------------------------------

    def _com_star(self, x: Execution) -> Relation:
        """``com*``, shared by HbCom across thunks and repeated calls
        (identical for the TM and baseline variants)."""
        return x.context.get(
            "cpp.comstar", lambda: x.com.reflexive_transitive_closure()
        )

    def axiom_thunks(self, x: Execution) -> list[AxiomThunk]:
        # All derived relations route through x.context (variant-keyed
        # where the TM/baseline values differ), so they are shared
        # across thunks, repeated calls, and a skeleton's completions
        # like in the other three models -- no call-local memo.
        return [
            ("NoThinAir", lambda: (x.po | x.rf).is_acyclic()),
            ("RMWIsol", lambda: rmw_isolation_ok(x)),
            (
                "HbCom",
                lambda: self.hb(x).compose(self._com_star(x)).is_irreflexive(),
            ),
            ("SeqCst", lambda: self.psc(x).is_acyclic()),
        ]

    def consistent(self, x: Execution) -> bool:
        """Straight-line hot path mirroring ``axiom_thunks``, cheapest
        axiom first; every derived relation is interned in ``x.context``
        so repeated calls and rf/co completions share work."""
        if not (x.po | x.rf).is_acyclic():
            return False
        if not rmw_isolation_ok(x):
            return False
        hb = self.hb(x)
        if not hb.compose(self._com_star(x)).is_irreflexive():
            return False
        return self.psc(x).is_acyclic()

    # ------------------------------------------------------------------
    # Allowed behaviour: consistency + race-freedom caveat
    # ------------------------------------------------------------------

    def allowed_and_race_free(self, x: Execution) -> bool:
        """Convenience: the execution is consistent and exhibits no race
        (callers deciding program-level verdicts must remember that *one*
        racy consistent execution makes the whole program undefined)."""
        return self.consistent(x) and self.race_free(x)
