"""The C++ memory model with transactions (Fig. 9, §7).

The baseline is RC11 (Lahav et al., PLDI 2017) -- the paper builds on it
because its fixed SC semantics makes compilation to Power sound, which
§8.2 needs.  Fig. 9 elides the synchronises-with (``sw``) and ``psc``
definitions; both are implemented in full here.

Consistency axioms::

    acyclic(po ∪ rf)                                      (NoThinAir)
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)
    irreflexive(hb ; com*)                                (HbCom)
    acyclic(psc)                                          (SeqCst)

Race freedom (a separate predicate -- racy programs are undefined)::

    empty(cnf \\ Ato² \\ (hb ∪ hb⁻¹))                      (NoRace)
      where cnf = ((W×W) ∪ (R×W) ∪ (W×R)) ∩ sloc \\ id

TM additions (§7.2, highlighted in Fig. 9): transactions synchronise in
*extended communication* order, avoiding the specification's total order
over transactions::

    ecom = com ∪ (co ; rf)
    tsw  = weaklift(ecom, stxn)
    hb   = (sw ∪ tsw ∪ po)+

Atomic transactions (``stxnat``) add no axiom: Theorem 7.2 shows they are
strongly isolated *for free* in race-free programs, because they may not
contain atomic operations.

The axioms are declared as IR terms mirroring ``cat/models/cpptm.cat``
clause for clause; the ``rs``/``cnf`` prefixes the old hand-fused path
interned under ``static:cpp.rsbase``/``static:cpp.cnf`` fall out of the
planner's static classification mechanically.
"""

from __future__ import annotations

from functools import lru_cache

from .. import ir
from ..events import Execution
from ..relations import Relation
from .base import IRModel


@lru_cache(maxsize=None)
def _terms(transactional: bool) -> dict[str, ir.Term]:
    po, rf, co, fr = ir.rel("po"), ir.rel("rf"), ir.rel("co"), ir.rel("fr")
    com, sloc, poloc = ir.rel("com"), ir.rel("sloc"), ir.rel("poloc")
    rmw, stxn = ir.rel("rmw"), ir.rel("stxn")
    writes, reads = ir.evset("W"), ir.evset("R")
    fences, ato, sc = ir.evset("F"), ir.evset("ATO"), ir.evset("SC")
    fence_id = ir.setrel(fences)

    # RC11 synchronisation:
    # rs = [W] ; (poloc ∩ (W×W))? ; [W ∩ Ato] ; (rf ; rmw)*
    rs = ir.seq(
        ir.setrel(writes),
        ir.opt(ir.inter(poloc, ir.cross(writes, writes))),
        ir.setrel(ir.inter(writes, ato)),
        ir.star(ir.seq(rf, rmw)),
    )
    # sw = [Rel] ; ([F] ; po)? ; rs ; rf ; [R ∩ Ato] ; (po ; [F])? ; [Acq]
    sw = ir.seq(
        ir.setrel(ir.evset("REL")),
        ir.opt(ir.seq(fence_id, po)),
        rs,
        rf,
        ir.setrel(ir.inter(reads, ato)),
        ir.opt(ir.seq(po, fence_id)),
        ir.setrel(ir.evset("ACQ")),
    )

    # Extended communication and transactional synchronises-with (§7.2).
    ecom = ir.union(com, ir.seq(co, rf))
    tsw = ir.weaklift(ecom, stxn)

    hb_parts = [sw, po]
    if transactional:
        hb_parts.append(tsw)
    hb = ir.plus(ir.union(*hb_parts))
    hb_opt = ir.opt(hb)

    # RC11 partial SC.
    eco = ir.plus(com)
    pd = ir.diff(po, sloc)
    scb = ir.union(
        po, ir.seq(pd, hb, pd), ir.inter(hb, sloc), co, fr
    )
    sc_id = ir.setrel(sc)
    f_sc = ir.setrel(ir.inter(sc, fences))
    psc1 = ir.seq(
        ir.union(sc_id, ir.seq(f_sc, hb_opt)),
        scb,
        ir.union(sc_id, ir.seq(hb_opt, f_sc)),
    )
    psc2 = ir.seq(f_sc, ir.union(hb, ir.seq(hb, eco, hb)), f_sc)
    psc = ir.union(psc1, psc2)

    # Races: cnf = ((W×W) ∪ (R×W) ∪ (W×R)) ∩ sloc \ id.
    cnf = ir.diff(
        ir.inter(
            ir.union(
                ir.cross(writes, writes),
                ir.cross(reads, writes),
                ir.cross(writes, reads),
            ),
            sloc,
        ),
        ir.rel("id"),
    )
    races = ir.diff(
        ir.diff(cnf, ir.cross(ato, ato)), ir.union(hb, ir.inv(hb))
    )

    return {
        "rs": rs,
        "sw": sw,
        "ecom": ecom,
        "tsw": tsw,
        "hb": hb,
        "eco": eco,
        "psc": psc,
        "cnf": cnf,
        "races": races,
        "com_star": ir.star(com),
    }


@lru_cache(maxsize=None)
def _plan(transactional: bool) -> ir.Plan:
    terms = _terms(transactional)
    constraints = [
        ir.acyclic("NoThinAir", ir.union(ir.rel("po"), ir.rel("rf"))),
        ir.empty_c(
            "RMWIsol",
            ir.inter(ir.rel("rmw"), ir.seq(ir.rel("fre"), ir.rel("coe"))),
        ),
        ir.irreflexive("HbCom", ir.seq(terms["hb"], terms["com_star"])),
        ir.acyclic("SeqCst", terms["psc"]),
    ]
    return ir.compile_model("C+++TM" if transactional else "C++", constraints)


class CppModel(IRModel):
    """RC11 C++, optionally with the paper's TM extension."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "C+++TM" if transactional else "C++"

    def baseline(self) -> "CppModel":
        return CppModel(transactional=False) if self.is_transactional else self

    def plan(self) -> ir.Plan:
        return _plan(self.is_transactional)

    def _term(self, name: str) -> ir.Term:
        return _terms(self.is_transactional)[name]

    # ------------------------------------------------------------------
    # Synchronisation (materialised views of the IR terms)
    # ------------------------------------------------------------------

    def release_sequence(self, x: Execution) -> Relation:
        """``rs = [W] ; (poloc ∩ (W×W))? ; [W ∩ Ato] ; (rf ; rmw)*``."""
        return ir.evaluate(self._term("rs"), x)

    def sw(self, x: Execution) -> Relation:
        """Synchronises-with:
        ``sw = [Rel] ; ([F] ; po)? ; rs ; rf ; [R ∩ Ato] ; (po ; [F])? ; [Acq]``.
        """
        return ir.evaluate(self._term("sw"), x)

    def ecom(self, x: Execution) -> Relation:
        """Extended communication (§7.2): ``com ∪ (co ; rf)``."""
        return ir.evaluate(self._term("ecom"), x)

    def tsw(self, x: Execution) -> Relation:
        """Transactional synchronises-with (§7.2)."""
        return ir.evaluate(self._term("tsw"), x)

    def hb(self, x: Execution) -> Relation:
        """``hb = (sw ∪ tsw ∪ po)+`` (``tsw`` only in the TM model).

        The TM and baseline variants are distinct hash-consed terms, so
        their per-execution values can never alias; everything below hb
        (``sw`` and its release sequence) is one shared subdag.
        """
        return ir.evaluate(self._term("hb"), x)

    # ------------------------------------------------------------------
    # SC axiom (RC11 psc)
    # ------------------------------------------------------------------

    def eco(self, x: Execution) -> Relation:
        """``eco = com+ = rf ∪ co ∪ fr ∪ (co;rf) ∪ (fr;rf)``."""
        return ir.evaluate(self._term("eco"), x)

    def psc(self, x: Execution) -> Relation:
        """The RC11 partial-SC relation (``psc1 ∪ psc2``)."""
        return ir.evaluate(self._term("psc"), x)

    # ------------------------------------------------------------------
    # Races (the separate NoRace predicate of Fig. 9)
    # ------------------------------------------------------------------

    def conflicts(self, x: Execution) -> Relation:
        """``cnf = ((W×W) ∪ (R×W) ∪ (W×R)) ∩ sloc \\ id``."""
        return ir.evaluate(self._term("cnf"), x)

    def races(self, x: Execution) -> Relation:
        """Pairs witnessing a data race: conflicting, not both atomic,
        unordered by happens-before."""
        return ir.evaluate(self._term("races"), x)

    def race_free(self, x: Execution) -> bool:
        """The NoRace predicate."""
        return self.races(x).is_empty()

    # ------------------------------------------------------------------
    # Allowed behaviour: consistency + race-freedom caveat
    # ------------------------------------------------------------------

    def allowed_and_race_free(self, x: Execution) -> bool:
        """Convenience: the execution is consistent and exhibits no race
        (callers deciding program-level verdicts must remember that *one*
        racy consistent execution makes the whole program undefined)."""
        return self.consistent(x) and self.race_free(x)
