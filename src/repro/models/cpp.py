"""The C++ memory model with transactions (Fig. 9, §7).

The baseline is RC11 (Lahav et al., PLDI 2017) -- the paper builds on it
because its fixed SC semantics makes compilation to Power sound, which
§8.2 needs.  Fig. 9 elides the synchronises-with (``sw``) and ``psc``
definitions; both are implemented in full here.

Consistency axioms::

    irreflexive(hb ; com*)                                (HbCom)
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)
    acyclic(po ∪ rf)                                      (NoThinAir)
    acyclic(psc)                                          (SeqCst)

Race freedom (a separate predicate -- racy programs are undefined)::

    empty(cnf \\ Ato² \\ (hb ∪ hb⁻¹))                      (NoRace)
      where cnf = ((W×W) ∪ (R×W) ∪ (W×R)) ∩ sloc \\ id

TM additions (§7.2, highlighted in Fig. 9): transactions synchronise in
*extended communication* order, avoiding the specification's total order
over transactions::

    ecom = com ∪ (co ; rf)
    tsw  = weaklift(ecom, stxn)
    hb   = (sw ∪ tsw ∪ po)+

Atomic transactions (``stxnat``) add no axiom: Theorem 7.2 shows they are
strongly isolated *for free* in race-free programs, because they may not
contain atomic operations.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation, weaklift
from .base import AxiomThunk, MemoryModel, Memo
from .common import rmw_isolation_ok


class CppModel(MemoryModel):
    """RC11 C++, optionally with the paper's TM extension."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "C+++TM" if transactional else "C++"

    def baseline(self) -> MemoryModel:
        return CppModel(transactional=False) if self.is_transactional else self

    # ------------------------------------------------------------------
    # Synchronisation (RC11)
    # ------------------------------------------------------------------

    def release_sequence(self, x: Execution) -> Relation:
        """``rs = [W] ; (poloc ∩ (W×W))? ; [W ∩ Ato] ; (rf ; rmw)*``."""
        w_id = Relation.from_set(x.writes, x.eids)
        w_ato = Relation.from_set(x.writes & x.atomics, x.eids)
        same_loc_ww = (x.poloc & Relation.cross(x.writes, x.writes, x.eids)).optional()
        rmw_chain = x.rf.compose(x.rmw).reflexive_transitive_closure()
        return w_id.compose(same_loc_ww).compose(w_ato).compose(rmw_chain)

    def sw(self, x: Execution) -> Relation:
        """Synchronises-with:
        ``sw = [Rel] ; ([F] ; po)? ; rs ; rf ; [R ∩ Ato] ; (po ; [F])? ; [Acq]``.
        """
        rel_id = Relation.from_set(x.rel, x.eids)
        acq_id = Relation.from_set(x.acq, x.eids)
        fence_id = Relation.from_set(x.fences, x.eids)
        r_ato = Relation.from_set(x.reads & x.atomics, x.eids)
        pre = fence_id.compose(x.po).optional()
        post = x.po.compose(fence_id).optional()
        return (
            rel_id.compose(pre)
            .compose(self.release_sequence(x))
            .compose(x.rf)
            .compose(r_ato)
            .compose(post)
            .compose(acq_id)
        )

    def ecom(self, x: Execution) -> Relation:
        """Extended communication (§7.2): ``com ∪ (co ; rf)``."""
        return x.com | x.co.compose(x.rf)

    def tsw(self, x: Execution) -> Relation:
        """Transactional synchronises-with (§7.2)."""
        return weaklift(self.ecom(x), x.stxn)

    def hb(self, x: Execution) -> Relation:
        """``hb = (sw ∪ tsw ∪ po)+`` (``tsw`` only in the TM model)."""
        base = self.sw(x) | x.po
        if self.is_transactional:
            base = base | self.tsw(x)
        return base.transitive_closure()

    # ------------------------------------------------------------------
    # SC axiom (RC11 psc)
    # ------------------------------------------------------------------

    def eco(self, x: Execution) -> Relation:
        """``eco = com+ = rf ∪ co ∪ fr ∪ (co;rf) ∪ (fr;rf)``."""
        return x.com.transitive_closure()

    def psc(self, x: Execution, hb: Relation) -> Relation:
        """The RC11 partial-SC relation."""
        sc_id = Relation.from_set(x.sc_events, x.eids)
        sc_fences = x.sc_events & x.fences
        f_sc = Relation.from_set(sc_fences, x.eids)
        hb_opt = hb.optional()

        po_neq_loc = x.po - x.sloc
        hb_loc = hb & x.sloc
        scb = (
            x.po
            | po_neq_loc.compose(hb).compose(po_neq_loc)
            | hb_loc
            | x.co
            | x.fr
        )
        ends_left = sc_id | f_sc.compose(hb_opt)
        ends_right = sc_id | hb_opt.compose(f_sc)
        psc_base = ends_left.compose(scb).compose(ends_right)
        eco = self.eco(x)
        psc_fence = f_sc.compose(hb | hb.compose(eco).compose(hb)).compose(f_sc)
        return psc_base | psc_fence

    # ------------------------------------------------------------------
    # Races (the separate NoRace predicate of Fig. 9)
    # ------------------------------------------------------------------

    def conflicts(self, x: Execution) -> Relation:
        """``cnf = ((W×W) ∪ (R×W) ∪ (W×R)) ∩ sloc \\ id``."""
        w, r = x.writes, x.reads
        shapes = (
            Relation.cross(w, w, x.eids)
            | Relation.cross(r, w, x.eids)
            | Relation.cross(w, r, x.eids)
        )
        return (shapes & x.sloc).irreflexive_part()

    def races(self, x: Execution) -> Relation:
        """Pairs witnessing a data race: conflicting, not both atomic,
        unordered by happens-before."""
        hb = self.hb(x)
        ato = x.atomics
        both_atomic = Relation.cross(ato, ato, x.eids)
        return self.conflicts(x) - both_atomic - (hb | hb.inverse())

    def race_free(self, x: Execution) -> bool:
        """The NoRace predicate."""
        return self.races(x).is_empty()

    # ------------------------------------------------------------------
    # Axioms
    # ------------------------------------------------------------------

    def axiom_thunks(self, x: Execution) -> list[AxiomThunk]:
        memo = Memo()
        hb = lambda: memo.get("hb", lambda: self.hb(x))
        com_star = lambda: memo.get(
            "com_star", lambda: x.com.reflexive_transitive_closure()
        )
        return [
            ("NoThinAir", lambda: (x.po | x.rf).is_acyclic()),
            ("RMWIsol", lambda: rmw_isolation_ok(x)),
            ("HbCom", lambda: hb().compose(com_star()).is_irreflexive()),
            ("SeqCst", lambda: self.psc(x, hb()).is_acyclic()),
        ]

    # ------------------------------------------------------------------
    # Allowed behaviour: consistency + race-freedom caveat
    # ------------------------------------------------------------------

    def allowed_and_race_free(self, x: Execution) -> bool:
        """Convenience: the execution is consistent and exhibits no race
        (callers deciding program-level verdicts must remember that *one*
        racy consistent execution makes the whole program undefined)."""
        return self.consistent(x) and self.race_free(x)
