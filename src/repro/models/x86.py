"""The x86-TSO memory model with Intel TSX transactions (Fig. 5).

Baseline (Owens et al. / herding-cats TSO, as presented in Fig. 5)::

    acyclic(poloc ∪ com)                                  (Coherence)
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)
    acyclic(hb)                                           (Order)
      where ppo     = ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po
            L       = domain(rmw) ∪ range(rmw)
            implied = [L] ; po  ∪  po ; [L]
            hb      = mfence ∪ ppo ∪ implied ∪ rfe ∪ fr ∪ co

TM additions (highlighted in Fig. 5):

* ``tfence`` joins ``implied`` -- a committed TSX transaction "has the
  same ordering semantics as a LOCK prefixed instruction";
* ``StrongIsol`` -- TSX conflicts are defined against *any* other logical
  processor, transactional or not;
* ``TxnOrder`` -- transactions appear to execute instantaneously.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation
from .base import AxiomThunk, MemoryModel, Memo
from .common import (
    coherence_ok,
    rmw_isolation_ok,
    strong_isolation_ok,
    txn_order_ok,
)


class X86Model(MemoryModel):
    """x86-TSO, optionally with the paper's TSX axioms."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "x86+TM" if transactional else "x86"

    def baseline(self) -> MemoryModel:
        return X86Model(transactional=False) if self.is_transactional else self

    # ------------------------------------------------------------------
    # Derived relations
    # ------------------------------------------------------------------

    def ppo(self, x: Execution) -> Relation:
        """Preserved program order: everything but W→R reordering."""
        w, r = x.writes, x.reads
        keep = (
            Relation.cross(w, w, x.eids)
            | Relation.cross(r, w, x.eids)
            | Relation.cross(r, r, x.eids)
        )
        return keep & x.po

    def implied(self, x: Execution) -> Relation:
        """Fences implied by LOCK'd instructions -- and, with TM, by
        transaction boundaries."""
        locked = x.rmw.domain() | x.rmw.range()
        locked_id = Relation.from_set(locked, x.eids)
        out = locked_id.compose(x.po) | x.po.compose(locked_id)
        if self.is_transactional:
            out = out | x.tfence
        return out

    def hb(self, x: Execution) -> Relation:
        return (
            x.mfence | self.ppo(x) | self.implied(x) | x.rfe | x.fr | x.co
        )

    # ------------------------------------------------------------------
    # Axioms
    # ------------------------------------------------------------------

    def axiom_thunks(self, x: Execution) -> list[AxiomThunk]:
        memo = Memo()
        hb = lambda: memo.get("hb", lambda: self.hb(x))
        thunks: list[AxiomThunk] = [
            ("Coherence", lambda: coherence_ok(x)),
            ("RMWIsol", lambda: rmw_isolation_ok(x)),
            ("Order", lambda: hb().is_acyclic()),
        ]
        if self.is_transactional:
            thunks.extend(
                [
                    ("StrongIsol", lambda: strong_isolation_ok(x)),
                    ("TxnOrder", lambda: txn_order_ok(x, hb())),
                ]
            )
        return thunks
