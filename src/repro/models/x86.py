"""The x86-TSO memory model with Intel TSX transactions (Fig. 5).

Baseline (Owens et al. / herding-cats TSO, as presented in Fig. 5)::

    acyclic(poloc ∪ com)                                  (Coherence)
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)
    acyclic(hb)                                           (Order)
      where ppo     = ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po
            L       = domain(rmw) ∪ range(rmw)
            implied = [L] ; po  ∪  po ; [L]
            hb      = mfence ∪ ppo ∪ implied ∪ rfe ∪ fr ∪ co

TM additions (highlighted in Fig. 5):

* ``tfence`` joins ``implied`` -- a committed TSX transaction "has the
  same ordering semantics as a LOCK prefixed instruction";
* ``StrongIsol`` -- TSX conflicts are defined against *any* other logical
  processor, transactional or not;
* ``TxnOrder`` -- transactions appear to execute instantaneously.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation
from ..relations.context import global_intern
from ..relations.relation import acyclic_rows_cached
from .base import AxiomThunk, MemoryModel
from .common import (
    coherence_ok,
    coherence_rows_ok,
    comm_rows,
    lifted_acyclic_rows_ok,
    rmw_isolation_ok,
    rmw_isolation_rows_ok,
    strong_isolation_ok,
    txn_order_ok,
)


class X86Model(MemoryModel):
    """x86-TSO, optionally with the paper's TSX axioms."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "x86+TM" if transactional else "x86"

    def baseline(self) -> MemoryModel:
        return X86Model(transactional=False) if self.is_transactional else self

    # ------------------------------------------------------------------
    # Derived relations
    # ------------------------------------------------------------------

    def ppo(self, x: Execution) -> Relation:
        """Preserved program order: everything but W→R reordering."""

        def compute() -> Relation:
            # ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po, computed as two restrictions
            # of po: memory events into writes, plus reads into reads.
            w, r = x.writes, x.reads
            return x.po.restrict(w | r, w) | x.po.restrict(r, r)

        return x.context.get(
            "static:x86.ppo",
            lambda: global_intern(
                ("x86ppo", x._intern_uid, x.threads, x._kind_key), compute
            ),
        )

    def implied(self, x: Execution) -> Relation:
        """Fences implied by LOCK'd instructions -- and, with TM, by
        transaction boundaries."""

        def compute() -> Relation:
            if x.rmw.is_empty():
                # No LOCK'd instructions: only transaction boundaries
                # (if any) imply fences.
                if self.is_transactional:
                    return x.tfence
                return Relation.empty(x.eids)
            locked = x.rmw.domain() | x.rmw.range()
            locked_id = Relation.from_set(locked, x.eids)
            out = locked_id.compose(x.po) | x.po.compose(locked_id)
            if self.is_transactional:
                out = out | x.tfence
            return out

        variant = "tm" if self.is_transactional else "base"
        return x.context.get(
            f"static:x86.implied.{variant}",
            lambda: global_intern(
                (
                    "x86implied",
                    variant,
                    x._intern_uid,
                    x.threads,
                    x.rmw._rows,
                    x._txn_key,
                ),
                compute,
            ),
        )

    def _hb_static(self, x: Execution) -> Relation:
        """``mfence ∪ ppo ∪ implied`` -- the skeleton-static part of hb,
        interned across executions sharing the same inputs."""
        variant = "tm" if self.is_transactional else "base"
        return x.context.get(
            f"static:x86.hbbase.{variant}",
            lambda: global_intern(
                (
                    "x86hbb",
                    variant,
                    x._intern_uid,
                    x.threads,
                    x._kind_key,
                    x.mfence._rows,
                    x.rmw._rows,
                    x._txn_key,
                ),
                lambda: x.mfence | self.ppo(x) | self.implied(x),
            ),
        )

    def hb(self, x: Execution) -> Relation:
        # mfence/ppo/implied depend only on the skeleton; rfe/fr/co are
        # the per-candidate communication part.
        return Relation.union_of(self._hb_static(x), x.rfe, x.fr, x.co)

    # ------------------------------------------------------------------
    # Axioms
    # ------------------------------------------------------------------

    def axiom_thunks(self, x: Execution) -> list[AxiomThunk]:
        variant = "tm" if self.is_transactional else "base"
        hb = lambda: x.context.get(f"x86.hb.{variant}", lambda: self.hb(x))
        thunks: list[AxiomThunk] = [
            ("Coherence", lambda: coherence_ok(x)),
            ("RMWIsol", lambda: rmw_isolation_ok(x)),
            ("Order", lambda: hb().is_acyclic()),
        ]
        if self.is_transactional:
            thunks.extend(
                [
                    ("StrongIsol", lambda: strong_isolation_ok(x)),
                    ("TxnOrder", lambda: txn_order_ok(x, hb())),
                ]
            )
        return thunks

    def consistent(self, x: Execution) -> bool:
        """Fused row-level consistency kernel.

        This is the hottest call in enumeration loops, so the axioms are
        evaluated directly over adjacency-bitset rows -- no intermediate
        :class:`Relation` objects.  It is verdict-identical to the
        generic ``axiom_thunks`` conjunction (property-tested), which
        remains the source of truth for diagnostics.
        """
        comm = comm_rows(x)
        if comm is None:
            # Mixed universes (hand-built executions): generic path.
            return all(thunk() for _, thunk in self.axiom_thunks(x))
        uni, rf_rows, co_rows, fr_rows = comm

        # Coherence: acyclic(poloc ∪ rf ∪ co ∪ fr).
        if not coherence_rows_ok(x, uni, rf_rows, co_rows, fr_rows):
            return False

        same_thread = x.same_thread._rows

        # RMWIsol: empty(rmw ∩ (fre ; coe)).
        if not rmw_isolation_rows_ok(x, same_thread, co_rows, fr_rows):
            return False

        # Order: acyclic(hb), hb = (mfence ∪ ppo ∪ implied) ∪ rfe ∪ fr ∪ co.
        static = self._hb_static(x)
        hb_rows = tuple(
            s | (r & ~t) | f | c
            for s, r, t, f, c in zip(
                static._rows, rf_rows, same_thread, fr_rows, co_rows
            )
        )
        if not acyclic_rows_cached(uni, hb_rows):
            return False

        if self.is_transactional:
            if x.txn_of:
                com = [a | b | c for a, b, c in zip(rf_rows, co_rows, fr_rows)]
                # StrongIsol: acyclic(stxn? ; (com \ stxn) ; stxn?).
                if not lifted_acyclic_rows_ok(x, uni, com):
                    return False
                # TxnOrder: acyclic(stxn? ; (hb \ stxn) ; stxn?).
                if not lifted_acyclic_rows_ok(x, uni, hb_rows):
                    return False
            else:
                # stxn? is the identity: StrongIsol degenerates to
                # acyclic(com); TxnOrder to acyclic(hb), checked above.
                com = tuple(
                    a | b | c for a, b, c in zip(rf_rows, co_rows, fr_rows)
                )
                if not acyclic_rows_cached(uni, com):
                    return False
        return True
