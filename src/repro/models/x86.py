"""The x86-TSO memory model with Intel TSX transactions (Fig. 5).

Baseline (Owens et al. / herding-cats TSO, as presented in Fig. 5)::

    acyclic(poloc ∪ com)                                  (Coherence)
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)
    acyclic(hb)                                           (Order)
      where ppo     = ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po
            L       = domain(rmw) ∪ range(rmw)
            implied = [L] ; po  ∪  po ; [L]
            hb      = mfence ∪ ppo ∪ implied ∪ rfe ∪ fr ∪ co

TM additions (highlighted in Fig. 5):

* ``tfence`` joins ``implied`` -- a committed TSX transaction "has the
  same ordering semantics as a LOCK prefixed instruction";
* ``StrongIsol`` -- TSX conflicts are defined against *any* other logical
  processor, transactional or not;
* ``TxnOrder`` -- transactions appear to execute instantaneously.

The axioms are declared as IR terms (mirroring ``cat/models/x86tm.cat``
clause for clause, so the Python model and its ``.cat`` twin hash-cons
into the same DAG) and evaluated by the shared executor: the planner
hoists the skeleton-static part of ``hb`` (``mfence ∪ ppo ∪ implied``)
into one interned node shared across a skeleton's rf/co completions --
what an earlier hand-fused kernel spelled ``_hb_static``.
"""

from __future__ import annotations

from functools import lru_cache

from .. import ir
from ..events import Execution
from ..relations import Relation
from .base import IRModel


@lru_cache(maxsize=None)
def _terms(transactional: bool) -> dict[str, ir.Term]:
    writes, reads = ir.evset("W"), ir.evset("R")
    po = ir.rel("po")
    ppo = ir.inter(
        ir.union(
            ir.cross(writes, writes),
            ir.cross(reads, writes),
            ir.cross(reads, reads),
        ),
        po,
    )
    locked = ir.setrel(ir.evset("LKD"))
    implied_parts = [ir.seq(locked, po), ir.seq(po, locked)]
    if transactional:
        implied_parts.append(ir.rel("tfence"))
    implied = ir.union(*implied_parts)
    hb = ir.union(
        ir.rel("mfence"), ppo, implied, ir.rel("rfe"), ir.rel("fr"), ir.rel("co")
    )
    return {"ppo": ppo, "implied": implied, "hb": hb}


@lru_cache(maxsize=None)
def _plan(transactional: bool) -> ir.Plan:
    terms = _terms(transactional)
    com, stxn = ir.rel("com"), ir.rel("stxn")
    constraints = [
        ir.acyclic("Coherence", ir.union(ir.rel("poloc"), com)),
        ir.empty_c(
            "RMWIsol",
            ir.inter(ir.rel("rmw"), ir.seq(ir.rel("fre"), ir.rel("coe"))),
        ),
        ir.acyclic("Order", terms["hb"]),
    ]
    if transactional:
        constraints.extend(
            [
                ir.acyclic("StrongIsol", ir.stronglift(com, stxn)),
                ir.acyclic("TxnOrder", ir.stronglift(terms["hb"], stxn)),
            ]
        )
    return ir.compile_model("x86+TM" if transactional else "x86", constraints)


class X86Model(IRModel):
    """x86-TSO, optionally with the paper's TSX axioms."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "x86+TM" if transactional else "x86"

    def baseline(self) -> "X86Model":
        return X86Model(transactional=False) if self.is_transactional else self

    def plan(self) -> ir.Plan:
        return _plan(self.is_transactional)

    # ------------------------------------------------------------------
    # Derived relations (materialised views of the IR terms)
    # ------------------------------------------------------------------

    def ppo(self, x: Execution) -> Relation:
        """Preserved program order: everything but W→R reordering."""
        return ir.evaluate(_terms(self.is_transactional)["ppo"], x)

    def implied(self, x: Execution) -> Relation:
        """Fences implied by LOCK'd instructions -- and, with TM, by
        transaction boundaries."""
        return ir.evaluate(_terms(self.is_transactional)["implied"], x)

    def hb(self, x: Execution) -> Relation:
        return ir.evaluate(_terms(self.is_transactional)["hb"], x)
