"""Name → model lookup used by the CLI, benchmarks and the cat loader."""

from __future__ import annotations

from .armv8 import ARMv8Model
from .base import MemoryModel
from .cpp import CppModel
from .power import PowerModel
from .sc import SCModel, TSCModel
from .x86 import X86Model

_FACTORIES = {
    "sc": lambda: SCModel(),
    "tsc": lambda: TSCModel(),
    "x86": lambda: X86Model(transactional=False),
    "x86tm": lambda: X86Model(transactional=True),
    "power": lambda: PowerModel(transactional=False),
    "powertm": lambda: PowerModel(transactional=True),
    "armv8": lambda: ARMv8Model(transactional=False),
    "armv8tm": lambda: ARMv8Model(transactional=True),
    "cpp": lambda: CppModel(transactional=False),
    "cpptm": lambda: CppModel(transactional=True),
}


def model_names() -> list[str]:
    """All registered model names."""
    return sorted(_FACTORIES)


def get_model(name: str) -> MemoryModel:
    """Instantiate a model by name (``"x86tm"``, ``"powertm"``, ...)."""
    key = name.lower().replace("+", "").replace("-", "").replace("_", "")
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown model {name!r}; known: {', '.join(model_names())}"
        )
    return _FACTORIES[key]()
