"""The Power memory model with Power TM (Fig. 6).

The baseline is the herding-cats Power model of Alglave, Maranget &
Tautschnig (2014).  Fig. 6 elides the preserved-program-order (``ppo``)
definition "as it is complex and unchanged by our TM additions"; we
implement the full herding-cats recursion here so the model is usable on
dependency-bearing litmus tests (MP+dep, WRC+addr, ...).

Baseline axioms::

    acyclic(poloc ∪ com)                                  (Coherence)
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)
    acyclic(hb)                                           (Order)
    acyclic(co ∪ prop)                                    (Propagation)
    irreflexive(fre ; prop ; hb*)                         (Observation)

TM additions (highlighted in Fig. 6):

* ``tfence`` joins the fence relation (implicit barriers at transaction
  boundaries, Power ISA §1.8);
* ``thb`` -- transactions serialise in an order that no thread may
  contradict; ``weaklift(thb, stxn)`` joins ``hb``;
* ``tprop1 = rfe ; stxn ; [W]`` -- the transaction's "integrated memory
  barrier": writes it observed propagate before its own writes;
* ``tprop2 = stxn ; rfe`` -- transactional writes are multicopy-atomic;
* ``StrongIsol``, ``TxnOrder``, and ``TxnCancelsRMW``.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation, stronglift, weaklift
from .base import AxiomThunk, MemoryModel
from .common import (
    coherence_ok,
    rmw_isolation_ok,
    strong_isolation_ok,
    txn_cancels_rmw_ok,
    txn_order_ok,
)


class PowerModel(MemoryModel):
    """Power, optionally with the paper's TM axioms."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "Power+TM" if transactional else "Power"

    def baseline(self) -> MemoryModel:
        return PowerModel(transactional=False) if self.is_transactional else self

    # ------------------------------------------------------------------
    # Preserved program order (herding-cats §6, power.cat)
    # ------------------------------------------------------------------

    def ppo(self, x: Execution) -> Relation:
        """The full herding-cats ppo recursion.

        ``ii``/``ic``/``ci``/``cc`` relate the *init* (i) or *commit* (c)
        parts of instruction pairs; the fixpoint is computed by simple
        iteration, which terminates because each relation only grows
        within a finite universe.  The result is identical for the TM and
        baseline variants, so it is cached once per execution.
        """
        return x.context.get("power.ppo", lambda: self._compute_ppo(x))

    def _compute_ppo(self, x: Execution) -> Relation:
        dp = x.context.get("static:power.dp", lambda: x.addr | x.data)
        rdw = x.poloc & x.fre.compose(x.rfe)
        detour = x.poloc & x.coe.compose(x.rfe)
        ctrl_isync = x.context.get(
            "static:power.ctrlisync", lambda: x.ctrl & x.isync
        )

        ii0 = dp | rdw | x.rfi
        ci0 = ctrl_isync | detour
        ic0 = Relation.empty(x.eids)
        cc0 = x.context.get(
            "static:power.cc0",
            lambda: dp | x.poloc | x.ctrl | x.addr.compose(x.po),
        )

        ii, ic, ci, cc = ii0, ic0, ci0, cc0
        while True:
            ii2 = ii0 | ci | ic.compose(ci) | ii.compose(ii)
            ic2 = ic0 | ii | cc | ic.compose(cc) | ii.compose(ic)
            ci2 = ci0 | ci.compose(ii) | cc.compose(ci)
            cc2 = cc0 | ci | ci.compose(ic) | cc.compose(cc)
            if (ii2, ic2, ci2, cc2) == (ii, ic, ci, cc):
                break
            ii, ic, ci, cc = ii2, ic2, ci2, cc2

        reads, writes = x.reads, x.writes
        return (
            ii.restrict(reads, reads)
            | ic.restrict(reads, writes)
            | self._store_exclusive_ctrl(x)
        )

    def _store_exclusive_ctrl(self, x: Execution) -> Relation:
        """Table 3, footnote 3: in Power, ctrl edges can begin at a
        store-exclusive (the spinlock's ``bne`` tests the stwcx. success
        flag).  Such a dependency orders the store-exclusive before
        later *stores*, and -- when an isync intervenes (ctrl-isync) --
        before every later access.  This is the mechanism that makes the
        Power spinlock stronger than ARMv8's in §8.3."""
        def compute() -> Relation:
            wex = Relation.from_set(x.rmw.range(), x.eids)
            wex_ctrl = wex.compose(x.ctrl)
            w_id = Relation.from_set(x.writes, x.eids)
            return (wex_ctrl & x.isync) | wex_ctrl.compose(w_id)

        return x.context.get("static:power.wexctrl", compute)

    # ------------------------------------------------------------------
    # Fences and happens-before (Fig. 6)
    # ------------------------------------------------------------------

    def fence(self, x: Execution) -> Relation:
        """``fence = sync ∪ tfence ∪ (lwsync \\ (W × R))``."""

        def compute() -> Relation:
            lwsync_effective = x.lwsync - Relation.cross(
                x.writes, x.reads, x.eids
            )
            out = x.sync | lwsync_effective
            if self.is_transactional:
                out = out | x.tfence
            return out

        variant = "tm" if self.is_transactional else "base"
        return x.context.get(f"static:power.fence.{variant}", compute)

    def ihb(self, x: Execution) -> Relation:
        """Intra-thread happens-before: ``ppo ∪ fence``."""
        variant = "tm" if self.is_transactional else "base"
        return x.context.get(
            f"power.ihb.{variant}", lambda: self.ppo(x) | self.fence(x)
        )

    def thb(self, x: Execution) -> Relation:
        """Transaction happens-before (§5.2, Transaction Ordering):
        ``thb = (rfe ∪ ((fre ∪ coe)* ; ihb))* ; (fre ∪ coe)* ; rfe?``.

        Chains of ihb and external communication, excluding those where
        an fre/coe is followed by an rfe that does not end the chain --
        such shapes give no ordering on a non-multicopy-atomic machine.
        """
        ihb = self.ihb(x)
        fc = (x.fre | x.coe).reflexive_transitive_closure()
        head = (x.rfe | fc.compose(ihb)).reflexive_transitive_closure()
        return head.compose(fc).compose(x.rfe.optional())

    def hb(self, x: Execution) -> Relation:
        """``hb = (rfe? ; ihb ; rfe?) ∪ weaklift(thb, stxn)``."""
        ihb = self.ihb(x)
        rfe_opt = x.rfe.optional()
        base = rfe_opt.compose(ihb).compose(rfe_opt)
        if self.is_transactional:
            base = base | weaklift(self.thb(x), x.stxn)
        return base

    # ------------------------------------------------------------------
    # Propagation (Fig. 6)
    # ------------------------------------------------------------------

    def prop(self, x: Execution, hb: Relation) -> Relation:
        fence = self.fence(x)
        rfe_opt = x.rfe.optional()
        efence = rfe_opt.compose(fence).compose(rfe_opt)
        hb_star = hb.reflexive_transitive_closure()
        w_id = Relation.from_set(x.writes, x.eids)

        prop1 = w_id.compose(efence).compose(hb_star).compose(w_id)
        heavy = x.sync | x.tfence if self.is_transactional else x.sync
        prop2 = (
            x.come.reflexive_transitive_closure()
            .compose(efence.reflexive_transitive_closure())
            .compose(hb_star)
            .compose(heavy)
            .compose(hb_star)
        )
        out = prop1 | prop2
        if self.is_transactional:
            tprop1 = x.rfe.compose(x.stxn).compose(w_id)
            tprop2 = x.stxn.compose(x.rfe)
            out = out | tprop1 | tprop2
        return out

    # ------------------------------------------------------------------
    # Axioms
    # ------------------------------------------------------------------

    def axiom_thunks(self, x: Execution) -> list[AxiomThunk]:
        memo = x.context
        variant = "tm" if self.is_transactional else "base"
        hb = lambda: memo.get(f"power.hb.{variant}", lambda: self.hb(x))
        prop = lambda: memo.get(
            f"power.prop.{variant}", lambda: self.prop(x, hb())
        )
        hb_star = lambda: memo.get(
            f"power.hbstar.{variant}",
            lambda: hb().reflexive_transitive_closure(),
        )
        thunks: list[AxiomThunk] = [
            ("Coherence", lambda: coherence_ok(x)),
            ("RMWIsol", lambda: rmw_isolation_ok(x)),
            ("Order", lambda: hb().is_acyclic()),
            ("Propagation", lambda: (x.co | prop()).is_acyclic()),
            (
                "Observation",
                lambda: x.fre.compose(prop()).compose(hb_star()).is_irreflexive(),
            ),
        ]
        if self.is_transactional:
            thunks.extend(
                [
                    ("StrongIsol", lambda: strong_isolation_ok(x)),
                    ("TxnOrder", lambda: txn_order_ok(x, hb())),
                    ("TxnCancelsRMW", lambda: txn_cancels_rmw_ok(x)),
                ]
            )
        return thunks

    def consistent(self, x: Execution) -> bool:
        # Straight-line hot path mirroring axiom_thunks (see X86Model).
        if not coherence_ok(x):
            return False
        if not rmw_isolation_ok(x):
            return False
        memo = x.context
        variant = "tm" if self.is_transactional else "base"
        hb = memo.get(f"power.hb.{variant}", lambda: self.hb(x))
        if not hb.is_acyclic():
            return False
        prop = memo.get(f"power.prop.{variant}", lambda: self.prop(x, hb))
        if not (x.co | prop).is_acyclic():
            return False
        hb_star = memo.get(
            f"power.hbstar.{variant}",
            lambda: hb.reflexive_transitive_closure(),
        )
        if not x.fre.compose(prop).compose(hb_star).is_irreflexive():
            return False
        if self.is_transactional:
            if not strong_isolation_ok(x):
                return False
            if not txn_order_ok(x, hb):
                return False
            if not txn_cancels_rmw_ok(x):
                return False
        return True
