"""The Power memory model with Power TM (Fig. 6).

The baseline is the herding-cats Power model of Alglave, Maranget &
Tautschnig (2014).  Fig. 6 elides the preserved-program-order (``ppo``)
definition "as it is complex and unchanged by our TM additions"; we
implement the full herding-cats recursion here so the model is usable on
dependency-bearing litmus tests (MP+dep, WRC+addr, ...).

Baseline axioms::

    acyclic(poloc ∪ com)                                  (Coherence)
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)
    acyclic(hb)                                           (Order)
    acyclic(co ∪ prop)                                    (Propagation)
    irreflexive(fre ; prop ; hb*)                         (Observation)

TM additions (highlighted in Fig. 6):

* ``tfence`` joins the fence relation (implicit barriers at transaction
  boundaries, Power ISA §1.8);
* ``thb`` -- transactions serialise in an order that no thread may
  contradict; ``weaklift(thb, stxn)`` joins ``hb``;
* ``tprop1 = rfe ; stxn ; [W]`` -- the transaction's "integrated memory
  barrier": writes it observed propagate before its own writes;
* ``tprop2 = stxn ; rfe`` -- transactional writes are multicopy-atomic;
* ``StrongIsol``, ``TxnOrder``, and ``TxnCancelsRMW``.

The ``ii``/``ic``/``ci``/``cc`` recursion is declared as an IR fixpoint
group (clause for clause the same shape as ``cat/models/powertm.cat``,
so the twin hash-conses into the same DAG); the executor interns the
group's solution across executions keyed on its variable-free inputs,
which is what the old hand-fused kernel's ``powerppor`` row cache did by
hand.
"""

from __future__ import annotations

from functools import lru_cache

from .. import ir
from ..events import Execution
from ..relations import Relation
from .base import IRModel


@lru_cache(maxsize=None)
def _terms(transactional: bool) -> dict[str, ir.Term]:
    addr, data, po = ir.rel("addr"), ir.rel("data"), ir.rel("po")
    poloc, ctrl, isync = ir.rel("poloc"), ir.rel("ctrl"), ir.rel("isync")
    rfi, rfe = ir.rel("rfi"), ir.rel("rfe")
    fre, coe, come = ir.rel("fre"), ir.rel("coe"), ir.rel("come")
    sync, lwsync, tfence = ir.rel("sync"), ir.rel("lwsync"), ir.rel("tfence")
    stxn = ir.rel("stxn")
    reads_id = ir.setrel(ir.evset("R"))
    writes_id = ir.setrel(ir.evset("W"))
    writes, reads = ir.evset("W"), ir.evset("R")

    # The herding-cats ppo recursion (power.cat): ii/ic/ci/cc relate the
    # init (i) or commit (c) parts of instruction pairs.
    dp = ir.union(addr, data)
    rdw = ir.inter(poloc, ir.seq(fre, rfe))
    detour = ir.inter(poloc, ir.seq(coe, rfe))
    ii0 = ir.union(dp, rdw, rfi)
    ci0 = ir.union(ir.inter(ctrl, isync), detour)
    cc0 = ir.union(dp, poloc, ctrl, ir.seq(addr, po))
    v_ii, v_ic, v_ci, v_cc = (ir.var(i) for i in range(4))
    ii, ic, ci, cc = ir.fix(
        [
            ir.union(ii0, v_ci, ir.seq(v_ic, v_ci), ir.seq(v_ii, v_ii)),
            ir.union(v_ii, v_cc, ir.seq(v_ic, v_cc), ir.seq(v_ii, v_ic)),
            ir.union(ci0, ir.seq(v_ci, v_ii), ir.seq(v_cc, v_ci)),
            ir.union(cc0, v_ci, ir.seq(v_ci, v_ic), ir.seq(v_cc, v_cc)),
        ]
    )

    # Table 3, footnote 3: ctrl edges sourced at a store-exclusive (the
    # spinlock's bne tests the stwcx. success flag) order it before
    # later stores -- before everything when an isync intervenes.
    wex_ctrl = ir.seq(ir.setrel(ir.evset("WEX")), ctrl)
    wexctrl = ir.union(
        ir.inter(wex_ctrl, isync), ir.seq(wex_ctrl, writes_id)
    )
    ppo = ir.union(
        ir.seq(reads_id, ii, reads_id),
        ir.seq(reads_id, ic, writes_id),
        wexctrl,
    )

    # fence = sync | (lwsync \ W×R) | tfence (TM only).
    fence_parts = [sync, ir.diff(lwsync, ir.cross(writes, reads))]
    if transactional:
        fence_parts.append(tfence)
    fence = ir.union(*fence_parts)
    ihb = ir.union(ppo, fence)

    # Transaction happens-before (§5.2, Transaction Ordering): chains of
    # ihb and external communication, excluding shapes that give no
    # ordering on a non-multicopy-atomic machine.
    fc = ir.star(ir.union(fre, coe))
    thb = ir.seq(
        ir.star(ir.union(rfe, ir.seq(fc, ihb))), fc, ir.opt(rfe)
    )

    rfe_opt = ir.opt(rfe)
    hb = ir.seq(rfe_opt, ihb, rfe_opt)
    if transactional:
        hb = ir.union(hb, ir.weaklift(thb, stxn))
    hb_star = ir.star(hb)

    # Propagation (Fig. 6), with the TM terms tprop1/tprop2 (§5.2).
    efence = ir.seq(rfe_opt, fence, rfe_opt)
    prop1 = ir.seq(writes_id, efence, hb_star, writes_id)
    heavy = ir.union(sync, tfence) if transactional else sync
    prop2 = ir.seq(ir.star(come), ir.star(efence), hb_star, heavy, hb_star)
    prop_parts = [prop1, prop2]
    if transactional:
        prop_parts.append(ir.seq(rfe, stxn, writes_id))  # tprop1
        prop_parts.append(ir.seq(stxn, rfe))  # tprop2
    prop = ir.union(*prop_parts)

    return {
        "ppo": ppo,
        "fence": fence,
        "ihb": ihb,
        "thb": thb,
        "hb": hb,
        "hb_star": hb_star,
        "prop": prop,
    }


@lru_cache(maxsize=None)
def _plan(transactional: bool) -> ir.Plan:
    terms = _terms(transactional)
    com, stxn, rmw = ir.rel("com"), ir.rel("stxn"), ir.rel("rmw")
    constraints = [
        ir.acyclic("Coherence", ir.union(ir.rel("poloc"), com)),
        ir.empty_c(
            "RMWIsol", ir.inter(rmw, ir.seq(ir.rel("fre"), ir.rel("coe")))
        ),
        ir.acyclic("Order", terms["hb"]),
        ir.acyclic("Propagation", ir.union(ir.rel("co"), terms["prop"])),
        ir.irreflexive(
            "Observation",
            ir.seq(ir.rel("fre"), terms["prop"], terms["hb_star"]),
        ),
    ]
    if transactional:
        constraints.extend(
            [
                ir.acyclic("StrongIsol", ir.stronglift(com, stxn)),
                ir.acyclic("TxnOrder", ir.stronglift(terms["hb"], stxn)),
                ir.empty_c(
                    "TxnCancelsRMW",
                    ir.inter(rmw, ir.star(ir.rel("tfence"))),
                ),
            ]
        )
    return ir.compile_model(
        "Power+TM" if transactional else "Power", constraints
    )


class PowerModel(IRModel):
    """Power, optionally with the paper's TM axioms."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "Power+TM" if transactional else "Power"

    def baseline(self) -> "PowerModel":
        return PowerModel(transactional=False) if self.is_transactional else self

    def plan(self) -> ir.Plan:
        return _plan(self.is_transactional)

    # ------------------------------------------------------------------
    # Derived relations (materialised views of the IR terms)
    # ------------------------------------------------------------------

    def ppo(self, x: Execution) -> Relation:
        """The full herding-cats ppo recursion (identical for the TM and
        baseline variants)."""
        return ir.evaluate(_terms(self.is_transactional)["ppo"], x)

    def fence(self, x: Execution) -> Relation:
        """``fence = sync ∪ tfence ∪ (lwsync \\ (W × R))``."""
        return ir.evaluate(_terms(self.is_transactional)["fence"], x)

    def ihb(self, x: Execution) -> Relation:
        """Intra-thread happens-before: ``ppo ∪ fence``."""
        return ir.evaluate(_terms(self.is_transactional)["ihb"], x)

    def thb(self, x: Execution) -> Relation:
        """Transaction happens-before (§5.2):
        ``thb = (rfe ∪ ((fre ∪ coe)* ; ihb))* ; (fre ∪ coe)* ; rfe?``."""
        return ir.evaluate(_terms(self.is_transactional)["thb"], x)

    def hb(self, x: Execution) -> Relation:
        """``hb = (rfe? ; ihb ; rfe?) ∪ weaklift(thb, stxn)``."""
        return ir.evaluate(_terms(self.is_transactional)["hb"], x)

    def prop(self, x: Execution) -> Relation:
        """The propagation order (Fig. 6), including tprop1/tprop2."""
        return ir.evaluate(_terms(self.is_transactional)["prop"], x)
