"""The Power memory model with Power TM (Fig. 6).

The baseline is the herding-cats Power model of Alglave, Maranget &
Tautschnig (2014).  Fig. 6 elides the preserved-program-order (``ppo``)
definition "as it is complex and unchanged by our TM additions"; we
implement the full herding-cats recursion here so the model is usable on
dependency-bearing litmus tests (MP+dep, WRC+addr, ...).

Baseline axioms::

    acyclic(poloc ∪ com)                                  (Coherence)
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)
    acyclic(hb)                                           (Order)
    acyclic(co ∪ prop)                                    (Propagation)
    irreflexive(fre ; prop ; hb*)                         (Observation)

TM additions (highlighted in Fig. 6):

* ``tfence`` joins the fence relation (implicit barriers at transaction
  boundaries, Power ISA §1.8);
* ``thb`` -- transactions serialise in an order that no thread may
  contradict; ``weaklift(thb, stxn)`` joins ``hb``;
* ``tprop1 = rfe ; stxn ; [W]`` -- the transaction's "integrated memory
  barrier": writes it observed propagate before its own writes;
* ``tprop2 = stxn ; rfe`` -- transactional writes are multicopy-atomic;
* ``StrongIsol``, ``TxnOrder``, and ``TxnCancelsRMW``.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation, weaklift
from ..relations.context import global_intern
from ..relations.relation import (
    acyclic_rows_cached,
    compose_rows,
    rtc_rows_cached,
)
from .base import AxiomThunk, MemoryModel
from .common import (
    coherence_ok,
    coherence_rows_ok,
    comm_rows,
    lifted_acyclic_rows_ok,
    mask_of,
    rmw_isolation_ok,
    rmw_isolation_rows_ok,
    strong_isolation_ok,
    txn_cancels_rmw_ok,
    txn_cancels_rmw_rows_ok,
    txn_order_ok,
)


class PowerModel(MemoryModel):
    """Power, optionally with the paper's TM axioms."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "Power+TM" if transactional else "Power"

    def baseline(self) -> MemoryModel:
        return PowerModel(transactional=False) if self.is_transactional else self

    # ------------------------------------------------------------------
    # Preserved program order (herding-cats §6, power.cat)
    # ------------------------------------------------------------------

    def ppo(self, x: Execution) -> Relation:
        """The full herding-cats ppo recursion.

        ``ii``/``ic``/``ci``/``cc`` relate the *init* (i) or *commit* (c)
        parts of instruction pairs; the fixpoint is computed by simple
        iteration, which terminates because each relation only grows
        within a finite universe.  The result is identical for the TM and
        baseline variants, so it is cached once per execution.
        """
        return x.context.get("power.ppo", lambda: self._compute_ppo(x))

    def _compute_ppo(self, x: Execution) -> Relation:
        dp = x.context.get("static:power.dp", lambda: x.addr | x.data)
        rdw = x.poloc & x.fre.compose(x.rfe)
        detour = x.poloc & x.coe.compose(x.rfe)
        ctrl_isync = x.context.get(
            "static:power.ctrlisync", lambda: x.ctrl & x.isync
        )

        ii0 = dp | rdw | x.rfi
        ci0 = ctrl_isync | detour
        ic0 = Relation.empty(x.eids)
        cc0 = x.context.get(
            "static:power.cc0",
            lambda: dp | x.poloc | x.ctrl | x.addr.compose(x.po),
        )

        ii, ic, ci, cc = ii0, ic0, ci0, cc0
        while True:
            ii2 = ii0 | ci | ic.compose(ci) | ii.compose(ii)
            ic2 = ic0 | ii | cc | ic.compose(cc) | ii.compose(ic)
            ci2 = ci0 | ci.compose(ii) | cc.compose(ci)
            cc2 = cc0 | ci | ci.compose(ic) | cc.compose(cc)
            if (ii2, ic2, ci2, cc2) == (ii, ic, ci, cc):
                break
            ii, ic, ci, cc = ii2, ic2, ci2, cc2

        reads, writes = x.reads, x.writes
        return (
            ii.restrict(reads, reads)
            | ic.restrict(reads, writes)
            | self._store_exclusive_ctrl(x)
        )

    def _store_exclusive_ctrl(self, x: Execution) -> Relation:
        """Table 3, footnote 3: in Power, ctrl edges can begin at a
        store-exclusive (the spinlock's ``bne`` tests the stwcx. success
        flag).  Such a dependency orders the store-exclusive before
        later *stores*, and -- when an isync intervenes (ctrl-isync) --
        before every later access.  This is the mechanism that makes the
        Power spinlock stronger than ARMv8's in §8.3."""
        def compute() -> Relation:
            wex = Relation.from_set(x.rmw.range(), x.eids)
            wex_ctrl = wex.compose(x.ctrl)
            w_id = Relation.from_set(x.writes, x.eids)
            return (wex_ctrl & x.isync) | wex_ctrl.compose(w_id)

        return x.context.get("static:power.wexctrl", compute)

    # ------------------------------------------------------------------
    # Fences and happens-before (Fig. 6)
    # ------------------------------------------------------------------

    def fence(self, x: Execution) -> Relation:
        """``fence = sync ∪ tfence ∪ (lwsync \\ (W × R))``."""

        def compute() -> Relation:
            lwsync_effective = x.lwsync - Relation.cross(
                x.writes, x.reads, x.eids
            )
            out = x.sync | lwsync_effective
            if self.is_transactional:
                out = out | x.tfence
            return out

        variant = "tm" if self.is_transactional else "base"
        return x.context.get(f"static:power.fence.{variant}", compute)

    def ihb(self, x: Execution) -> Relation:
        """Intra-thread happens-before: ``ppo ∪ fence``."""
        variant = "tm" if self.is_transactional else "base"
        return x.context.get(
            f"power.ihb.{variant}", lambda: self.ppo(x) | self.fence(x)
        )

    def thb(self, x: Execution) -> Relation:
        """Transaction happens-before (§5.2, Transaction Ordering):
        ``thb = (rfe ∪ ((fre ∪ coe)* ; ihb))* ; (fre ∪ coe)* ; rfe?``.

        Chains of ihb and external communication, excluding those where
        an fre/coe is followed by an rfe that does not end the chain --
        such shapes give no ordering on a non-multicopy-atomic machine.
        """
        variant = "tm" if self.is_transactional else "base"

        def compute() -> Relation:
            ihb = self.ihb(x)
            fc = (x.fre | x.coe).reflexive_transitive_closure()
            head = (x.rfe | fc.compose(ihb)).reflexive_transitive_closure()
            return head.compose(fc).compose(x.rfe.optional())

        return x.context.get(f"power.thb.{variant}", compute)

    def hb(self, x: Execution) -> Relation:
        """``hb = (rfe? ; ihb ; rfe?) ∪ weaklift(thb, stxn)``."""
        ihb = self.ihb(x)
        rfe_opt = x.rfe.optional()
        base = rfe_opt.compose(ihb).compose(rfe_opt)
        if self.is_transactional:
            base = base | weaklift(self.thb(x), x.stxn)
        return base

    # ------------------------------------------------------------------
    # Propagation (Fig. 6)
    # ------------------------------------------------------------------

    def prop(self, x: Execution, hb: Relation) -> Relation:
        fence = self.fence(x)
        rfe_opt = x.rfe.optional()
        efence = rfe_opt.compose(fence).compose(rfe_opt)
        hb_star = hb.reflexive_transitive_closure()
        w_id = Relation.from_set(x.writes, x.eids)

        prop1 = w_id.compose(efence).compose(hb_star).compose(w_id)
        heavy = x.sync | x.tfence if self.is_transactional else x.sync
        prop2 = (
            x.come.reflexive_transitive_closure()
            .compose(efence.reflexive_transitive_closure())
            .compose(hb_star)
            .compose(heavy)
            .compose(hb_star)
        )
        out = prop1 | prop2
        if self.is_transactional:
            tprop1 = x.rfe.compose(x.stxn).compose(w_id)
            tprop2 = x.stxn.compose(x.rfe)
            out = out | tprop1 | tprop2
        return out

    # ------------------------------------------------------------------
    # Axioms
    # ------------------------------------------------------------------

    def axiom_thunks(self, x: Execution) -> list[AxiomThunk]:
        memo = x.context
        variant = "tm" if self.is_transactional else "base"
        hb = lambda: memo.get(f"power.hb.{variant}", lambda: self.hb(x))
        prop = lambda: memo.get(
            f"power.prop.{variant}", lambda: self.prop(x, hb())
        )
        hb_star = lambda: memo.get(
            f"power.hbstar.{variant}",
            lambda: hb().reflexive_transitive_closure(),
        )
        thunks: list[AxiomThunk] = [
            ("Coherence", lambda: coherence_ok(x)),
            ("RMWIsol", lambda: rmw_isolation_ok(x)),
            ("Order", lambda: hb().is_acyclic()),
            ("Propagation", lambda: (x.co | prop()).is_acyclic()),
            (
                "Observation",
                lambda: x.fre.compose(prop()).compose(hb_star()).is_irreflexive(),
            ),
        ]
        if self.is_transactional:
            thunks.extend(
                [
                    ("StrongIsol", lambda: strong_isolation_ok(x)),
                    ("TxnOrder", lambda: txn_order_ok(x, hb())),
                    ("TxnCancelsRMW", lambda: txn_cancels_rmw_ok(x)),
                ]
            )
        return thunks

    # ------------------------------------------------------------------
    # Fused row-level consistency kernel
    # ------------------------------------------------------------------

    def _read_write_masks(self, x: Execution, uni) -> tuple[int, int]:
        """Bitmasks of the read/write positions, skeleton-static."""
        return x.context.get(
            "static:power.rwmasks",
            lambda: (mask_of(uni, x.reads), mask_of(uni, x.writes)),
        )

    def _ppo_rows(self, x: Execution, uni, rfi, rfe, fre, coe) -> tuple[int, ...]:
        """Rows of the herding-cats ``ppo`` (identical for TM/baseline).

        The rf/co-dependent seeds ``ii0``/``ci0`` are assembled at row
        level; the fixpoint result is interned globally, keyed by every
        input it reads (seeds, ``cc0``, ``wexctrl``, and the read/write
        restriction masks via the kind key), so completions that derive
        the same seeds share one fixpoint run.
        """
        dp = x.context.get("static:power.dp", lambda: x.addr | x.data)
        ctrl_isync = x.context.get(
            "static:power.ctrlisync", lambda: x.ctrl & x.isync
        )
        cc0 = x.context.get(
            "static:power.cc0",
            lambda: dp | x.poloc | x.ctrl | x.addr.compose(x.po),
        )
        wexctrl = self._store_exclusive_ctrl(x)

        poloc = x.poloc._rows
        rdw = [p & q for p, q in zip(poloc, compose_rows(fre, rfe))]
        detour = [p & q for p, q in zip(poloc, compose_rows(coe, rfe))]
        ii0 = tuple(d | r | f for d, r, f in zip(dp._rows, rdw, rfi))
        ci0 = tuple(c | d for c, d in zip(ctrl_isync._rows, detour))

        key = (
            "powerppor",
            x._intern_uid,
            x._kind_key,
            ii0,
            ci0,
            cc0._rows,
            wexctrl._rows,
        )
        return global_intern(
            key,
            lambda: self._ppo_fixpoint_rows(
                x, uni, ii0, ci0, cc0._rows, wexctrl._rows
            ),
        )

    def _ppo_fixpoint_rows(
        self, x: Execution, uni, ii0, ci0, cc0, wexctrl
    ) -> tuple[int, ...]:
        n = len(ii0)
        ii, ic, ci, cc = list(ii0), [0] * n, list(ci0), list(cc0)
        while True:
            ii2 = [
                a | b | c | d
                for a, b, c, d in zip(
                    ii0, ci, compose_rows(ic, ci), compose_rows(ii, ii)
                )
            ]
            ic2 = [
                a | b | c | d
                for a, b, c, d in zip(
                    ii, cc, compose_rows(ic, cc), compose_rows(ii, ic)
                )
            ]
            ci2 = [
                a | b | c
                for a, b, c in zip(
                    ci0, compose_rows(ci, ii), compose_rows(cc, ci)
                )
            ]
            cc2 = [
                a | b | c | d
                for a, b, c, d in zip(
                    cc0, ci, compose_rows(ci, ic), compose_rows(cc, cc)
                )
            ]
            if ii2 == ii and ic2 == ic and ci2 == ci and cc2 == cc:
                break
            ii, ic, ci, cc = ii2, ic2, ci2, cc2

        rmask, wmask = self._read_write_masks(x, uni)
        out = []
        for i, wrow in enumerate(wexctrl):
            if rmask >> i & 1:
                out.append((ii[i] & rmask) | (ic[i] & wmask) | wrow)
            else:
                out.append(wrow)
        return tuple(out)

    def consistent(self, x: Execution) -> bool:
        """Fused row-level consistency kernel (see ``X86Model``).

        Evaluates the ppo fixpoint, ``thb``, ``hb``, and ``prop``
        directly over adjacency-bitset rows, with the per-execution
        results interned variant-keyed in ``x.context`` and the closures
        interned globally.  Verdict-identical to the generic
        ``axiom_thunks`` conjunction (property-tested), which remains
        the source of truth for diagnostics.
        """
        comm = comm_rows(x)
        if comm is None:
            # Mixed universes (hand-built executions): generic path.
            return all(thunk() for _, thunk in self.axiom_thunks(x))
        uni, rf_rows, co_rows, fr_rows = comm

        if not coherence_rows_ok(x, uni, rf_rows, co_rows, fr_rows):
            return False
        same = x.same_thread._rows
        if not rmw_isolation_rows_ok(x, same, co_rows, fr_rows):
            return False

        memo = x.context
        tm = self.is_transactional
        variant = "tm" if tm else "base"

        rfe = [r & ~t for r, t in zip(rf_rows, same)]
        rfi = [r & t for r, t in zip(rf_rows, same)]
        fre = [f & ~t for f, t in zip(fr_rows, same)]
        coe = [c & ~t for c, t in zip(co_rows, same)]

        ppo = memo.get(
            "power.ppo.rows",
            lambda: self._ppo_rows(x, uni, rfi, rfe, fre, coe),
        )
        fence = self.fence(x)._rows
        ihb = [p | f for p, f in zip(ppo, fence)]
        rfe_opt = [r | (1 << i) for i, r in enumerate(rfe)]

        def hb_rows_compute() -> tuple[int, ...]:
            base = compose_rows(compose_rows(rfe_opt, ihb), rfe_opt)
            if tm and x.txn_of:
                # thb = (rfe ∪ (fre ∪ coe)* ; ihb)* ; (fre ∪ coe)* ; rfe?
                fc = rtc_rows_cached(
                    uni, tuple(f | c for f, c in zip(fre, coe))
                )
                head = rtc_rows_cached(
                    uni,
                    tuple(
                        r | q for r, q in zip(rfe, compose_rows(fc, ihb))
                    ),
                )
                thb = compose_rows(compose_rows(head, fc), rfe_opt)
                # weaklift(thb, stxn) = stxn ; (thb \ stxn) ; stxn
                stxn = x.stxn._rows
                lifted = compose_rows(
                    compose_rows(
                        stxn, [t & ~s for t, s in zip(thb, stxn)]
                    ),
                    stxn,
                )
                return tuple(b | w for b, w in zip(base, lifted))
            return tuple(base)

        hb = memo.get(f"power.hb.rows.{variant}", hb_rows_compute)
        if not acyclic_rows_cached(uni, hb):
            return False

        hb_star = memo.get(
            f"power.hbstar.rows.{variant}",
            lambda: rtc_rows_cached(uni, hb),
        )

        def prop_rows_compute() -> tuple[int, ...]:
            _, wmask = self._read_write_masks(x, uni)
            efence = compose_rows(compose_rows(rfe_opt, fence), rfe_opt)
            efence_hbstar = compose_rows(efence, hb_star)
            prop1 = [
                (row & wmask) if wmask >> i & 1 else 0
                for i, row in enumerate(efence_hbstar)
            ]
            heavy = x.sync._rows
            if tm:
                heavy = [s | t for s, t in zip(heavy, x.tfence._rows)]
            come_star = rtc_rows_cached(
                uni, tuple(a | b | c for a, b, c in zip(rfe, coe, fre))
            )
            efence_star = rtc_rows_cached(uni, tuple(efence))
            prop2 = compose_rows(
                compose_rows(
                    compose_rows(compose_rows(come_star, efence_star), hb_star),
                    heavy,
                ),
                hb_star,
            )
            out = [a | b for a, b in zip(prop1, prop2)]
            if tm and x.txn_of:
                stxn = x.stxn._rows
                tprop1 = [
                    row & wmask for row in compose_rows(rfe, stxn)
                ]
                tprop2 = compose_rows(stxn, rfe)
                out = [
                    o | a | b for o, a, b in zip(out, tprop1, tprop2)
                ]
            return tuple(out)

        prop = memo.get(f"power.prop.rows.{variant}", prop_rows_compute)

        # Propagation: acyclic(co ∪ prop).
        if not acyclic_rows_cached(
            uni, tuple(c | p for c, p in zip(co_rows, prop))
        ):
            return False

        # Observation: irreflexive(fre ; prop ; hb*).
        obs = compose_rows(compose_rows(fre, prop), hb_star)
        if any(row >> i & 1 for i, row in enumerate(obs)):
            return False

        if tm:
            if x.txn_of:
                com = [
                    a | b | c for a, b, c in zip(rf_rows, co_rows, fr_rows)
                ]
                if not lifted_acyclic_rows_ok(x, uni, com):
                    return False
                if not lifted_acyclic_rows_ok(x, uni, hb):
                    return False
            else:
                # stxn? is the identity: StrongIsol degenerates to
                # acyclic(com); TxnOrder to acyclic(hb), checked above.
                com = tuple(
                    a | b | c for a, b, c in zip(rf_rows, co_rows, fr_rows)
                )
                if not acyclic_rows_cached(uni, com):
                    return False
            if not txn_cancels_rmw_rows_ok(x):
                return False
        return True
