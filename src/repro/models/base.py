"""Memory-model interface.

A memory model is a named set of axioms over executions (§2).  The
abstract :class:`MemoryModel` exposes the axiom vocabulary --
:meth:`~MemoryModel.axiom_thunks` for lazy per-axiom checks,
:meth:`~MemoryModel.consistent` for the conjunction,
:meth:`~MemoryModel.violated_axioms` for diagnostics.

Every concrete model in the reproduction -- the six Python models *and*
parsed ``.cat`` files -- is an :class:`IRModel`: it *declares* its
axioms as a :class:`repro.ir.Plan` of relational-algebra terms and
inherits all three methods as thin wrappers over the shared
:mod:`repro.ir.executor`.  Derived relations are shared across axioms
(and across models checking the same execution) through hash-consed
terms memoised in the execution's
:class:`~repro.relations.RelationContext`; skeleton-static subterms are
adopted across a skeleton's rf/co completions automatically.  Because
diagnostics and the hot path both read the executor's per-constraint
verdicts, they can never disagree.

:class:`MemoryModel` itself stays IR-agnostic so that wrappers composing
*other* models (e.g. :class:`repro.sim.FilteredModel`) can still supply
plain thunks.
"""

from __future__ import annotations

import abc
from typing import Callable

from .. import ir
from ..events import Execution

AxiomThunk = tuple[str, Callable[[], bool]]


class MemoryModel(abc.ABC):
    """Base class for all axiomatic models in this reproduction."""

    #: Human-readable name, e.g. ``"x86+TM"``.
    name: str = "abstract"

    #: Whether the model includes the paper's TM axioms.
    is_transactional: bool = False

    @abc.abstractmethod
    def axiom_thunks(self, execution: Execution) -> list[AxiomThunk]:
        """Named axiom checks, in the model's declaration order."""

    def consistent(self, execution: Execution) -> bool:
        """Does the execution satisfy every axiom?"""
        return all(thunk() for _, thunk in self.axiom_thunks(execution))

    def violated_axioms(self, execution: Execution) -> list[str]:
        """Names of all axioms the execution violates (for diagnostics)."""
        return [
            name for name, thunk in self.axiom_thunks(execution) if not thunk()
        ]

    def baseline(self) -> "MemoryModel":
        """The non-transactional model this one extends (§5.3 compares the
        TM models against these).  Non-TM models return themselves."""
        return self

    def allows(self, execution: Execution) -> bool:
        """Alias for :meth:`consistent`, reading like the paper's prose."""
        return self.consistent(execution)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryModel {self.name}>"


class IRModel(MemoryModel):
    """A model whose axioms are declared as an IR plan.

    Subclasses implement :meth:`plan` (usually returning a module-level
    ``lru_cache``'d spec, so the term DAG and its schedule are built
    once per process); everything else is the shared executor.
    """

    @abc.abstractmethod
    def plan(self) -> "ir.Plan":
        """The compiled constraint plan for this model."""

    def axiom_thunks(self, execution: Execution) -> list[AxiomThunk]:
        return ir.axiom_thunks(self.plan(), execution)

    def consistent(self, execution: Execution) -> bool:
        return ir.consistent(self.plan(), execution)

    def violated_axioms(self, execution: Execution) -> list[str]:
        return ir.violated_axioms(self.plan(), execution)
