"""Memory-model interface.

A memory model is a named set of axioms over executions (§2).  Concrete
models provide :meth:`MemoryModel.axiom_thunks`, a list of named,
lazily-evaluated axiom checks; consistency is their conjunction.  Thunks
share work through the execution's
:class:`~repro.relations.RelationContext` (``x.context``) so that, e.g.,
Power's ``hb`` is computed once even though three axioms mention it --
and is not computed at all if the cheap Coherence axiom already fails
(the common case inside enumeration loops).  Context keys are
variant-keyed (``power.hb.tm`` vs ``power.hb.base``) wherever the TM and
baseline models derive different values, and the sharing survives
repeated ``consistent`` calls and a skeleton's rf/co completions --
never use a call-local memo for derived relations.
"""

from __future__ import annotations

import abc
from typing import Callable

from ..events import Execution

AxiomThunk = tuple[str, Callable[[], bool]]


class MemoryModel(abc.ABC):
    """Base class for all axiomatic models in this reproduction."""

    #: Human-readable name, e.g. ``"x86+TM"``.
    name: str = "abstract"

    #: Whether the model includes the paper's TM axioms.
    is_transactional: bool = False

    @abc.abstractmethod
    def axiom_thunks(self, execution: Execution) -> list[AxiomThunk]:
        """Named axiom checks, cheapest first."""

    def consistent(self, execution: Execution) -> bool:
        """Does the execution satisfy every axiom?"""
        return all(thunk() for _, thunk in self.axiom_thunks(execution))

    def violated_axioms(self, execution: Execution) -> list[str]:
        """Names of all axioms the execution violates (for diagnostics)."""
        return [
            name for name, thunk in self.axiom_thunks(execution) if not thunk()
        ]

    def baseline(self) -> "MemoryModel":
        """The non-transactional model this one extends (§5.3 compares the
        TM models against these).  Non-TM models return themselves."""
        return self

    def allows(self, execution: Execution) -> bool:
        """Alias for :meth:`consistent`, reading like the paper's prose."""
        return self.consistent(execution)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryModel {self.name}>"
