"""SC and Transactional SC (Fig. 4, §3.4).

SC is characterised axiomatically by forbidding cycles in program order
and communication (Shasha & Snir)::

    acyclic(hb)  where  hb = po ∪ com                       (Order)

TSC strengthens SC so that consecutive events of a transaction appear
consecutively in the overall execution order::

    acyclic(stronglift(hb, stxn))                           (TxnOrder)

TxnOrder subsumes the StrongIsol axiom (§3.4); a regression test checks
this subsumption on enumerated executions.
"""

from __future__ import annotations

from functools import lru_cache

from .. import ir
from ..events import Execution
from ..relations import Relation
from .base import IRModel


def _hb() -> ir.Term:
    return ir.union(ir.rel("po"), ir.rel("com"))


@lru_cache(maxsize=None)
def _sc_plan() -> ir.Plan:
    return ir.compile_model("SC", [ir.acyclic("Order", _hb())])


@lru_cache(maxsize=None)
def _tsc_plan() -> ir.Plan:
    hb = _hb()
    return ir.compile_model(
        "TSC",
        [
            ir.acyclic("Order", hb),
            ir.acyclic("TxnOrder", ir.stronglift(hb, ir.rel("stxn"))),
        ],
    )


class SCModel(IRModel):
    """Sequential consistency (Fig. 4 without the highlight)."""

    name = "SC"
    is_transactional = False

    def plan(self) -> ir.Plan:
        return _sc_plan()

    def hb(self, x: Execution) -> Relation:
        return ir.evaluate(_hb(), x)


class TSCModel(SCModel):
    """Transactional sequential consistency (Fig. 4 with the highlight).

    TSC is the upper bound on the guarantees a reasonable TM
    implementation provides (§3.4); the paper's x86/Power/ARMv8/C++ TM
    models all lie between the isolation axioms and TSC.
    """

    name = "TSC"
    is_transactional = True

    def plan(self) -> ir.Plan:
        return _tsc_plan()

    def baseline(self) -> SCModel:
        return SCModel()
