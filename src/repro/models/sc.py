"""SC and Transactional SC (Fig. 4, §3.4).

SC is characterised axiomatically by forbidding cycles in program order
and communication (Shasha & Snir)::

    acyclic(hb)  where  hb = po ∪ com                       (Order)

TSC strengthens SC so that consecutive events of a transaction appear
consecutively in the overall execution order::

    acyclic(stronglift(hb, stxn))                           (TxnOrder)

TxnOrder subsumes the StrongIsol axiom (§3.4); a regression test checks
this subsumption on enumerated executions.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation, stronglift
from .base import AxiomThunk, MemoryModel


class SCModel(MemoryModel):
    """Sequential consistency (Fig. 4 without the highlight)."""

    name = "SC"
    is_transactional = False

    def hb(self, x: Execution) -> Relation:
        return x.po | x.com

    def axiom_thunks(self, x: Execution) -> list[AxiomThunk]:
        return [("Order", lambda: self.hb(x).is_acyclic())]


class TSCModel(SCModel):
    """Transactional sequential consistency (Fig. 4 with the highlight).

    TSC is the upper bound on the guarantees a reasonable TM
    implementation provides (§3.4); the paper's x86/Power/ARMv8/C++ TM
    models all lie between the isolation axioms and TSC.
    """

    name = "TSC"
    is_transactional = True

    def axiom_thunks(self, x: Execution) -> list[AxiomThunk]:
        hb = self.hb(x)
        return [
            ("Order", hb.is_acyclic),
            ("TxnOrder", lambda: stronglift(hb, x.stxn).is_acyclic()),
        ]

    def baseline(self) -> MemoryModel:
        return SCModel()
