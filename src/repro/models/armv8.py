"""The ARMv8 memory model with the proposed TM extension (Fig. 8).

The baseline is the official multicopy-atomic ARMv8 axiomatic model
(Deacon's aarch64.cat; Pulte et al., POPL 2018).  Fig. 8 elides the
``dob``/``aob``/``bob`` definitions; they are implemented in full here.

Baseline axioms::

    acyclic(poloc ∪ com)                                  (Coherence)
    acyclic(ob)                                           (Order)
      where ob = come ∪ dob ∪ aob ∪ bob
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)

TM additions (highlighted in Fig. 8; the extension is unofficial, based
on a proposal within ARM Research):

* ``tfence`` joins ``ob``,
* ``StrongIsol``, ``TxnOrder`` (on ``ob``), and ``TxnCancelsRMW``.

This is the model under which lock elision is unsound (Example 1.1,
Fig. 10): an acquire-load spinlock does not order the lock read before
program-order-later accesses strongly enough once transactions exist.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation
from .base import AxiomThunk, MemoryModel
from .common import (
    coherence_ok,
    rmw_isolation_ok,
    strong_isolation_ok,
    txn_cancels_rmw_ok,
    txn_order_ok,
)


class ARMv8Model(MemoryModel):
    """ARMv8, optionally with the paper's (unofficial) TM axioms."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "ARMv8+TM" if transactional else "ARMv8"

    def baseline(self) -> MemoryModel:
        return ARMv8Model(transactional=False) if self.is_transactional else self

    # ------------------------------------------------------------------
    # Ordered-before components (aarch64.cat)
    # ------------------------------------------------------------------

    def dob(self, x: Execution) -> Relation:
        """Dependency-ordered-before.

        Unlike Power (Table 3, footnote 3), ARMv8 recognises no
        dependency through a store-exclusive's success flag: ``ctrl``
        edges sourced at writes are ignored here.  This asymmetry is
        what makes the ARM spinlock elidable-unsafe (Example 1.1) while
        Power's ctrl-isync idiom orders more strongly.
        """
        static = x.context.get(
            "static:armv8.dobstatic", lambda: self._dob_static(x)
        )
        ctrl = x.context.get(
            "static:armv8.rctrl",
            lambda: Relation.from_set(x.reads, x.eids).compose(x.ctrl),
        )
        return (
            static
            | (ctrl | x.data).compose(x.coi)
            | (x.addr | x.data).compose(x.rfi)
        )

    def _dob_static(self, x: Execution) -> Relation:
        """The rf/co-independent part of ``dob``."""
        w_id = Relation.from_set(x.writes, x.eids)
        r_id = Relation.from_set(x.reads, x.eids)
        ctrl = r_id.compose(x.ctrl)  # read-sourced only
        addr_po = x.addr.compose(x.po)
        # (ctrl | addr;po); [ISB]; po; [R]: approximated as the pairs that
        # are both dependency-reachable and separated by an ISB event.
        isb_order = ((ctrl | addr_po) & x.isb).compose(r_id)
        return (
            x.addr
            | x.data
            | ctrl.compose(w_id)
            | isb_order
            | addr_po.compose(w_id)
        )

    def aob(self, x: Execution) -> Relation:
        """Atomic-ordered-before."""
        exclusive_writes = Relation.from_set(x.rmw.range(), x.eids)
        acq_id = Relation.from_set(x.acq, x.eids)
        return x.rmw | exclusive_writes.compose(x.rfi).compose(acq_id)

    def bob(self, x: Execution) -> Relation:
        """Barrier-ordered-before."""
        static = x.context.get(
            "static:armv8.bobstatic", lambda: self._bob_static(x)
        )
        po_rel = x.po.compose(Relation.from_set(x.rel, x.eids))
        return static | po_rel.compose(x.coi)

    def _bob_static(self, x: Execution) -> Relation:
        """The rf/co-independent part of ``bob``."""
        r_id = Relation.from_set(x.reads, x.eids)
        w_id = Relation.from_set(x.writes, x.eids)
        acq_id = Relation.from_set(x.acq, x.eids)
        rel_id = Relation.from_set(x.rel, x.eids)
        po_rel = x.po.compose(rel_id)
        return (
            x.dmb
            | r_id.compose(x.dmbld)
            | w_id.compose(x.dmbst).compose(w_id)
            | acq_id.compose(x.po)
            | po_rel
            | rel_id.compose(x.po).compose(acq_id)
        )

    def ob(self, x: Execution) -> Relation:
        """Ordered-before (Fig. 8): ``come ∪ dob ∪ aob ∪ bob`` plus, in
        the TM extension, ``tfence``."""
        if self.is_transactional:
            return Relation.union_of(
                x.come, self.dob(x), self.aob(x), self.bob(x), x.tfence
            )
        return Relation.union_of(
            x.come, self.dob(x), self.aob(x), self.bob(x)
        )

    # ------------------------------------------------------------------
    # Axioms
    # ------------------------------------------------------------------

    def axiom_thunks(self, x: Execution) -> list[AxiomThunk]:
        variant = "tm" if self.is_transactional else "base"
        ob = lambda: x.context.get(f"armv8.ob.{variant}", lambda: self.ob(x))
        thunks: list[AxiomThunk] = [
            ("Coherence", lambda: coherence_ok(x)),
            ("RMWIsol", lambda: rmw_isolation_ok(x)),
            ("Order", lambda: ob().is_acyclic()),
        ]
        if self.is_transactional:
            thunks.extend(
                [
                    ("StrongIsol", lambda: strong_isolation_ok(x)),
                    ("TxnOrder", lambda: txn_order_ok(x, ob())),
                    ("TxnCancelsRMW", lambda: txn_cancels_rmw_ok(x)),
                ]
            )
        return thunks

    def consistent(self, x: Execution) -> bool:
        # Straight-line hot path mirroring axiom_thunks (see X86Model).
        if not coherence_ok(x):
            return False
        if not rmw_isolation_ok(x):
            return False
        variant = "tm" if self.is_transactional else "base"
        ob = x.context.get(f"armv8.ob.{variant}", lambda: self.ob(x))
        if not ob.is_acyclic():
            return False
        if self.is_transactional:
            if not strong_isolation_ok(x):
                return False
            if not txn_order_ok(x, ob):
                return False
            if not txn_cancels_rmw_ok(x):
                return False
        return True
