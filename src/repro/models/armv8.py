"""The ARMv8 memory model with the proposed TM extension (Fig. 8).

The baseline is the official multicopy-atomic ARMv8 axiomatic model
(Deacon's aarch64.cat; Pulte et al., POPL 2018).  Fig. 8 elides the
``dob``/``aob``/``bob`` definitions; they are implemented in full here.

Baseline axioms::

    acyclic(poloc ∪ com)                                  (Coherence)
    acyclic(ob)                                           (Order)
      where ob = come ∪ dob ∪ aob ∪ bob
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)

TM additions (highlighted in Fig. 8; the extension is unofficial, based
on a proposal within ARM Research):

* ``tfence`` joins ``ob``,
* ``StrongIsol``, ``TxnOrder`` (on ``ob``), and ``TxnCancelsRMW``.

This is the model under which lock elision is unsound (Example 1.1,
Fig. 10): an acquire-load spinlock does not order the lock read before
program-order-later accesses strongly enough once transactions exist.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation
from ..relations.relation import acyclic_rows_cached, compose_rows
from .base import AxiomThunk, MemoryModel
from .common import (
    coherence_ok,
    coherence_rows_ok,
    comm_rows,
    lifted_acyclic_rows_ok,
    mask_of,
    rmw_isolation_ok,
    rmw_isolation_rows_ok,
    strong_isolation_ok,
    txn_cancels_rmw_ok,
    txn_cancels_rmw_rows_ok,
    txn_order_ok,
)


class ARMv8Model(MemoryModel):
    """ARMv8, optionally with the paper's (unofficial) TM axioms."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "ARMv8+TM" if transactional else "ARMv8"

    def baseline(self) -> MemoryModel:
        return ARMv8Model(transactional=False) if self.is_transactional else self

    # ------------------------------------------------------------------
    # Ordered-before components (aarch64.cat)
    # ------------------------------------------------------------------

    def dob(self, x: Execution) -> Relation:
        """Dependency-ordered-before.

        Unlike Power (Table 3, footnote 3), ARMv8 recognises no
        dependency through a store-exclusive's success flag: ``ctrl``
        edges sourced at writes are ignored here.  This asymmetry is
        what makes the ARM spinlock elidable-unsafe (Example 1.1) while
        Power's ctrl-isync idiom orders more strongly.
        """
        static = x.context.get(
            "static:armv8.dobstatic", lambda: self._dob_static(x)
        )
        ctrl = x.context.get(
            "static:armv8.rctrl",
            lambda: Relation.from_set(x.reads, x.eids).compose(x.ctrl),
        )
        return (
            static
            | (ctrl | x.data).compose(x.coi)
            | (x.addr | x.data).compose(x.rfi)
        )

    def _dob_static(self, x: Execution) -> Relation:
        """The rf/co-independent part of ``dob``."""
        w_id = Relation.from_set(x.writes, x.eids)
        r_id = Relation.from_set(x.reads, x.eids)
        ctrl = r_id.compose(x.ctrl)  # read-sourced only
        addr_po = x.addr.compose(x.po)
        # (ctrl | addr;po); [ISB]; po; [R]: approximated as the pairs that
        # are both dependency-reachable and separated by an ISB event.
        isb_order = ((ctrl | addr_po) & x.isb).compose(r_id)
        return (
            x.addr
            | x.data
            | ctrl.compose(w_id)
            | isb_order
            | addr_po.compose(w_id)
        )

    def aob(self, x: Execution) -> Relation:
        """Atomic-ordered-before."""
        exclusive_writes = Relation.from_set(x.rmw.range(), x.eids)
        acq_id = Relation.from_set(x.acq, x.eids)
        return x.rmw | exclusive_writes.compose(x.rfi).compose(acq_id)

    def bob(self, x: Execution) -> Relation:
        """Barrier-ordered-before."""
        static = x.context.get(
            "static:armv8.bobstatic", lambda: self._bob_static(x)
        )
        return static | self._porel(x).compose(x.coi)

    def _bob_static(self, x: Execution) -> Relation:
        """The rf/co-independent part of ``bob``."""
        r_id = Relation.from_set(x.reads, x.eids)
        w_id = Relation.from_set(x.writes, x.eids)
        acq_id = Relation.from_set(x.acq, x.eids)
        rel_id = Relation.from_set(x.rel, x.eids)
        po_rel = x.po.compose(rel_id)
        return (
            x.dmb
            | r_id.compose(x.dmbld)
            | w_id.compose(x.dmbst).compose(w_id)
            | acq_id.compose(x.po)
            | po_rel
            | rel_id.compose(x.po).compose(acq_id)
        )

    def ob(self, x: Execution) -> Relation:
        """Ordered-before (Fig. 8): ``come ∪ dob ∪ aob ∪ bob`` plus, in
        the TM extension, ``tfence``."""
        if self.is_transactional:
            return Relation.union_of(
                x.come, self.dob(x), self.aob(x), self.bob(x), x.tfence
            )
        return Relation.union_of(
            x.come, self.dob(x), self.aob(x), self.bob(x)
        )

    # ------------------------------------------------------------------
    # Axioms
    # ------------------------------------------------------------------

    def axiom_thunks(self, x: Execution) -> list[AxiomThunk]:
        variant = "tm" if self.is_transactional else "base"
        ob = lambda: x.context.get(f"armv8.ob.{variant}", lambda: self.ob(x))
        thunks: list[AxiomThunk] = [
            ("Coherence", lambda: coherence_ok(x)),
            ("RMWIsol", lambda: rmw_isolation_ok(x)),
            ("Order", lambda: ob().is_acyclic()),
        ]
        if self.is_transactional:
            thunks.extend(
                [
                    ("StrongIsol", lambda: strong_isolation_ok(x)),
                    ("TxnOrder", lambda: txn_order_ok(x, ob())),
                    ("TxnCancelsRMW", lambda: txn_cancels_rmw_ok(x)),
                ]
            )
        return thunks

    # ------------------------------------------------------------------
    # Fused row-level consistency kernel
    # ------------------------------------------------------------------

    def _ob_masks(self, x: Execution, uni) -> tuple[int, int]:
        """Bitmasks of the store-exclusive writes and acquire events,
        skeleton-static."""
        return x.context.get(
            "static:armv8.obmasks",
            lambda: (mask_of(uni, x.rmw.range()), mask_of(uni, x.acq)),
        )

    def _porel(self, x: Execution) -> Relation:
        """``po ; [REL]``, skeleton-static (bob's dynamic part composes
        it with coi)."""
        return x.context.get(
            "static:armv8.porel",
            lambda: x.po.compose(Relation.from_set(x.rel, x.eids)),
        )

    def _ob_rows(
        self, x: Execution, uni, rf_rows, co_rows, fr_rows, same
    ) -> tuple[int, ...]:
        """Rows of ordered-before: ``come ∪ dob ∪ aob ∪ bob`` (plus
        ``tfence`` in the TM extension), evaluated without intermediate
        :class:`Relation` objects."""
        rfi = [r & t for r, t in zip(rf_rows, same)]
        coi = [c & t for c, t in zip(co_rows, same)]

        dob_static = x.context.get(
            "static:armv8.dobstatic", lambda: self._dob_static(x)
        )
        rctrl = x.context.get(
            "static:armv8.rctrl",
            lambda: Relation.from_set(x.reads, x.eids).compose(x.ctrl),
        )
        data = x.data._rows
        addr = x.addr._rows
        dob_coi = compose_rows(
            [c | d for c, d in zip(rctrl._rows, data)], coi
        )
        dob_rfi = compose_rows([a | d for a, d in zip(addr, data)], rfi)

        wex_mask, acq_mask = self._ob_masks(x, uni)
        bob_static = x.context.get(
            "static:armv8.bobstatic", lambda: self._bob_static(x)
        )
        bob_coi = compose_rows(self._porel(x)._rows, coi)

        rows = []
        rmw_rows = x.rmw._rows
        for i, (r, c, f) in enumerate(zip(rf_rows, co_rows, fr_rows)):
            come = (r | c | f) & ~same[i]
            row = (
                come
                | dob_static._rows[i]
                | dob_coi[i]
                | dob_rfi[i]
                | rmw_rows[i]
                | bob_static._rows[i]
                | bob_coi[i]
            )
            if wex_mask >> i & 1:
                # aob's dynamic part: [WEX] ; rfi ; [ACQ].
                row |= rfi[i] & acq_mask
            rows.append(row)
        if self.is_transactional:
            rows = [o | t for o, t in zip(rows, x.tfence._rows)]
        return tuple(rows)

    def consistent(self, x: Execution) -> bool:
        """Fused row-level consistency kernel (see ``X86Model``).

        Verdict-identical to the generic ``axiom_thunks`` conjunction
        (property-tested), which remains the source of truth for
        diagnostics.
        """
        comm = comm_rows(x)
        if comm is None:
            # Mixed universes (hand-built executions): generic path.
            return all(thunk() for _, thunk in self.axiom_thunks(x))
        uni, rf_rows, co_rows, fr_rows = comm

        if not coherence_rows_ok(x, uni, rf_rows, co_rows, fr_rows):
            return False
        same = x.same_thread._rows
        if not rmw_isolation_rows_ok(x, same, co_rows, fr_rows):
            return False

        variant = "tm" if self.is_transactional else "base"
        ob = x.context.get(
            f"armv8.ob.rows.{variant}",
            lambda: self._ob_rows(x, uni, rf_rows, co_rows, fr_rows, same),
        )
        if not acyclic_rows_cached(uni, ob):
            return False

        if self.is_transactional:
            if x.txn_of:
                com = [
                    a | b | c for a, b, c in zip(rf_rows, co_rows, fr_rows)
                ]
                if not lifted_acyclic_rows_ok(x, uni, com):
                    return False
                if not lifted_acyclic_rows_ok(x, uni, ob):
                    return False
            else:
                # stxn? is the identity: StrongIsol degenerates to
                # acyclic(com); TxnOrder to acyclic(ob), checked above.
                com = tuple(
                    a | b | c for a, b, c in zip(rf_rows, co_rows, fr_rows)
                )
                if not acyclic_rows_cached(uni, com):
                    return False
            if not txn_cancels_rmw_rows_ok(x):
                return False
        return True
