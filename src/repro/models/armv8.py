"""The ARMv8 memory model with the proposed TM extension (Fig. 8).

The baseline is the official multicopy-atomic ARMv8 axiomatic model
(Deacon's aarch64.cat; Pulte et al., POPL 2018).  Fig. 8 elides the
``dob``/``aob``/``bob`` definitions; they are implemented in full here.

Baseline axioms::

    acyclic(poloc ∪ com)                                  (Coherence)
    empty(rmw ∩ (fre ; coe))                              (RMWIsol)
    acyclic(ob)                                           (Order)
      where ob = come ∪ dob ∪ aob ∪ bob

TM additions (highlighted in Fig. 8; the extension is unofficial, based
on a proposal within ARM Research):

* ``tfence`` joins ``ob``,
* ``StrongIsol``, ``TxnOrder`` (on ``ob``), and ``TxnCancelsRMW``.

This is the model under which lock elision is unsound (Example 1.1,
Fig. 10): an acquire-load spinlock does not order the lock read before
program-order-later accesses strongly enough once transactions exist.

The axioms are declared as IR terms mirroring ``cat/models/armv8tm.cat``
clause for clause; the planner's static hoisting recovers what the old
hand-fused kernel spelled ``dobstatic``/``bobstatic`` by hand, since the
rf/co-independent parts of the big ``ob`` union collapse into interned
skeleton-static nodes mechanically.
"""

from __future__ import annotations

from functools import lru_cache

from .. import ir
from ..events import Execution
from ..relations import Relation
from .base import IRModel


@lru_cache(maxsize=None)
def _terms(transactional: bool) -> dict[str, ir.Term]:
    addr, data, po = ir.rel("addr"), ir.rel("data"), ir.rel("po")
    ctrl, isb = ir.rel("ctrl"), ir.rel("isb")
    rfi, coi, come = ir.rel("rfi"), ir.rel("coi"), ir.rel("come")
    rmw = ir.rel("rmw")
    dmb, dmbld, dmbst = ir.rel("dmb"), ir.rel("dmbld"), ir.rel("dmbst")
    reads_id = ir.setrel(ir.evset("R"))
    writes_id = ir.setrel(ir.evset("W"))
    acq_id = ir.setrel(ir.evset("ACQ"))
    rel_id = ir.setrel(ir.evset("REL"))

    # Dependency-ordered-before.  Unlike Power (Table 3, footnote 3),
    # ARMv8 recognises no dependency through a store-exclusive's success
    # flag: ctrl edges are restricted to read sources.  This asymmetry is
    # what makes the ARM spinlock elidable-unsafe (Example 1.1) while
    # Power's ctrl-isync idiom orders more strongly.
    ctrlr = ir.seq(reads_id, ctrl)
    addrpo = ir.seq(addr, po)
    isbord = ir.seq(ir.inter(ir.union(ctrlr, addrpo), isb), reads_id)
    dob = ir.union(
        addr,
        data,
        ir.seq(ctrlr, writes_id),
        isbord,
        ir.seq(addrpo, writes_id),
        ir.seq(ir.union(ctrlr, data), coi),
        ir.seq(ir.union(addr, data), rfi),
    )

    # Atomic-ordered-before.
    aob = ir.union(
        rmw, ir.seq(ir.setrel(ir.evset("WEX")), rfi, acq_id)
    )

    # Barrier-ordered-before.
    porel = ir.seq(po, rel_id)
    bob = ir.union(
        dmb,
        ir.seq(reads_id, dmbld),
        ir.seq(writes_id, dmbst, writes_id),
        ir.seq(acq_id, po),
        porel,
        ir.seq(porel, coi),
        ir.seq(rel_id, po, acq_id),
    )

    ob_parts = [come, dob, aob, bob]
    if transactional:
        ob_parts.append(ir.rel("tfence"))
    ob = ir.union(*ob_parts)
    return {"dob": dob, "aob": aob, "bob": bob, "ob": ob}


@lru_cache(maxsize=None)
def _plan(transactional: bool) -> ir.Plan:
    terms = _terms(transactional)
    com, stxn, rmw = ir.rel("com"), ir.rel("stxn"), ir.rel("rmw")
    constraints = [
        ir.acyclic("Coherence", ir.union(ir.rel("poloc"), com)),
        ir.empty_c(
            "RMWIsol", ir.inter(rmw, ir.seq(ir.rel("fre"), ir.rel("coe")))
        ),
        ir.acyclic("Order", terms["ob"]),
    ]
    if transactional:
        constraints.extend(
            [
                ir.acyclic("StrongIsol", ir.stronglift(com, stxn)),
                ir.acyclic("TxnOrder", ir.stronglift(terms["ob"], stxn)),
                ir.empty_c(
                    "TxnCancelsRMW",
                    ir.inter(rmw, ir.star(ir.rel("tfence"))),
                ),
            ]
        )
    return ir.compile_model(
        "ARMv8+TM" if transactional else "ARMv8", constraints
    )


class ARMv8Model(IRModel):
    """ARMv8, optionally with the paper's (unofficial) TM axioms."""

    def __init__(self, transactional: bool = True):
        self.is_transactional = transactional
        self.name = "ARMv8+TM" if transactional else "ARMv8"

    def baseline(self) -> "ARMv8Model":
        return ARMv8Model(transactional=False) if self.is_transactional else self

    def plan(self) -> ir.Plan:
        return _plan(self.is_transactional)

    # ------------------------------------------------------------------
    # Ordered-before components (materialised views of the IR terms)
    # ------------------------------------------------------------------

    def dob(self, x: Execution) -> Relation:
        """Dependency-ordered-before."""
        return ir.evaluate(_terms(self.is_transactional)["dob"], x)

    def aob(self, x: Execution) -> Relation:
        """Atomic-ordered-before."""
        return ir.evaluate(_terms(self.is_transactional)["aob"], x)

    def bob(self, x: Execution) -> Relation:
        """Barrier-ordered-before."""
        return ir.evaluate(_terms(self.is_transactional)["bob"], x)

    def ob(self, x: Execution) -> Relation:
        """Ordered-before (Fig. 8): ``come ∪ dob ∪ aob ∪ bob`` plus, in
        the TM extension, ``tfence``."""
        return ir.evaluate(_terms(self.is_transactional)["ob"], x)
