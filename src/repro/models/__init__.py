"""The paper's memory models: SC/TSC, x86, Power, ARMv8, C++ (§3, §5–7)."""

from .armv8 import ARMv8Model
from .base import MemoryModel
from .cpp import CppModel
from .isolation import (
    strongly_isolated,
    strongly_isolated_atomic,
    weakly_isolated,
)
from .power import PowerModel
from .registry import get_model, model_names
from .sc import SCModel, TSCModel
from .x86 import X86Model

__all__ = [
    "ARMv8Model",
    "CppModel",
    "MemoryModel",
    "PowerModel",
    "SCModel",
    "TSCModel",
    "X86Model",
    "get_model",
    "model_names",
    "strongly_isolated",
    "strongly_isolated_atomic",
    "weakly_isolated",
]
