"""Weak and strong isolation as standalone predicates (§3.3).

These are used directly in tests of the Fig. 3 executions, by the
property-based "models lie between isolation and TSC" tests (§3.4), and
to *derive* WeakIsol for C++ relaxed transactions (§7.2 notes WeakIsol
follows from the other C++ axioms -- we check that claim by enumeration).
"""

from __future__ import annotations

from ..events import Execution
from ..relations import stronglift, weaklift


def weakly_isolated(x: Execution) -> bool:
    """``acyclic(weaklift(com, stxn))`` -- transactions are isolated from
    other transactions."""
    return weaklift(x.com, x.stxn).is_acyclic()


def strongly_isolated(x: Execution) -> bool:
    """``acyclic(stronglift(com, stxn))`` -- transactions are also
    isolated from non-transactional code."""
    return stronglift(x.com, x.stxn).is_acyclic()


def strongly_isolated_atomic(x: Execution) -> bool:
    """``acyclic(stronglift(com, stxnat))`` -- the conclusion of
    Theorem 7.2 (strong isolation for C++ *atomic* transactions)."""
    return stronglift(x.com, x.stxnat).is_acyclic()
