"""Abstract syntax for the cat model language."""

from __future__ import annotations

from dataclasses import dataclass


class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Ident(Expr):
    name: str


@dataclass(frozen=True)
class EmptyRel(Expr):
    """The literal ``0``."""


@dataclass(frozen=True)
class Union(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Inter(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Diff(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Seq(Expr):
    """Relational composition ``left ; right``."""

    left: Expr
    right: Expr


@dataclass(frozen=True)
class TransClosure(Expr):
    """``e+``."""

    operand: Expr


@dataclass(frozen=True)
class ReflTransClosure(Expr):
    """``e*``."""

    operand: Expr


@dataclass(frozen=True)
class Optional(Expr):
    """``e?``."""

    operand: Expr


@dataclass(frozen=True)
class Inverse(Expr):
    """``e^-1``."""

    operand: Expr


@dataclass(frozen=True)
class Complement(Expr):
    """``~e``."""

    operand: Expr


@dataclass(frozen=True)
class SetToRel(Expr):
    """``[s]``: lift a set to the identity relation on it."""

    operand: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A builtin function application, e.g. ``weaklift(com, stxn)``."""

    function: str
    arguments: tuple[Expr, ...]


@dataclass(frozen=True)
class LetBinding:
    name: str
    value: Expr


@dataclass(frozen=True)
class Let:
    """``let x = e`` (possibly ``let rec ... and ...``)."""

    bindings: tuple[LetBinding, ...]
    recursive: bool


@dataclass(frozen=True)
class Check:
    """``acyclic|irreflexive|empty e as Name``."""

    kind: str  # "acyclic" | "irreflexive" | "empty"
    expr: Expr
    name: str


@dataclass(frozen=True)
class Model:
    """A parsed cat model: a name and a list of statements."""

    name: str
    statements: tuple[Let | Check, ...]

    def axiom_names(self) -> list[str]:
        return [s.name for s in self.statements if isinstance(s, Check)]
