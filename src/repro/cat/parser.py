"""Recursive-descent parser for the cat model language.

Grammar (operator precedence from loosest to tightest)::

    model     ::= STRING statement*
    statement ::= "let" ["rec"] binding ("and" binding)*
                | ("acyclic" | "irreflexive" | "empty") expr "as" IDENT
    binding   ::= IDENT "=" expr
    expr      ::= union
    union     ::= diff ("|" diff)*
    diff      ::= inter ("\\" inter)*
    inter     ::= seq ("&" seq)*
    seq       ::= unary (";" unary)*
    unary     ::= "~" unary | postfix
    postfix   ::= atom ("+" | "*" | "?" | "^-1")*
    atom      ::= IDENT | IDENT "(" expr ("," expr)* ")"
                | "0" | "[" expr "]" | "(" expr ")"

Note ``;`` binds tighter than ``&``, which binds tighter than ``\\``,
which binds tighter than ``|`` -- so ``rmw & fre;coe`` parses as
``rmw & (fre;coe)``, matching how the paper's axioms read.
"""

from __future__ import annotations

from .ast import (
    Call,
    Check,
    Complement,
    Diff,
    EmptyRel,
    Expr,
    Ident,
    Inter,
    Inverse,
    Let,
    LetBinding,
    Model,
    Optional,
    ReflTransClosure,
    Seq,
    SetToRel,
    TransClosure,
    Union,
)
from .errors import CatSyntaxError
from .lexer import Token, tokenize

_CHECK_KINDS = {"ACYCLIC": "acyclic", "IRREFLEXIVE": "irreflexive", "EMPTY": "empty"}

#: Maximum expression nesting depth.  Each paren/bracket level costs
#: several Python stack frames, so unbounded input (a fuzzer's
#: ``"("*10_000``) would hit the interpreter's RecursionError instead of
#: a :class:`CatSyntaxError`.  No real model comes within an order of
#: magnitude of this bound.
_MAX_DEPTH = 100


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0
        self.depth = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def expect(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise CatSyntaxError(
                f"expected {kind}, found {self.current.kind} "
                f"({self.current.text!r})",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def accept(self, kind: str) -> Token | None:
        if self.current.kind == kind:
            return self.advance()
        return None

    # -- grammar -------------------------------------------------------------

    def parse_model(self) -> Model:
        name = self.expect("STRING").text
        statements: list[Let | Check] = []
        while self.current.kind != "EOF":
            statements.append(self.parse_statement())
        return Model(name=name, statements=tuple(statements))

    def parse_statement(self) -> Let | Check:
        if self.current.kind == "LET":
            return self.parse_let()
        if self.current.kind in _CHECK_KINDS:
            kind = _CHECK_KINDS[self.advance().kind]
            expr = self.parse_expr()
            self.expect("AS")
            name = self.expect("IDENT").text
            return Check(kind=kind, expr=expr, name=name)
        raise CatSyntaxError(
            f"expected a statement, found {self.current.text!r}",
            self.current.line,
            self.current.column,
        )

    def parse_let(self) -> Let:
        self.expect("LET")
        recursive = self.accept("REC") is not None
        bindings = [self.parse_binding()]
        while self.accept("AND"):
            bindings.append(self.parse_binding())
        return Let(bindings=tuple(bindings), recursive=recursive)

    def parse_binding(self) -> LetBinding:
        name = self.expect("IDENT").text
        self.expect("EQUALS")
        return LetBinding(name=name, value=self.parse_expr())

    def parse_expr(self) -> Expr:
        self.depth += 1
        if self.depth > _MAX_DEPTH:
            raise CatSyntaxError(
                f"expression nesting exceeds {_MAX_DEPTH} levels",
                self.current.line,
                self.current.column,
            )
        try:
            return self.parse_union()
        finally:
            self.depth -= 1

    def parse_union(self) -> Expr:
        left = self.parse_diff()
        while self.accept("PIPE"):
            left = Union(left, self.parse_diff())
        return left

    def parse_diff(self) -> Expr:
        left = self.parse_inter()
        while self.accept("DIFF"):
            left = Diff(left, self.parse_inter())
        return left

    def parse_inter(self) -> Expr:
        left = self.parse_seq()
        while self.accept("AMP"):
            left = Inter(left, self.parse_seq())
        return left

    def parse_seq(self) -> Expr:
        left = self.parse_unary()
        while self.accept("SEMI"):
            left = Seq(left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        # Collect the tilde prefix iteratively: a chain of complements
        # (`~~~x`) would otherwise recurse outside parse_expr's depth
        # accounting and could blow the interpreter stack.
        tildes = 0
        while self.accept("TILDE"):
            tildes += 1
        expr = self.parse_postfix()
        for _ in range(tildes):
            expr = Complement(expr)
        return expr

    def parse_postfix(self) -> Expr:
        expr = self.parse_atom()
        while True:
            if self.accept("PLUS"):
                expr = TransClosure(expr)
            elif self.accept("STAR"):
                expr = ReflTransClosure(expr)
            elif self.accept("QUESTION"):
                expr = Optional(expr)
            elif self.accept("INVERSE"):
                expr = Inverse(expr)
            else:
                return expr

    def parse_atom(self) -> Expr:
        token = self.current
        if self.accept("ZERO"):
            return EmptyRel()
        if self.accept("LBRACKET"):
            inner = self.parse_expr()
            self.expect("RBRACKET")
            return SetToRel(inner)
        if self.accept("LPAREN"):
            inner = self.parse_expr()
            self.expect("RPAREN")
            return inner
        if token.kind == "IDENT":
            self.advance()
            if self.accept("LPAREN"):
                args = [self.parse_expr()]
                while self.accept("COMMA"):
                    args.append(self.parse_expr())
                self.expect("RPAREN")
                return Call(function=token.text, arguments=tuple(args))
            return Ident(token.text)
        raise CatSyntaxError(
            f"expected an expression, found {token.text!r}",
            token.line,
            token.column,
        )


def parse(source: str) -> Model:
    """Parse a cat model from source text."""
    return Parser(tokenize(source)).parse_model()
