"""The cat evaluator's builtin environment, derived from an execution.

Identifiers available to every model file:

Sets:      ``EV R W F M ACQ REL SC ATO NA WEX LKD``
Relations: ``id po poimm poloc sloc rf rfe rfi co coe coi fr fre fri
           com come addr ctrl data rmw deps stxn stxnat tfence
           mfence sync lwsync isync dmb dmbld dmbst isb``
Functions: ``weaklift(r, t)  stronglift(r, t)  cross(S1, S2)
           domain(r)  range(r)``

Environments are interned per execution through
:class:`~repro.relations.RelationContext`: the dict is built once and
every evaluator copies it, so checking ten axioms of one model (or ten
models of one execution) derives ``fr``, ``com`` etc. a single time.
"""

from __future__ import annotations

from typing import Callable, Union

from ..events import NA, Execution
from ..relations import Relation, RelationContext, stronglift, weaklift

Value = Union[Relation, frozenset]
Builtin = Callable[..., Value]


def build_environment(x: Execution, ctx: RelationContext) -> dict[str, Value]:
    """Compute the builtin identifier environment (uncached)."""
    env: dict[str, Value] = {
        # Sets
        "EV": x.eids,
        "R": x.reads,
        "W": x.writes,
        "F": x.fences,
        "M": x.memory_events,
        "ACQ": x.acq,
        "REL": x.rel,
        "SC": x.sc_events,
        "ATO": x.atomics,
        "NA": frozenset(
            e.eid for e in x.events if e.is_memory_access and NA in e.tags
        ),
        "WEX": x.rmw.range(),
        "LKD": x.rmw.domain() | x.rmw.range(),
        # Relations
        "id": ctx.identity,
        "po": x.po,
        "poimm": x.po_imm,
        "poloc": x.poloc,
        "sloc": x.sloc,
        "rf": x.rf,
        "rfe": x.rfe,
        "rfi": x.rfi,
        "co": x.co,
        "coe": x.coe,
        "coi": x.coi,
        "fr": x.fr,
        "fre": x.fre,
        "fri": x.fri,
        "com": x.com,
        "come": x.come,
        "addr": x.addr,
        "ctrl": x.ctrl,
        "data": x.data,
        "rmw": x.rmw,
        "deps": x.deps,
        "stxn": x.stxn,
        "stxnat": x.stxnat,
        "tfence": x.tfence,
        "mfence": x.mfence,
        "sync": x.sync,
        "lwsync": x.lwsync,
        "isync": x.isync,
        "dmb": x.dmb,
        "dmbld": x.dmbld,
        "dmbst": x.dmbst,
        "isb": x.isb,
    }
    return env


def build_functions(x: Execution) -> dict[str, Builtin]:
    """Compute the builtin function table (uncached)."""

    def _cross(lhs: frozenset, rhs: frozenset) -> Relation:
        return Relation.cross(lhs, rhs, x.eids)

    def _domain(rel: Relation) -> frozenset:
        return rel.domain()

    def _range(rel: Relation) -> frozenset:
        return rel.range()

    return {
        "weaklift": weaklift,
        "stronglift": stronglift,
        "cross": _cross,
        "domain": _domain,
        "range": _range,
    }


def base_environment(x: Execution) -> dict[str, Value]:
    """Builtin identifiers for one execution (a fresh, mutable copy of
    the execution's interned environment)."""
    return dict(RelationContext.of(x).cat_environment())


def builtin_functions(x: Execution) -> dict[str, Builtin]:
    """Builtin function identifiers (interned per execution)."""
    return RelationContext.of(x).cat_functions()
