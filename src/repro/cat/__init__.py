"""A .cat-style model language and interpreter.

The paper's companion artifact ships its models in herd's ``.cat``
format; this package provides the same for the reproduction: a lexer,
parser and evaluator for a cat dialect, plus the five models of the
paper as ``.cat`` files under ``repro/cat/models/``.

The test suite checks that every bundled ``.cat`` model agrees with its
native-Python twin on every catalog execution and on exhaustively
enumerated executions -- two independent encodings of Figs. 4-9
validating each other.

Dialect deviations from herd (documented design choices):

* Cartesian product is ``cross(S1, S2)`` -- herd overloads ``*``, which
  this dialect reserves for reflexive-transitive closure;
* inverse is ``^-1`` (as in herd); lifting operators ``weaklift`` /
  ``stronglift`` and ``domain`` / ``range`` are builtin functions;
* ``;`` binds tighter than ``&``, which binds tighter than ``\\`` and
  ``|`` (each model file parenthesises where it matters).
"""

from .ast import Check, Expr, Let, Model
from .errors import CatError, CatNameError, CatSyntaxError, CatTypeError
from .eval import CatModel, Evaluator
from .lexer import Token, tokenize
from .loader import available_cat_models, load_cat_file, load_cat_model
from .parser import parse

__all__ = [
    "CatError",
    "CatModel",
    "CatNameError",
    "CatSyntaxError",
    "CatTypeError",
    "Check",
    "Evaluator",
    "Expr",
    "Let",
    "Model",
    "Token",
    "available_cat_models",
    "load_cat_file",
    "load_cat_model",
    "parse",
    "tokenize",
]
