"""Evaluator: run a parsed cat model against an execution.

Expressions evaluate to either a :class:`~repro.relations.Relation` or a
set of event ids; the evaluator type-checks operator applications
(``;`` needs relations, ``[·]`` needs a set, ``|``/``&``/``\\`` need two
values of the same kind).

``let rec`` groups are solved by Kleene iteration from empty relations:
the defining operators are all monotone, and the universe is finite, so
the least fixpoint is reached in finitely many rounds -- this is how the
Power ``ppo`` recursion (ii/ic/ci/cc) executes.
"""

from __future__ import annotations

from ..events import Execution
from ..models.base import AxiomThunk, MemoryModel
from ..relations import Relation
from .ast import (
    Call,
    Check,
    Complement,
    Diff,
    EmptyRel,
    Expr,
    Ident,
    Inter,
    Inverse,
    Let,
    Model,
    Optional,
    ReflTransClosure,
    Seq,
    SetToRel,
    TransClosure,
    Union,
)
from .errors import CatNameError, CatTypeError
from .stdlib import Value, base_environment, builtin_functions


def _require_relation(value: Value, context: str) -> Relation:
    if not isinstance(value, Relation):
        raise CatTypeError(f"{context} needs a relation, got a set")
    return value


def _require_set(value: Value, context: str) -> frozenset:
    if isinstance(value, Relation):
        raise CatTypeError(f"{context} needs a set, got a relation")
    return frozenset(value)


class Evaluator:
    """Evaluates expressions over one execution's environment."""

    def __init__(self, execution: Execution):
        self.execution = execution
        self.env: dict[str, Value] = base_environment(execution)
        self.functions = builtin_functions(execution)

    # ------------------------------------------------------------------

    def run(self, model: Model) -> dict[str, bool]:
        """Execute all statements; return axiom name → holds?"""
        results: dict[str, bool] = {}
        for statement in model.statements:
            if isinstance(statement, Let):
                self.execute_let(statement)
            else:
                results[statement.name] = self.check(statement)
        return results

    def execute_let(self, let: Let) -> None:
        if not let.recursive:
            for binding in let.bindings:
                self.env[binding.name] = self.eval(binding.value)
            return
        # Kleene iteration for let rec groups.
        empty = Relation.empty(self.execution.eids)
        for binding in let.bindings:
            self.env[binding.name] = empty
        while True:
            changed = False
            new_values = {
                binding.name: self.eval(binding.value)
                for binding in let.bindings
            }
            for name, value in new_values.items():
                if self.env[name] != value:
                    changed = True
                self.env[name] = value
            if not changed:
                return

    def check(self, check: Check) -> bool:
        value = _require_relation(self.eval(check.expr), check.kind)
        if check.kind == "acyclic":
            return value.is_acyclic()
        if check.kind == "irreflexive":
            return value.is_irreflexive()
        if check.kind == "empty":
            return value.is_empty()
        raise ValueError(f"unknown check kind {check.kind!r}")

    # ------------------------------------------------------------------

    def eval(self, expr: Expr) -> Value:
        if isinstance(expr, Ident):
            if expr.name not in self.env:
                raise CatNameError(f"undefined identifier {expr.name!r}")
            return self.env[expr.name]
        if isinstance(expr, EmptyRel):
            return Relation.empty(self.execution.eids)
        if isinstance(expr, Union):
            return self._binary(expr.left, expr.right, "|", "union")
        if isinstance(expr, Inter):
            return self._binary(expr.left, expr.right, "&", "intersection")
        if isinstance(expr, Diff):
            return self._binary(expr.left, expr.right, "-", "difference")
        if isinstance(expr, Seq):
            left = _require_relation(self.eval(expr.left), ";")
            right = _require_relation(self.eval(expr.right), ";")
            return left.compose(right)
        if isinstance(expr, TransClosure):
            return _require_relation(self.eval(expr.operand), "+").transitive_closure()
        if isinstance(expr, ReflTransClosure):
            return _require_relation(
                self.eval(expr.operand), "*"
            ).reflexive_transitive_closure()
        if isinstance(expr, Optional):
            return _require_relation(self.eval(expr.operand), "?").optional()
        if isinstance(expr, Inverse):
            return _require_relation(self.eval(expr.operand), "^-1").inverse()
        if isinstance(expr, Complement):
            return ~_require_relation(self.eval(expr.operand), "~")
        if isinstance(expr, SetToRel):
            elements = _require_set(self.eval(expr.operand), "[·]")
            return Relation.from_set(elements, self.execution.eids)
        if isinstance(expr, Call):
            if expr.function not in self.functions:
                raise CatNameError(f"undefined function {expr.function!r}")
            args = [self.eval(a) for a in expr.arguments]
            return self.functions[expr.function](*args)
        raise TypeError(f"unknown expression {expr!r}")

    def _binary(self, left_expr: Expr, right_expr: Expr, op: str, name: str) -> Value:
        left = self.eval(left_expr)
        right = self.eval(right_expr)
        if isinstance(left, Relation) != isinstance(right, Relation):
            raise CatTypeError(f"{name} of a set and a relation")
        if isinstance(left, Relation):
            if op == "|":
                return left | right
            if op == "&":
                return left & right
            return left - right
        if op == "|":
            return left | right
        if op == "&":
            return left & right
        return left - right


class CatModel(MemoryModel):
    """A parsed cat model exposed through the MemoryModel interface, so
    cat-defined and native models are interchangeable everywhere."""

    def __init__(self, model: Model, transactional: bool = True):
        self.model = model
        self.name = model.name
        self.is_transactional = transactional

    def axiom_thunks(self, execution: Execution) -> list[AxiomThunk]:
        evaluator = Evaluator(execution)
        thunks: list[AxiomThunk] = []
        for statement in self.model.statements:
            if isinstance(statement, Let):
                # Bindings execute lazily, in order, the first time an
                # axiom thunk after them runs.
                thunks.append(
                    (f"__let_{id(statement)}", _LetRunner(evaluator, statement))
                )
            else:
                thunks.append((statement.name, _CheckRunner(evaluator, statement)))
        # Let-runners always "pass"; filter them out of reported names by
        # keeping them but returning True.
        return thunks

    def violated_axioms(self, execution: Execution) -> list[str]:
        violated: list[str] = []
        for name, thunk in self.axiom_thunks(execution):
            ok = thunk()  # let-runners must execute even when skipped below
            if not ok and not name.startswith("__let_"):
                violated.append(name)
        return violated


class _LetRunner:
    def __init__(self, evaluator: Evaluator, let: Let):
        self.evaluator = evaluator
        self.let = let
        self.done = False

    def __call__(self) -> bool:
        if not self.done:
            self.evaluator.execute_let(self.let)
            self.done = True
        return True


class _CheckRunner:
    def __init__(self, evaluator: Evaluator, check: Check):
        self.evaluator = evaluator
        self.check_node = check

    def __call__(self) -> bool:
        return self.evaluator.check(self.check_node)
