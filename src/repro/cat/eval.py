"""Evaluator: run a parsed cat model against an execution.

Expressions evaluate to either a :class:`~repro.relations.Relation` or a
set of event ids; the evaluator type-checks operator applications
(``;`` needs relations, ``[·]`` needs a set, ``|``/``&``/``\\`` need two
values of the same kind).

``let rec`` groups are solved by Kleene iteration from empty values of
each binding's inferred kind (set or relation): the defining operators
are all monotone, and the universe is finite, so the least fixpoint is
reached in finitely many rounds -- this is how the Power ``ppo``
recursion (ii/ic/ci/cc) executes.

Two execution strategies share these semantics:

* :class:`Evaluator` -- a straightforward AST walker, used for one-off
  runs and as the readable reference.
* the **compiled** path used by :class:`CatModel` -- each model's AST is
  translated once into a tree of Python closures
  (:func:`_compile_model`, cached per parsed model), and ``let``
  bindings whose free identifiers are all skeleton-static (``po``,
  ``sloc``, ``stxn``, fences, ... -- not ``rf``/``co``-derived) are
  interned in the execution's :class:`~repro.relations.RelationContext`
  under ``static:``-prefixed keys, so candidate enumeration shares them
  across one skeleton's rf/co completions through the same cache
  adoption machinery as the native models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..events import Execution
from ..models.base import AxiomThunk, MemoryModel
from ..obs import REGISTRY
from ..relations import Relation
from .ast import (
    Call,
    Check,
    Complement,
    Diff,
    EmptyRel,
    Expr,
    Ident,
    Inter,
    Inverse,
    Let,
    Model,
    Optional,
    ReflTransClosure,
    Seq,
    SetToRel,
    TransClosure,
    Union,
)
from .errors import CatNameError, CatTypeError
from .stdlib import Value, base_environment, builtin_functions


def _require_relation(value: Value, context: str) -> Relation:
    if not isinstance(value, Relation):
        raise CatTypeError(f"{context} needs a relation, got a set")
    return value


def _require_set(value: Value, context: str) -> frozenset:
    if isinstance(value, Relation):
        raise CatTypeError(f"{context} needs a set, got a relation")
    return frozenset(value)


# ---------------------------------------------------------------------------
# Kind inference (sets vs relations) for let-rec seeding
# ---------------------------------------------------------------------------

#: Builtin functions with a known result kind.
_FUNCTION_KINDS = {
    "weaklift": "rel",
    "stronglift": "rel",
    "cross": "rel",
    "domain": "set",
    "range": "set",
}


def _infer_kind(expr: Expr, kinds: dict[str, str]) -> str | None:
    """``"rel"``, ``"set"``, or ``None`` when undetermined (an identifier
    of unknown kind, e.g. a not-yet-resolved recursive binding)."""
    if isinstance(expr, Ident):
        return kinds.get(expr.name)
    if isinstance(expr, EmptyRel):
        return "rel"
    if isinstance(expr, (Union, Inter, Diff)):
        return _infer_kind(expr.left, kinds) or _infer_kind(expr.right, kinds)
    if isinstance(
        expr,
        (Seq, TransClosure, ReflTransClosure, Optional, Inverse, Complement, SetToRel),
    ):
        return "rel"
    if isinstance(expr, Call):
        return _FUNCTION_KINDS.get(expr.function)
    return None


def _rec_seed_kinds(bindings, kinds: dict[str, str]) -> dict[str, str]:
    """The kind each ``let rec`` binding should be seeded with.

    Kinds propagate through the group until a fixpoint: a binding whose
    expression mentions only resolved names resolves too.  A binding
    whose kind stays undetermined (e.g. ``let rec a = b and b = a``)
    defaults to a relation, matching the historical behaviour.
    """
    kinds = dict(kinds)
    for binding in bindings:
        kinds.pop(binding.name, None)  # shadowed by the rec group
    pending = {b.name for b in bindings}
    changed = True
    while changed and pending:
        changed = False
        for binding in bindings:
            if binding.name not in pending:
                continue
            kind = _infer_kind(binding.value, kinds)
            if kind is not None:
                kinds[binding.name] = kind
                pending.discard(binding.name)
                changed = True
    return {b.name: kinds.get(b.name, "rel") for b in bindings}


def _kinds_of_env(env: dict[str, Value]) -> dict[str, str]:
    return {
        name: "rel" if isinstance(value, Relation) else "set"
        for name, value in env.items()
    }


class Evaluator:
    """Evaluates expressions over one execution's environment."""

    def __init__(self, execution: Execution):
        self.execution = execution
        self.env: dict[str, Value] = base_environment(execution)
        self.functions = builtin_functions(execution)

    # ------------------------------------------------------------------

    def run(self, model: Model) -> dict[str, bool]:
        """Execute all statements; return axiom name → holds?"""
        results: dict[str, bool] = {}
        for statement in model.statements:
            if isinstance(statement, Let):
                self.execute_let(statement)
            else:
                results[statement.name] = self.check(statement)
        return results

    def execute_let(self, let: Let) -> None:
        if not let.recursive:
            for binding in let.bindings:
                self.env[binding.name] = self.eval(binding.value)
            return
        # Kleene iteration for let rec groups, seeded from each
        # binding's inferred kind (a recursive *set* definition must
        # start from the empty set, not an empty relation, or the first
        # iteration dies with a spurious type error).
        seeds = _rec_seed_kinds(let.bindings, _kinds_of_env(self.env))
        empty_rel = Relation.empty(self.execution.eids)
        for binding in let.bindings:
            self.env[binding.name] = (
                empty_rel if seeds[binding.name] == "rel" else frozenset()
            )
        while True:
            changed = False
            new_values = {
                binding.name: self.eval(binding.value)
                for binding in let.bindings
            }
            for name, value in new_values.items():
                if self.env[name] != value:
                    changed = True
                self.env[name] = value
            if not changed:
                return

    def check(self, check: Check) -> bool:
        value = _require_relation(self.eval(check.expr), check.kind)
        if check.kind == "acyclic":
            return value.is_acyclic()
        if check.kind == "irreflexive":
            return value.is_irreflexive()
        if check.kind == "empty":
            return value.is_empty()
        raise ValueError(f"unknown check kind {check.kind!r}")

    # ------------------------------------------------------------------

    def eval(self, expr: Expr) -> Value:
        if isinstance(expr, Ident):
            if expr.name not in self.env:
                raise CatNameError(f"undefined identifier {expr.name!r}")
            return self.env[expr.name]
        if isinstance(expr, EmptyRel):
            return Relation.empty(self.execution.eids)
        if isinstance(expr, Union):
            return self._binary(expr.left, expr.right, "|", "union")
        if isinstance(expr, Inter):
            return self._binary(expr.left, expr.right, "&", "intersection")
        if isinstance(expr, Diff):
            return self._binary(expr.left, expr.right, "-", "difference")
        if isinstance(expr, Seq):
            left = _require_relation(self.eval(expr.left), ";")
            right = _require_relation(self.eval(expr.right), ";")
            return left.compose(right)
        if isinstance(expr, TransClosure):
            return _require_relation(self.eval(expr.operand), "+").transitive_closure()
        if isinstance(expr, ReflTransClosure):
            return _require_relation(
                self.eval(expr.operand), "*"
            ).reflexive_transitive_closure()
        if isinstance(expr, Optional):
            return _require_relation(self.eval(expr.operand), "?").optional()
        if isinstance(expr, Inverse):
            return _require_relation(self.eval(expr.operand), "^-1").inverse()
        if isinstance(expr, Complement):
            return ~_require_relation(self.eval(expr.operand), "~")
        if isinstance(expr, SetToRel):
            elements = _require_set(self.eval(expr.operand), "[·]")
            return Relation.from_set(elements, self.execution.eids)
        if isinstance(expr, Call):
            if expr.function not in self.functions:
                raise CatNameError(f"undefined function {expr.function!r}")
            args = [self.eval(a) for a in expr.arguments]
            return self.functions[expr.function](*args)
        raise TypeError(f"unknown expression {expr!r}")

    def _binary(self, left_expr: Expr, right_expr: Expr, op: str, name: str) -> Value:
        left = self.eval(left_expr)
        right = self.eval(right_expr)
        if isinstance(left, Relation) != isinstance(right, Relation):
            raise CatTypeError(f"{name} of a set and a relation")
        if isinstance(left, Relation):
            if op == "|":
                return left | right
            if op == "&":
                return left & right
            return left - right
        if op == "|":
            return left | right
        if op == "&":
            return left & right
        return left - right


# ---------------------------------------------------------------------------
# The compiled path: AST → closures, once per parsed model
# ---------------------------------------------------------------------------

#: A compiled expression: ``fn(env, functions, execution) → Value``.
CompiledExpr = Callable[[dict, dict, Execution], Value]


def _compile_expr(expr: Expr) -> tuple[CompiledExpr, frozenset[str]]:
    """Translate an expression into a closure plus its free identifiers.

    The closure performs exactly the :meth:`Evaluator.eval` semantics
    (including the type errors) without re-dispatching on AST node types
    at every evaluation.
    """
    if isinstance(expr, Ident):
        name = expr.name

        def fn_ident(env, functions, x):
            try:
                return env[name]
            except KeyError:
                raise CatNameError(f"undefined identifier {name!r}") from None

        return fn_ident, frozenset((name,))
    if isinstance(expr, EmptyRel):
        return (lambda env, functions, x: Relation.empty(x.eids)), frozenset()
    if isinstance(expr, (Union, Inter, Diff)):
        left, left_ids = _compile_expr(expr.left)
        right, right_ids = _compile_expr(expr.right)
        if isinstance(expr, Union):
            op, name = "|", "union"
        elif isinstance(expr, Inter):
            op, name = "&", "intersection"
        else:
            op, name = "-", "difference"

        def fn_binary(env, functions, x):
            lhs = left(env, functions, x)
            rhs = right(env, functions, x)
            if isinstance(lhs, Relation) != isinstance(rhs, Relation):
                raise CatTypeError(f"{name} of a set and a relation")
            if op == "|":
                return lhs | rhs
            if op == "&":
                return lhs & rhs
            return lhs - rhs

        return fn_binary, left_ids | right_ids
    if isinstance(expr, Seq):
        left, left_ids = _compile_expr(expr.left)
        right, right_ids = _compile_expr(expr.right)

        def fn_seq(env, functions, x):
            return _require_relation(left(env, functions, x), ";").compose(
                _require_relation(right(env, functions, x), ";")
            )

        return fn_seq, left_ids | right_ids
    if isinstance(
        expr, (TransClosure, ReflTransClosure, Optional, Inverse, Complement)
    ):
        operand, ids = _compile_expr(expr.operand)
        symbol = {
            TransClosure: "+",
            ReflTransClosure: "*",
            Optional: "?",
            Inverse: "^-1",
            Complement: "~",
        }[type(expr)]
        method = {
            TransClosure: Relation.transitive_closure,
            ReflTransClosure: Relation.reflexive_transitive_closure,
            Optional: Relation.optional,
            Inverse: Relation.inverse,
            Complement: Relation.__invert__,
        }[type(expr)]

        def fn_unary(env, functions, x):
            return method(_require_relation(operand(env, functions, x), symbol))

        return fn_unary, ids
    if isinstance(expr, SetToRel):
        operand, ids = _compile_expr(expr.operand)

        def fn_set_to_rel(env, functions, x):
            elements = _require_set(operand(env, functions, x), "[·]")
            return Relation.from_set(elements, x.eids)

        return fn_set_to_rel, ids
    if isinstance(expr, Call):
        function = expr.function
        compiled_args = [_compile_expr(a) for a in expr.arguments]
        arg_fns = [fn for fn, _ in compiled_args]
        ids = frozenset().union(*(ids for _, ids in compiled_args))

        def fn_call(env, functions, x):
            if function not in functions:
                raise CatNameError(f"undefined function {function!r}")
            return functions[function](
                *[arg(env, functions, x) for arg in arg_fns]
            )

        return fn_call, ids
    raise TypeError(f"unknown expression {expr!r}")


#: Identifiers whose values depend only on the execution *skeleton*
#: (events, threads, dependencies, transaction structure) -- never on
#: the rf/co completion.  Bindings built purely from these are interned
#: under ``static:`` context keys and flow across a skeleton's
#: completions via ``Execution.adopt_skeleton_caches``.
_STATIC_IDENTS = frozenset(
    {
        "EV", "R", "W", "F", "M", "ACQ", "REL", "SC", "ATO", "NA", "WEX", "LKD",
        "id", "po", "poimm", "poloc", "sloc", "addr", "ctrl", "data", "rmw",
        "deps", "stxn", "stxnat", "tfence", "mfence", "sync", "lwsync",
        "isync", "dmb", "dmbld", "dmbst", "isb",
    }
)


@dataclass
class _CompiledBinding:
    name: str
    fn: CompiledExpr
    value: Expr  # the source expression, kept for let-rec kind inference


@dataclass
class _CompiledLet:
    index: int
    recursive: bool
    bindings: list[_CompiledBinding]
    static: bool


@dataclass
class _CompiledCheck:
    name: str
    kind: str
    fn: CompiledExpr


#: Compiled programs, keyed by the (hashable, structurally-compared)
#: parsed model, so every CatModel over the same AST -- including
#: repeated ``load_cat_model`` calls -- shares one compilation and one
#: ``static:`` cache namespace.
_COMPILED_CACHE: dict[Model, tuple[list, str]] = {}

_COMPILE_LOOKUPS = REGISTRY.counter("cat.compile_cache.lookups")
_COMPILE_HITS = REGISTRY.counter("cat.compile_cache.hits")
_COMPILE_MISSES = REGISTRY.counter("cat.compile_cache.misses")


def _compile_model(model: Model) -> tuple[list, str]:
    _COMPILE_LOOKUPS.inc()
    cached = _COMPILED_CACHE.get(model)
    if cached is not None:
        _COMPILE_HITS.inc()
        return cached
    _COMPILE_MISSES.inc()
    steps: list[_CompiledLet | _CompiledCheck] = []
    static_names = set(_STATIC_IDENTS)
    let_index = 0
    for statement in model.statements:
        if isinstance(statement, Let):
            bindings = []
            free: set[str] = set()
            for binding in statement.bindings:
                fn, ids = _compile_expr(binding.value)
                bindings.append(_CompiledBinding(binding.name, fn, binding.value))
                free |= ids
            own = {b.name for b in statement.bindings}
            is_static = (free - own) <= static_names
            if is_static:
                static_names |= own
            else:
                # A dynamic let may *shadow* a static name (even a
                # builtin); later bindings reading it are dynamic too.
                static_names -= own
            steps.append(
                _CompiledLet(let_index, statement.recursive, bindings, is_static)
            )
            let_index += 1
        else:
            fn, _ = _compile_expr(statement.expr)
            steps.append(_CompiledCheck(statement.name, statement.kind, fn))
    namespace = f"cat.{model.name}.{len(_COMPILED_CACHE)}"
    _COMPILED_CACHE[model] = (steps, namespace)
    return steps, namespace


_LET_STATIC_REQUESTS = REGISTRY.counter("cat.let.static_requests")
_LET_STATIC_EVALS = REGISTRY.counter("cat.let.static_evals")
_LET_DYNAMIC_EVALS = REGISTRY.counter("cat.let.dynamic_evals")


class _CompiledRun:
    """One model's lazily-executed statement sequence over one execution."""

    __slots__ = ("execution", "env", "functions", "namespace")

    def __init__(self, namespace: str, execution: Execution):
        ctx = execution.context
        self.execution = execution
        self.env: dict[str, Value] = dict(ctx.cat_environment())
        self.functions = ctx.cat_functions()
        self.namespace = namespace

    def let_runner(self, step: _CompiledLet) -> Callable[[], bool]:
        done = False

        def run() -> bool:
            nonlocal done
            if not done:
                self.execute_let(step)
                done = True
            return True

        return run

    def execute_let(self, step: _CompiledLet) -> None:
        if step.static:
            # Skeleton-static group: interned per execution and adopted
            # across a skeleton's rf/co completions.  The requests/evals
            # gap is how many evaluations the static: interning saved.
            _LET_STATIC_REQUESTS.inc()
            key = f"static:{self.namespace}.let{step.index}"
            self.env.update(
                self.execution.context.get(
                    key,
                    lambda: (_LET_STATIC_EVALS.inc(), self._eval_let(step))[1],
                )
            )
        else:
            _LET_DYNAMIC_EVALS.inc()
            self.env.update(self._eval_let(step))

    def _eval_let(self, step: _CompiledLet) -> dict[str, Value]:
        env, functions, x = self.env, self.functions, self.execution
        out: dict[str, Value] = {}
        if not step.recursive:
            for binding in step.bindings:
                value = binding.fn(env, functions, x)
                env[binding.name] = value
                out[binding.name] = value
            return out
        # Kleene iteration, seeded from each binding's inferred kind.
        seeds = _rec_seed_kinds(
            [b for b in step.bindings], _kinds_of_env(env)
        )
        empty_rel = Relation.empty(x.eids)
        for binding in step.bindings:
            env[binding.name] = (
                empty_rel if seeds[binding.name] == "rel" else frozenset()
            )
        while True:
            changed = False
            new_values = {
                binding.name: binding.fn(env, functions, x)
                for binding in step.bindings
            }
            for name, value in new_values.items():
                if env[name] != value:
                    changed = True
                env[name] = value
            if not changed:
                break
        for binding in step.bindings:
            out[binding.name] = env[binding.name]
        return out

    def check(self, step: _CompiledCheck) -> bool:
        value = _require_relation(
            self.fn_value(step), step.kind
        )
        if step.kind == "acyclic":
            return value.is_acyclic()
        if step.kind == "irreflexive":
            return value.is_irreflexive()
        if step.kind == "empty":
            return value.is_empty()
        raise ValueError(f"unknown check kind {step.kind!r}")

    def fn_value(self, step: _CompiledCheck) -> Value:
        return step.fn(self.env, self.functions, self.execution)


class CatModel(MemoryModel):
    """A parsed cat model exposed through the MemoryModel interface, so
    cat-defined and native models are interchangeable everywhere.

    The AST is compiled to closures once per parsed model (shared across
    instances over equal ASTs); each ``axiom_thunks`` call creates only
    a lightweight :class:`_CompiledRun` over the execution's interned
    environment instead of a fresh AST-walking evaluator.
    """

    def __init__(self, model: Model, transactional: bool = True):
        self.model = model
        self.name = model.name
        self.is_transactional = transactional
        self._steps, self._namespace = _compile_model(model)

    def axiom_thunks(self, execution: Execution) -> list[AxiomThunk]:
        run = _CompiledRun(self._namespace, execution)
        thunks: list[AxiomThunk] = []
        for step in self._steps:
            if isinstance(step, _CompiledLet):
                # Bindings execute lazily, in order, the first time an
                # axiom thunk after them runs.
                thunks.append((f"__let_{step.index}", run.let_runner(step)))
            else:
                thunks.append(
                    (step.name, lambda step=step: run.check(step))
                )
        # Let-runners always "pass"; filter them out of reported names by
        # keeping them but returning True.
        return thunks

    def violated_axioms(self, execution: Execution) -> list[str]:
        violated: list[str] = []
        for name, thunk in self.axiom_thunks(execution):
            ok = thunk()  # let-runners must execute even when skipped below
            if not ok and not name.startswith("__let_"):
                violated.append(name)
        return violated


