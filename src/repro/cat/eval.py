"""Evaluator: run a parsed cat model against an execution.

Expressions evaluate to either a :class:`~repro.relations.Relation` or a
set of event ids; the evaluator type-checks operator applications
(``;`` needs relations, ``[·]`` needs a set, ``|``/``&``/``\\`` need two
values of the same kind).

``let rec`` groups are solved by Kleene iteration from empty values of
each binding's inferred kind (set or relation): the defining operators
are all monotone, and the universe is finite, so the least fixpoint is
reached in finitely many rounds -- this is how the Power ``ppo``
recursion (ii/ic/ci/cc) executes.

Two execution strategies share these semantics:

* :class:`Evaluator` -- a straightforward AST walker, used for one-off
  runs and as the readable reference.
* the **lowered** path used by :class:`CatModel` -- each model's AST is
  lowered once into the relational-algebra IR (:mod:`repro.ir`) by
  :func:`_compile_model` (cached per parsed model) and executed by the
  same planner/executor as the native Python models.  Hash-consing
  makes a ``.cat`` twin's terms unify with its Python twin's wherever
  they are written the same way, so the two front ends literally share
  derived-relation values, ``static:`` interning, and per-constraint
  verdicts on each execution.
"""

from __future__ import annotations

from ..events import Execution
from ..models.base import IRModel
from ..obs import REGISTRY
from ..relations import Relation
from .. import ir
from .ast import (
    Call,
    Check,
    Complement,
    Diff,
    EmptyRel,
    Expr,
    Ident,
    Inter,
    Inverse,
    Let,
    Model,
    Optional,
    ReflTransClosure,
    Seq,
    SetToRel,
    TransClosure,
    Union,
)
from .errors import CatNameError, CatTypeError
from .stdlib import Value, base_environment, builtin_functions


def _require_relation(value: Value, context: str) -> Relation:
    if not isinstance(value, Relation):
        raise CatTypeError(f"{context} needs a relation, got a set")
    return value


def _require_set(value: Value, context: str) -> frozenset:
    if isinstance(value, Relation):
        raise CatTypeError(f"{context} needs a set, got a relation")
    return frozenset(value)


# ---------------------------------------------------------------------------
# Kind inference (sets vs relations) for let-rec seeding
# ---------------------------------------------------------------------------

#: Builtin functions with a known result kind.
_FUNCTION_KINDS = {
    "weaklift": "rel",
    "stronglift": "rel",
    "cross": "rel",
    "domain": "set",
    "range": "set",
}


def _infer_kind(expr: Expr, kinds: dict[str, str]) -> str | None:
    """``"rel"``, ``"set"``, or ``None`` when undetermined (an identifier
    of unknown kind, e.g. a not-yet-resolved recursive binding)."""
    if isinstance(expr, Ident):
        return kinds.get(expr.name)
    if isinstance(expr, EmptyRel):
        return "rel"
    if isinstance(expr, (Union, Inter, Diff)):
        return _infer_kind(expr.left, kinds) or _infer_kind(expr.right, kinds)
    if isinstance(
        expr,
        (Seq, TransClosure, ReflTransClosure, Optional, Inverse, Complement, SetToRel),
    ):
        return "rel"
    if isinstance(expr, Call):
        return _FUNCTION_KINDS.get(expr.function)
    return None


def _rec_seed_kinds(bindings, kinds: dict[str, str]) -> dict[str, str]:
    """The kind each ``let rec`` binding should be seeded with.

    Kinds propagate through the group until a fixpoint: a binding whose
    expression mentions only resolved names resolves too.  A binding
    whose kind stays undetermined (e.g. ``let rec a = b and b = a``)
    defaults to a relation, matching the historical behaviour.
    """
    kinds = dict(kinds)
    for binding in bindings:
        kinds.pop(binding.name, None)  # shadowed by the rec group
    pending = {b.name for b in bindings}
    changed = True
    while changed and pending:
        changed = False
        for binding in bindings:
            if binding.name not in pending:
                continue
            kind = _infer_kind(binding.value, kinds)
            if kind is not None:
                kinds[binding.name] = kind
                pending.discard(binding.name)
                changed = True
    return {b.name: kinds.get(b.name, "rel") for b in bindings}


def _kinds_of_env(env: dict[str, Value]) -> dict[str, str]:
    return {
        name: "rel" if isinstance(value, Relation) else "set"
        for name, value in env.items()
    }


class Evaluator:
    """Evaluates expressions over one execution's environment."""

    def __init__(self, execution: Execution):
        self.execution = execution
        self.env: dict[str, Value] = base_environment(execution)
        self.functions = builtin_functions(execution)

    # ------------------------------------------------------------------

    def run(self, model: Model) -> dict[str, bool]:
        """Execute all statements; return axiom name → holds?"""
        results: dict[str, bool] = {}
        for statement in model.statements:
            if isinstance(statement, Let):
                self.execute_let(statement)
            else:
                results[statement.name] = self.check(statement)
        return results

    def execute_let(self, let: Let) -> None:
        if not let.recursive:
            for binding in let.bindings:
                self.env[binding.name] = self.eval(binding.value)
            return
        # Kleene iteration for let rec groups, seeded from each
        # binding's inferred kind (a recursive *set* definition must
        # start from the empty set, not an empty relation, or the first
        # iteration dies with a spurious type error).
        seeds = _rec_seed_kinds(let.bindings, _kinds_of_env(self.env))
        empty_rel = Relation.empty(self.execution.eids)
        for binding in let.bindings:
            self.env[binding.name] = (
                empty_rel if seeds[binding.name] == "rel" else frozenset()
            )
        while True:
            changed = False
            new_values = {
                binding.name: self.eval(binding.value)
                for binding in let.bindings
            }
            for name, value in new_values.items():
                if self.env[name] != value:
                    changed = True
                self.env[name] = value
            if not changed:
                return

    def check(self, check: Check) -> bool:
        value = _require_relation(self.eval(check.expr), check.kind)
        if check.kind == "acyclic":
            return value.is_acyclic()
        if check.kind == "irreflexive":
            return value.is_irreflexive()
        if check.kind == "empty":
            return value.is_empty()
        raise ValueError(f"unknown check kind {check.kind!r}")

    # ------------------------------------------------------------------

    def eval(self, expr: Expr) -> Value:
        if isinstance(expr, Ident):
            if expr.name not in self.env:
                raise CatNameError(f"undefined identifier {expr.name!r}")
            return self.env[expr.name]
        if isinstance(expr, EmptyRel):
            return Relation.empty(self.execution.eids)
        if isinstance(expr, Union):
            return self._binary(expr.left, expr.right, "|", "union")
        if isinstance(expr, Inter):
            return self._binary(expr.left, expr.right, "&", "intersection")
        if isinstance(expr, Diff):
            return self._binary(expr.left, expr.right, "-", "difference")
        if isinstance(expr, Seq):
            left = _require_relation(self.eval(expr.left), ";")
            right = _require_relation(self.eval(expr.right), ";")
            return left.compose(right)
        if isinstance(expr, TransClosure):
            return _require_relation(self.eval(expr.operand), "+").transitive_closure()
        if isinstance(expr, ReflTransClosure):
            return _require_relation(
                self.eval(expr.operand), "*"
            ).reflexive_transitive_closure()
        if isinstance(expr, Optional):
            return _require_relation(self.eval(expr.operand), "?").optional()
        if isinstance(expr, Inverse):
            return _require_relation(self.eval(expr.operand), "^-1").inverse()
        if isinstance(expr, Complement):
            return ~_require_relation(self.eval(expr.operand), "~")
        if isinstance(expr, SetToRel):
            elements = _require_set(self.eval(expr.operand), "[·]")
            return Relation.from_set(elements, self.execution.eids)
        if isinstance(expr, Call):
            if expr.function not in self.functions:
                raise CatNameError(f"undefined function {expr.function!r}")
            args = [self.eval(a) for a in expr.arguments]
            return self.functions[expr.function](*args)
        raise TypeError(f"unknown expression {expr!r}")

    def _binary(self, left_expr: Expr, right_expr: Expr, op: str, name: str) -> Value:
        left = self.eval(left_expr)
        right = self.eval(right_expr)
        if isinstance(left, Relation) != isinstance(right, Relation):
            raise CatTypeError(f"{name} of a set and a relation")
        if isinstance(left, Relation):
            if op == "|":
                return left | right
            if op == "&":
                return left & right
            return left - right
        if op == "|":
            return left | right
        if op == "&":
            return left & right
        return left - right


# ---------------------------------------------------------------------------
# The lowered path: AST → IR plan, once per parsed model
# ---------------------------------------------------------------------------

#: Builtin function identifiers, mapped to IR combinators.  The IR
#: builders carry the same kind discipline as the runtime builtins, so
#: misuse surfaces as a CatTypeError at lowering time.
_IR_FUNCTIONS = {
    "weaklift": ir.weaklift,
    "stronglift": ir.stronglift,
    "cross": ir.cross,
    "domain": ir.domain,
    "range": ir.range_,
}


def _base_term_env() -> dict[str, ir.Term]:
    """The builtin identifier environment as IR leaves.  The vocabulary
    is exactly :data:`repro.cat.stdlib`'s: every base relation and event
    set the runtime environment provides has an IR leaf of the same
    name."""
    env: dict[str, ir.Term] = {
        name: ir.rel(name) for name in ir.BASE_RELATIONS
    }
    env.update({name: ir.evset(name) for name in ir.EVENT_SETS})
    return env


def _lower_expr(expr: Expr, env: dict[str, ir.Term]) -> ir.Term:
    """Translate an expression into a hash-consed IR term.

    Name resolution and kind checking happen here, once per model,
    instead of on every evaluation; the error classes and message texts
    are the :class:`Evaluator`'s.
    """
    if isinstance(expr, Ident):
        term = env.get(expr.name)
        if term is None:
            raise CatNameError(f"undefined identifier {expr.name!r}")
        return term
    if isinstance(expr, EmptyRel):
        return ir.empty("rel")
    if isinstance(expr, Union):
        return ir.union(_lower_expr(expr.left, env), _lower_expr(expr.right, env))
    if isinstance(expr, Inter):
        return ir.inter(_lower_expr(expr.left, env), _lower_expr(expr.right, env))
    if isinstance(expr, Diff):
        return ir.diff(_lower_expr(expr.left, env), _lower_expr(expr.right, env))
    if isinstance(expr, Seq):
        return ir.seq(_lower_expr(expr.left, env), _lower_expr(expr.right, env))
    if isinstance(expr, TransClosure):
        return ir.plus(_lower_expr(expr.operand, env))
    if isinstance(expr, ReflTransClosure):
        return ir.star(_lower_expr(expr.operand, env))
    if isinstance(expr, Optional):
        return ir.opt(_lower_expr(expr.operand, env))
    if isinstance(expr, Inverse):
        return ir.inv(_lower_expr(expr.operand, env))
    if isinstance(expr, Complement):
        return ir.comp(_lower_expr(expr.operand, env))
    if isinstance(expr, SetToRel):
        return ir.setrel(_lower_expr(expr.operand, env))
    if isinstance(expr, Call):
        fn = _IR_FUNCTIONS.get(expr.function)
        if fn is None:
            raise CatNameError(f"undefined function {expr.function!r}")
        return fn(*[_lower_expr(a, env) for a in expr.arguments])
    raise TypeError(f"unknown expression {expr!r}")


def _lower_let(let: Let, env: dict[str, ir.Term]) -> None:
    """Bind a let statement's names to terms (in ``env``, mutated)."""
    if not let.recursive:
        for binding in let.bindings:
            env[binding.name] = _lower_expr(binding.value, env)
        return
    # A let rec group becomes one IR fixpoint group: each binding is a
    # de Bruijn variable inside the bodies, and the executor runs the
    # same kind-seeded Kleene iteration as the walker (with the group's
    # result interned across executions on its input values).
    seeds = _rec_seed_kinds(
        let.bindings, {name: term.kind for name, term in env.items()}
    )
    kinds = [seeds[b.name] for b in let.bindings]
    rec_env = dict(env)
    for index, binding in enumerate(let.bindings):
        rec_env[binding.name] = ir.var(index, kinds[index])
    bodies = [_lower_expr(b.value, rec_env) for b in let.bindings]
    fixes = ir.fix(bodies, kinds)
    for binding, fixed in zip(let.bindings, fixes):
        env[binding.name] = fixed


_CHECK_BUILDERS = {
    "acyclic": ir.acyclic,
    "irreflexive": ir.irreflexive,
    "empty": ir.empty_c,
}

#: Lowered plans, keyed by the (hashable, structurally-compared) parsed
#: model, so every CatModel over the same AST -- including repeated
#: ``load_cat_model`` calls -- shares one plan, one term DAG, and
#: therefore one set of per-execution caches.
_COMPILED_CACHE: dict[Model, ir.Plan] = {}

_COMPILE_LOOKUPS = REGISTRY.counter("cat.compile_cache.lookups")
_COMPILE_HITS = REGISTRY.counter("cat.compile_cache.hits")
_COMPILE_MISSES = REGISTRY.counter("cat.compile_cache.misses")


def _compile_model(model: Model) -> ir.Plan:
    """Lower a parsed model into an IR constraint plan (cached).

    Terms are hash-consed globally, so wherever a ``.cat`` model writes
    the same derived relation as a native Python model (or another cat
    model), the two share one term -- and with it the per-execution
    value memo, the ``static:`` interning, and the constraint verdict.
    """
    _COMPILE_LOOKUPS.inc()
    cached = _COMPILED_CACHE.get(model)
    if cached is not None:
        _COMPILE_HITS.inc()
        return cached
    _COMPILE_MISSES.inc()
    env = _base_term_env()
    constraints: list[ir.Constraint] = []
    try:
        for statement in model.statements:
            if isinstance(statement, Let):
                _lower_let(statement, env)
            else:
                constraints.append(
                    _CHECK_BUILDERS[statement.kind](
                        statement.name, _lower_expr(statement.expr, env)
                    )
                )
    except ir.IRTypeError as exc:
        # The IR builders use the evaluator's message texts verbatim.
        raise CatTypeError(str(exc)) from None
    plan = ir.compile_model(model.name, constraints)
    _COMPILED_CACHE[model] = plan
    return plan


class CatModel(IRModel):
    """A parsed cat model exposed through the MemoryModel interface, so
    cat-defined and native models are interchangeable everywhere.

    The AST is lowered to an IR plan once per parsed model (shared
    across instances over equal ASTs); consistency checks, axiom thunks
    and diagnostics all run on the shared IR executor, exactly like the
    native models'.
    """

    def __init__(self, model: Model, transactional: bool = True):
        self.model = model
        self.name = model.name
        self.is_transactional = transactional
        self._plan = _compile_model(model)

    def plan(self) -> ir.Plan:
        return self._plan
