"""Error types for the cat-language toolchain."""

from __future__ import annotations


class CatError(Exception):
    """Base class for cat-language errors."""


class CatSyntaxError(CatError):
    """Lexing or parsing failed."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class CatTypeError(CatError):
    """An operator was applied to the wrong kind of value
    (set vs. relation)."""


class CatNameError(CatError):
    """An identifier is not defined."""
