"""Loading the bundled .cat model files."""

from __future__ import annotations

from pathlib import Path

from .eval import CatModel
from .parser import parse

MODELS_DIR = Path(__file__).parent / "models"

_TRANSACTIONAL = {"tsc", "x86tm", "powertm", "armv8tm", "cpptm"}


def available_cat_models() -> list[str]:
    """Names of the bundled .cat files (without extension)."""
    return sorted(p.stem for p in MODELS_DIR.glob("*.cat"))


def load_cat_model(name: str) -> CatModel:
    """Parse a bundled model file into a runnable :class:`CatModel`."""
    path = MODELS_DIR / f"{name}.cat"
    if not path.exists():
        raise KeyError(
            f"no bundled cat model {name!r}; available: "
            f"{', '.join(available_cat_models())}"
        )
    return CatModel(
        parse(path.read_text()), transactional=name in _TRANSACTIONAL
    )


def load_cat_file(path: str | Path) -> CatModel:
    """Parse an arbitrary .cat file."""
    return CatModel(parse(Path(path).read_text()))
