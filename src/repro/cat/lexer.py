"""Lexer for the cat model language.

The dialect is a subset of herd's ``.cat`` language (Alglave et al.),
with two deliberate deviations, both documented in the package docstring
of :mod:`repro.cat`: Cartesian products are written ``cross(S1, S2)``
(herd overloads ``*``, which this dialect reserves for reflexive-
transitive closure), and inverse is written ``^-1``.

Tokens: string literals (the model name), identifiers, keywords
(``let``, ``rec``, ``and``, ``as``, ``acyclic``, ``irreflexive``,
``empty``), operators ``| & \\ ; + * ? ~ ( ) [ ] , ^-1``, the empty
relation ``0``, and nestable ``(* ... *)`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import CatSyntaxError

KEYWORDS = {"let", "rec", "and", "as", "acyclic", "irreflexive", "empty"}

SIMPLE_TOKENS = {
    "|": "PIPE",
    "&": "AMP",
    "\\": "DIFF",
    ";": "SEMI",
    "+": "PLUS",
    "*": "STAR",
    "?": "QUESTION",
    "~": "TILDE",
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    ",": "COMMA",
    "=": "EQUALS",
    "0": "ZERO",
}


@dataclass(frozen=True)
class Token:
    kind: str  # "IDENT", "STRING", a keyword (upper-cased), or a symbol name
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.text!r} @{self.line}:{self.column}>"


def tokenize(source: str) -> list[Token]:
    """Lex a cat model; raises :class:`CatSyntaxError` on bad input."""
    tokens: list[Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)

    def error(message: str) -> CatSyntaxError:
        return CatSyntaxError(message, line, column)

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("(*", i):
            depth = 1
            i += 2
            column += 2
            while i < n and depth:
                if source.startswith("(*", i):
                    depth += 1
                    i += 2
                    column += 2
                elif source.startswith("*)", i):
                    depth -= 1
                    i += 2
                    column += 2
                elif source[i] == "\n":
                    line += 1
                    column = 1
                    i += 1
                else:
                    i += 1
                    column += 1
            if depth:
                raise error("unterminated comment")
            continue
        if ch == '"':
            end = source.find('"', i + 1)
            if end < 0:
                raise error("unterminated string")
            text = source[i + 1 : end]
            tokens.append(Token("STRING", text, line, column))
            column += end - i + 1
            i = end + 1
            continue
        if source.startswith("^-1", i):
            tokens.append(Token("INVERSE", "^-1", line, column))
            i += 3
            column += 3
            continue
        if ch in SIMPLE_TOKENS:
            tokens.append(Token(SIMPLE_TOKENS[ch], ch, line, column))
            i += 1
            column += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_-."):
                j += 1
            text = source[i:j]
            kind = text.upper() if text in KEYWORDS else "IDENT"
            tokens.append(Token(kind, text, line, column))
            column += j - i
            i = j
            continue
        raise error(f"unexpected character {ch!r}")
    tokens.append(Token("EOF", "", line, column))
    return tokens
