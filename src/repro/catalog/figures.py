"""Every execution discussed in the paper, reconstructed exactly.

Figure and section numbers refer to the PLDI 2018 paper.  These are used
as ground truth by the test suite: for each execution we know, from the
paper's prose, which models must allow it and which must forbid it.
"""

from __future__ import annotations

from ..events import ACQ, REL, SYNC, ExecutionBuilder
from ..events.execution import Execution


def fig1() -> Execution:
    """Fig. 1: a three-event execution and its litmus test.

    T0: a: W x ; b: R x (po), T1: c: W x, with co(a, c) and rf(c, b).
    Consistent under every model (b legitimately reads the co-later c).
    """
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.write("x")
    r = t0.read("x")
    c = t1.write("x")
    b.co(a, c)
    b.rf(c, r)
    return b.build()


def fig2() -> Execution:
    """Fig. 2: Fig. 1 with a and b inside a successful transaction.

    Forbidden by every TM model: the external write c both co-follows
    the transaction's write and feeds its read -- a strong-isolation
    violation.  The non-TM baselines allow it.
    """
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction():
        a = t0.write("x")
        r = t0.read("x")
    c = t1.write("x")
    b.co(a, c)
    b.rf(c, r)
    return b.build()


# ---------------------------------------------------------------------------
# Fig. 3: the four 3-event SC executions that separate weak from strong
# isolation.  In each, a two-event transaction is interfered with by one
# *non-transactional* event in another thread.
# ---------------------------------------------------------------------------


def fig3a() -> Execution:
    """Fig. 3(a) -- "non-interference": txn [R x; R x], external W x
    splitting the two reads (fr then rf)."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction():
        r1 = t0.read("x")
        r2 = t0.read("x")
    w = t1.write("x")
    b.rf(w, r2)
    del r1
    return b.build()


def fig3b() -> Execution:
    """Fig. 3(b) -- RMW-isolation-like: txn [R x; W x], external W x
    intervening (fr then co)."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction():
        r = t0.read("x")
        w2 = t0.write("x")
    w = t1.write("x")
    b.co(w, w2)
    del r
    return b.build()


def fig3c() -> Execution:
    """Fig. 3(c): txn [W x; R x], the read observing an external write
    that co-follows the transaction's own write (co then rf)."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction():
        w1 = t0.write("x")
        r = t0.read("x")
    w = t1.write("x")
    b.co(w1, w)
    b.rf(w, r)
    return b.build()


def fig3d() -> Execution:
    """Fig. 3(d) -- "containment": txn [W x; W x], an external read
    observing the intermediate write (rf then fr)."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction():
        w1 = t0.write("x")
        w2 = t0.write("x")
    r = t1.read("x")
    b.co(w1, w2)
    b.rf(w1, r)
    return b.build()


def fig3_all() -> dict[str, Execution]:
    return {"a": fig3a(), "b": fig3b(), "c": fig3c(), "d": fig3d()}


# ---------------------------------------------------------------------------
# §5.2 executions (1), (2), (3) and Remark 5.1
# ---------------------------------------------------------------------------


def power_integrated_barrier() -> Execution:
    """§5.2 execution (1): WRC with the middle thread transactional.

    Must be forbidden on Power: the transaction's write (c) propagates
    to the third thread before a write (a) the transaction observed.
    Captured by tprop1 + Observation.
    """
    from .classics import wrc_txn

    return wrc_txn()


def power_txn_multicopy_atomic() -> Execution:
    """§5.2 execution (2): WRC with the *first* write transactional.

    Must be forbidden on Power: transactional writes are multicopy-
    atomic.  Captured by tprop2 + Observation.
    """
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    with t0.transaction():
        wx = t0.write("x")
    rx = t1.read("x")
    wy = t1.write("y")
    ry = t2.read("y")
    rx2 = t2.read("x")
    b.rf(wx, rx)
    b.rf(wy, ry)
    b.data(rx, wy)
    b.addr(ry, rx2)
    return b.build()


def power_txn_ordering() -> Execution:
    """§5.2 execution (3): IRIW with both writes transactional.

    Must be forbidden on Power: successful transactions serialise, and
    here the two reader threads observe contradictory orders.  Captured
    by the thb cycle.
    """
    from .classics import iriw_txn

    return iriw_txn(both=True)


def power_txn_ordering_single() -> Execution:
    """The §5.2 caveat: execution (3) with only one write transactional
    was *observed* on POWER8 and must remain allowed."""
    from .classics import iriw_txn

    return iriw_txn(both=False)


def remark51_first() -> Execution:
    """Remark 5.1, first execution: a read-only transaction observing
    W x but missing a 'later' W y, with a sync-separated observer.

    The Power manual is ambiguous; the paper's model errs on the side of
    caution and PERMITS it (the integrated-barrier axiom tprop1 needs a
    transactional write, and this transaction is read-only).
    """
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    wx = t0.write("x")
    with t1.transaction():
        rx = t1.read("x")
        ry = t1.read("y")
    wy = t2.write("y")
    t2.fence(SYNC)
    rx2 = t2.read("x")
    b.rf(wx, rx)
    del ry, rx2  # both read the initial value: fr edges are implied
    del wy
    return b.build()


def remark51_second() -> Execution:
    """Remark 5.1, second execution: as the first, but the observer
    thread *writes* x (co-before a) instead of reading it.  Also
    permitted by the model."""
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    wx = t0.write("x")
    with t1.transaction():
        rx = t1.read("x")
        ry = t1.read("y")
    wy = t2.write("y")
    t2.fence(SYNC)
    wx2 = t2.write("x")
    b.rf(wx, rx)
    b.co(wx2, wx)
    del ry, wy
    return b.build()


# ---------------------------------------------------------------------------
# §8.1 monotonicity counterexample
# ---------------------------------------------------------------------------


def monotonicity_split_rmw() -> Execution:
    """§8.1 (left): an RMW whose read and write sit in *two adjacent*
    transactions.  Inconsistent on Power/ARMv8 (TxnCancelsRMW)."""
    b = ExecutionBuilder()
    t0 = b.thread()
    with t0.transaction():
        r = t0.read("x")
    with t0.transaction():
        w = t0.write("x")
    b.rmw(r, w)
    return b.build()


def monotonicity_joined_rmw() -> Execution:
    """§8.1 (right): the same RMW inside a *single* transaction --
    consistent, witnessing that transaction coalescing is unsound on
    Power/ARMv8."""
    b = ExecutionBuilder()
    t0 = b.thread()
    with t0.transaction():
        r = t0.read("x")
        w = t0.write("x")
    b.rmw(r, w)
    return b.build()


# ---------------------------------------------------------------------------
# §9: the execution separating our Power model from Dongol et al.'s
# ---------------------------------------------------------------------------


def dongol_comparison() -> Execution:
    """§9: transactional MP.  Forbidden by C++ TM (hb cycle through
    tsw), so a sound compiler mapping needs the Power TM model to forbid
    it too -- ours does (thb), Dongol et al.'s does not."""
    from .classics import mp_txn

    return mp_txn()


# ---------------------------------------------------------------------------
# Fig. 10 / Example 1.1: lock elision unsoundness in ARMv8
# ---------------------------------------------------------------------------


def fig10_concrete() -> Execution:
    """Fig. 10 (right): the concrete ARMv8 execution showing lock
    elision unsound.

    T0 (spinlock + critical region):
        a: R m [ACQ]   (LDAXR, reads m = 0: lock observed free)
        b: W m         (STXR, rmw with a: lock taken)
        c: R x         (reads the initial x = 0 -- speculatively early!)
        d: W x         (data-dependent on c: writes x+2)
        e: W m [REL]   (STLR: lock released)
    T1 (elided critical region, one transaction):
        f: R m         (reads m = 0: lock observed free)
        g: W x         (writes 1)
    with co(g, d) -- the final value of x is T0's write -- and
    co(b, e) for the lock variable.

    CONSISTENT under ARMv8+TM: nothing orders b before c, so T0's
    critical region reads x before the lock write completes, and the
    transaction slips in between.  Mutual exclusion is violated.
    """
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.read("m", tags={ACQ})
    bw = t0.write("m")
    c = t0.read("x")
    d = t0.write("x")
    e = t0.write("m", tags={REL})
    with t1.transaction():
        f = t1.read("m")
        g = t1.write("x")
    b.rmw(a, bw)
    b.data(c, d)
    b.co(bw, e)
    b.co(g, d)
    del f
    return b.build()


def fig10_concrete_fixed() -> Execution:
    """Fig. 10's execution after the §1.1 fix (a DMB appended to the
    lock implementation).  Now INCONSISTENT under ARMv8+TM: the DMB
    orders the lock write before the critical-region read, closing a
    TxnOrder cycle through the transaction."""
    from ..events import DMB

    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.read("m", tags={ACQ})
    bw = t0.write("m")
    t0.fence(DMB)
    c = t0.read("x")
    d = t0.write("x")
    e = t0.write("m", tags={REL})
    with t1.transaction():
        f = t1.read("m")
        g = t1.write("x")
    b.rmw(a, bw)
    b.data(c, d)
    b.co(bw, e)
    b.co(g, d)
    del f
    return b.build()


def appendix_b_concrete() -> Execution:
    """§B: the second lock-elision counterexample -- the transaction's
    *load* observes T0's intermediate write to x.

    T0: spinlock, then two stores to x; T1: elided CR loading x.
        a: R m [ACQ]; b: W m (rmw); c: W x (=1); d: W x (=2); e: W m [REL]
        T1 txn: f: R m (=0); g: R x  with rf(c, g)
    CONSISTENT under ARMv8+TM: the first store to x can be observed by
    the transaction before the lock write completes.
    """
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.read("m", tags={ACQ})
    bw = t0.write("m")
    c = t0.write("x")
    d = t0.write("x")
    e = t0.write("m", tags={REL})
    with t1.transaction():
        f = t1.read("m")
        g = t1.read("x")
    b.rmw(a, bw)
    b.co(c, d)
    b.co(bw, e)
    b.rf(c, g)
    del f
    return b.build()
