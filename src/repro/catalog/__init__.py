"""Named executions from the paper and the litmus-test literature."""

from . import classics, figures

__all__ = ["classics", "figures"]
