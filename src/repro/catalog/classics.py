"""Classic litmus-test shapes as executions, plus transactional variants.

These are the standard shapes of the weak-memory literature (SB, MP, LB,
WRC, IRIW, coherence shapes) that the paper's §5.3 testing campaign and
our model unit tests revolve around.  Each function returns the
*execution of interest* -- the candidate whose observability is being
asked about -- with the conventional rf/co choices for that shape.

Naming follows the diy/litmus convention: ``mp(lwsync=True, addr=True)``
is MP+lwsync+addr, etc.
"""

from __future__ import annotations

from ..events import (
    ACQ,
    DMB,
    LWSYNC,
    MFENCE,
    REL,
    SYNC,
    ExecutionBuilder,
)
from ..events.execution import Execution


def corr() -> Execution:
    """CoRR: same-location read pairs must respect coherence.

    T0 writes x twice; T1 reads x twice, observing the writes in the
    *opposite* order.  Forbidden everywhere (Coherence).
    """
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w1 = t0.write("x")
    w2 = t0.write("x")
    r1 = t1.read("x")
    r2 = t1.read("x")
    b.co(w1, w2)
    b.rf(w2, r1)
    b.rf(w1, r2)
    return b.build()


def coww() -> Execution:
    """CoWW: po-ordered writes with contradicting co. Forbidden everywhere."""
    b = ExecutionBuilder()
    t0 = b.thread()
    w1 = t0.write("x")
    w2 = t0.write("x")
    b.co(w2, w1)
    return b.build()


def sb(fences: str | None = None) -> Execution:
    """SB (store buffering): each thread writes one location then reads
    the other, both reads seeing the initial value.

    Allowed on x86/Power/ARMv8 without fences; forbidden under SC, and
    everywhere once full fences separate the write from the read
    (``fences`` ∈ {"mfence", "sync", "dmb"}).
    """
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w0 = t0.write("x")
    if fences == "mfence":
        t0.fence(MFENCE)
    elif fences == "sync":
        t0.fence(SYNC)
    elif fences == "dmb":
        t0.fence(DMB)
    r0 = t0.read("y")
    w1 = t1.write("y")
    if fences == "mfence":
        t1.fence(MFENCE)
    elif fences == "sync":
        t1.fence(SYNC)
    elif fences == "dmb":
        t1.fence(DMB)
    r1 = t1.read("x")
    # Both reads observe the initial value: no rf edges; fr is implied.
    del w0, w1, r0, r1
    return b.build()


def sb_txn() -> Execution:
    """SB with each thread's pair wrapped in a transaction.

    Forbidden under every TM model: committed transactions carry full
    fence semantics (tfence / TxnOrder), so the store-buffering
    relaxation disappears.
    """
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction():
        t0.write("x")
        t0.read("y")
    with t1.transaction():
        t1.write("y")
        t1.read("x")
    return b.build()


def mp(
    fence: str | None = None,
    dep: str | None = None,
    acq_rel: bool = False,
) -> Execution:
    """MP (message passing): T0 writes data then flag; T1 reads flag
    (seeing it set) then data (seeing the initial value).

    * plain: allowed on Power/ARMv8, forbidden on x86/SC;
    * ``fence`` ∈ {"lwsync", "sync", "dmb"} orders T0's writes;
    * ``dep`` ∈ {"addr", "ctrl"} orders T1's reads;
    * ``acq_rel`` uses STLR/LDAR-style annotations instead.
    """
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    wx = t0.write("x")
    if fence == "lwsync":
        t0.fence(LWSYNC)
    elif fence == "sync":
        t0.fence(SYNC)
    elif fence == "dmb":
        t0.fence(DMB)
    wy = t0.write("y", tags={REL} if acq_rel else frozenset())
    ry = t1.read("y", tags={ACQ} if acq_rel else frozenset())
    rx = t1.read("x")
    b.rf(wy, ry)
    if dep == "addr":
        b.addr(ry, rx)
    elif dep == "ctrl":
        b.ctrl(ry, rx)
    del wx
    return b.build()


def mp_txn() -> Execution:
    """MP with both threads transactional.  Forbidden under every TM
    model (and under C++ TM via tsw -- the §9 comparison execution)."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction():
        t0.write("x")
        wy = t0.write("y")
    with t1.transaction():
        ry = t1.read("y")
        t1.read("x")
    b.rf(wy, ry)
    return b.build()


def mp_txn_reader(fence: str = "dmb") -> Execution:
    """MP with a fenced writer and a *transactional* reader (no
    dependency between the reader's loads).

    Forbidden under ARMv8+TM purely by **TxnOrder**: the transaction's
    two reads are glued together when lifting ``ob`` (which contains
    ``fre``), standing in for the missing address dependency.  StrongIsol
    alone does not catch it (the writer's two locations never
    communicate), which makes this the shape that exposes the §6.2 RTL
    prototype bug.

    Under Power+TM the ``sync`` variant is *allowed* by the literal
    Fig. 6 model: Power's ``hb`` is ``rfe? ; ihb ; rfe?`` and contains
    no ``fre`` edge, so the TxnOrder lift cannot close the cycle.  This
    structural difference between Fig. 6 and Fig. 8 is recorded in
    EXPERIMENTS.md.
    """
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    wx = t0.write("x")
    if fence == "dmb":
        t0.fence(DMB)
    elif fence == "sync":
        t0.fence(SYNC)
    elif fence == "lwsync":
        t0.fence(LWSYNC)
    wy = t0.write("y")
    with t1.transaction():
        ry = t1.read("y")
        t1.read("x")
    b.rf(wy, ry)
    del wx
    return b.build()


def lb(deps: bool = False) -> Execution:
    """LB (load buffering): each thread reads one location then writes
    the other; each read observes the other thread's write.

    Allowed by the Power and ARMv8 models without dependencies (although
    never observed on Power silicon -- §5.3); forbidden on x86 and with
    data dependencies on both sides.
    """
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    r0 = t0.read("x")
    w0 = t0.write("y")
    r1 = t1.read("y")
    w1 = t1.write("x")
    b.rf(w0, r1)
    b.rf(w1, r0)
    if deps:
        b.data(r0, w0)
        b.data(r1, w1)
    return b.build()


def wrc(dep1: bool = True, dep2: bool = True, fence1: str | None = None) -> Execution:
    """WRC (write-to-read causality): T0 writes x; T1 sees it and writes
    y; T2 sees y but still reads the initial x.

    With dependencies only, allowed on Power (not multicopy-atomic) but
    forbidden on ARMv8 and x86; with ``fence1`` ∈ {"sync", "lwsync"} in
    T1, forbidden on Power too (A-cumulativity).
    """
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    wx = t0.write("x")
    rx = t1.read("x")
    if fence1 == "sync":
        t1.fence(SYNC)
    elif fence1 == "lwsync":
        t1.fence(LWSYNC)
    wy = t1.write("y")
    ry = t2.read("y")
    rx2 = t2.read("x")
    b.rf(wx, rx)
    b.rf(wy, ry)
    if dep1 and fence1 is None:
        b.data(rx, wy)
    if dep2:
        b.addr(ry, rx2)
    return b.build()


def wrc_txn() -> Execution:
    """WRC with T1's pair transactional -- §5.2 execution (1).

    Forbidden under Power+TM by the transaction's integrated memory
    barrier (tprop1 + Observation); allowed by the baseline.
    """
    b = ExecutionBuilder()
    t0, t1, t2 = b.thread(), b.thread(), b.thread()
    wx = t0.write("x")
    with t1.transaction():
        rx = t1.read("x")
        wy = t1.write("y")
    ry = t2.read("y")
    rx2 = t2.read("x")
    b.rf(wx, rx)
    b.rf(wy, ry)
    b.addr(ry, rx2)
    return b.build()


def iriw(deps: bool = True, fences: str | None = None) -> Execution:
    """IRIW (independent reads of independent writes): two writer
    threads, two reader threads observing the writes in opposite orders.

    With dependencies, allowed on Power (non-MCA) but forbidden on
    ARMv8/x86; with ``fences="sync"``, forbidden on Power.
    """
    b = ExecutionBuilder()
    t0, t1, t2, t3 = b.thread(), b.thread(), b.thread(), b.thread()
    wx = t0.write("x")
    wy = t1.write("y")
    rx1 = t2.read("x")
    if fences == "sync":
        t2.fence(SYNC)
    ry1 = t2.read("y")
    ry2 = t3.read("y")
    if fences == "sync":
        t3.fence(SYNC)
    rx2 = t3.read("x")
    b.rf(wx, rx1)
    b.rf(wy, ry2)
    if deps and fences is None:
        b.addr(rx1, ry1)
        b.addr(ry2, rx2)
    return b.build()


def iriw_txn(both: bool = True) -> Execution:
    """IRIW with the writes transactional -- §5.2 execution (3).

    With *both* writes transactional, forbidden under Power+TM: the two
    transactions cannot be serialised (thb cycle).  With only one write
    transactional the behaviour was observed on POWER8 and is allowed.
    """
    b = ExecutionBuilder()
    t0, t1, t2, t3 = b.thread(), b.thread(), b.thread(), b.thread()
    with t0.transaction():
        wx = t0.write("x")
    if both:
        with t1.transaction():
            wy = t1.write("y")
    else:
        wy = t1.write("y")
    rx1 = t2.read("x")
    ry1 = t2.read("y")
    ry2 = t3.read("y")
    rx2 = t3.read("x")
    b.rf(wx, rx1)
    b.rf(wy, ry2)
    b.addr(rx1, ry1)
    b.addr(ry2, rx2)
    return b.build()
