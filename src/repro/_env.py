"""Normalized ``REPRO_*`` environment variables, with legacy aliases.

Every knob the harness reads from the environment goes through
:func:`env_str` / :func:`env_int` / :func:`env_float`, under one
consistent naming scheme:

==================== ======================================= =====================
canonical            meaning                                 legacy alias
==================== ======================================= =====================
``REPRO_WORKERS``      pipeline fan-out width                ``REPRO_PIPELINE_WORKERS``
``REPRO_RETRIES``      per-job retry count                   ``REPRO_PIPELINE_RETRIES``
``REPRO_BACKOFF``      retry backoff base (seconds)          ``REPRO_PIPELINE_BACKOFF``
``REPRO_SOFT_TIMEOUT`` slow-job flagging threshold (seconds) ``REPRO_PIPELINE_SOFT_TIMEOUT``
``REPRO_SEED``         fuzz / random-runner campaign seed    ``REPRO_FUZZ_SEED``
``REPRO_CACHE``        verdict-cache directory               (none)
``REPRO_PROFILE``      enable the IR plan profiler           ``REPRO_IR_PROFILE``
==================== ======================================= =====================

Legacy names keep working -- scripts and CI configs in the wild set
them -- but each one warns once per process with a
:class:`DeprecationWarning` naming the canonical spelling.  The
canonical name always wins when both are set.
"""

from __future__ import annotations

import os
import warnings

#: canonical name → accepted legacy aliases, in precedence order.
ALIASES: dict[str, tuple[str, ...]] = {
    "REPRO_WORKERS": ("REPRO_PIPELINE_WORKERS",),
    "REPRO_RETRIES": ("REPRO_PIPELINE_RETRIES",),
    "REPRO_BACKOFF": ("REPRO_PIPELINE_BACKOFF",),
    "REPRO_SOFT_TIMEOUT": ("REPRO_PIPELINE_SOFT_TIMEOUT",),
    "REPRO_SEED": ("REPRO_FUZZ_SEED",),
    "REPRO_CACHE": (),
    "REPRO_PROFILE": ("REPRO_IR_PROFILE",),
}

_warned_aliases: set[str] = set()


def _warn_once(alias: str, canonical: str) -> None:
    if alias in _warned_aliases:
        return
    _warned_aliases.add(alias)
    warnings.warn(
        f"the {alias} environment variable is deprecated; "
        f"set {canonical} instead",
        DeprecationWarning,
        stacklevel=4,
    )


def env_str(name: str, default: str | None = None) -> str | None:
    """The value of canonical variable ``name``, falling back through
    its legacy aliases (warning once per alias actually used)."""
    value = os.environ.get(name)
    if value is not None:
        return value
    for alias in ALIASES.get(name, ()):
        value = os.environ.get(alias)
        if value is not None:
            _warn_once(alias, name)
            return value
    return default


def env_int(name: str, default: int) -> int:
    value = env_str(name)
    return int(value) if value else default


def env_float(name: str, default: float | None) -> float | None:
    value = env_str(name)
    return float(value) if value else default
