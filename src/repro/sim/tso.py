"""An operational x86-TSO machine with TSX transactions.

This is the reproduction's stand-in for the paper's four TSX machines
(Haswell, Broadwell, Skylake, Kabylake): where the paper runs each test
1M times under the Litmus tool, we *exhaustively* explore the
operational state space and report whether any terminal state satisfies
the postcondition.

The machine implements the classic x86-TSO structure (Owens et al.):

* per-thread FIFO store buffers, non-deterministically flushed;
* loads read their own store buffer first (store forwarding), then
  memory;
* ``MFENCE`` and LOCK'd RMWs wait for the local buffer to drain, and
  RMWs act on memory atomically.

TSX transactions follow Intel's manual as formalised in Fig. 5:

* ``XBEGIN`` waits for the local buffer to drain (the entering
  ``tfence``);
* transactional stores are buffered privately and invisible to others;
* conflict detection is eager: any other thread's write to a location
  in a running transaction's read or write set aborts it (§16.2 defines
  conflicts against "another logical processor" -- strong isolation);
* ``XEND`` publishes the write set atomically (LOCK semantics);
* an aborted transaction rolls back, zeroes the ``ok`` flag, and
  resumes after its ``XEND`` (the fail-handler convention of §3.2).

Spontaneous aborts (capacity, interrupts...) can be enabled; they only
add failed-transaction outcomes, so they are off by default to keep the
state space small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..litmus.program import (
    AbortUnless,
    Fence,
    Load,
    LoadLinked,
    Program,
    Rmw,
    Store,
    StoreConditional,
    TxBegin,
    TxEnd,
)

# A thread's transaction context: (read-set, write-buffer) with the
# write buffer an ordered tuple of (loc, value) pairs.
_TxnCtx = tuple[frozenset[str], tuple[tuple[str, int], ...]]


@dataclass(frozen=True)
class _ThreadState:
    pc: int
    registers: tuple[tuple[str, int], ...]
    buffer: tuple[tuple[str, int], ...]
    txn: _TxnCtx | None
    ok: bool

    def reg(self, name: str) -> int:
        for key, value in self.registers:
            if key == name:
                return value
        return 0

    def with_reg(self, name: str, value: int) -> "_ThreadState":
        regs = tuple(
            sorted(
                [(k, v) for k, v in self.registers if k != name]
                + [(name, value)]
            )
        )
        return _ThreadState(self.pc, regs, self.buffer, self.txn, self.ok)


@dataclass(frozen=True)
class _MachineState:
    threads: tuple[_ThreadState, ...]
    memory: tuple[tuple[str, int], ...]
    #: per-location coherence log: the order in which writes hit memory.
    #: Physical machines cannot expose this; the simulation uses it to
    #: validate the *intended* execution (removing footnote 2's
    #: final-value ambiguity for locations with three or more writes).
    log: tuple[tuple[str, int], ...] = ()

    def mem(self, loc: str) -> int:
        for key, value in self.memory:
            if key == loc:
                return value
        return 0

    def with_mem(self, loc: str, value: int) -> "_MachineState":
        mem = tuple(
            sorted(
                [(k, v) for k, v in self.memory if k != loc] + [(loc, value)]
            )
        )
        return _MachineState(self.threads, mem, self.log + ((loc, value),))

    def with_thread(self, tid: int, ts: _ThreadState) -> "_MachineState":
        threads = self.threads[:tid] + (ts,) + self.threads[tid + 1 :]
        return _MachineState(threads, self.memory, self.log)


@dataclass(frozen=True)
class FinalState:
    """A terminal machine state, summarised for postcondition checks."""

    registers: dict[tuple[int, str], int]
    memory: dict[str, int]
    all_txns_committed: bool
    write_log: dict[str, tuple[int, ...]]

    def matches_intended_co(self, intended_co: dict[str, tuple[int, ...]]) -> bool:
        return all(
            self.write_log.get(loc, ()) == values
            for loc, values in intended_co.items()
        )


class TSOMachine:
    """Exhaustive explorer for one litmus program."""

    def __init__(self, program: Program, spontaneous_aborts: bool = False):
        for _, _, ins in program.instructions():
            if isinstance(ins, (LoadLinked, StoreConditional)):
                raise ValueError("x86 has no load-linked/store-conditional")
        self.program = program
        self.spontaneous_aborts = spontaneous_aborts

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def final_states(self) -> Iterator[FinalState]:
        """Every distinct terminal state, by exhaustive DFS."""
        initial = _MachineState(
            threads=tuple(
                _ThreadState(0, (), (), None, True) for _ in self.program.threads
            ),
            memory=(),
        )
        seen: set[_MachineState] = set()
        finals: set[_MachineState] = set()
        stack = [initial]
        while stack:
            state = stack.pop()
            if state in seen:
                continue
            seen.add(state)
            successors = list(self._steps(state))
            if not successors:
                if self._terminal(state):
                    finals.add(state)
                continue
            stack.extend(successors)
        for state in finals:
            yield self._summarise(state)

    def observable(
        self, intended_co: dict[str, tuple[int, ...]] | None = None
    ) -> bool:
        """Can any terminal state satisfy the postcondition?

        This is the machine's answer to "was the test seen on hardware".
        With ``intended_co``, the coherence log must additionally match
        the generating execution's co (exact-execution validation).
        """
        post = self.program.postcondition
        for f in self.final_states():
            if not post.holds(f.registers, f.memory, f.all_txns_committed):
                continue
            if intended_co is not None and not f.matches_intended_co(intended_co):
                continue
            return True
        return False

    def outcomes(self) -> set[tuple]:
        """All terminal (registers, memory) valuations."""
        out = set()
        for f in self.final_states():
            out.add(
                (
                    tuple(sorted(f.registers.items())),
                    tuple(sorted(f.memory.items())),
                    f.all_txns_committed,
                )
            )
        return out

    # ------------------------------------------------------------------
    # Transition relation
    # ------------------------------------------------------------------

    def _terminal(self, state: _MachineState) -> bool:
        return all(
            ts.pc >= len(self.program.threads[tid]) and not ts.buffer
            for tid, ts in enumerate(state.threads)
        )

    def _steps(self, state: _MachineState) -> Iterator[_MachineState]:
        for tid, ts in enumerate(state.threads):
            # Buffer flush is always available when non-empty.
            if ts.buffer:
                yield self._flush_one(state, tid)
            if ts.pc >= len(self.program.threads[tid]):
                continue
            ins = self.program.threads[tid][ts.pc]
            yield from self._execute(state, tid, ts, ins)
            if self.spontaneous_aborts and ts.txn is not None:
                yield self._abort(state, tid)

    def _flush_one(self, state: _MachineState, tid: int) -> _MachineState:
        ts = state.threads[tid]
        (loc, value), rest = ts.buffer[0], ts.buffer[1:]
        new = state.with_thread(
            tid, _ThreadState(ts.pc, ts.registers, rest, ts.txn, ts.ok)
        )
        new = new.with_mem(loc, value)
        return self._signal_conflicts(new, tid, loc)

    def _signal_conflicts(
        self, state: _MachineState, writer: int, loc: str
    ) -> _MachineState:
        """Eagerly abort every *other* running transaction whose read or
        write set contains ``loc``."""
        for tid, ts in enumerate(state.threads):
            if tid == writer or ts.txn is None:
                continue
            read_set, write_buffer = ts.txn
            if loc in read_set or any(l == loc for l, _ in write_buffer):
                state = self._abort(state, tid)
        return state

    def _abort(self, state: _MachineState, tid: int) -> _MachineState:
        """Roll back ``tid``'s transaction: discard its buffered writes,
        clear ``ok``, and resume after the matching TxEnd."""
        ts = state.threads[tid]
        thread = self.program.threads[tid]
        pc = ts.pc
        while pc < len(thread) and not isinstance(thread[pc], TxEnd):
            pc += 1
        return state.with_thread(
            tid, _ThreadState(pc + 1, ts.registers, ts.buffer, None, False)
        )

    def _read_value(self, state: _MachineState, tid: int, loc: str) -> int:
        ts = state.threads[tid]
        if ts.txn is not None:
            for l, v in reversed(ts.txn[1]):
                if l == loc:
                    return v
        for l, v in reversed(ts.buffer):
            if l == loc:
                return v
        return state.mem(loc)

    def _execute(
        self, state: _MachineState, tid: int, ts: _ThreadState, ins
    ) -> Iterator[_MachineState]:
        thread_len = len(self.program.threads[tid])
        advance = lambda t: _ThreadState(t.pc + 1, t.registers, t.buffer, t.txn, t.ok)

        if isinstance(ins, Load):
            value = self._read_value(state, tid, ins.loc)
            new_ts = ts.with_reg(ins.reg, value)
            if ts.txn is not None:
                read_set, wbuf = ts.txn
                new_ts = _ThreadState(
                    new_ts.pc,
                    new_ts.registers,
                    new_ts.buffer,
                    (read_set | {ins.loc}, wbuf),
                    new_ts.ok,
                )
            yield state.with_thread(tid, advance(new_ts))

        elif isinstance(ins, Store):
            if ts.txn is not None:
                read_set, wbuf = ts.txn
                new_ts = _ThreadState(
                    ts.pc, ts.registers, ts.buffer,
                    (read_set, wbuf + ((ins.loc, ins.value),)), ts.ok,
                )
            else:
                new_ts = _ThreadState(
                    ts.pc, ts.registers, ts.buffer + ((ins.loc, ins.value),),
                    ts.txn, ts.ok,
                )
            yield state.with_thread(tid, advance(new_ts))

        elif isinstance(ins, Rmw):
            if ts.buffer:
                return  # LOCK'd ops drain the buffer first
            if ts.txn is not None:
                # An RMW inside a TSX transaction: acts on the txn context.
                value = self._read_value(state, tid, ins.loc)
                read_set, wbuf = ts.txn
                new_ts = ts.with_reg(ins.reg, value)
                new_ts = _ThreadState(
                    new_ts.pc, new_ts.registers, new_ts.buffer,
                    (read_set | {ins.loc}, wbuf + ((ins.loc, ins.value),)),
                    new_ts.ok,
                )
                yield state.with_thread(tid, advance(new_ts))
            else:
                value = state.mem(ins.loc)
                new_ts = advance(ts.with_reg(ins.reg, value))
                new_state = state.with_thread(tid, new_ts).with_mem(
                    ins.loc, ins.value
                )
                yield self._signal_conflicts(new_state, tid, ins.loc)

        elif isinstance(ins, Fence):
            if ts.buffer:
                return  # MFENCE waits for the buffer to drain
            yield state.with_thread(tid, advance(ts))

        elif isinstance(ins, TxBegin):
            if ts.buffer:
                return  # entering tfence: buffer must drain first
            new_ts = _ThreadState(
                ts.pc + 1, ts.registers, ts.buffer, (frozenset(), ()), ts.ok
            )
            yield state.with_thread(tid, new_ts)

        elif isinstance(ins, TxEnd):
            assert ts.txn is not None, "TxEnd outside transaction"
            _, wbuf = ts.txn
            new_state = state.with_thread(
                tid, _ThreadState(ts.pc + 1, ts.registers, ts.buffer, None, ts.ok)
            )
            # Commit publishes the write set atomically.
            for loc, value in wbuf:
                new_state = new_state.with_mem(loc, value)
            for loc in {l for l, _ in wbuf}:
                new_state = self._signal_conflicts(new_state, tid, loc)
            yield new_state

        elif isinstance(ins, AbortUnless):
            if ts.reg(ins.reg) == ins.expected:
                yield state.with_thread(tid, advance(ts))
            else:
                yield self._abort(state, tid)

        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown instruction {ins!r}")

        del thread_len

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def _summarise(self, state: _MachineState) -> FinalState:
        registers: dict[tuple[int, str], int] = {}
        for tid, ts in enumerate(state.threads):
            for name, value in ts.registers:
                registers[(tid, name)] = value
        write_log: dict[str, tuple[int, ...]] = {}
        for loc, value in state.log:
            write_log[loc] = write_log.get(loc, ()) + (value,)
        return FinalState(
            registers=registers,
            memory=dict(state.memory),
            all_txns_committed=all(ts.ok for ts in state.threads),
            write_log=write_log,
        )
