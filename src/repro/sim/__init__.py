"""Simulated hardware: the substitution layer for the paper's machines."""

from .oracle import FilteredModel, OracleHardware, TSOHardware
from .random_runner import RandomisedRunner, SamplingResult
from .runner import Hardware, SuiteResult, run_suite
from .tso import FinalState, TSOMachine

__all__ = [
    "FilteredModel",
    "RandomisedRunner",
    "SamplingResult",
    "FinalState",
    "Hardware",
    "OracleHardware",
    "SuiteResult",
    "TSOHardware",
    "TSOMachine",
    "run_suite",
]
