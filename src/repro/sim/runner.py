"""Running conformance suites against simulated hardware (§5.3, §6.2).

Where the paper runs each synthesised test 1M-10M times under the
Litmus tool and reports Seen / Not-seen, this runner asks each simulated
machine for a definitive observability verdict and aggregates the same
columns as Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..litmus.convert import LitmusTest


class Hardware(Protocol):
    """Anything that can answer "would this test's outcome be seen"."""

    name: str

    def observable(self, program) -> bool: ...


@dataclass(frozen=True)
class SuiteResult:
    """Seen/not-seen tallies for one suite on one machine."""

    machine: str
    total: int
    seen: int
    seen_tests: tuple[str, ...]
    unseen_tests: tuple[str, ...]

    @property
    def not_seen(self) -> int:
        return self.total - self.seen


def run_suite(
    tests: Sequence[LitmusTest],
    hardware: Hardware,
) -> SuiteResult:
    """Run every test; return the tallies."""
    seen_names: list[str] = []
    unseen_names: list[str] = []
    for test in tests:
        if hardware.observable(test.program):
            seen_names.append(test.program.name)
        else:
            unseen_names.append(test.program.name)
    return SuiteResult(
        machine=hardware.name,
        total=len(tests),
        seen=len(seen_names),
        seen_tests=tuple(seen_names),
        unseen_tests=tuple(unseen_names),
    )
