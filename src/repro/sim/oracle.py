"""Axiomatic-oracle hardware for Power and ARMv8 (substitution layer).

The paper validates its Power model on an 80-core POWER8 and its ARMv8
model against an RTL prototype.  Neither is available here, so simulated
hardware is an *oracle*: a machine that exhibits exactly the behaviours
some axiomatic model allows, optionally restricted by implementation
conservatism.

Two knobs reproduce the paper's empirical observations:

* ``no_load_buffering`` -- POWER8 has never been observed to perform the
  LB shape (§5.3: "Many of the unobserved Power Allow tests are based on
  the load-buffering (LB) shape, which has never actually been observed
  on a Power machine").  The filter adds ``acyclic(po ∪ rf)`` to the
  implementation, so LB-shaped Allow tests come back "not seen" exactly
  as in Table 1.

* ``drop_axiom`` -- the §6.2 story: ARM architects used the generated
  conformance suite to find a TxnOrder violation in an RTL prototype.
  ``drop_axiom="TxnOrder"`` builds that buggy implementation; running
  the Forbid suite against it flags the bug.
"""

from __future__ import annotations

from ..events import Execution
from ..litmus.candidates import candidate_executions
from ..litmus.program import Program
from ..models.base import AxiomThunk, MemoryModel
from ..obs import REGISTRY

_OBSERVABLE_TIMER = REGISTRY.timer("sim.observable.seconds")
_CANDIDATES = REGISTRY.counter("sim.observable.candidates")


class FilteredModel(MemoryModel):
    """A model with named axioms removed and/or extra axioms added."""

    def __init__(
        self,
        base: MemoryModel,
        drop_axioms: tuple[str, ...] = (),
        extra_axioms: tuple[AxiomThunk, ...] = (),
        name: str | None = None,
    ):
        self.base = base
        self.drop_axioms = tuple(drop_axioms)
        self._extra = tuple(extra_axioms)
        self.is_transactional = base.is_transactional
        self.name = name or (
            base.name
            + "".join(f"-{a}" for a in drop_axioms)
        )

    def axiom_thunks(self, execution: Execution) -> list[AxiomThunk]:
        thunks = [
            (axiom, thunk)
            for axiom, thunk in self.base.axiom_thunks(execution)
            if axiom not in self.drop_axioms
        ]
        return thunks

    def baseline(self) -> MemoryModel:
        return self.base.baseline()


class OracleHardware:
    """Simulated hardware whose observable behaviours are exactly the
    executions consistent with ``implementation`` (a sub-model of the
    architecture)."""

    def __init__(
        self,
        implementation: MemoryModel,
        no_load_buffering: bool = False,
        name: str = "oracle",
    ):
        self.implementation = implementation
        self.no_load_buffering = no_load_buffering
        self.name = name

    @staticmethod
    def power8(model: MemoryModel) -> "OracleHardware":
        """A POWER8-like machine: model-exact except LB shapes never
        manifest."""
        return OracleHardware(model, no_load_buffering=True, name="POWER8-sim")

    @staticmethod
    def armv8_rtl_buggy(model: MemoryModel) -> "OracleHardware":
        """The §6.2 RTL prototype with its TxnOrder bug."""
        return OracleHardware(
            FilteredModel(model, drop_axioms=("TxnOrder",)),
            name="ARM-RTL-buggy",
        )

    # ------------------------------------------------------------------

    def _implementation_allows(self, execution: Execution) -> bool:
        if self.no_load_buffering and not (execution.po | execution.rf).is_acyclic():
            return False
        return self.implementation.consistent(execution)

    def observable(
        self,
        program: Program,
        intended_co: dict[str, tuple[int, ...]] | None = None,
    ) -> bool:
        """Would running this test on the simulated machine ever satisfy
        its postcondition?  With ``intended_co``, the candidate's
        coherence order must match the generating execution's."""
        with _OBSERVABLE_TIMER.time():
            for candidate in candidate_executions(program):
                _CANDIDATES.inc()
                if not candidate.passes(program):
                    continue
                if intended_co is not None and not _co_matches(
                    candidate, intended_co
                ):
                    continue
                if self._implementation_allows(candidate.execution):
                    return True
            return False


def _co_matches(candidate, intended_co: dict[str, tuple[int, ...]]) -> bool:
    """Does the candidate's coherence order, read off as per-location
    value sequences, match the intended one?  (§2.2 tests use distinct
    values per location, so the value sequence identifies co.)"""
    actual = candidate.co_value_sequences()
    return all(
        actual.get(loc, ()) == tuple(values)
        for loc, values in intended_co.items()
    )


class TSOHardware:
    """Adapter giving the operational TSX machine the same interface."""

    name = "TSX-sim"

    def observable(
        self,
        program: Program,
        intended_co: dict[str, tuple[int, ...]] | None = None,
    ) -> bool:
        from .tso import TSOMachine

        with _OBSERVABLE_TIMER.time():
            return TSOMachine(program).observable(intended_co)
