"""Litmus-tool-style randomised running (the paper's 1M-runs protocol).

The Litmus tool observes weak behaviours by running a test millions of
times under scheduling noise.  The exhaustive explorer in
:mod:`repro.sim.tso` *decides* observability; this module complements it
with the sampling protocol the paper actually used -- useful for
benchmarks ("how many runs until SB shows up?") and for demonstrating
why non-observation of an Allow test is weaker evidence than
observation of a Forbid test (§4.2's discussion).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..litmus.program import Program
from .tso import TSOMachine, _MachineState, _ThreadState


@dataclass
class SamplingResult:
    """Outcome tallies from randomised runs."""

    runs: int
    matching: int
    outcomes: dict[tuple, int] = field(default_factory=dict)

    @property
    def observed(self) -> bool:
        return self.matching > 0

    @property
    def rate(self) -> float:
        return self.matching / self.runs if self.runs else 0.0


class RandomisedRunner:
    """Run a program repeatedly under a uniformly random scheduler.

    The scheduler's randomness is always an *owned* ``random.Random``
    instance, never the module-global ``random`` state: either pass a
    ready-made ``rng`` (the fuzzer threads its own generator through),
    or a ``seed``.  When neither is given the seed comes from the
    ``REPRO_SEED`` environment variable (default 0; the legacy
    ``REPRO_FUZZ_SEED`` spelling still works), so CI runs are
    reproducible end to end.
    """

    def __init__(
        self,
        program: Program,
        seed: int | None = None,
        rng: random.Random | None = None,
    ):
        self.machine = TSOMachine(program)
        self.program = program
        if rng is not None:
            self.rng = rng
        else:
            if seed is None:
                from .._env import env_int

                seed = env_int("REPRO_SEED", 0)
            self.rng = random.Random(seed)

    def run_once(self) -> tuple:
        """One run to termination with random step choices; returns the
        (registers, memory, all-committed, write-log) summary."""
        state = _MachineState(
            threads=tuple(
                _ThreadState(0, (), (), None, True)
                for _ in self.program.threads
            ),
            memory=(),
        )
        while True:
            successors = list(self.machine._steps(state))
            if not successors:
                break
            state = self.rng.choice(successors)
        final = self.machine._summarise(state)
        return (
            tuple(sorted(final.registers.items())),
            tuple(sorted(final.memory.items())),
            final.all_txns_committed,
            tuple(sorted(final.write_log.items())),
        )

    def sample(
        self,
        runs: int = 1000,
        intended_co: dict[str, tuple[int, ...]] | None = None,
        stop_on_first: bool = False,
    ) -> SamplingResult:
        """Run the test ``runs`` times; count postcondition matches."""
        post = self.program.postcondition
        result = SamplingResult(runs=0, matching=0)
        for _ in range(runs):
            registers, memory, committed, log = self.run_once()
            result.runs += 1
            key = (registers, memory, committed)
            result.outcomes[key] = result.outcomes.get(key, 0) + 1
            if not post.holds(dict(registers), dict(memory), committed):
                continue
            if intended_co is not None:
                log_map = dict(log)
                if any(
                    log_map.get(loc, ()) != values
                    for loc, values in intended_co.items()
                ):
                    continue
            result.matching += 1
            if stop_on_first:
                break
        return result
