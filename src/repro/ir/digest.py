"""Stable structural digests of hash-consed IR terms and plans.

The verdict cache (:mod:`repro.harness.verdict_cache`) keys entries by
``(model digest, canonical execution digest)`` and must stay valid
*across interpreter runs*: the same model source must digest to the
same hex string tomorrow.  Term ``uid``\\s are process-local (they
depend on construction order), so the digest is computed structurally
-- each node hashes its operator, kind, and its children's digests --
and memoised per ``uid`` so shared subterms (the whole point of
hash-consing) are digested once.

Fix groups hash their bodies with the recursive back-edges encoded as
``("fixref", index)`` markers rather than by following the cycle, which
both terminates and stays stable under group interning.
"""

from __future__ import annotations

import hashlib

from .plan import Plan
from .terms import FixGroup, Term

#: term uid → structural digest (uids are stable within a process, so
#: this is a plain memo table, not part of the digest itself).
_TERM_MEMO: dict[int, str] = {}
_GROUP_MEMO: dict[int, str] = {}


def _sha(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def term_digest(term: Term) -> str:
    """A process-independent digest of one term's structure."""
    memo = _TERM_MEMO.get(term.uid)
    if memo is not None:
        return memo
    parts: list[str] = [term.op, term.kind]
    if term.op == "fix":
        group, index = term.args
        parts.append(group_digest(group))
        parts.append(str(index))
    else:
        for arg in term.args:
            if isinstance(arg, Term):
                parts.append(term_digest(arg))
            else:
                parts.append(repr(arg))
    digest = _sha("\x1f".join(parts))
    _TERM_MEMO[term.uid] = digest
    return digest


def group_digest(group: FixGroup) -> str:
    """Digest of a ``let rec`` group: its bodies with back-edges to the
    group's own fixpoints replaced by positional markers."""
    memo = _GROUP_MEMO.get(group.uid)
    if memo is not None:
        return memo
    fix_index = {fix.uid: i for i, fix in enumerate(group.fixes)}

    def encode(term: Term) -> str:
        position = fix_index.get(term.uid)
        if position is not None:
            return f"fixref:{position}"
        if term.op == "fix":
            # A fix node of a *different* (nested) group.
            inner, index = term.args
            return f"fix:{group_digest(inner)}:{index}"
        inner_parts = [term.op, term.kind]
        for arg in term.args:
            if isinstance(arg, Term):
                inner_parts.append(encode(arg))
            else:
                inner_parts.append(repr(arg))
        return _sha("\x1f".join(inner_parts))

    payload = "\x1e".join(
        f"{kind}\x1f{encode(body)}"
        for kind, body in zip(group.kinds, group.bodies)
    )
    digest = _sha("fixgroup\x1e" + payload)
    _GROUP_MEMO[group.uid] = digest
    return digest


def plan_digest(plan: Plan) -> str:
    """Digest of a compiled plan: its constraints (name, check kind,
    term structure) in declaration order.  The scheduled order is
    derived from costs, so it adds no information."""
    payload = "\x1e".join(
        f"{c.name}\x1f{c.kind}\x1f{term_digest(c.term)}"
        for c in plan.constraints
    )
    return _sha("plan\x1e" + payload)


def model_digest(model) -> str | None:
    """A stable digest identifying a model's semantics, or ``None``.

    ``None`` means "this model cannot be digested reliably" -- the
    verdict cache must then bypass it rather than risk serving a stale
    verdict.  IR-planned models digest via their plan; axiom-filtered
    wrappers (:class:`repro.sim.FilteredModel`) digest as the base
    model's digest plus the dropped-axiom names, provided they add no
    opaque extra axioms.
    """
    plan = getattr(model, "plan", None)
    if callable(plan):
        try:
            return plan_digest(plan())
        except Exception:
            return None
    base = getattr(model, "base", None)
    if base is not None and hasattr(model, "drop_axioms"):
        if getattr(model, "_extra", ()):
            return None  # opaque thunks: semantics not digestable
        inner = model_digest(base)
        if inner is None:
            return None
        drops = ",".join(sorted(model.drop_axioms))
        return _sha(f"filtered\x1f{inner}\x1f{drops}")
    return None
