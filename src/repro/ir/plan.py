"""Model specs → execution plans.

A *model spec* is a sequence of named constraints over IR terms
(:mod:`repro.ir.terms`).  :func:`compile_model` turns one into a
:class:`Plan`: the constraints in declaration order (the order
``axiom_thunks``/``violated_axioms`` report them in) plus a scheduled
evaluation order -- cheapest constraint first, by a static cost estimate
over the term DAG -- so the executor's early exit rejects inconsistent
candidates with as little work as possible.

Cost is purely syntactic (leaves cost 1, composition a little more,
closures and fixpoints a lot more) and deliberately double-counts shared
subterms: a constraint whose term was already needed by an earlier
constraint is nearly free at run time thanks to per-execution
memoisation, so overestimating it merely keeps the expensive constraints
where they belong -- last.
"""

from __future__ import annotations

from typing import Sequence

from ..obs import REGISTRY
from .terms import IRTypeError, Term

_PLAN_COMPILES = REGISTRY.counter("ir.plan.compiles")

#: Extra scheduling cost per constraint kind: emptiness is a cheap scan,
#: irreflexivity a diagonal check, acyclicity a Warshall closure.
_CHECK_COST = {"empty": 1, "irreflexive": 2, "acyclic": 30}


class Constraint:
    """One named axiom: ``acyclic``/``irreflexive``/``empty`` of a term."""

    __slots__ = ("name", "kind", "term", "cost", "vkey")

    def __init__(self, name: str, kind: str, term: Term):
        if term.kind != "rel":
            raise IRTypeError(f"{kind} needs a relation, got a set")
        self.name = name
        self.kind = kind
        self.term = term
        self.cost = term.cost + _CHECK_COST[kind]
        #: Per-execution verdict-memo key: the same (kind, term) shared
        #: between plans (a TM model and its baseline) is decided once.
        self.vkey = ("v", kind, term.uid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.name}: term#{self.term.uid}>"


def acyclic(name: str, term: Term) -> Constraint:
    return Constraint(name, "acyclic", term)


def irreflexive(name: str, term: Term) -> Constraint:
    return Constraint(name, "irreflexive", term)


def empty_c(name: str, term: Term) -> Constraint:
    return Constraint(name, "empty", term)


class Plan:
    """A compiled model: constraints plus their scheduled order."""

    __slots__ = ("name", "constraints", "order", "scheduled", "runner")

    def __init__(self, name: str, constraints: tuple[Constraint, ...]):
        self.name = name
        self.constraints = constraints
        self.order = tuple(
            sorted(range(len(constraints)), key=lambda i: (constraints[i].cost, i))
        )
        #: The constraints themselves in scheduled order (what the
        #: executor's hot loop iterates).
        self.scheduled = tuple(constraints[i] for i in self.order)
        #: Lazily-compiled specialised runner (see ``repro.ir.codegen``);
        #: ``None`` until first use, ``False`` if compilation failed and
        #: the interpretive path should be used permanently.
        self.runner = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        order = ", ".join(self.constraints[i].name for i in self.order)
        return f"<Plan {self.name}: {order}>"


def compile_model(name: str, constraints: Sequence[Constraint]) -> Plan:
    """Schedule a model spec into an executable :class:`Plan`."""
    _PLAN_COMPILES.inc()
    return Plan(name, tuple(constraints))
