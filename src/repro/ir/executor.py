"""The IR executor: evaluates plans over executions at bitset-row level.

One engine replaces the three historical consistency paths (generic
``axiom_thunks``, per-architecture hand-fused kernels, compiled ``.cat``
closures).  The executor works directly over adjacency-bitset rows
(``tuple[int, ...]``) and set masks (``int``) -- no intermediate
:class:`~repro.relations.Relation` objects on the hot path -- with four
layers of caching, all derived mechanically from term structure:

* **per-execution memo** -- every node value is stored under its term
  ``uid`` in a dict living in the execution's
  :class:`~repro.relations.RelationContext`, so axioms (and different
  models checking the same execution) share subterm values;
* **skeleton adoption** -- static nodes are fetched through
  ``context.get("static:ir.n{uid}", ...)``, the prefix
  :meth:`Execution.adopt_skeleton_caches` copies across rf/co
  completions of one skeleton;
* **cross-execution interning** -- a static node's value is a pure
  function of its base-leaf rows, so it is resolved through
  :func:`~repro.relations.context.global_intern` keyed on those rows;
  fixpoint groups are interned the same way, keyed on their
  variable-free input values (generalising the hand-written Power
  ``ppo`` row cache);
* **verdict caches** -- acyclicity goes through
  :func:`acyclic_rows_cached`, and per-constraint verdicts are memoised
  per execution.

Evaluation short-circuits on empty operands (an empty left factor kills
a composition without touching the right factor; an empty accumulator
kills an intersection), which is how the old hand-fused kernels skipped
transactional machinery on transaction-free executions -- here it falls
out of the algebra.  Constraints run in the plan's cheapest-first order
with early exit (counted by ``ir.exec.constraint_short_circuits``).

Executions whose primitive relations live in mixed universes
(hand-built tests) cannot be row-aligned; the executor transparently
falls back to a Relation-level evaluation of the same terms, which is
also the reference implementation the property tests compare against.

Profiling: when :data:`~repro.obs.profile.PROFILER` is enabled
(``--profile`` / ``REPRO_PROFILE=1``), evaluation takes the interpretive
path (compiled runners bypassed, so every node is visible) and each node
evaluation is timed and attributed to ``(model, constraint, node uid)``
-- see :mod:`repro.obs.profile` for the hot-node table, dot export and
planner-calibration report.  When disabled the only hot-path cost is
one ``PROFILER.enabled`` attribute check per node evaluation.
"""

from __future__ import annotations

import time
from operator import and_ as _and, or_ as _or

from ..events import NA as _NA_TAG
from ..obs import REGISTRY
from ..obs.profile import PROFILER
from ..relations import Relation
from ..relations.context import RelationContext, global_intern
from ..relations.relation import (
    _universe,
    acyclic_rows_cached,
    closure_rows_cached,
    compose_rows,
    rtc_rows_cached,
    transpose_rows,
)
from .plan import Constraint, Plan
from .terms import Term

_NODE_EVALS = REGISTRY.counter("ir.exec.node_evals")
_NODE_HITS = REGISTRY.counter("ir.exec.node_cache_hits")
_SHORT_CIRCUITS = REGISTRY.counter("ir.exec.constraint_short_circuits")
_FALLBACKS = REGISTRY.counter("ir.exec.relation_fallbacks")
_FAST_RUNS = REGISTRY.counter("ir.exec.compiled_runs")

_MISS = object()


class _Misaligned(Exception):
    """A base relation's universe cannot be aligned with the execution's
    event universe (hand-built executions): use the Relation fallback."""


#: Base-relation name → Execution attribute (identical to the cat
#: stdlib's environment; ``id`` is synthesised from the universe).
_REL_ATTRS = {
    "po": "po",
    "poimm": "po_imm",
    "poloc": "poloc",
    "sloc": "sloc",
    "rf": "rf",
    "rfe": "rfe",
    "rfi": "rfi",
    "co": "co",
    "coe": "coe",
    "coi": "coi",
    "fr": "fr",
    "fre": "fre",
    "fri": "fri",
    "com": "com",
    "come": "come",
    "addr": "addr",
    "ctrl": "ctrl",
    "data": "data",
    "rmw": "rmw",
    "deps": "deps",
    "stxn": "stxn",
    "stxnat": "stxnat",
    "tfence": "tfence",
    "mfence": "mfence",
    "sync": "sync",
    "lwsync": "lwsync",
    "isync": "isync",
    "dmb": "dmb",
    "dmbld": "dmbld",
    "dmbst": "dmbst",
    "isb": "isb",
}

#: Event-set name → value (identical to the cat stdlib's environment).
_SET_FNS = {
    "EV": lambda x: x.eids,
    "R": lambda x: x.reads,
    "W": lambda x: x.writes,
    "F": lambda x: x.fences,
    "M": lambda x: x.memory_events,
    "ACQ": lambda x: x.acq,
    "REL": lambda x: x.rel,
    "SC": lambda x: x.sc_events,
    "ATO": lambda x: x.atomics,
    "NA": lambda x: frozenset(
        e.eid for e in x.events if e.is_memory_access and _NA_TAG in e.tags
    ),
    "WEX": lambda x: x.rmw.range(),
    "LKD": lambda x: x.rmw.domain() | x.rmw.range(),
}


# ---------------------------------------------------------------------------
# Per-execution evaluation state
# ---------------------------------------------------------------------------


#: Per-interned-universe (n, zero, id_rows) -- every candidate execution
#: of a synthesis run shares one universe, so _State construction should
#: not rebuild these tuples 10^4 times.  Keyed on id(): interned
#: universes are immortal for the process (the intern table holds them).
_UNI_CONSTS: dict[int, tuple] = {}


class _State:
    """Row-level evaluation state for one execution, cached on the
    execution object itself (like its ``RelationContext``)."""

    __slots__ = ("x", "_ctx", "uni", "n", "zero", "id_rows", "vals", "_rels")

    def __init__(self, x):
        self.x = x
        self._ctx = None
        uni = _universe(frozenset(x.eids))
        self.uni = uni
        consts = _UNI_CONSTS.get(id(uni)) if uni.interned else None
        if consts is None:
            n = len(uni.elements)
            consts = (n, (0,) * n, tuple(1 << i for i in range(n)))
            if uni.interned and len(_UNI_CONSTS) < 1 << 12:
                _UNI_CONSTS[id(uni)] = consts
        self.n, self.zero, self.id_rows = consts
        #: term uid → rows tuple / set mask (plus verdict and fix-group
        #: entries under tuple keys).  Dynamic values persist for the
        #: execution's lifetime, so every plan touching the same term
        #: shares one evaluation.
        self.vals: dict = {}
        #: term uid → materialised Relation/frozenset (for `evaluate`);
        #: built lazily, most states never materialise anything.
        self._rels: dict | None = None

    @property
    def ctx(self) -> RelationContext:
        ctx = self._ctx
        if ctx is None:
            ctx = self._ctx = RelationContext.of(self.x)
        return ctx

    @property
    def rels(self) -> dict:
        rels = self._rels
        if rels is None:
            rels = self._rels = {}
        return rels

    def __reduce__(self):
        # A cache: serialise as "rebuild empty for this execution" so
        # checkpoints stay small (mirrors RelationContext.__reduce__).
        return (_state, (self.x,))


def _state(x) -> _State:
    own = x.__dict__
    st = own.get("_ir_state")
    if st is None:
        st = own["_ir_state"] = _State(x)
    return st


# ---------------------------------------------------------------------------
# Row-level term evaluation
# ---------------------------------------------------------------------------


def _eval(st: _State, t: Term):
    vals = st.vals
    v = vals.get(t.uid, _MISS)
    if v is not _MISS:
        _NODE_HITS.inc()
        if PROFILER.enabled:
            PROFILER.hit(t)
        return v
    if PROFILER.enabled:
        return _eval_profiled(st, t)
    if t.intern_root:
        v = _static_fetch(st, t)
    elif t.op == "fix":
        v = _eval_fix(st, t)
    else:
        v = _compute(st, t)
    vals[t.uid] = v
    return v


def _eval_profiled(st: _State, t: Term):
    """The memo-miss path under profiling: time the node (self time via
    the profiler's child-time stack) and record the result cardinality."""
    PROFILER.begin()
    started = time.perf_counter()
    try:
        if t.intern_root:
            v = _static_fetch(st, t)
        elif t.op == "fix":
            v = _eval_fix(st, t)
        else:
            v = _compute(st, t)
    except BaseException:
        PROFILER.abort(time.perf_counter() - started)
        raise
    st.vals[t.uid] = v
    PROFILER.end(t, time.perf_counter() - started, v)
    return v


def _static_fetch(st: _State, t: Term):
    # Routed through the context (counted, and the ``static:`` prefix
    # makes the entry ride ``adopt_skeleton_caches``), then through the
    # global intern table keyed on the leaf values the node is a pure
    # function of.
    return st.ctx.get(t.skey, lambda: _intern_static(st, t))


#: Structural-dependency tag → cheap cached key component (see
#: ``terms._LEAF_SDEPS``).  ``_intern_uid`` pins the interned universe
#: (hence the bit indexing), so these only need to pin the structural
#: facts the node's leaves derive from.
_SDEP_FETCH = {
    "threads": lambda x: x.threads,
    "locs": lambda x: x._loc_key,
    "kinds": lambda x: x._kind_key,
    "tags": lambda x: x._tag_key,
    "txn": lambda x: x._txn_key,
    "atxn": lambda x: tuple(sorted(x.atomic_txns)),
    "addr": lambda x: x.addr._rows,
    "ctrl": lambda x: x.ctrl._rows,
    "data": lambda x: x.data._rows,
    "rmw": lambda x: x.rmw._rows,
}


def _intern_static(st: _State, t: Term):
    # A static node's value is a pure function of the universe indexing
    # plus the structural facts its leaves derive from; the key is
    # assembled from those (cheap, already-cached) structural tuples --
    # never from the leaf values, which would have to be materialised
    # just to build a key for a table hit.
    x = st.x
    key = ("irs", t.uid, x._intern_uid) + tuple(
        _SDEP_FETCH[dep](x) for dep in t.sdeps
    )
    return global_intern(key, lambda: _compute(st, t))


def _eval_fix(st: _State, t: Term):
    group = t.group
    gkey = ("g", group.uid)
    results = st.vals.get(gkey, _MISS)
    if results is _MISS:
        invals = tuple(_eval(st, inp) for inp in group.inputs)
        results = global_intern(
            ("irfix", group.uid, st.n) + invals,
            lambda: _fix_iterate(st, group),
        )
        st.vals[gkey] = results
    return results[t.args[1]]


def _fix_iterate(st: _State, group) -> tuple:
    """Kleene iteration from the kind-appropriate bottoms (the same
    Jacobi scheme as the cat evaluator's ``let rec`` loop)."""
    cur = [st.zero if kind == "rel" else 0 for kind in group.kinds]
    bodies = group.bodies
    while True:
        memo: dict = {}
        nxt = [_eval_open(st, body, cur, memo) for body in bodies]
        if nxt == cur:
            return tuple(nxt)
        cur = nxt


def _eval_open(st: _State, t: Term, varvals: list, memo: dict):
    """Evaluate inside a fix iteration: variables resolve to the current
    iterate, and variable-containing nodes memoise per *iteration* (their
    value changes between rounds); variable-free subterms route to the
    ordinary persistent evaluator."""
    if not t.has_var:
        return _eval(st, t)
    if t.op == "var":
        return varvals[t.args[0]]
    v = memo.get(t.uid, _MISS)
    if v is not _MISS:
        return v
    v = _apply(st, t, lambda child: _eval_open(st, child, varvals, memo))
    memo[t.uid] = v
    return v


def _base_rows(st: _State, name: str):
    if name == "id":
        return st.id_rows
    relation = getattr(st.x, _REL_ATTRS[name])
    if relation._uni is st.uni:
        return relation._rows
    try:
        return tuple(relation._realigned_rows(st.uni))
    except KeyError:
        raise _Misaligned(name) from None


def _set_mask(st: _State, name: str) -> int:
    index = st.uni.index
    mask = 0
    for eid in _SET_FNS[name](st.x):
        i = index.get(eid)
        if i is None:
            raise _Misaligned(name)
        mask |= 1 << i
    return mask


def _compute(st: _State, t: Term):
    """Compute one node from its children on the persistent path.

    This is the hot-loop twin of :func:`_apply` (which keeps the same op
    semantics for the *open* evaluator inside fix iterations): children
    recurse straight into :func:`_eval` and the n-ary folds run through
    C-level ``map``.  Any semantic change here must be mirrored in
    ``_apply`` -- the property tests compare both against the
    Relation-level reference."""
    _NODE_EVALS.inc()
    op = t.op
    args = t.args
    if op == "base":
        return _base_rows(st, args[0])
    if op == "union":
        if t.kind == "rel":
            acc = _eval(st, args[0])
            for child in args[1:]:
                acc = tuple(map(_or, acc, _eval(st, child)))
            return acc
        mask = 0
        for child in args:
            mask |= _eval(st, child)
        return mask
    if op == "seq":
        a = _eval(st, args[0])
        if not any(a):
            return st.zero
        b = _eval(st, args[1])
        if not any(b):
            return st.zero
        return tuple(compose_rows(a, b))
    if op == "inter":
        # Children are cost-sorted at construction; stop as soon as the
        # accumulator goes empty (``rmw ∩ ...`` on rmw-free executions).
        if t.kind == "rel":
            acc = _eval(st, args[0])
            if not any(acc):
                return st.zero
            for child in args[1:]:
                acc = tuple(map(_and, acc, _eval(st, child)))
                if not any(acc):
                    return st.zero
            return acc
        mask = _eval(st, args[0])
        for child in args[1:]:
            if not mask:
                return 0
            mask &= _eval(st, child)
        return mask
    if op == "diff":
        left, right = args
        if t.kind == "rel":
            a = _eval(st, left)
            if not any(a):
                return st.zero
            b = _eval(st, right)
            if not any(b):
                return a
            return tuple(p & ~q for p, q in zip(a, b))
        return _eval(st, left) & ~_eval(st, right)
    if op == "opt":
        rows = _eval(st, args[0])
        return tuple(row | (1 << i) for i, row in enumerate(rows))
    if op == "plus":
        return closure_rows_cached(st.uni, _eval(st, args[0]))
    if op == "star":
        return rtc_rows_cached(st.uni, _eval(st, args[0]))
    if op == "set":
        return _set_mask(st, args[0])
    return _apply_rest(st, t, op, args, lambda child: _eval(st, child))


def _apply_rest(st: _State, t: Term, op: str, args, ev):
    """The cold tail of the op vocabulary, shared by both evaluators."""
    if op == "inv":
        return tuple(transpose_rows(ev(args[0])))
    if op == "comp":
        full = st.uni.full_mask
        return tuple(~row & full for row in ev(args[0]))
    if op == "setrel":
        mask = ev(args[0])
        return tuple((1 << i) if (mask >> i) & 1 else 0 for i in range(st.n))
    if op == "cross":
        sources = ev(args[0])
        if not sources:
            return st.zero
        targets = ev(args[1])
        if not targets:
            return st.zero
        return tuple(targets if (sources >> i) & 1 else 0 for i in range(st.n))
    if op == "domain":
        rows = ev(args[0])
        mask = 0
        for i, row in enumerate(rows):
            if row:
                mask |= 1 << i
        return mask
    if op == "range":
        mask = 0
        for row in ev(args[0]):
            mask |= row
        return mask
    if op == "empty":
        return st.zero if t.kind == "rel" else 0
    if op == "fix":
        return _eval_fix(st, t)
    raise AssertionError(f"unexpected op {op!r}")  # pragma: no cover


def _apply(st: _State, t: Term, ev):
    """Compute one node from its children (``ev`` evaluates a child --
    used by the open evaluator inside fix iterations; the persistent
    path runs the specialised :func:`_compute`)."""
    _NODE_EVALS.inc()
    op = t.op
    if op == "base":
        return _base_rows(st, t.args[0])
    if op == "set":
        return _set_mask(st, t.args[0])
    if op == "union":
        if t.kind == "rel":
            parts = [ev(child) for child in t.args]
            first = parts[0]
            if len(parts) == 2:
                return tuple(a | b for a, b in zip(first, parts[1]))
            out = []
            for column in zip(*parts):
                acc = 0
                for row in column:
                    acc |= row
                out.append(acc)
            return tuple(out)
        mask = 0
        for child in t.args:
            mask |= ev(child)
        return mask
    if op == "inter":
        # Children are cost-sorted at construction; stop as soon as the
        # accumulator goes empty (``rmw ∩ ...`` on rmw-free executions).
        if t.kind == "rel":
            acc = ev(t.args[0])
            if not any(acc):
                return st.zero
            for child in t.args[1:]:
                rows = ev(child)
                acc = tuple(a & b for a, b in zip(acc, rows))
                if not any(acc):
                    return st.zero
            return acc
        mask = ev(t.args[0])
        for child in t.args[1:]:
            if not mask:
                return 0
            mask &= ev(child)
        return mask
    if op == "diff":
        left, right = t.args
        if t.kind == "rel":
            a = ev(left)
            if not any(a):
                return st.zero
            b = ev(right)
            if not any(b):
                return a
            return tuple(p & ~q for p, q in zip(a, b))
        return ev(left) & ~ev(right)
    if op == "seq":
        left, right = t.args
        a = ev(left)
        if not any(a):
            return st.zero
        b = ev(right)
        if not any(b):
            return st.zero
        return tuple(compose_rows(a, b))
    if op == "plus":
        return closure_rows_cached(st.uni, ev(t.args[0]))
    if op == "star":
        return rtc_rows_cached(st.uni, ev(t.args[0]))
    if op == "opt":
        rows = ev(t.args[0])
        return tuple(row | (1 << i) for i, row in enumerate(rows))
    return _apply_rest(st, t, op, t.args, ev)


# ---------------------------------------------------------------------------
# Constraint checking
# ---------------------------------------------------------------------------


def _holds(st: _State, constraint: Constraint) -> bool:
    rows = _eval(st, constraint.term)
    kind = constraint.kind
    if kind == "acyclic":
        return acyclic_rows_cached(st.uni, rows)
    if kind == "irreflexive":
        for i, row in enumerate(rows):
            if (row >> i) & 1:
                return False
        return True
    return not any(rows)


def _check(st: _State, constraint: Constraint) -> bool:
    """Per-execution verdict memo, keyed on (kind, term) so the same
    axiom shared between plans (TM model and its baseline, say) is
    decided once."""
    key = constraint.vkey
    v = st.vals.get(key, _MISS)
    if v is not _MISS:
        return v
    v = _holds(st, constraint)
    st.vals[key] = v
    return v


def _checked(st: _State, plan: Plan, constraint: Constraint) -> bool:
    if PROFILER.enabled:
        PROFILER.note_plan(plan)
        with PROFILER.constraint(plan.name, constraint.name):
            with REGISTRY.timer(
                f"ir.constraint.{plan.name}.{constraint.name}"
            ).time():
                return _check(st, constraint)
    return _check(st, constraint)


# ---------------------------------------------------------------------------
# Compiled runners (repro.ir.codegen)
# ---------------------------------------------------------------------------


def _domain_mask(rows) -> int:
    mask = 0
    for i, row in enumerate(rows):
        if row:
            mask |= 1 << i
    return mask


def _range_mask(rows) -> int:
    mask = 0
    for row in rows:
        mask |= row
    return mask


def _has_reflexive(rows) -> bool:
    for i, row in enumerate(rows):
        if (row >> i) & 1:
            return True
    return False


#: Primitives handed to generated runners (see ``codegen.build``).
_CODEGEN_NS = {
    "_M": _MISS,
    "_s": _static_fetch,
    "_b": _base_rows,
    "_m": _set_mask,
    "_fx": _eval_fix,
    "_cr": compose_rows,
    "_clo": closure_rows_cached,
    "_rtc": rtc_rows_cached,
    "_tr": transpose_rows,
    "_acy": acyclic_rows_cached,
    "_or": _or,
    "_and": _and,
    "_dif": lambda p, q: p & ~q,
    "_dom": _domain_mask,
    "_rng": _range_mask,
    "_refl": _has_reflexive,
    "_sc": _SHORT_CIRCUITS,
}


def _runner_for(plan: Plan):
    runner = plan.runner
    if runner is None:
        from . import codegen

        try:
            runner = codegen.build(plan, _CODEGEN_NS)
        except Exception:  # pragma: no cover - codegen must not break models
            runner = False
        plan.runner = runner
    return runner


# ---------------------------------------------------------------------------
# Relation-level fallback (mixed-universe executions; reference semantics)
# ---------------------------------------------------------------------------


def _fallback_memo(x) -> dict:
    cache = RelationContext.of(x)._cache
    memo = cache.get("ir.relvals")
    if memo is None:
        memo = {}
        cache["ir.relvals"] = memo
    return memo


def fallback_value(term: Term, x):
    """Relation-level evaluation of a term (the reference semantics the
    row engine is property-tested against; also the live path for
    executions whose primitives cannot be row-aligned)."""
    return _rel_eval(term, x, _fallback_memo(x))


def _rel_eval(t: Term, x, memo: dict):
    v = memo.get(t.uid, _MISS)
    if v is not _MISS:
        return v
    v = _rel_apply(t, x, memo, None, None)
    memo[t.uid] = v
    return v


def _rel_open(t: Term, x, memo: dict, varvals: list, itermemo: dict):
    if not t.has_var:
        return _rel_eval(t, x, memo)
    if t.op == "var":
        return varvals[t.args[0]]
    v = itermemo.get(t.uid, _MISS)
    if v is not _MISS:
        return v
    v = _rel_apply(t, x, memo, varvals, itermemo)
    itermemo[t.uid] = v
    return v


def _rel_apply(t: Term, x, memo: dict, varvals, itermemo):
    if varvals is None:
        ev = lambda child: _rel_eval(child, x, memo)
    else:
        ev = lambda child: _rel_open(child, x, memo, varvals, itermemo)
    op = t.op
    if op in ("base", "set"):
        return RelationContext.of(x).cat_environment()[t.args[0]]
    if op == "union":
        value = ev(t.args[0])
        for child in t.args[1:]:
            value = value | ev(child)
        return value
    if op == "inter":
        value = ev(t.args[0])
        for child in t.args[1:]:
            value = value & ev(child)
        return value
    if op == "diff":
        return ev(t.args[0]) - ev(t.args[1])
    if op == "seq":
        return ev(t.args[0]).compose(ev(t.args[1]))
    if op == "plus":
        return ev(t.args[0]).transitive_closure()
    if op == "star":
        return ev(t.args[0]).reflexive_transitive_closure()
    if op == "opt":
        return ev(t.args[0]).optional()
    if op == "inv":
        return ev(t.args[0]).inverse()
    if op == "comp":
        return ~ev(t.args[0])
    if op == "setrel":
        return Relation.from_set(ev(t.args[0]), x.eids)
    if op == "cross":
        return Relation.cross(ev(t.args[0]), ev(t.args[1]), x.eids)
    if op == "domain":
        return ev(t.args[0]).domain()
    if op == "range":
        return ev(t.args[0]).range()
    if op == "empty":
        return Relation.empty(x.eids) if t.kind == "rel" else frozenset()
    if op == "fix":
        group = t.group
        results = memo.get(("g", group.uid), _MISS)
        if results is _MISS:
            cur = [
                Relation.empty(x.eids) if kind == "rel" else frozenset()
                for kind in group.kinds
            ]
            while True:
                rounds: dict = {}
                nxt = [
                    _rel_open(body, x, memo, cur, rounds)
                    for body in group.bodies
                ]
                if nxt == cur:
                    break
                cur = nxt
            results = tuple(cur)
            memo[("g", group.uid)] = results
        return results[t.args[1]]
    raise AssertionError(f"unexpected op {op!r}")  # pragma: no cover


def _fallback_check(constraint: Constraint, x) -> bool:
    value = fallback_value(constraint.term, x)
    if constraint.kind == "acyclic":
        return value.is_acyclic()
    if constraint.kind == "irreflexive":
        return value.is_irreflexive()
    return value.is_empty()


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def consistent(plan: Plan, x) -> bool:
    """All constraints hold, evaluated cheapest-first with early exit."""
    st = _state(x)
    scheduled = plan.scheduled
    try:
        if PROFILER.enabled:
            # Interpretive path only: the compiled runners fold node
            # evaluation into opaque generated code, which would hide
            # exactly the per-node structure being profiled.
            for position, constraint in enumerate(scheduled):
                if not _checked(st, plan, constraint):
                    if position + 1 < len(scheduled):
                        _SHORT_CIRCUITS.inc()
                    return False
            return True
        vals = st.vals
        if vals:
            # Repeat calls answer from the verdict memo (a False verdict
            # decides the conjunction even if later ones are missing).
            for constraint in scheduled:
                v = vals.get(constraint.vkey)
                if v is None:
                    break
                if not v:
                    return False
            else:
                return True
        # The synthesis hot path: run the plan's compiled runner, which
        # records its verdicts in ``vals`` so thunk/diagnostic calls (and
        # other plans sharing constraints) agree with it.  Re-running a
        # plan recomputes rows rather than reading the interpretive node
        # memo, but expensive verdicts still hit the row-level caches.
        runner = _runner_for(plan)
        if runner is not False:
            _FAST_RUNS.inc()
            return runner(st)
        remaining = len(scheduled)
        for constraint in scheduled:
            remaining -= 1
            v = vals.get(constraint.vkey, _MISS)
            if v is _MISS:
                v = _holds(st, constraint)
                vals[constraint.vkey] = v
            if not v:
                if remaining:
                    _SHORT_CIRCUITS.inc()
                return False
        return True
    except _Misaligned:
        _FALLBACKS.inc()
        return all(_fallback_check(c, x) for c in plan.constraints)


def violated_axioms(plan: Plan, x) -> list[str]:
    """Names of failing constraints, in declaration order, straight from
    the executor's per-constraint verdicts (no separate diagnostic
    path)."""
    st = _state(x)
    names = []
    for constraint in plan.constraints:
        try:
            ok = _checked(st, plan, constraint)
        except _Misaligned:
            _FALLBACKS.inc()
            ok = _fallback_check(constraint, x)
        if not ok:
            names.append(constraint.name)
    return names


def axiom_thunks(plan: Plan, x) -> list[tuple[str, "callable"]]:
    """``(name, thunk)`` pairs in declaration order; each thunk resolves
    through the executor's verdict memo (so the thunk view and the fast
    path can never disagree)."""
    st = _state(x)

    def thunk_for(constraint: Constraint):
        def thunk() -> bool:
            try:
                return _checked(st, plan, constraint)
            except _Misaligned:
                _FALLBACKS.inc()
                return _fallback_check(constraint, x)

        return thunk

    return [(c.name, thunk_for(c)) for c in plan.constraints]


def evaluate(term: Term, x):
    """Materialise a term over an execution as a
    :class:`~repro.relations.Relation` (or frozenset for set terms),
    interned per execution so repeated calls return the identical
    object."""
    st = _state(x)
    v = st.rels.get(term.uid, _MISS)
    if v is not _MISS:
        return v
    try:
        raw = _eval(st, term)
    except _Misaligned:
        _FALLBACKS.inc()
        v = fallback_value(term, x)
    else:
        if term.kind == "rel":
            v = Relation._make(st.uni, raw)
        else:
            elements = st.uni.elements
            v = frozenset(
                elements[i] for i in range(st.n) if (raw >> i) & 1
            )
    st.rels[term.uid] = v
    return v
