"""A relational-algebra IR unifying every consistency path.

Python model classes (:mod:`repro.models`) and parsed ``.cat`` files
(:mod:`repro.cat`) both compile into this IR -- hash-consed terms
(:mod:`~repro.ir.terms`), scheduled constraint plans
(:mod:`~repro.ir.plan`) and a single bitset-row executor
(:mod:`~repro.ir.executor`) -- so one engine, one cache discipline and
one set of obs counters serve all models.  See ``docs/ir.md``.
"""

from .digest import model_digest, plan_digest, term_digest
from .executor import (
    axiom_thunks,
    consistent,
    evaluate,
    fallback_value,
    violated_axioms,
)
from .plan import Constraint, Plan, acyclic, compile_model, empty_c, irreflexive
from .terms import (
    BASE_RELATIONS,
    DYNAMIC_RELATIONS,
    EVENT_SETS,
    STATIC_RELATIONS,
    FixGroup,
    IRTypeError,
    Term,
    comp,
    cross,
    diff,
    domain,
    empty,
    evset,
    fix,
    inter,
    inv,
    opt,
    plus,
    range_,
    rel,
    seq,
    setrel,
    star,
    stronglift,
    union,
    var,
    weaklift,
)

__all__ = [
    "BASE_RELATIONS",
    "DYNAMIC_RELATIONS",
    "EVENT_SETS",
    "STATIC_RELATIONS",
    "Constraint",
    "FixGroup",
    "IRTypeError",
    "Plan",
    "Term",
    "acyclic",
    "axiom_thunks",
    "comp",
    "compile_model",
    "consistent",
    "cross",
    "diff",
    "domain",
    "empty",
    "empty_c",
    "evaluate",
    "evset",
    "fallback_value",
    "fix",
    "inter",
    "inv",
    "irreflexive",
    "model_digest",
    "opt",
    "plan_digest",
    "plus",
    "range_",
    "rel",
    "seq",
    "setrel",
    "star",
    "stronglift",
    "term_digest",
    "union",
    "var",
    "violated_axioms",
    "weaklift",
]
