"""Hash-consed relational-algebra terms.

Every model in the reproduction -- the Python model classes *and* the
parsed ``.cat`` files -- describes the same thing: derived relations
built from a fixed vocabulary of base relations and event sets, plus
``acyclic``/``irreflexive``/``empty`` constraints over them (herding
cats, Alglave et al. TOPLAS 2014).  This module is the shared term
language both front ends compile into.

Terms are **hash-consed**: structurally identical subterms are the same
object, discovered at construction time through a global intern table.
That one property carries the whole optimisation story:

* common subexpressions are shared *across axioms and across models*
  for free (C++'s ``hb`` inside both HbCom and SeqCst, x86's ``hb``
  inside Order and TxnOrder, a ``.cat`` twin's ``ppo`` unifying with
  the Python model's) -- counted by ``ir.plan.cse_hits``;
* every term gets a stable small integer ``uid``, which doubles as its
  mechanical :class:`~repro.relations.RelationContext` intern key
  (``static:ir.n{uid}``) -- no more hand-chosen key strings;
* per-execution memoisation is a dict keyed by ``uid``.

Static classification.  A term is *static* when its value is fixed by
the candidate skeleton (program order, locations, fences, transaction
structure) and *dynamic* when it depends on the ``rf``/``co`` choice.
Staticness is computed bottom-up from the base-relation vocabulary and
drives two things: context keys carrying the ``static:`` prefix (so
:meth:`Execution.adopt_skeleton_caches` shares them across completions
of one skeleton) and **static hoisting** -- a union mixing static and
dynamic children is rebuilt as ``(static-part) ∪ dynamic children`` so
the skeleton-constant part is folded once per skeleton rather than once
per candidate.  This mechanically recreates what the hand-fused kernels
called ``_hb_static``/``_dob_static``/``_rs_static``.

Kind discipline.  Terms are either relations (``"rel"``) or event sets
(``"set"``); builders enforce the same typing rules as the cat
evaluator and raise :class:`IRTypeError` with the evaluator's message
text, so ``cat/eval.py`` can re-raise them as ``CatTypeError``
verbatim.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..obs import REGISTRY

_CSE_HITS = REGISTRY.counter("ir.plan.cse_hits")
_TERMS_BUILT = REGISTRY.counter("ir.plan.terms_built")

#: Static nodes cheaper than this (by the syntactic cost estimate) are
#: recomputed per execution rather than routed through the context /
#: global-intern tables -- the fetch costs more than the work.
_INTERN_MIN_COST = 8


class IRTypeError(TypeError):
    """A set/relation kind mismatch while building a term.

    Message text is kept identical to the cat evaluator's
    ``CatTypeError`` strings so lowering can translate by re-raising
    with ``str(exc)`` unchanged.
    """


# ---------------------------------------------------------------------------
# Base vocabulary
# ---------------------------------------------------------------------------

#: Base relations fixed by the candidate *skeleton* (program order,
#: locations, dependencies, fences, transaction structure): safe to
#: share across all rf/co completions of one skeleton.
STATIC_RELATIONS = frozenset(
    {
        "id",
        "po",
        "poimm",
        "poloc",
        "sloc",
        "addr",
        "ctrl",
        "data",
        "deps",
        "rmw",
        "stxn",
        "stxnat",
        "tfence",
        "mfence",
        "sync",
        "lwsync",
        "isync",
        "dmb",
        "dmbld",
        "dmbst",
        "isb",
    }
)

#: Base relations that change with every reads-from / coherence choice.
DYNAMIC_RELATIONS = frozenset(
    {"rf", "rfe", "rfi", "co", "coe", "coi", "fr", "fre", "fri", "com", "come"}
)

BASE_RELATIONS = STATIC_RELATIONS | DYNAMIC_RELATIONS

#: Base event sets (all skeleton-static).
EVENT_SETS = frozenset(
    {"EV", "R", "W", "F", "M", "ACQ", "REL", "SC", "ATO", "NA", "WEX", "LKD"}
)

#: Structural facts of an execution each static leaf is a function of
#: (beyond the event universe itself).  A static node's cross-execution
#: intern key is assembled from the union of its leaves' entries -- the
#: cheap, already-cached structural tuples (thread layout, event kinds,
#: mode tags, location map, transaction map, explicit dependency edges)
#: rather than the leaf *values*, which would have to be materialised
#: just to build the key.  This mechanically derives the same key shapes
#: the hand-fused kernels chose by inspection (``("x86ppo", uid,
#: threads, kind_key)`` and friends).
_LEAF_SDEPS: dict[str, tuple[str, ...]] = {
    # relations
    "id": (),
    "po": ("threads",),
    "poimm": ("threads",),
    "sloc": ("locs",),
    "poloc": ("threads", "locs"),
    "addr": ("addr",),
    "ctrl": ("ctrl",),
    "data": ("data",),
    "deps": ("addr", "ctrl", "data"),
    "rmw": ("rmw",),
    "stxn": ("txn",),
    "stxnat": ("txn", "atxn"),
    "tfence": ("threads", "txn"),
    "mfence": ("threads", "kinds", "tags"),
    "sync": ("threads", "kinds", "tags"),
    "lwsync": ("threads", "kinds", "tags"),
    "isync": ("threads", "kinds", "tags"),
    "dmb": ("threads", "kinds", "tags"),
    "dmbld": ("threads", "kinds", "tags"),
    "dmbst": ("threads", "kinds", "tags"),
    "isb": ("threads", "kinds", "tags"),
    # event sets
    "EV": (),
    "R": ("kinds",),
    "W": ("kinds",),
    "F": ("kinds",),
    "M": ("kinds",),
    "ACQ": ("kinds", "tags"),
    "REL": ("kinds", "tags"),
    "SC": ("kinds", "tags"),
    "ATO": ("kinds", "tags"),
    "NA": ("kinds", "tags"),
    "WEX": ("rmw",),
    "LKD": ("rmw",),
}


def _sdeps_of(leaves: tuple["Term", ...]) -> tuple[str, ...]:
    deps: set[str] = set()
    for leaf in leaves:
        if leaf.op in ("base", "set"):
            deps.update(_LEAF_SDEPS[leaf.args[0]])
    return tuple(sorted(deps))


# ---------------------------------------------------------------------------
# The term object and its intern table
# ---------------------------------------------------------------------------


class Term:
    """One hash-consed node of the relational-algebra DAG.

    Instances are only created through the builder functions below;
    structural equality coincides with object identity, so the default
    (identity) ``__hash__``/``__eq__`` are exactly right.
    """

    __slots__ = (
        "op",
        "args",
        "kind",
        "uid",
        "static",
        "has_var",
        "cost",
        "leaves",
        "skey",
        "internable",
        "intern_root",
        "sdeps",
        "group",
    )

    op: str
    args: tuple
    kind: str
    uid: int
    static: bool
    has_var: bool
    cost: int
    leaves: tuple["Term", ...]
    skey: str | None
    internable: bool
    intern_root: bool
    sdeps: tuple[str, ...]
    group: "FixGroup | None"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            a.op + f"#{a.uid}" if isinstance(a, Term) else repr(a)
            for a in self.args
        )
        flag = "s" if self.static else "d"
        return f"<{self.op}({inner}):{self.kind}#{self.uid}{flag}>"


class FixGroup:
    """A mutually recursive ``let rec`` group, hash-consed as a unit.

    ``inputs`` are the maximal variable-free subterms of the bodies: the
    group's value is a pure function of their values, which is what the
    executor keys its cross-execution interning on (generalising the
    hand-written Power ``ppo`` fixpoint cache keyed on ii0/ci0/cc0).
    """

    __slots__ = ("bodies", "kinds", "uid", "inputs", "fixes")

    bodies: tuple[Term, ...]
    kinds: tuple[str, ...]
    uid: int
    inputs: tuple[Term, ...]
    fixes: tuple[Term, ...]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<fixgroup#{self.uid} of {len(self.bodies)}>"


_INTERN: dict[tuple, Term] = {}
_FIX_INTERN: dict[tuple, FixGroup] = {}
_NEXT_UID = 0


def _mk(
    op: str,
    args: tuple,
    kind: str,
    *,
    static: bool,
    has_var: bool,
    cost: int,
    leaves: tuple[Term, ...] | None,
    group: FixGroup | None = None,
) -> Term:
    global _NEXT_UID
    key = (op, args, kind)
    term = _INTERN.get(key)
    if term is not None:
        _CSE_HITS.inc()
        return term
    term = Term.__new__(Term)
    term.op = op
    term.args = args
    term.kind = kind
    term.uid = _NEXT_UID
    _NEXT_UID += 1
    term.static = static
    term.has_var = has_var
    term.cost = cost
    term.group = group
    # Leaf terms are their own leaf set (patched after creation because
    # the tuple must contain the term itself).
    term.leaves = (term,) if leaves is None else leaves
    # Base leaves and vars are cheap to (re)read; everything else static
    # earns a mechanical context intern key.
    term.internable = static and op not in ("base", "set", "empty", "var")
    term.skey = f"static:ir.n{term.uid}" if term.internable else None
    term.sdeps = _sdeps_of(term.leaves) if term.internable else ()
    # Only *maximal* static nodes above a cost floor keep the key live:
    # a static node built under another static node is folded inline
    # into its root's single interned value, so per-candidate cache
    # traffic matches the coarse granularity the hand-fused kernels had
    # (one ``_hb_static`` entry, not one per subterm), and a node
    # cheaper than the context-fetch + key-build overhead itself (a lone
    # ``stxn?``) is simply recomputed.  Demotion is monotone and never
    # unsound -- a demoted node merely recomputes per execution (still
    # memoised in the per-execution table).
    term.intern_root = term.internable and cost >= _INTERN_MIN_COST
    if term.internable:
        stack = [a for a in args if isinstance(a, Term)]
        while stack:
            child = stack.pop()
            if child.intern_root:
                child.intern_root = False
            stack.extend(a for a in child.args if isinstance(a, Term))
    _INTERN[key] = term
    _TERMS_BUILT.inc()
    return term


def _merged_leaves(children: Iterable[Term]) -> tuple[Term, ...]:
    found: dict[int, Term] = {}
    for child in children:
        for leaf in child.leaves:
            found[leaf.uid] = leaf
    return tuple(sorted(found.values(), key=lambda t: t.uid))


def _need_rel(term: Term, context: str) -> Term:
    if term.kind != "rel":
        raise IRTypeError(f"{context} needs a relation, got a set")
    return term


def _need_set(term: Term, context: str) -> Term:
    if term.kind != "set":
        raise IRTypeError(f"{context} needs a set, got a relation")
    return term


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


def rel(name: str) -> Term:
    """A base relation leaf (``po``, ``rf``, ``stxn``, ...)."""
    if name in STATIC_RELATIONS:
        static = True
    elif name in DYNAMIC_RELATIONS:
        static = False
    else:
        raise KeyError(f"unknown base relation {name!r}")
    return _mk(
        "base", (name,), "rel", static=static, has_var=False, cost=1,
        leaves=None,
    )


def evset(name: str) -> Term:
    """A base event-set leaf (``R``, ``W``, ``ACQ``, ...)."""
    if name not in EVENT_SETS:
        raise KeyError(f"unknown event set {name!r}")
    return _mk(
        "set", (name,), "set", static=True, has_var=False, cost=1,
        leaves=None,
    )


def empty(kind: str = "rel") -> Term:
    """The empty relation (cat ``0``) or empty set."""
    return _mk(
        "empty", (), kind, static=True, has_var=False, cost=1, leaves=()
    )


def var(index: int, kind: str = "rel") -> Term:
    """A bound variable of a :func:`fix` group (de Bruijn style: the
    ``index``-th binding of the enclosing group)."""
    return _mk(
        "var", (index,), kind, static=False, has_var=True, cost=1, leaves=()
    )


# ---------------------------------------------------------------------------
# Boolean algebra (n-ary, flattened, canonically ordered)
# ---------------------------------------------------------------------------


def _nary_node(op: str, children: tuple[Term, ...], kind: str, extra: int) -> Term:
    return _mk(
        op,
        children,
        kind,
        static=all(c.static for c in children),
        has_var=any(c.has_var for c in children),
        cost=sum(c.cost for c in children) + extra,
        leaves=_merged_leaves(children),
    )


def _check_same_kind(terms: Sequence[Term], name: str) -> str:
    kind = terms[0].kind
    for term in terms[1:]:
        if term.kind != kind:
            raise IRTypeError(f"{name} of a set and a relation")
    return kind


def union(*terms: Term) -> Term:
    """N-ary union: flattened, deduplicated, empties dropped, children
    sorted by uid (so ``a|b`` and ``b|a`` hash-cons together), and the
    skeleton-static part hoisted into its own shared node."""
    if not terms:
        raise ValueError("union needs at least one term")
    kind = _check_same_kind(terms, "union")
    flat: list[Term] = []
    for term in terms:
        if term.op == "union":
            flat.extend(term.args)
        elif term.op != "empty":
            flat.append(term)
    seen: set[int] = set()
    children = []
    for term in flat:
        if term.uid not in seen:
            seen.add(term.uid)
            children.append(term)
    if not children:
        return empty(kind)
    if len(children) == 1:
        return children[0]
    children.sort(key=lambda t: t.uid)
    statics = [c for c in children if c.static]
    dynamics = [c for c in children if not c.static]
    if len(statics) >= 2 and dynamics:
        hoisted = _nary_node("union", tuple(statics), kind, 1)
        children = sorted([hoisted] + dynamics, key=lambda t: t.uid)
    return _nary_node("union", tuple(children), kind, 1)


def inter(*terms: Term) -> Term:
    """N-ary intersection: flattened, deduplicated, children sorted
    cheapest-first (the executor stops as soon as the accumulator goes
    empty, so cheap/likely-empty factors like ``rmw`` lead)."""
    if not terms:
        raise ValueError("inter needs at least one term")
    kind = _check_same_kind(terms, "intersection")
    flat: list[Term] = []
    for term in terms:
        if term.op == "inter":
            flat.extend(term.args)
        else:
            flat.append(term)
    if any(term.op == "empty" for term in flat):
        return empty(kind)
    seen: set[int] = set()
    children = []
    for term in flat:
        if term.uid not in seen:
            seen.add(term.uid)
            children.append(term)
    if len(children) == 1:
        return children[0]
    children.sort(key=lambda t: (t.cost, t.uid))
    return _nary_node("inter", tuple(children), kind, 1)


def diff(left: Term, right: Term) -> Term:
    if left.kind != right.kind:
        raise IRTypeError("difference of a set and a relation")
    if right.op == "empty" or left.op == "empty":
        return left
    return _nary_node("diff", (left, right), left.kind, 1)


# ---------------------------------------------------------------------------
# Relational operators
# ---------------------------------------------------------------------------


def seq(*terms: Term) -> Term:
    """Relational composition, folded left-associatively (matching the
    cat parser) so Python specs and lowered ``.cat`` twins CSE."""
    if not terms:
        raise ValueError("seq needs at least one term")
    result = _need_rel(terms[0], ";")
    for term in terms[1:]:
        _need_rel(term, ";")
        result = _nary_node("seq", (result, term), "rel", 3)
    return result


def _unary(op: str, operand: Term, symbol: str, extra: int) -> Term:
    _need_rel(operand, symbol)
    return _mk(
        op,
        (operand,),
        "rel",
        static=operand.static,
        has_var=operand.has_var,
        cost=operand.cost + extra,
        leaves=operand.leaves,
    )


def plus(operand: Term) -> Term:
    """Transitive closure ``r+``."""
    return _unary("plus", operand, "+", 25)


def star(operand: Term) -> Term:
    """Reflexive-transitive closure ``r*``."""
    return _unary("star", operand, "*", 25)


def opt(operand: Term) -> Term:
    """Reflexive closure ``r?``."""
    return _unary("opt", operand, "?", 2)


def inv(operand: Term) -> Term:
    """Inverse ``r^-1``."""
    return _unary("inv", operand, "^-1", 2)


def comp(operand: Term) -> Term:
    """Complement ``~r`` over the execution's event universe."""
    return _unary("comp", operand, "~", 2)


def setrel(operand: Term) -> Term:
    """The identity relation on a set: ``[S]``."""
    _need_set(operand, "[·]")
    return _mk(
        "setrel",
        (operand,),
        "rel",
        static=operand.static,
        has_var=operand.has_var,
        cost=operand.cost + 1,
        leaves=operand.leaves,
    )


def cross(left: Term, right: Term) -> Term:
    """The cartesian product of two event sets: ``S × T``."""
    _need_set(left, "cross")
    _need_set(right, "cross")
    return _nary_node("cross", (left, right), "rel", 1)


def domain(operand: Term) -> Term:
    """The source set of a relation."""
    _need_rel(operand, "domain")
    return _mk(
        "domain",
        (operand,),
        "set",
        static=operand.static,
        has_var=operand.has_var,
        cost=operand.cost + 1,
        leaves=operand.leaves,
    )


def range_(operand: Term) -> Term:
    """The target set of a relation."""
    _need_rel(operand, "range")
    return _mk(
        "range",
        (operand,),
        "set",
        static=operand.static,
        has_var=operand.has_var,
        cost=operand.cost + 1,
        leaves=operand.leaves,
    )


# ---------------------------------------------------------------------------
# Fixpoints
# ---------------------------------------------------------------------------


def _inputs_of(bodies: tuple[Term, ...]) -> tuple[Term, ...]:
    """The maximal variable-free subterms of a fix group's bodies."""
    found: dict[int, Term] = {}
    stack: list[Term] = list(bodies)
    while stack:
        term = stack.pop()
        if not term.has_var:
            found[term.uid] = term
            continue
        if term.op == "var":
            continue
        for arg in term.args:
            if isinstance(arg, Term):
                stack.append(arg)
    return tuple(sorted(found.values(), key=lambda t: t.uid))


def fix(bodies: Sequence[Term], kinds: Sequence[str] | None = None) -> tuple[Term, ...]:
    """A least-fixpoint group: ``bodies[i]`` may mention ``var(j)`` for
    any binding ``j`` of the same group; returns one term per binding.

    Groups are hash-consed like terms, so two models writing the same
    ``let rec`` share one group (and its cross-execution result cache).
    """
    global _NEXT_UID
    bodies = tuple(bodies)
    kinds = tuple(kinds) if kinds is not None else tuple(b.kind for b in bodies)
    for body, kind in zip(bodies, kinds):
        if body.kind != kind:
            raise IRTypeError(f"let rec of a set and a relation")
    key = (bodies, kinds)
    group = _FIX_INTERN.get(key)
    if group is None:
        group = FixGroup.__new__(FixGroup)
        group.bodies = bodies
        group.kinds = kinds
        group.uid = _NEXT_UID
        _NEXT_UID += 1
        group.inputs = _inputs_of(bodies)
        leaves = _merged_leaves(group.inputs)
        static = all(t.static for t in group.inputs)
        cost = sum(b.cost for b in bodies) * 8 + 40
        group.fixes = tuple(
            _mk(
                "fix",
                (group, i),
                kinds[i],
                static=static,
                has_var=False,
                cost=cost,
                leaves=leaves,
                group=group,
            )
            for i in range(len(bodies))
        )
        _FIX_INTERN[key] = group
    else:
        _CSE_HITS.inc()
    return group.fixes


# ---------------------------------------------------------------------------
# Derived combinators (§3.3 transactional lifting)
# ---------------------------------------------------------------------------


def weaklift(relation: Term, txn: Term) -> Term:
    """``txn ; (relation \\ txn) ; txn`` -- ordering induced between
    events of *different* transactions."""
    return seq(txn, diff(relation, txn), txn)


def stronglift(relation: Term, txn: Term) -> Term:
    """``txn? ; (relation \\ txn) ; txn?`` -- ordering induced when at
    least one endpoint is transactional."""
    txn_opt = opt(txn)
    return seq(txn_opt, diff(relation, txn), txn_opt)


def intern_table_size() -> int:
    """Number of distinct live terms (diagnostic)."""
    return len(_INTERN)
