"""Plan → specialised Python runner (the executor's codegen backend).

The interpretive executor pays per-node dispatch, memo-dict traffic, and
counter increments on every candidate execution -- measurable against
the hand-fused kernels it replaced.  Since a plan's term DAG is fixed at
compile time, we instead emit one straight-line Python function per plan
and ``exec`` it once: every composite node becomes a local variable,
computed at its first *executed* demand site behind an ``is _M`` guard
(so shared subterms are CSE'd into a single computation per call), and
the algebraic short-circuits become real branches:

* ``seq``/``diff`` skip their right operand when the left is empty, and
  an empty ``seq`` factor under ``opt`` reduces to the other operand
  (``opt(stxn) ; r ; opt(stxn)`` collapses to ``r`` on transaction-free
  executions -- the case the old fused kernels special-cased by hand,
  which also turns ``TxnOrder`` into a verdict-cache hit on ``Order``);
* ``inter`` stops folding once the accumulator is empty.

Runners implement only the fresh-execution fast path: they assume no
prior per-execution state and record each constraint verdict in the
state's memo as they go, so later ``axiom_thunks``/``violated_axioms``
calls (and repeat ``consistent`` calls) read the same verdicts through
the interpretive engine.  Static nodes still resolve through the
context/intern fetch the interpreter uses, so skeleton adoption and the
cache counters behave identically.  Anything off the fast path -- prior
state, profiling builds, mixed-universe executions -- stays on the
interpreter, which remains the reference semantics.

The emitted code grows with the *tree* expansion of the plan (guarded
blocks are re-emitted at every demand site), which stays small because
fixpoint groups and interned static subtrees emit as single helper
calls.
"""

from __future__ import annotations

from .plan import Plan
from .terms import Term


class _Emitter:
    """Accumulates the source of one runner function."""

    def __init__(self, ns: dict):
        self.ns = ns
        self.lines: list[str] = []
        self.uids: set[int] = set()

    def w(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def name(self, t: Term) -> str:
        return f"v{t.uid}"

    def ensure(self, t: Term, ind: int) -> None:
        """Emit a guarded block assigning ``v{uid}`` at this indent."""
        name = self.name(t)
        self.uids.add(t.uid)
        self.w(ind, f"if {name} is _M:")
        self.node(t, ind + 1)

    def node(self, t: Term, ind: int) -> None:
        name = self.name(t)
        op = t.op
        if t.intern_root:
            self.ns[f"_t{t.uid}"] = t
            self.w(ind, f"{name} = _s(st, _t{t.uid})")
        elif op == "base":
            self.w(ind, f"{name} = _b(st, {t.args[0]!r})")
        elif op == "set":
            self.w(ind, f"{name} = _m(st, {t.args[0]!r})")
        elif op == "fix":
            self.ns[f"_t{t.uid}"] = t
            self.w(ind, f"{name} = _fx(st, _t{t.uid})")
        elif op == "empty":
            self.w(ind, f"{name} = _Z" if t.kind == "rel" else f"{name} = 0")
        elif op == "union":
            self.union(t, ind)
        elif op == "inter":
            self.inter(t, ind)
        elif op == "diff":
            self.diff(t, ind)
        elif op == "seq":
            self.seq(t, ind)
        elif op == "plus":
            self.ensure(t.args[0], ind)
            self.w(ind, f"{name} = _clo(_U, {self.name(t.args[0])})")
        elif op == "star":
            self.ensure(t.args[0], ind)
            self.w(ind, f"{name} = _rtc(_U, {self.name(t.args[0])})")
        elif op == "opt":
            self.ensure(t.args[0], ind)
            arg = self.name(t.args[0])
            self.w(
                ind,
                f"{name} = tuple(r | (1 << i) for i, r in enumerate({arg}))",
            )
        elif op == "inv":
            self.ensure(t.args[0], ind)
            self.w(ind, f"{name} = tuple(_tr({self.name(t.args[0])}))")
        elif op == "comp":
            self.ensure(t.args[0], ind)
            self.w(
                ind, f"{name} = tuple(~r & _F for r in {self.name(t.args[0])})"
            )
        elif op == "setrel":
            self.ensure(t.args[0], ind)
            arg = self.name(t.args[0])
            self.w(
                ind,
                f"{name} = tuple((1 << i) if ({arg} >> i) & 1 else 0"
                " for i in range(_N))",
            )
        elif op == "cross":
            self.ensure(t.args[0], ind)
            self.ensure(t.args[1], ind)
            a, b = self.name(t.args[0]), self.name(t.args[1])
            self.w(
                ind,
                f"{name} = tuple(({b} if ({a} >> i) & 1 else 0)"
                f" for i in range(_N)) if ({a} and {b}) else _Z",
            )
        elif op == "domain":
            self.ensure(t.args[0], ind)
            self.w(ind, f"{name} = _dom({self.name(t.args[0])})")
        elif op == "range":
            self.ensure(t.args[0], ind)
            self.w(ind, f"{name} = _rng({self.name(t.args[0])})")
        else:  # pragma: no cover - "var" never escapes fix bodies
            raise AssertionError(f"cannot emit op {op!r}")

    def union(self, t: Term, ind: int) -> None:
        name = self.name(t)
        for child in t.args:
            self.ensure(child, ind)
        parts = [self.name(c) for c in t.args]
        if t.kind == "set":
            self.w(ind, f"{name} = " + " | ".join(parts))
            return
        self.w(ind, f"{name} = tuple(map(_or, {parts[0]}, {parts[1]}))")
        for extra in parts[2:]:
            self.w(ind, f"{name} = tuple(map(_or, {name}, {extra}))")

    def inter(self, t: Term, ind: int) -> None:
        # Children are cost-sorted at construction; each further factor
        # only runs while the accumulator is non-empty.
        name = self.name(t)
        self.ensure(t.args[0], ind)
        self.w(ind, f"{name} = {self.name(t.args[0])}")
        test = "any" if t.kind == "rel" else ""
        for child in t.args[1:]:
            self.w(ind, f"if {test}({name}):")
            self.ensure(child, ind + 1)
            if t.kind == "rel":
                self.w(
                    ind + 1,
                    f"{name} = tuple(map(_and, {name}, {self.name(child)}))",
                )
            else:
                self.w(ind + 1, f"{name} = {name} & {self.name(child)}")

    def diff(self, t: Term, ind: int) -> None:
        name = self.name(t)
        left, right = t.args
        self.ensure(left, ind)
        lname = self.name(left)
        if t.kind == "set":
            self.ensure(right, ind)
            self.w(ind, f"{name} = {lname} & ~{self.name(right)}")
            return
        self.w(ind, f"if any({lname}):")
        self.ensure(right, ind + 1)
        rname = self.name(right)
        self.w(
            ind + 1,
            f"{name} = tuple(map(_dif, {lname}, {rname}))"
            f" if any({rname}) else {lname}",
        )
        self.w(ind, "else:")
        self.w(ind + 1, f"{name} = _Z")

    def seq(self, t: Term, ind: int) -> None:
        name = self.name(t)
        left, right = t.args
        if left.op == "opt":
            # opt(t) = id ∪ t: when t is empty the factor is the
            # identity and the composition is just the right operand.
            inner = left.args[0]
            self.ensure(inner, ind)
            self.w(ind, f"if any({self.name(inner)}):")
            self.ensure(left, ind + 1)
            self._seq_right(name, self.name(left), right, ind + 1)
            self.w(ind, "else:")
            self.ensure(right, ind + 1)
            self.w(ind + 1, f"{name} = {self.name(right)}")
            return
        self.ensure(left, ind)
        lname = self.name(left)
        self.w(ind, f"if any({lname}):")
        self._seq_right(name, lname, right, ind + 1)
        self.w(ind, "else:")
        self.w(ind + 1, f"{name} = _Z")

    def _seq_right(self, name: str, lname: str, right: Term, ind: int) -> None:
        if right.op == "opt":
            inner = right.args[0]
            self.ensure(inner, ind)
            self.w(ind, f"if any({self.name(inner)}):")
            self.ensure(right, ind + 1)
            # opt values contain the diagonal, so never empty.
            self.w(ind + 1, f"{name} = tuple(_cr({lname}, {self.name(right)}))")
            self.w(ind, "else:")
            self.w(ind + 1, f"{name} = {lname}")
            return
        self.ensure(right, ind)
        rname = self.name(right)
        self.w(ind, f"if any({rname}):")
        self.w(ind + 1, f"{name} = tuple(_cr({lname}, {rname}))")
        self.w(ind, "else:")
        self.w(ind + 1, f"{name} = _Z")


def build(plan: Plan, helpers: dict):
    """Compile ``plan`` into ``runner(st) -> bool``.

    ``helpers`` supplies the executor's primitives (leaf fetchers, row
    kernels, counters); the emitted function stores each constraint
    verdict in ``st.vals`` exactly as the interpretive loop would.
    """
    ns = dict(helpers)
    em = _Emitter(ns)
    scheduled = plan.scheduled
    for position, constraint in enumerate(scheduled):
        em.w(1, f"# {constraint.kind} {constraint.name}")
        em.ensure(constraint.term, 1)
        root = em.name(constraint.term)
        if constraint.kind == "acyclic":
            em.w(1, f"ok = _acy(_U, {root})")
        elif constraint.kind == "irreflexive":
            em.w(1, f"ok = not _refl({root})")
        else:
            em.w(1, f"ok = not any({root})")
        ns[f"_vk{position}"] = constraint.vkey
        em.w(1, f"vals[_vk{position}] = ok")
        em.w(1, "if not ok:")
        if position + 1 < len(scheduled):
            em.w(2, "_sc.inc()")
        em.w(2, "return False")

    preamble = [
        "def _runner(st):",
        "    vals = st.vals",
        "    _Z = st.zero",
        "    _N = st.n",
        "    _U = st.uni",
        "    _F = _U.full_mask",
    ]
    for uid in sorted(em.uids):
        preamble.append(f"    v{uid} = _M")
    source = "\n".join(preamble + em.lines + ["    return True"])
    exec(compile(source, f"<ir-runner {plan.name}>", "exec"), ns)
    runner = ns["_runner"]
    runner.__ir_source__ = source  # introspection for tests/debugging
    return runner
