"""Metatheory: monotonicity, compilation, lock elision (§8)."""

from .abstract import (
    abstract_wellformedness_violations,
    cr_order_ok,
    mutual_exclusion_ok,
    scr,
    scr_transactional,
)
from .compilation import (
    TARGETS,
    CompilationResult,
    CompiledExecution,
    check_compilation,
    compile_execution,
)
from .lock_elision import (
    ARCHES,
    DEFAULT_BODIES,
    BodyOp,
    ElisionCounterexample,
    ElisionResult,
    body,
    build_concrete_program,
    candidate_outcomes,
    check_lock_elision,
    serialised_outcomes,
)
from .monotonicity import (
    Coarsening,
    MonotonicityResult,
    check_monotonicity,
    txn_coarsenings,
)
from .transform import (
    is_functional_expansion,
    pi_relation,
    preserves_program_order,
    preserves_stxn,
)

__all__ = [
    "ARCHES",
    "BodyOp",
    "Coarsening",
    "CompilationResult",
    "CompiledExecution",
    "DEFAULT_BODIES",
    "ElisionCounterexample",
    "ElisionResult",
    "MonotonicityResult",
    "TARGETS",
    "abstract_wellformedness_violations",
    "body",
    "build_concrete_program",
    "candidate_outcomes",
    "check_compilation",
    "check_lock_elision",
    "check_monotonicity",
    "compile_execution",
    "cr_order_ok",
    "is_functional_expansion",
    "mutual_exclusion_ok",
    "pi_relation",
    "preserves_program_order",
    "preserves_stxn",
    "scr",
    "scr_transactional",
    "serialised_outcomes",
    "txn_coarsenings",
]
