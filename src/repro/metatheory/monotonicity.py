"""Transactional monotonicity checking (§8.1).

The property: *adding* ``stxn`` edges can never make an inconsistent
execution consistent.  It implies soundness of three program
transformations -- introducing a transaction, enlarging a transaction,
and coalescing two adjacent transactions.

A counterexample is a pair ``X ⊂txn Y``: X inconsistent, Y consistent,
and Y obtained from X by one coarsening step.  One-step search is
complete: if any chain of coarsenings broke monotonicity, some single
step along it would too.

The paper's result (Table 2): x86 and C++ are monotone up to 6 events;
Power and ARMv8 have a 2-event counterexample -- an RMW split across two
adjacent transactions (TxnCancelsRMW fires) that becomes consistent when
the transactions are coalesced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from ..enumeration import enumerate_executions, get_config
from ..events import Execution
from ..models import get_model
from ..models.base import MemoryModel


@dataclass(frozen=True)
class Coarsening:
    """One txn-structure coarsening step."""

    description: str
    result: Execution


def txn_coarsenings(x: Execution) -> Iterator[Coarsening]:
    """All one-step coarsenings of an execution's transaction structure:
    introduce / enlarge / coalesce (§8.1)."""
    next_txn = max(x.txn_of.values(), default=-1) + 1

    for tid, seq in enumerate(x.threads):
        txns = [x.txn_of.get(e) for e in seq]

        # Introduce: box any contiguous run of non-transactional events.
        for start in range(len(seq)):
            if txns[start] is not None:
                continue
            for end in range(start + 1, len(seq) + 1):
                if txns[end - 1] is not None:
                    break
                new = dict(x.txn_of)
                for i in range(start, end):
                    new[seq[i]] = next_txn
                yield Coarsening(
                    f"introduce txn over T{tid}[{start}:{end}]",
                    x.with_txn_of(new, x.atomic_txns),
                )

        # Enlarge: absorb the event just before/after a transaction.
        for i, txn in enumerate(txns):
            if txn is None:
                continue
            for j in (i - 1, i + 1):
                if 0 <= j < len(seq) and txns[j] is None:
                    new = dict(x.txn_of)
                    new[seq[j]] = txn
                    yield Coarsening(
                        f"enlarge txn {txn} with T{tid}[{j}]",
                        x.with_txn_of(new, x.atomic_txns),
                    )

        # Coalesce: merge two transactions adjacent in po.
        for i in range(len(seq) - 1):
            a, b = txns[i], txns[i + 1]
            if a is not None and b is not None and a != b:
                new = {
                    e: (a if t == b else t) for e, t in x.txn_of.items()
                }
                atomic = frozenset(
                    a if t == b else t for t in x.atomic_txns
                )
                yield Coarsening(
                    f"coalesce txns {a},{b} on T{tid}",
                    x.with_txn_of(new, atomic),
                )


@dataclass
class MonotonicityResult:
    """Outcome of a bounded monotonicity check (a Table 2 row)."""

    target: str
    max_events: int
    executions_checked: int
    elapsed: float
    complete: bool
    counterexample: tuple[Execution, Coarsening] | None

    @property
    def holds(self) -> bool:
        return self.counterexample is None


def check_monotonicity(
    target: str,
    max_events: int,
    time_budget: float | None = None,
    model: MemoryModel | None = None,
) -> MonotonicityResult:
    """Search for a monotonicity counterexample up to a bound."""
    config = get_config(target)
    model = model or get_model(config.model_name)
    start = time.monotonic()
    checked = 0
    complete = True

    for n_events in range(1, max_events + 1):
        for x in enumerate_executions(config, n_events):
            if time_budget is not None and time.monotonic() - start > time_budget:
                complete = False
                break
            checked += 1
            if model.consistent(x):
                continue
            for coarsening in txn_coarsenings(x):
                if model.consistent(coarsening.result):
                    return MonotonicityResult(
                        target=target,
                        max_events=max_events,
                        executions_checked=checked,
                        elapsed=time.monotonic() - start,
                        complete=complete,
                        counterexample=(x, coarsening),
                    )
        if not complete:
            break

    return MonotonicityResult(
        target=target,
        max_events=max_events,
        executions_checked=checked,
        elapsed=time.monotonic() - start,
        complete=complete,
        counterexample=None,
    )
