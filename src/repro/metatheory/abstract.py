"""Abstract lock-elision executions: L/U/Lt/Ut events and CROrder (§8.3).

The paper's formal treatment extends executions with four method-call
event kinds (lock/unlock, each in "real" and "to-be-transactionalised"
variants), derives an ``scr`` equivalence grouping the events of one
critical region, and strengthens each architecture's consistency
predicate with::

    acyclic(weaklift(po ∪ com, scr))                      (CROrder)

forcing critical regions to serialise.  The abstract side of a
counterexample pair (Fig. 10, left) is an execution that *violates*
CROrder -- a mutual-exclusion failure -- whose concrete image is
nonetheless consistent.
"""

from __future__ import annotations

from ..events import LOCK, LOCK_T, UNLOCK, UNLOCK_T, Execution
from ..relations import Relation, weaklift


def abstract_wellformedness_violations(x: Execution) -> list[str]:
    """§8.3's extra well-formedness: every L is followed by a matching U
    (with no intervening lock event), every Lt by a matching Ut, and
    critical regions do not nest."""
    problems: list[str] = []
    for tid, seq in enumerate(x.threads):
        open_kind: str | None = None
        for eid in seq:
            kind = x.event(eid).kind
            if kind in (LOCK, LOCK_T):
                if open_kind is not None:
                    problems.append(f"T{tid}: nested critical region at {eid}")
                open_kind = kind
            elif kind in (UNLOCK, UNLOCK_T):
                expected = LOCK if kind == UNLOCK else LOCK_T
                if open_kind != expected:
                    problems.append(
                        f"T{tid}: unlock {eid} does not match an open "
                        f"{expected} region"
                    )
                open_kind = None
        if open_kind is not None:
            problems.append(f"T{tid}: unterminated critical region")
    return problems


def scr(x: Execution) -> Relation:
    """The critical-region equivalence: all pairs of events within one
    L..U or Lt..Ut span (inclusive of the call events)."""
    pairs: set[tuple[int, int]] = set()
    for seq in x.threads:
        region: list[int] | None = None
        for eid in seq:
            kind = x.event(eid).kind
            if kind in (LOCK, LOCK_T):
                region = [eid]
            elif kind in (UNLOCK, UNLOCK_T):
                if region is not None:
                    region.append(eid)
                    pairs.update(
                        (a, b) for a in region for b in region
                    )
                region = None
            elif region is not None:
                region.append(eid)
    return Relation(pairs, x.eids)


def scr_transactional(x: Execution) -> Relation:
    """The sub-relation of ``scr`` covering only the Lt..Ut regions."""
    pairs: set[tuple[int, int]] = set()
    for seq in x.threads:
        region: list[int] | None = None
        for eid in seq:
            kind = x.event(eid).kind
            if kind == LOCK_T:
                region = [eid]
            elif kind == UNLOCK_T:
                if region is not None:
                    region.append(eid)
                    pairs.update(
                        (a, b) for a in region for b in region
                    )
                region = None
            elif kind in (LOCK, UNLOCK):
                region = None
            elif region is not None:
                region.append(eid)
    return Relation(pairs, x.eids)


def cr_order_ok(x: Execution) -> bool:
    """The CROrder axiom: ``acyclic(weaklift(po ∪ com, scr))``."""
    return weaklift(x.po | x.com, scr(x)).is_acyclic()


def mutual_exclusion_ok(x: Execution, model) -> bool:
    """The abstract consistency predicate of §8.3: the architecture's
    axioms plus CROrder."""
    return model.consistent(x) and cr_order_ok(x)
