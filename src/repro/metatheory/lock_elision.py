"""Lock-elision soundness checking (§8.3, Table 3, Example 1.1, §B).

Lock elision replaces a critical region's lock()/unlock() with a
transaction that starts by reading the lock variable (self-aborting if
taken).  Soundness means mutual exclusion still holds between elided and
non-elided critical regions.

The check here is the program-level rendering of the paper's π-relation
technique:

1.  Pick two critical-region *bodies* from a menu (stores, loads,
    read-modify-update sequences -- the shapes of Example 1.1 and §B).
2.  Compute the *specification*: the outcomes reachable when the two
    regions are serialised (run in either order) -- mutual exclusion
    allows nothing else.
3.  Build the *concrete program*: thread 0 takes the lock with the
    architecture's recommended spinlock (Table 3) and runs its body;
    thread 1 elides the lock (transaction + lock-free check).
4.  For every outcome expressible in the postcondition but absent from
    the specification, ask the herd-style pipeline whether the
    architecture's TM model allows it.  Any "yes" witnesses unsound
    elision.

Table 3's per-architecture lock implementations:

* **x86**: test-and-test-and-set -- a plain load of the lock (must see
  it free), then a LOCK'd RMW (implied fence semantics).  Unlock is a
  plain store of 0.
* **Power**: larx/stcx RMW followed by a control dependency and an
  ``isync`` (ctrl-isync); unlock is ``sync`` then a store of 0.
* **ARMv8**: acquire-RMW (LDAXR/STXR); unlock is a release store
  (STLR) -- the ARM-recommended spinlock of §K9.3.
* **ARMv8 (fixed)**: as ARMv8 plus a trailing DMB in lock() -- the
  §1.1 repair.

The expected reproduction of Table 2: a counterexample for ARMv8
(Example 1.1's outcome, found quickly), none for x86, Power, or the
fixed ARMv8 at these sizes.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

from ..events import ACQ, DMB, ISYNC, REL, SYNC
from ..litmus import (
    AbortUnless,
    Fence,
    Load,
    MemEquals,
    Postcondition,
    Program,
    RegEquals,
    Rmw,
    Store,
    TxBegin,
    TxEnd,
    TxnsSucceeded,
    find_witness,
)
from ..models import get_model
from ..models.base import MemoryModel

ARCHES = ("x86", "power", "armv8", "armv8-fixed")

# ---------------------------------------------------------------------------
# Critical-region bodies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BodyOp:
    """One operation of a critical-region body."""

    kind: str  # "read" | "write" | "update"
    loc: str


def body(*ops: tuple[str, str]) -> tuple[BodyOp, ...]:
    return tuple(BodyOp(kind, loc) for kind, loc in ops)


#: The menu of §8.3-style critical regions.  ``update`` is the
#: load;add;store idiom of Example 1.1 (store data-depends on the load);
#: the double-write body is the §B shape.
DEFAULT_BODIES: tuple[tuple[BodyOp, ...], ...] = (
    body(("write", "x")),
    body(("read", "x")),
    body(("update", "x")),
    body(("write", "x"), ("write", "x")),
)


# ---------------------------------------------------------------------------
# Outcome specification by serialisation
# ---------------------------------------------------------------------------


def _body_instructions(
    ops: tuple[BodyOp, ...],
    reg_prefix: str,
    values: "_ValueAllocator",
    ctrl_regs: tuple[str, ...] = (),
) -> tuple[list, list[str], list[tuple[str, int]]]:
    """Lower a body to instructions.

    Returns (instructions, read registers, write (loc, value) list).
    """
    instructions: list = []
    regs: list[str] = []
    writes: list[tuple[str, int]] = []
    for index, op in enumerate(ops):
        reg = f"{reg_prefix}{index}"
        if op.kind == "read":
            instructions.append(Load(reg, op.loc, ctrl_regs=ctrl_regs))
            regs.append(reg)
        elif op.kind == "write":
            value = values.fresh(op.loc)
            instructions.append(Store(op.loc, value, ctrl_regs=ctrl_regs))
            writes.append((op.loc, value))
        elif op.kind == "update":
            value = values.fresh(op.loc)
            instructions.append(Load(reg, op.loc, ctrl_regs=ctrl_regs))
            instructions.append(
                Store(op.loc, value, data_regs=(reg,), ctrl_regs=ctrl_regs)
            )
            regs.append(reg)
            writes.append((op.loc, value))
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unknown body op {op.kind!r}")
    return instructions, regs, writes


class _ValueAllocator:
    """Distinct non-zero store values per location (§2.2)."""

    def __init__(self) -> None:
        self._next: dict[str, int] = {}

    def fresh(self, loc: str) -> int:
        value = self._next.get(loc, 0) + 1
        self._next[loc] = value
        return value


def serialised_outcomes(
    body0: tuple[BodyOp, ...], body1: tuple[BodyOp, ...]
) -> set[tuple]:
    """Outcomes of running the bodies in either order, atomically --
    exactly what mutual exclusion permits.

    An outcome is ``(sorted body-register values, sorted final
    locations)``, with registers named as in the concrete program
    (thread 0: a0, a1...; thread 1: b0, b1...).
    """
    all_locs = sorted({op.loc for op in body0 + body1})
    outcomes = set()
    for first_tid, first_body, second_tid, second_body in (
        (0, body0, 1, body1),
        (1, body1, 0, body0),
    ):
        memory: dict[str, int] = {loc: 0 for loc in all_locs}
        registers: dict[tuple[int, str], int] = {}
        # Allocate store values in *program* order (thread 0 first),
        # matching _body_instructions in the concrete program.
        values = _ValueAllocator()
        _, _, writes0 = _body_instructions(body0, "a", values)
        _, _, writes1 = _body_instructions(body1, "b", values)
        writes = {0: iter(writes0), 1: iter(writes1)}
        for tid, ops in ((first_tid, first_body), (second_tid, second_body)):
            prefix = "a" if tid == 0 else "b"
            write_iter = writes[tid]
            for index, op in enumerate(ops):
                reg = f"{prefix}{index}"
                if op.kind in ("read", "update"):
                    registers[(tid, reg)] = memory.get(op.loc, 0)
                if op.kind in ("write", "update"):
                    loc, value = next(write_iter)
                    memory[loc] = value
        outcomes.add(_outcome_key(registers, memory))
    return outcomes


def _outcome_key(
    registers: dict[tuple[int, str], int], memory: dict[str, int]
) -> tuple:
    return (
        tuple(sorted(registers.items())),
        tuple(sorted(memory.items())),
    )


def candidate_outcomes(
    body0: tuple[BodyOp, ...], body1: tuple[BodyOp, ...]
) -> list[tuple[dict[tuple[int, str], int], dict[str, int]]]:
    """Every conceivable final state of the two bodies: each register
    takes 0 or any store's value to its location; each location ends at
    0 or any written value."""
    values = _ValueAllocator()
    _, regs0, writes0 = _body_instructions(body0, "a", values)
    _, regs1, writes1 = _body_instructions(body1, "b", values)
    all_writes = writes0 + writes1
    locs = sorted(
        {loc for loc, _ in all_writes}
        | {op.loc for op in body0 + body1}
    )
    values_of = {
        loc: [0] + [v for l, v in all_writes if l == loc] for loc in locs
    }

    reg_slots: list[tuple[int, str, str]] = []
    for tid, (ops, regs) in ((0, (body0, regs0)), (1, (body1, regs1))):
        reg_iter = iter(regs)
        for op in ops:
            if op.kind in ("read", "update"):
                reg_slots.append((tid, next(reg_iter), op.loc))

    reg_options = [values_of[loc] for _, _, loc in reg_slots]
    loc_options = [values_of[loc] for loc in locs]
    out = []
    for reg_vals in itertools.product(*reg_options):
        registers = {
            (tid, reg): val
            for (tid, reg, _), val in zip(reg_slots, reg_vals)
        }
        for loc_vals in itertools.product(*loc_options):
            memory = dict(zip(locs, loc_vals))
            out.append((registers, memory))
    return out


# ---------------------------------------------------------------------------
# Concrete program construction (Table 3)
# ---------------------------------------------------------------------------

LOCK_VAR = "m"


def build_concrete_program(
    arch: str,
    body0: tuple[BodyOp, ...],
    body1: tuple[BodyOp, ...],
    registers: dict[tuple[int, str], int],
    memory: dict[str, int],
    name: str = "elision",
) -> Program:
    """Thread 0: spinlock + body0 + unlock; thread 1: elided body1.
    The postcondition pins the given body outcome plus the lock
    protocol (lock reads see it free; transaction commits; lock ends
    free)."""
    if arch not in ARCHES:
        raise ValueError(f"unknown arch {arch!r}; choose from {ARCHES}")
    values = _ValueAllocator()

    protocol_atoms: list = []
    thread0: list = []
    lock_reg = "lk"
    if arch == "x86":
        # test-and-test-and-set: plain read, then LOCK'd RMW.
        thread0.append(Load("lt", LOCK_VAR))
        thread0.append(Rmw(lock_reg, LOCK_VAR, 1))
        protocol_atoms.append(RegEquals(0, "lt", 0))
    elif arch == "power":
        # lwarx; cmpwi; bne; stwcx.; bne; isync -- control dependencies
        # flow from both the loaded value and the stwcx. success flag
        # (footnote 3), through the isync.
        thread0.append(Rmw(lock_reg, LOCK_VAR, 1, status_ctrl=True))
        thread0.append(Fence(ISYNC, ctrl_regs=(lock_reg,)))
    elif arch in ("armv8", "armv8-fixed"):
        # LDAXR; CBNZ; STXR; CBNZ -- the STXR status branch exists in
        # the code, but the ARMv8 model recognises no dependency through
        # a store-exclusive's success flag, which is the crux of §8.3.
        thread0.append(
            Rmw(lock_reg, LOCK_VAR, 1, read_tags={ACQ}, status_ctrl=True)
        )
        if arch == "armv8-fixed":
            thread0.append(Fence(DMB))
    protocol_atoms.append(RegEquals(0, lock_reg, 0))

    body_ctrl = (lock_reg,) if arch == "power" else ()
    instr0, _, _ = _body_instructions(body0, "a", values, ctrl_regs=body_ctrl)
    thread0.extend(instr0)

    if arch == "power":
        thread0.append(Fence(SYNC))
        thread0.append(Store(LOCK_VAR, 0))
    elif arch == "x86":
        thread0.append(Store(LOCK_VAR, 0))
    else:
        thread0.append(Store(LOCK_VAR, 0, tags={REL}))

    thread1: list = [TxBegin(), Load("tm", LOCK_VAR), AbortUnless("tm", 0)]
    instr1, _, _ = _body_instructions(body1, "b", values)
    thread1.extend(instr1)
    thread1.append(TxEnd())

    atoms = [RegEquals(tid, reg, val) for (tid, reg), val in sorted(registers.items())]
    atoms.extend(MemEquals(loc, val) for loc, val in sorted(memory.items()))
    atoms.extend(protocol_atoms)
    atoms.append(MemEquals(LOCK_VAR, 0))
    atoms.append(TxnsSucceeded())

    return Program(
        name=name,
        threads=(tuple(thread0), tuple(thread1)),
        postcondition=Postcondition(tuple(atoms)),
    )


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ElisionCounterexample:
    """A mutual-exclusion violation reachable with lock elision."""

    arch: str
    body0: tuple[BodyOp, ...]
    body1: tuple[BodyOp, ...]
    program: Program
    registers: dict[tuple[int, str], int]
    memory: dict[str, int]


@dataclass
class ElisionResult:
    """Outcome of a lock-elision soundness check (a Table 2 row)."""

    arch: str
    outcomes_checked: int
    elapsed: float
    complete: bool
    counterexample: ElisionCounterexample | None

    @property
    def sound(self) -> bool:
        return self.counterexample is None


def check_lock_elision(
    arch: str,
    bodies: tuple[tuple[BodyOp, ...], ...] = DEFAULT_BODIES,
    model: MemoryModel | None = None,
    time_budget: float | None = None,
) -> ElisionResult:
    """Search the body menu for a reachable non-serialisable outcome."""
    model = model or get_model(
        {"armv8-fixed": "armv8tm"}.get(arch, f"{arch}tm")
    )
    start = time.monotonic()
    checked = 0
    complete = True

    for body0, body1 in itertools.product(bodies, repeat=2):
        spec = serialised_outcomes(body0, body1)
        for registers, memory in candidate_outcomes(body0, body1):
            if time_budget is not None and time.monotonic() - start > time_budget:
                complete = False
                break
            if _outcome_key(registers, memory) in spec:
                continue
            checked += 1
            program = build_concrete_program(
                arch, body0, body1, registers, memory,
                name=f"elision-{arch}-{_body_name(body0)}-{_body_name(body1)}",
            )
            if find_witness(program, model) is not None:
                return ElisionResult(
                    arch=arch,
                    outcomes_checked=checked,
                    elapsed=time.monotonic() - start,
                    complete=complete,
                    counterexample=ElisionCounterexample(
                        arch=arch,
                        body0=body0,
                        body1=body1,
                        program=program,
                        registers=registers,
                        memory=memory,
                    ),
                )
        if not complete:
            break

    return ElisionResult(
        arch=arch,
        outcomes_checked=checked,
        elapsed=time.monotonic() - start,
        complete=complete,
        counterexample=None,
    )


def _body_name(ops: tuple[BodyOp, ...]) -> str:
    return "+".join(f"{op.kind[0].upper()}{op.loc}" for op in ops)
