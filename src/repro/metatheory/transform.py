"""Shared scaffolding for π-relation transformation checking (§4.3, §8).

Memalloy encodes compiler mappings, program transformations, and library
implementations as a relation π from 'source' events to 'target' events
and searches for soundness witnesses: a source execution the source
model forbids whose target image the target model allows.

In this reproduction the concrete mappings are deterministic functions
(compilation: :mod:`repro.metatheory.compilation`; lock elision:
program-level construction in :mod:`repro.metatheory.lock_elision`), so
π materialises as a ``dict[int, tuple[int, ...]]``.  This module holds
the checks that a materialised π obeys the structural constraints the
paper imposes -- used by the test suite to validate the mappings
themselves.
"""

from __future__ import annotations

from ..events import Execution
from ..relations import Relation


def pi_relation(pi: dict[int, tuple[int, ...]], universe) -> Relation:
    """The π mapping as a relation (source eid → target eid)."""
    return Relation(
        ((src, tgt) for src, tgts in pi.items() for tgt in tgts), universe
    )


def preserves_stxn(
    source: Execution, target: Execution, pi: dict[int, tuple[int, ...]]
) -> bool:
    """§8.2's transactional constraint: ``stxn_Y = π⁻¹ ; stxn_X ; π``."""
    expected: set[tuple[int, int]] = set()
    for a, b in source.stxn.pairs:
        for ta in pi.get(a, ()):
            for tb in pi.get(b, ()):
                expected.add((ta, tb))
    return target.stxn.pairs == frozenset(expected)


def is_functional_expansion(
    source: Execution, pi: dict[int, tuple[int, ...]]
) -> bool:
    """Every source event has at least one image, and images of distinct
    events are disjoint (the mappings here are macro-expansions)."""
    seen: set[int] = set()
    for src in source.eids:
        images = pi.get(src, ())
        if not images:
            return False
        for tgt in images:
            if tgt in seen:
                return False
            seen.add(tgt)
    return True


def preserves_program_order(
    source: Execution, target: Execution, pi: dict[int, tuple[int, ...]]
) -> bool:
    """π maps po-ordered source events to po-ordered target blocks."""
    for a, b in source.po.pairs:
        for ta in pi.get(a, ()):
            for tb in pi.get(b, ()):
                if (ta, tb) not in target.po.pairs:
                    return False
    return True
