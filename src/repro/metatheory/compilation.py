"""Compiling C++ transactions to hardware (§8.2).

The mapping extends the standard (Wickerson et al.) non-transactional
compiler mappings with transaction preservation::

    stxn_Y = π⁻¹ ; stxn_X ; π

Event-level mappings (leading-fence convention for Power SC accesses):

=============  ==============  ============================  ==========
C++ access     x86             Power                         ARMv8
=============  ==============  ============================  ==========
na/rlx load    MOV             ld                            LDR
acq load       MOV             ld; ctrl-isync                LDAR
sc load        MOV             sync; ld; ctrl-isync          LDAR
na/rlx store   MOV             st                            STR
rel store      MOV             lwsync; st                    STLR
sc store       MOV; MFENCE     sync; st                      STLR
=============  ==============  ============================  ==========

Soundness is checked as in the paper: search for an execution pair
(X, Y) with X inconsistent in C++, Y = π(X) consistent on the target.
Because the mapping only inserts fences and annotations, Y is determined
by X (rf/co/transactions transported along π), so the search is a scan
over C++ executions.

A racy X gives the program undefined behaviour, so witnesses must be
race-free; this is the reproduction's simplification of Wickerson et
al.'s "deadness" side-condition (recorded in DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..enumeration import enumerate_executions, get_config
from ..events import (
    ACQ,
    ISYNC,
    LWSYNC,
    MFENCE,
    NA,
    REL,
    RLX,
    SC,
    SYNC,
    Event,
    Execution,
)
from ..models import CppModel, get_model
from ..models.base import MemoryModel

TARGETS = ("x86", "power", "armv8")


@dataclass(frozen=True)
class CompiledExecution:
    """The target execution plus the π relation (src eid → tgt eids)."""

    target: Execution
    pi: dict[int, tuple[int, ...]]


def compile_execution(x: Execution, target: str) -> CompiledExecution:
    """Apply the §8.2 mapping to a C++ execution."""
    if target not in TARGETS:
        raise ValueError(f"unknown target {target!r}; choose from {TARGETS}")

    events: list[Event] = []
    threads: list[list[int]] = []
    pi: dict[int, tuple[int, ...]] = {}
    access_image: dict[int, int] = {}  # src access → its target access
    txn_of: dict[int, int] = {}
    ctrl_pairs: set[tuple[int, int]] = set()
    eid = 0

    def emit(tid: int, kind: str, loc, tags, txn) -> int:
        nonlocal eid
        events.append(Event(eid=eid, tid=tid, kind=kind, loc=loc, tags=tags))
        threads[tid].append(eid)
        if txn is not None:
            txn_of[eid] = txn
        eid += 1
        return eid - 1

    for tid, seq in enumerate(x.threads):
        threads.append([])
        acquire_sources: list[int] = []  # loads needing ctrl-isync to later events
        for src in seq:
            event = x.event(src)
            txn = x.txn_of.get(src)
            mode = _mode_of(event)
            image: list[int] = []

            if target == "power":
                if event.is_read and mode == SC:
                    image.append(emit(tid, "F", None, frozenset({SYNC}), txn))
                if event.is_write and mode == SC:
                    image.append(emit(tid, "F", None, frozenset({SYNC}), txn))
                if event.is_write and mode == REL:
                    image.append(emit(tid, "F", None, frozenset({LWSYNC}), txn))

            core_tags = _target_tags(event, mode, target)
            core = emit(tid, event.kind, event.loc, core_tags, txn)
            image.append(core)
            access_image[src] = core
            for acq_src in acquire_sources:
                ctrl_pairs.add((acq_src, core))

            if target == "power":
                if event.is_read and mode in (ACQ, SC):
                    isync_eid = emit(tid, "F", None, frozenset({ISYNC}), txn)
                    image.append(isync_eid)
                    acquire_sources.append(core)
            if target == "x86":
                if event.is_write and mode == SC:
                    image.append(emit(tid, "F", None, frozenset({MFENCE}), txn))

            pi[src] = tuple(image)

    remap = lambda pairs: frozenset(
        (access_image[a], access_image[b]) for a, b in pairs
    )
    target_execution = Execution(
        events=events,
        threads=threads,
        rf=remap(x.rf.pairs),
        co=remap(x.co.pairs),
        addr=remap(x.addr.pairs),
        ctrl=frozenset(ctrl_pairs) | remap(x.ctrl.pairs),
        data=remap(x.data.pairs),
        rmw=remap(x.rmw.pairs),
        txn_of=txn_of,
        atomic_txns=frozenset(),  # hardware has one flavour of transaction
    )
    return CompiledExecution(target=target_execution, pi=pi)


def _mode_of(event: Event) -> str:
    mode = event.cpp_mode
    if mode is None:
        return NA
    return mode


def _target_tags(event: Event, mode: str, target: str) -> frozenset[str]:
    if target == "armv8":
        if event.is_read and mode in (ACQ, SC):
            return frozenset({ACQ})
        if event.is_write and mode in (REL, SC):
            return frozenset({REL})
    return frozenset()


# ---------------------------------------------------------------------------
# Soundness checking
# ---------------------------------------------------------------------------


@dataclass
class CompilationResult:
    """Outcome of a bounded compilation-soundness check (Table 2)."""

    target: str
    max_events: int
    executions_checked: int
    elapsed: float
    complete: bool
    counterexample: tuple[Execution, CompiledExecution] | None

    @property
    def sound(self) -> bool:
        return self.counterexample is None


def check_compilation(
    target: str,
    max_events: int,
    time_budget: float | None = None,
    target_model: MemoryModel | None = None,
) -> CompilationResult:
    """Search for (X inconsistent-C++, race-free) with π(X) consistent
    on the target, up to a source-event bound."""
    cpp_config = get_config("cpp")
    cpp_model = CppModel(transactional=True)
    target_model = target_model or get_model(f"{target}tm")
    start = time.monotonic()
    checked = 0
    complete = True

    for n_events in range(1, max_events + 1):
        for x in enumerate_executions(cpp_config, n_events):
            if time_budget is not None and time.monotonic() - start > time_budget:
                complete = False
                break
            checked += 1
            if cpp_model.consistent(x):
                continue
            if not cpp_model.race_free(x):
                continue  # racy source: target behaviour unconstrained
            compiled = compile_execution(x, target)
            if target_model.consistent(compiled.target):
                return CompilationResult(
                    target=target,
                    max_events=max_events,
                    executions_checked=checked,
                    elapsed=time.monotonic() - start,
                    complete=complete,
                    counterexample=(x, compiled),
                )
        if not complete:
            break

    return CompilationResult(
        target=target,
        max_events=max_events,
        executions_checked=checked,
        elapsed=time.monotonic() - start,
        complete=complete,
        counterexample=None,
    )
