"""Execution diagrams: Graphviz DOT output mirroring the paper's figures.

The paper communicates through execution diagrams -- events in
per-thread columns, coloured edges for rf/co/fr/dependencies, boxes
around transactions.  :func:`to_dot` emits the same picture as Graphviz
source (renderable offline with ``dot -Tpdf``); :func:`edge_summary`
gives a compact textual fallback used in logs.
"""

from __future__ import annotations

from ..events import Execution

_EDGE_STYLES = {
    "rf": ("red", "solid"),
    "co": ("blue", "solid"),
    "fr": ("darkorange", "solid"),
    "addr": ("darkgreen", "dashed"),
    "ctrl": ("darkgreen", "dotted"),
    "data": ("darkgreen", "solid"),
    "rmw": ("purple", "bold"),
}


def _event_label(execution: Execution, eid: int) -> str:
    event = execution.event(eid)
    name = chr(ord("a") + eid) if eid < 26 else f"e{eid}"
    body = event.kind
    if event.loc is not None:
        body += f" {event.loc}"
    if event.tags:
        body += "\\n" + ",".join(sorted(event.tags))
    return f"{name}: {body}"


def to_dot(execution: Execution, name: str = "execution") -> str:
    """Render the execution as Graphviz DOT source."""
    lines = [f"digraph {name} {{"]
    lines.append("  rankdir=TB;")
    lines.append('  node [shape=plaintext, fontname="Helvetica"];')

    # One cluster per thread; nested clusters for transactions.
    for tid, seq in enumerate(execution.threads):
        lines.append(f"  subgraph cluster_t{tid} {{")
        lines.append(f'    label="thread {tid}"; color=gray;')
        open_txn: int | None = None
        for eid in seq:
            txn = execution.txn_of.get(eid)
            if txn != open_txn:
                if open_txn is not None:
                    lines.append("    }")
                if txn is not None:
                    style = (
                        "bold" if txn in execution.atomic_txns else "solid"
                    )
                    lines.append(f"    subgraph cluster_txn{txn} {{")
                    lines.append(
                        f'      label="txn {txn}"; style={style}; color=black;'
                    )
                open_txn = txn
            lines.append(
                f'    n{eid} [label="{_event_label(execution, eid)}"];'
            )
        if open_txn is not None:
            lines.append("    }")
        # Invisible program-order spine keeps the column vertical.
        for a, b in zip(seq, seq[1:]):
            lines.append(f"    n{a} -> n{b} [color=black, label=po];")
        lines.append("  }")

    for rel_name in ("rf", "co", "fr", "addr", "ctrl", "data", "rmw"):
        rel = getattr(execution, rel_name)
        if rel_name == "co":
            # Show only the immediate co edges to avoid clutter.
            rel = rel - rel.compose(rel)
        colour, style = _EDGE_STYLES[rel_name]
        for a, b in sorted(rel.pairs):
            if rel_name in ("addr", "ctrl", "data", "rmw") and (
                a,
                b,
            ) in execution.po.pairs:
                constraint = ", constraint=false"
            else:
                constraint = ", constraint=false"
            lines.append(
                f"  n{a} -> n{b} [color={colour}, style={style}, "
                f"label={rel_name}{constraint}];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def edge_summary(execution: Execution) -> str:
    """A one-line-per-relation textual summary (for logs and tests)."""
    def fmt(eid: int) -> str:
        return chr(ord("a") + eid) if eid < 26 else f"e{eid}"

    parts = []
    for rel_name in ("rf", "co", "fr", "addr", "ctrl", "data", "rmw"):
        rel = getattr(execution, rel_name)
        if rel.pairs:
            edges = " ".join(
                f"{fmt(a)}->{fmt(b)}" for a, b in sorted(rel.pairs)
            )
            parts.append(f"{rel_name}: {edges}")
    return "; ".join(parts) if parts else "(no edges)"
