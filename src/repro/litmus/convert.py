"""Execution → litmus test (§2.2, §3.2).

The construction follows the paper exactly:

* each write is given a unique non-zero value per location, increasing
  along ``co`` -- so checking the final memory value pins the co-maximal
  write, and checking each register pins the intended rf edge;
* reads become loads into fresh registers, and the postcondition asserts
  each register holds the value of the write it observes (0 for reads of
  the initial value);
* dependency edges become register-flow annotations on the consuming
  instruction;
* ``rmw`` pairs collapse into a single :class:`Rmw` instruction;
* transactions are wrapped in ``TxBegin``/``TxEnd`` and the
  postcondition gains ``TxnsSucceeded`` (the ``ok = 1`` conjunct of
  §3.2).

Footnote 2 caveat: with three or more writes to one location, the final
value alone does not pin the relative order of the non-final writes; the
resulting test then admits any coherence completion (this matches what
hardware can actually distinguish, and is recorded per test in
:attr:`LitmusTest.co_fully_pinned`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events import FENCE, READ, WRITE, Execution
from .postcondition import (
    MemEquals,
    Postcondition,
    RegEquals,
    TxnsSucceeded,
)
from .program import (
    Fence,
    Instruction,
    Load,
    LoadLinked,
    Program,
    Rmw,
    Store,
    StoreConditional,
    TxBegin,
    TxEnd,
)


@dataclass(frozen=True)
class LitmusTest:
    """A generated test: the program plus provenance metadata."""

    program: Program
    source: Execution
    #: eid → value written (writes) / register name (reads)
    write_values: dict[int, int]
    read_registers: dict[int, tuple[int, str]]
    #: False when footnote 2 applies (≥3 writes to one location).
    co_fully_pinned: bool
    #: location → written values in intended coherence order.  Physical
    #: litmus runs cannot observe this beyond the final value; our
    #: simulated machines can, which removes the footnote 2 ambiguity.
    intended_co: dict[str, tuple[int, ...]]


def execution_to_litmus(execution: Execution, name: str = "test") -> LitmusTest:
    """Build the litmus test whose postcondition passes exactly when the
    given execution is taken (§2.2)."""
    write_values = _assign_write_values(execution)
    read_sources = {r: w for w, r in execution.rf.pairs}

    threads: list[list[Instruction]] = []
    read_registers: dict[int, tuple[int, str]] = {}
    post_atoms: list = []
    reg_counter = 0

    for tid, seq in enumerate(execution.threads):
        body: list[Instruction] = []
        open_txn: int | None = None
        skip: set[int] = set()
        split_rmws: dict[int, str] = {}
        for pos, eid in enumerate(seq):
            if eid in skip:
                continue
            event = execution.event(eid)
            # Open/close transactions at class boundaries.
            txn = execution.txn_of.get(eid)
            if txn != open_txn:
                if open_txn is not None:
                    body.append(TxEnd())
                if txn is not None:
                    body.append(TxBegin(atomic=txn in execution.atomic_txns))
                open_txn = txn
            # Collapse rmw pairs into one instruction -- unless the pair
            # straddles a transaction boundary (the TxnCancelsRMW shapes),
            # in which case a split load-exclusive/store-exclusive pair is
            # the faithful rendering.
            rmw_writes = execution.rmw.successors(eid)
            if event.kind == READ and rmw_writes:
                write_eid = next(iter(rmw_writes))
                reg = f"r{reg_counter}"
                reg_counter += 1
                read_registers[eid] = (tid, reg)
                same_txn = execution.txn_of.get(eid) == execution.txn_of.get(
                    write_eid
                )
                if same_txn:
                    body.append(
                        Rmw(
                            reg=reg,
                            loc=event.loc,
                            value=write_values[write_eid],
                            read_tags=event.tags,
                            write_tags=execution.event(write_eid).tags,
                            ctrl_regs=_dep_regs_for(
                                execution, eid, "ctrl", read_registers
                            ),
                        )
                    )
                    skip.add(write_eid)
                else:
                    body.append(
                        LoadLinked(
                            reg=reg,
                            loc=event.loc,
                            tags=event.tags,
                            ctrl_regs=_dep_regs_for(
                                execution, eid, "ctrl", read_registers
                            ),
                        )
                    )
                    split_rmws[write_eid] = reg
            elif eid in split_rmws and event.kind == WRITE:
                body.append(
                    StoreConditional(
                        loc=event.loc,
                        value=write_values[eid],
                        link=split_rmws.pop(eid),
                        tags=event.tags,
                        ctrl_regs=_dep_regs_for(
                            execution, eid, "ctrl", read_registers
                        ),
                    )
                )
            elif event.kind == READ:
                reg = f"r{reg_counter}"
                reg_counter += 1
                read_registers[eid] = (tid, reg)
                body.append(
                    Load(
                        reg=reg,
                        loc=event.loc,
                        tags=event.tags,
                        addr_regs=_dep_regs_for(
                            execution, eid, "addr", read_registers
                        ),
                        ctrl_regs=_dep_regs_for(
                            execution, eid, "ctrl", read_registers
                        ),
                    )
                )
            elif event.kind == WRITE:
                body.append(
                    Store(
                        loc=event.loc,
                        value=write_values[eid],
                        tags=event.tags,
                        data_regs=_dep_regs_for(
                            execution, eid, "data", read_registers
                        ),
                        addr_regs=_dep_regs_for(
                            execution, eid, "addr", read_registers
                        ),
                        ctrl_regs=_dep_regs_for(
                            execution, eid, "ctrl", read_registers
                        ),
                    )
                )
            elif event.kind == FENCE:
                flavour = event.fence_flavour
                body.append(
                    Fence(
                        flavour=flavour or "FENCE",
                        tags=event.tags - {flavour} if flavour else event.tags,
                    )
                )
            else:
                raise ValueError(
                    f"cannot convert event kind {event.kind!r}; lock-call "
                    "events are expanded by the §8.3 mapping first"
                )
        if open_txn is not None:
            body.append(TxEnd())
        threads.append(body)

    # Postcondition: pin every rf edge ...
    for eid, (tid, reg) in sorted(read_registers.items()):
        src = read_sources.get(eid)
        value = write_values[src] if src is not None else 0
        post_atoms.append(RegEquals(tid, reg, value))
    # ... and the co-maximal write of every location.
    co_fully_pinned = True
    for loc in execution.locations:
        writes = execution.writes_to(loc)
        if not writes:
            continue
        if len(writes) > 2:
            co_fully_pinned = False
        final = max(writes, key=lambda w: len(execution.co.predecessors(w)))
        post_atoms.append(MemEquals(loc, write_values[final]))
    if execution.txn_of:
        post_atoms.append(TxnsSucceeded())

    program = Program(
        name=name,
        threads=tuple(tuple(t) for t in threads),
        postcondition=Postcondition(tuple(post_atoms)),
    )
    intended_co = {}
    for loc in execution.locations:
        writes = execution.writes_to(loc)
        if writes:
            ordered = sorted(
                writes, key=lambda w: len(execution.co.predecessors(w))
            )
            intended_co[loc] = tuple(write_values[w] for w in ordered)
    return LitmusTest(
        program=program,
        source=execution,
        write_values=write_values,
        read_registers=read_registers,
        co_fully_pinned=co_fully_pinned,
        intended_co=intended_co,
    )


def _assign_write_values(execution: Execution) -> dict[int, int]:
    """Distinct non-zero values per location, increasing along co."""
    values: dict[int, int] = {}
    for loc in execution.locations:
        writes = execution.writes_to(loc)
        ordered = sorted(writes, key=lambda w: len(execution.co.predecessors(w)))
        for index, eid in enumerate(ordered):
            values[eid] = index + 1
    return values


def _dep_regs_for(
    execution: Execution,
    eid: int,
    dep: str,
    read_registers: dict[int, tuple[int, str]],
) -> tuple[str, ...]:
    """Registers feeding the given dependency kind into event ``eid``."""
    rel = getattr(execution, dep)
    regs = []
    for src in sorted(rel.predecessors(eid)):
        if src in read_registers:
            regs.append(read_registers[src][1])
    return tuple(regs)
