"""Litmus tests: programs, conversion, candidates, rendering (§2.2, §3.2)."""

from .candidates import (
    Candidate,
    Witness,
    allowed,
    allowed_outcomes,
    candidate_executions,
    find_witness,
)
from .convert import LitmusTest, execution_to_litmus
from .diagram import edge_summary, to_dot
from .format import LitmusFormatError, parse_litmus, write_litmus
from .postcondition import (
    MemEquals,
    Postcondition,
    RegEquals,
    TxnsSucceeded,
)
from .program import (
    AbortUnless,
    Fence,
    Instruction,
    Load,
    LoadLinked,
    Program,
    Rmw,
    Store,
    StoreConditional,
    TxBegin,
    TxEnd,
)
from .render import ARCHES, render

__all__ = [
    "ARCHES",
    "LitmusFormatError",
    "edge_summary",
    "parse_litmus",
    "to_dot",
    "write_litmus",
    "AbortUnless",
    "Candidate",
    "Fence",
    "Instruction",
    "LitmusTest",
    "Load",
    "LoadLinked",
    "MemEquals",
    "Postcondition",
    "Program",
    "RegEquals",
    "Rmw",
    "Store",
    "StoreConditional",
    "TxBegin",
    "TxEnd",
    "TxnsSucceeded",
    "Witness",
    "allowed",
    "allowed_outcomes",
    "candidate_executions",
    "execution_to_litmus",
    "find_witness",
    "render",
]
