"""Rendering litmus tests as per-architecture pseudo-assembly.

The semantics of tests live in the instruction AST; these renderers
exist for human consumption (examples, EXPERIMENTS.md, discussions with
"architects" in the paper's workflow).  Dependency annotations are
rendered with the standard litmus idioms: address dependencies via
``xor``-zero indexing, data dependencies via ``xor``-zero addition,
control dependencies via compare-and-branch to the next line.

Supported targets: ``pseudo`` (the paper's diagram notation), ``x86``,
``power``, ``armv8``, and ``cpp``.
"""

from __future__ import annotations

from ..events import ACQ, ACQ_REL, NA, REL, RLX, SC
from .program import (
    AbortUnless,
    Fence,
    Instruction,
    Load,
    LoadLinked,
    Program,
    Rmw,
    Store,
    StoreConditional,
    TxBegin,
    TxEnd,
)

ARCHES = ("pseudo", "x86", "power", "armv8", "cpp")


def render(program: Program, arch: str = "pseudo") -> str:
    """Render a litmus test for one architecture."""
    if arch not in ARCHES:
        raise ValueError(f"unknown arch {arch!r}; choose from {ARCHES}")
    renderer = {
        "pseudo": _render_pseudo_instruction,
        "x86": _render_x86_instruction,
        "power": _render_power_instruction,
        "armv8": _render_armv8_instruction,
        "cpp": _render_cpp_instruction,
    }[arch]

    lines = [f"{arch.upper()} {program.name}"]
    init = ", ".join(f"{loc} = 0" for loc in program.locations)
    lines.append(f"Initially: {init}" if init else "Initially: (no locations)")
    for tid, thread in enumerate(program.threads):
        lines.append(f"--- thread {tid} ---")
        txn_index = 0
        for ins in thread:
            if isinstance(ins, TxBegin):
                txn_index += 1
            for out in renderer(ins, tid, txn_index):
                lines.append("  " + out)
    lines.append(f"Test: {program.postcondition}")
    return "\n".join(lines)


def _deps_comment(ins: Instruction) -> str:
    parts = []
    for label, regs in (
        ("addr", getattr(ins, "addr_regs", ())),
        ("data", getattr(ins, "data_regs", ())),
        ("ctrl", getattr(ins, "ctrl_regs", ())),
    ):
        if regs:
            parts.append(f"{label}({', '.join(regs)})")
    return f"   // dep: {', '.join(parts)}" if parts else ""


# ---------------------------------------------------------------------------
# Pseudocode (the paper's diagram notation, Figs 1-2)
# ---------------------------------------------------------------------------


def _render_pseudo_instruction(ins: Instruction, tid: int, txn: int) -> list[str]:
    if isinstance(ins, Load):
        return [f"{ins.reg} <- [{ins.loc}]{_mode_suffix(ins.tags)}{_deps_comment(ins)}"]
    if isinstance(ins, Store):
        return [f"[{ins.loc}]{_mode_suffix(ins.tags)} <- {ins.value}{_deps_comment(ins)}"]
    if isinstance(ins, Rmw):
        return [f"{ins.reg} <- RMW [{ins.loc}] := {ins.value}"]
    if isinstance(ins, LoadLinked):
        return [f"{ins.reg} <-LL [{ins.loc}]{_mode_suffix(ins.tags)}"]
    if isinstance(ins, StoreConditional):
        return [f"[{ins.loc}] <-SC({ins.link}) {ins.value}"]
    if isinstance(ins, Fence):
        return [f"fence<{ins.flavour.lower()}>"]
    if isinstance(ins, TxBegin):
        kind = "atomic" if ins.atomic else "txn"
        return [f"txbegin ({kind}) Lfail{txn}"]
    if isinstance(ins, TxEnd):
        return ["txend"]
    if isinstance(ins, AbortUnless):
        return [f"if {ins.reg} != {ins.expected}: txabort"]
    raise TypeError(f"unknown instruction {ins!r}")


def _mode_suffix(tags: frozenset[str]) -> str:
    for tag, suffix in (
        (SC, ".sc"),
        (ACQ, ".acq"),
        (REL, ".rel"),
        (ACQ_REL, ".acqrel"),
        (RLX, ".rlx"),
        (NA, ""),
    ):
        if tag in tags:
            return suffix
    return ""


# ---------------------------------------------------------------------------
# x86 (TSX)
# ---------------------------------------------------------------------------


def _render_x86_instruction(ins: Instruction, tid: int, txn: int) -> list[str]:
    if isinstance(ins, Load):
        return [f"MOV {_x86reg(ins.reg)}, [{ins.loc}]{_deps_comment(ins)}"]
    if isinstance(ins, Store):
        return [f"MOV [{ins.loc}], ${ins.value}{_deps_comment(ins)}"]
    if isinstance(ins, Rmw):
        return [f"LOCK XCHG {_x86reg(ins.reg)}<-${ins.value}, [{ins.loc}]"]
    if isinstance(ins, (LoadLinked, StoreConditional)):
        raise ValueError("x86 has no load-linked/store-conditional")
    if isinstance(ins, Fence):
        return ["MFENCE"]
    if isinstance(ins, TxBegin):
        return [f"XBEGIN Lfail{txn}"]
    if isinstance(ins, TxEnd):
        return ["XEND", f"JMP Lsucc{txn}", f"Lfail{txn}: MOV [ok], $0", f"Lsucc{txn}:"]
    if isinstance(ins, AbortUnless):
        return [f"CMP {_x86reg(ins.reg)}, ${ins.expected}", "JNE .abort; XABORT"]
    raise TypeError(f"unknown instruction {ins!r}")


def _x86reg(reg: str) -> str:
    return "E" + reg.upper().replace("R", "X") if reg.startswith("r") else reg


# ---------------------------------------------------------------------------
# Power
# ---------------------------------------------------------------------------

_POWER_FENCES = {"SYNC": "sync", "LWSYNC": "lwsync", "ISYNC": "isync"}


def _render_power_instruction(ins: Instruction, tid: int, txn: int) -> list[str]:
    if isinstance(ins, Load):
        lines = []
        addr = f"0({ins.loc})"
        if ins.addr_regs:
            dep = ins.addr_regs[0]
            lines.append(f"xor r9,{dep},{dep}")
            addr = f"r9({ins.loc})"
        if ins.ctrl_regs:
            lines.extend(_power_ctrl(ins.ctrl_regs))
        lines.append(f"lwz {ins.reg},{addr}")
        return lines
    if isinstance(ins, Store):
        lines = []
        value = str(ins.value)
        if ins.data_regs:
            dep = ins.data_regs[0]
            lines.append(f"xor r9,{dep},{dep}")
            value = f"{ins.value}+r9"
        if ins.ctrl_regs:
            lines.extend(_power_ctrl(ins.ctrl_regs))
        lines.append(f"li r10,{value}")
        lines.append(f"stw r10,0({ins.loc})")
        return lines
    if isinstance(ins, Rmw):
        return [
            f"Loop{tid}:",
            f"lwarx {ins.reg},0,{ins.loc}",
            f"stwcx. {ins.value},0,{ins.loc}",
            f"bne Loop{tid}",
        ]
    if isinstance(ins, LoadLinked):
        return [f"lwarx {ins.reg},0,{ins.loc}"]
    if isinstance(ins, StoreConditional):
        return [f"stwcx. {ins.value},0,{ins.loc}   // linked to {ins.link}"]
    if isinstance(ins, Fence):
        return [_POWER_FENCES.get(ins.flavour, ins.flavour.lower())]
    if isinstance(ins, TxBegin):
        return [f"tbegin. ; beq Lfail{txn}"]
    if isinstance(ins, TxEnd):
        return ["tend.", f"b Lsucc{txn}", f"Lfail{txn}: li r11,0 ; stw r11,0(ok)", f"Lsucc{txn}:"]
    if isinstance(ins, AbortUnless):
        return [f"cmpwi {ins.reg},{ins.expected}", "bne .+8", "tabort."]
    raise TypeError(f"unknown instruction {ins!r}")


def _power_ctrl(regs: tuple[str, ...]) -> list[str]:
    dep = regs[0]
    return [f"cmpw {dep},{dep}", "beq .+4"]


# ---------------------------------------------------------------------------
# ARMv8
# ---------------------------------------------------------------------------

_ARM_FENCES = {"DMB": "DMB SY", "DMBLD": "DMB LD", "DMBST": "DMB ST", "ISB": "ISB"}


def _render_armv8_instruction(ins: Instruction, tid: int, txn: int) -> list[str]:
    if isinstance(ins, Load):
        op = "LDAR" if ACQ in ins.tags else "LDR"
        lines = []
        addr = f"[{ins.loc}]"
        if ins.addr_regs:
            dep = ins.addr_regs[0]
            lines.append(f"EOR W9,{_armreg(dep)},{_armreg(dep)}")
            addr = f"[{ins.loc},W9]"
        if ins.ctrl_regs:
            lines.extend(_arm_ctrl(ins.ctrl_regs))
        lines.append(f"{op} {_armreg(ins.reg)},{addr}")
        return lines
    if isinstance(ins, Store):
        op = "STLR" if REL in ins.tags else "STR"
        lines = []
        if ins.data_regs:
            dep = ins.data_regs[0]
            lines.append(f"EOR W9,{_armreg(dep)},{_armreg(dep)}")
            lines.append(f"ADD W10,W9,#{ins.value}")
        else:
            lines.append(f"MOV W10,#{ins.value}")
        if ins.ctrl_regs:
            lines.extend(_arm_ctrl(ins.ctrl_regs))
        lines.append(f"{op} W10,[{ins.loc}]")
        return lines
    if isinstance(ins, Rmw):
        acq = "A" if ACQ in ins.read_tags else ""
        rel = "L" if REL in ins.write_tags else ""
        return [
            f"Loop{tid}:",
            f"LD{acq}XR {_armreg(ins.reg)},[{ins.loc}]",
            f"MOV W10,#{ins.value}",
            f"ST{rel}XR W11,W10,[{ins.loc}]",
            f"CBNZ W11,Loop{tid}",
        ]
    if isinstance(ins, LoadLinked):
        acq = "A" if ACQ in ins.tags else ""
        return [f"LD{acq}XR {_armreg(ins.reg)},[{ins.loc}]"]
    if isinstance(ins, StoreConditional):
        return [
            f"MOV W10,#{ins.value}",
            f"STXR W11,W10,[{ins.loc}]   // linked to {ins.link}",
        ]
    if isinstance(ins, Fence):
        return [_ARM_FENCES.get(ins.flavour, ins.flavour)]
    if isinstance(ins, TxBegin):
        return [f"TXBEGIN Lfail{txn}"]
    if isinstance(ins, TxEnd):
        return ["TXEND", f"B Lsucc{txn}", f"Lfail{txn}: STR WZR,[ok]", f"Lsucc{txn}:"]
    if isinstance(ins, AbortUnless):
        return [f"CMP {_armreg(ins.reg)},#{ins.expected}", "BEQ .+8", "TXABORT"]
    raise TypeError(f"unknown instruction {ins!r}")


def _armreg(reg: str) -> str:
    return "W" + reg[1:] if reg.startswith("r") else reg


def _arm_ctrl(regs: tuple[str, ...]) -> list[str]:
    dep = regs[0]
    return [f"CBNZ {_armreg(dep)},.+4"]


# ---------------------------------------------------------------------------
# C++
# ---------------------------------------------------------------------------

_CPP_ORDERS = {
    SC: "memory_order_seq_cst",
    ACQ: "memory_order_acquire",
    REL: "memory_order_release",
    ACQ_REL: "memory_order_acq_rel",
    RLX: "memory_order_relaxed",
}


def _cpp_order(tags: frozenset[str]) -> str | None:
    for tag, order in _CPP_ORDERS.items():
        if tag in tags:
            return order
    return None


def _render_cpp_instruction(ins: Instruction, tid: int, txn: int) -> list[str]:
    if isinstance(ins, Load):
        order = _cpp_order(ins.tags)
        if order is None:
            return [f"int {ins.reg} = {ins.loc};{_deps_comment(ins)}"]
        return [f"int {ins.reg} = atomic_load_explicit(&{ins.loc}, {order});"]
    if isinstance(ins, Store):
        order = _cpp_order(ins.tags)
        if order is None:
            return [f"{ins.loc} = {ins.value};{_deps_comment(ins)}"]
        return [
            f"atomic_store_explicit(&{ins.loc}, {ins.value}, {order});"
        ]
    if isinstance(ins, Rmw):
        return [
            f"int {ins.reg} = atomic_exchange_explicit(&{ins.loc}, "
            f"{ins.value}, memory_order_seq_cst);"
        ]
    if isinstance(ins, (LoadLinked, StoreConditional)):
        raise ValueError("C++ has no load-linked/store-conditional")
    if isinstance(ins, Fence):
        order = _cpp_order(ins.tags) or "memory_order_seq_cst"
        return [f"atomic_thread_fence({order});"]
    if isinstance(ins, TxBegin):
        return ["atomic {" if ins.atomic else "synchronized {"]
    if isinstance(ins, TxEnd):
        return ["}"]
    if isinstance(ins, AbortUnless):
        return [f"if ({ins.reg} != {ins.expected}) abort_txn();"]
    raise TypeError(f"unknown instruction {ins!r}")
