"""Postconditions: the "Test:" line of a litmus test (§2.2, §3.2).

A postcondition is a conjunction of atoms over the final state:

* ``RegEquals(tid, reg, value)`` -- a thread-local register holds the
  value written by the store it was intended to observe;
* ``MemEquals(loc, value)`` -- the final value of a memory location
  (pinning the co-maximal write);
* ``TxnsSucceeded()`` -- every transaction committed.  §3.2 encodes this
  with an ``ok`` location zeroed in each fail handler and the conjunct
  ``ok = 1``; keeping it symbolic here lets both the candidate pipeline
  and the operational machine evaluate it directly, while the renderers
  still print the ``ok`` encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class RegEquals:
    tid: int
    reg: str
    value: int

    def __str__(self) -> str:
        return f"{self.tid}:{self.reg} = {self.value}"


@dataclass(frozen=True)
class MemEquals:
    loc: str
    value: int

    def __str__(self) -> str:
        return f"{self.loc} = {self.value}"


@dataclass(frozen=True)
class TxnsSucceeded:
    def __str__(self) -> str:
        return "ok = 1"


Atom = RegEquals | MemEquals | TxnsSucceeded


@dataclass(frozen=True)
class Postcondition:
    """A conjunction of atoms, evaluated against a final state."""

    atoms: tuple[Atom, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "atoms", tuple(self.atoms))

    def holds(
        self,
        registers: Mapping[tuple[int, str], int],
        memory: Mapping[str, int],
        all_txns_committed: bool = True,
    ) -> bool:
        """Evaluate the conjunction.

        Args:
            registers: final value of each ``(tid, reg)``; missing
                registers default to 0.
            memory: final value of each location; missing locations
                default to 0.
            all_txns_committed: whether every transaction in the run
                committed (the ``ok`` flag of §3.2).
        """
        for atom in self.atoms:
            if isinstance(atom, RegEquals):
                if registers.get((atom.tid, atom.reg), 0) != atom.value:
                    return False
            elif isinstance(atom, MemEquals):
                if memory.get(atom.loc, 0) != atom.value:
                    return False
            elif isinstance(atom, TxnsSucceeded):
                if not all_txns_committed:
                    return False
            else:  # pragma: no cover - exhaustive match
                raise TypeError(f"unknown atom {atom!r}")
        return True

    def __str__(self) -> str:
        if not self.atoms:
            return "true"
        return " /\\ ".join(str(a) for a in self.atoms)

    def __and__(self, other: "Postcondition") -> "Postcondition":
        return Postcondition(self.atoms + other.atoms)
