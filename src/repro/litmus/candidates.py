"""Program → candidate executions (the herd-style pipeline).

§2 defines candidate executions "by assuming a non-deterministic memory
system: each load can observe a store from anywhere in the program", and
§3.1 adds that each transaction non-deterministically commits (yielding
an stxn class) or aborts (vanishing as a no-op).

This module enumerates exactly that: for every subset of committed
transactions, every assignment of a source write (or the initial value)
to every read, and every per-location coherence order, it builds the
execution, evaluates register/memory outcomes, and applies the
postcondition.  Together with a memory model's consistency predicate,
this answers "can this litmus test pass?" -- the question the Litmus
tool answers by running silicon, answered here by exhaustive semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from ..events import Event, Execution, FENCE, READ, WRITE
from ..events.execution import SkeletonCompleter
from ..models.base import MemoryModel
from .program import (
    AbortUnless,
    Fence,
    Load,
    LoadLinked,
    Program,
    Rmw,
    Store,
    StoreConditional,
    TxBegin,
    TxEnd,
)


@dataclass(frozen=True)
class Candidate:
    """One candidate execution of a program, with its final state."""

    execution: Execution
    registers: dict[tuple[int, str], int]
    memory: dict[str, int]
    committed: frozenset[int]
    all_txns_committed: bool
    #: write eid → the value it stores (from the program text)
    write_values: dict[int, int]

    def passes(self, program: Program) -> bool:
        return program.postcondition.holds(
            self.registers, self.memory, self.all_txns_committed
        )

    def co_value_sequences(self) -> dict[str, tuple[int, ...]]:
        """Per-location stored values in this candidate's coherence
        order (well defined because §2.2 tests use distinct values)."""
        out: dict[str, tuple[int, ...]] = {}
        for loc in self.execution.locations:
            writes = self.execution.writes_to(loc)
            if not writes:
                continue
            ordered = sorted(
                writes, key=lambda w: len(self.execution.co.predecessors(w))
            )
            out[loc] = tuple(self.write_values[w] for w in ordered)
        return out


class _SkipSkeleton(Exception):
    """This commit choice admits no execution (e.g. a store-conditional
    whose load-linked vanished with an aborted transaction)."""


@dataclass
class _Skeleton:
    """The events of a program for one choice of committed transactions."""

    events: list[Event] = field(default_factory=list)
    threads: list[list[int]] = field(default_factory=list)
    addr: set[tuple[int, int]] = field(default_factory=set)
    ctrl: set[tuple[int, int]] = field(default_factory=set)
    data: set[tuple[int, int]] = field(default_factory=set)
    rmw: set[tuple[int, int]] = field(default_factory=set)
    txn_of: dict[int, int] = field(default_factory=dict)
    atomic_txns: set[int] = field(default_factory=set)
    write_value: dict[int, int] = field(default_factory=dict)
    reads: list[int] = field(default_factory=list)
    #: read eid → (tid, register name)
    reg_of_read: dict[int, tuple[int, str]] = field(default_factory=dict)
    #: (read-eid, required value) constraints from AbortUnless
    abort_constraints: list[tuple[int, int]] = field(default_factory=list)


def _build_skeleton(program: Program, committed: frozenset[int]) -> _Skeleton:
    sk = _Skeleton()
    eid = 0
    txn_counter = 0
    for tid, thread in enumerate(program.threads):
        seq: list[int] = []
        reg_def: dict[str, int] = {}
        pending_sc: dict[str, int] = {}  # link reg -> load-linked eid
        pending_ctrl: list[int] = []  # branch sources covering later events
        current_txn: int | None = None
        txn_alive = True  # False while skipping an aborted transaction

        def fresh(kind: str, loc: str | None, tags: frozenset[str]) -> int:
            nonlocal eid
            event = Event(eid=eid, tid=tid, kind=kind, loc=loc, tags=tags)
            sk.events.append(event)
            seq.append(eid)
            if current_txn is not None:
                sk.txn_of[eid] = current_txn
            for src in pending_ctrl:
                sk.ctrl.add((src, event.eid))
            eid += 1
            return event.eid

        def add_deps(
            target: int,
            addr_regs: tuple[str, ...] = (),
            data_regs: tuple[str, ...] = (),
            ctrl_regs: tuple[str, ...] = (),
        ) -> None:
            for kind, regs in (
                (sk.addr, addr_regs),
                (sk.data, data_regs),
                (sk.ctrl, ctrl_regs),
            ):
                for reg in regs:
                    src = reg_def[reg]
                    if src >= 0:  # source not inside an aborted transaction
                        kind.add((src, target))

        for ins in thread:
            if isinstance(ins, TxBegin):
                txn_id = txn_counter
                txn_counter += 1
                txn_alive = txn_id in committed
                if txn_alive:
                    current_txn = txn_id
                    if ins.atomic:
                        sk.atomic_txns.add(txn_id)
                continue
            if isinstance(ins, TxEnd):
                current_txn = None
                txn_alive = True
                continue
            if not txn_alive:
                # Aborted transactions vanish as no-ops (§3.1) -- but
                # register definitions must still be recorded so later
                # dependency annotations stay resolvable; they define 0.
                if isinstance(ins, (Load, Rmw, LoadLinked)):
                    reg_def[ins.reg] = -1
                continue
            if isinstance(ins, Load):
                new = fresh(READ, ins.loc, ins.tags)
                reg_def[ins.reg] = new
                sk.reads.append(new)
                sk.reg_of_read[new] = (tid, ins.reg)
                add_deps(new, addr_regs=ins.addr_regs, ctrl_regs=ins.ctrl_regs)
            elif isinstance(ins, Store):
                new = fresh(WRITE, ins.loc, ins.tags)
                sk.write_value[new] = ins.value
                add_deps(
                    new,
                    addr_regs=ins.addr_regs,
                    data_regs=ins.data_regs,
                    ctrl_regs=ins.ctrl_regs,
                )
            elif isinstance(ins, Rmw):
                read = fresh(READ, ins.loc, ins.read_tags)
                reg_def[ins.reg] = read
                sk.reads.append(read)
                sk.reg_of_read[read] = (tid, ins.reg)
                add_deps(read, ctrl_regs=ins.ctrl_regs)
                write = fresh(WRITE, ins.loc, ins.write_tags)
                sk.write_value[write] = ins.value
                sk.rmw.add((read, write))
                if ins.status_ctrl:
                    pending_ctrl.append(write)
            elif isinstance(ins, LoadLinked):
                new = fresh(READ, ins.loc, ins.tags)
                reg_def[ins.reg] = new
                sk.reads.append(new)
                sk.reg_of_read[new] = (tid, ins.reg)
                pending_sc[ins.reg] = new
                add_deps(new, ctrl_regs=ins.ctrl_regs)
            elif isinstance(ins, StoreConditional):
                if ins.link not in pending_sc:
                    # The load-linked vanished with an aborted transaction:
                    # the store-exclusive can never succeed on this path.
                    raise _SkipSkeleton()
                new = fresh(WRITE, ins.loc, ins.tags)
                sk.write_value[new] = ins.value
                sk.rmw.add((pending_sc.pop(ins.link), new))
                add_deps(new, ctrl_regs=ins.ctrl_regs)
            elif isinstance(ins, Fence):
                flavour_tags = ins.tags | {ins.flavour}
                new = fresh(FENCE, None, flavour_tags)
                add_deps(new, ctrl_regs=ins.ctrl_regs)
            elif isinstance(ins, AbortUnless):
                src = reg_def[ins.reg]
                if src >= 0:
                    sk.abort_constraints.append((src, ins.expected))
                    if ins.induce_ctrl:
                        pending_ctrl.append(src)
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"unknown instruction {ins!r}")
        sk.threads.append(seq)
    return sk


def candidate_executions(
    program: Program,
    require_all_txns: bool = False,
) -> Iterator[Candidate]:
    """Enumerate every candidate execution of the program.

    ``rmw`` edges always denote *successful* RMWs: candidates are only
    generated where the paired store-exclusive succeeded (the models'
    atomicity axioms then constrain which of those are consistent).
    """
    txn_ids = list(range(program.transaction_count()))
    if require_all_txns or not txn_ids:
        commit_choices = [frozenset(txn_ids)]
    else:
        commit_choices = [
            frozenset(keep)
            for n in range(len(txn_ids), -1, -1)
            for keep in itertools.combinations(txn_ids, n)
        ]

    for committed in commit_choices:
        try:
            sk = _build_skeleton(program, committed)
        except _SkipSkeleton:
            continue
        yield from _complete_skeleton(sk, committed, len(txn_ids))


def _complete_skeleton(
    sk: _Skeleton,
    committed: frozenset[int],
    total_txns: int,
) -> Iterator[Candidate]:
    events_by_eid = {e.eid: e for e in sk.events}
    writes_by_loc: dict[str, list[int]] = {}
    for e in sk.events:
        if e.kind == WRITE:
            writes_by_loc.setdefault(e.loc, []).append(e.eid)

    # rf choices: each read observes a same-location write or None (init).
    read_choices: list[list[int | None]] = []
    for r in sk.reads:
        loc = events_by_eid[r].loc
        read_choices.append([None] + writes_by_loc.get(loc, []))

    # co choices: a permutation per location.
    locs = sorted(writes_by_loc)
    co_choices_per_loc = [
        list(itertools.permutations(writes_by_loc[loc])) for loc in locs
    ]

    all_committed = len(committed) == total_txns

    # The completer owns the shared static parts and the cache-adoption
    # protocol; all completions of one skeleton share po/sloc/stxn/...
    completer = SkeletonCompleter(
        events=sk.events,
        threads=sk.threads,
        addr=sk.addr,
        ctrl=sk.ctrl,
        data=sk.data,
        rmw=sk.rmw,
        txn_of=sk.txn_of,
        atomic_txns=sk.atomic_txns,
    )

    for rf_choice in itertools.product(*read_choices):
        rf_pairs = [
            (src, r) for src, r in zip(rf_choice, sk.reads) if src is not None
        ]
        read_values: dict[int, int] = {
            r: (sk.write_value[src] if src is not None else 0)
            for src, r in zip(rf_choice, sk.reads)
        }
        if any(
            read_values[r] != expected for r, expected in sk.abort_constraints
        ):
            continue  # the transaction would have self-aborted

        registers = {
            sk.reg_of_read[r]: value for r, value in read_values.items()
        }

        completer.start_rf(rf_pairs)
        for co_perm in itertools.product(*co_choices_per_loc):
            co_pairs = [
                (a, b)
                for perm in co_perm
                for a, b in zip(perm, perm[1:])
            ]
            execution = completer.complete(co_pairs)
            memory = {
                loc: (sk.write_value[perm[-1]] if perm else 0)
                for loc, perm in zip(locs, co_perm)
            }
            yield Candidate(
                execution=execution,
                registers=registers,
                memory=memory,
                committed=committed,
                all_txns_committed=all_committed,
                write_values=dict(sk.write_value),
            )


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Witness:
    """A consistent candidate satisfying the postcondition."""

    candidate: Candidate


def find_witness(
    program: Program,
    model: MemoryModel,
    require_postcondition: bool = True,
) -> Witness | None:
    """The first consistent candidate (satisfying the postcondition,
    unless disabled), or ``None`` -- i.e. "is this test's outcome allowed
    by this model?"."""
    for candidate in candidate_executions(program):
        if require_postcondition and not candidate.passes(program):
            continue
        if model.consistent(candidate.execution):
            return Witness(candidate)
    return None


def allowed(program: Program, model: MemoryModel) -> bool:
    """Is the program's postcondition reachable under the model?"""
    return find_witness(program, model) is not None


def allowed_outcomes(
    program: Program, model: MemoryModel
) -> set[tuple[tuple[tuple[int, str], int], ...]]:
    """All reachable final register valuations under the model (used by
    the lock-elision checker to compare against the serialised spec)."""
    outcomes = set()
    for candidate in candidate_executions(program):
        if model.consistent(candidate.execution):
            reg_part = tuple(sorted(candidate.registers.items()))
            mem_part = tuple(sorted(candidate.memory.items()))
            outcomes.add((reg_part, mem_part))
    return outcomes
