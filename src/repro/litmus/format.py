"""A textual interchange format for litmus tests.

The paper's companion material ships its generated tests as ``.litmus``
files; this module provides the same for the reproduction: a writer and
a parser for a line-oriented format that round-trips every construct of
the instruction AST.

Format::

    litmus "name"
    thread 0:
      load r0 x [ACQ]
      store x 1 data=r0 ctrl=r1
      rmw r1 m 1 read[ACQ] status-ctrl
      loadlinked r2 x
      storecond x 2 link=r2
      fence SYNC
      txbegin atomic
      abortunless r0 0
      txend
    thread 1:
      ...
    test: 0:r0=1 /\\ x=2 /\\ ok=1

Lines are independent; indentation is cosmetic.  Tags go in ``[...]``
after the operands; dependency annotations are ``key=reg`` pairs.
"""

from __future__ import annotations

import re

from .postcondition import (
    Atom,
    MemEquals,
    Postcondition,
    RegEquals,
    TxnsSucceeded,
)
from .program import (
    AbortUnless,
    Fence,
    Instruction,
    Load,
    LoadLinked,
    Program,
    Rmw,
    Store,
    StoreConditional,
    TxBegin,
    TxEnd,
)


class LitmusFormatError(ValueError):
    """Raised on malformed .litmus text."""


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _tags(tags: frozenset[str]) -> str:
    return f" [{','.join(sorted(tags))}]" if tags else ""


def _deps(**kinds: tuple[str, ...]) -> str:
    parts = []
    for key, regs in kinds.items():
        for reg in regs:
            parts.append(f" {key}={reg}")
    return "".join(parts)


def _format_instruction(ins: Instruction) -> str:
    if isinstance(ins, Load):
        return (
            f"load {ins.reg} {ins.loc}{_tags(ins.tags)}"
            f"{_deps(addr=ins.addr_regs, ctrl=ins.ctrl_regs)}"
        )
    if isinstance(ins, Store):
        return (
            f"store {ins.loc} {ins.value}{_tags(ins.tags)}"
            f"{_deps(data=ins.data_regs, addr=ins.addr_regs, ctrl=ins.ctrl_regs)}"
        )
    if isinstance(ins, Rmw):
        out = f"rmw {ins.reg} {ins.loc} {ins.value}"
        if ins.read_tags:
            out += f" read[{','.join(sorted(ins.read_tags))}]"
        if ins.write_tags:
            out += f" write[{','.join(sorted(ins.write_tags))}]"
        out += _deps(ctrl=ins.ctrl_regs)
        if ins.status_ctrl:
            out += " status-ctrl"
        return out
    if isinstance(ins, LoadLinked):
        return (
            f"loadlinked {ins.reg} {ins.loc}{_tags(ins.tags)}"
            f"{_deps(ctrl=ins.ctrl_regs)}"
        )
    if isinstance(ins, StoreConditional):
        return (
            f"storecond {ins.loc} {ins.value} link={ins.link}"
            f"{_tags(ins.tags)}{_deps(ctrl=ins.ctrl_regs)}"
        )
    if isinstance(ins, Fence):
        return f"fence {ins.flavour}{_tags(ins.tags)}{_deps(ctrl=ins.ctrl_regs)}"
    if isinstance(ins, TxBegin):
        return "txbegin atomic" if ins.atomic else "txbegin"
    if isinstance(ins, TxEnd):
        return "txend"
    if isinstance(ins, AbortUnless):
        out = f"abortunless {ins.reg} {ins.expected}"
        if ins.induce_ctrl:
            out += " ctrl"
        return out
    raise TypeError(f"unknown instruction {ins!r}")


def _format_atom(atom: Atom) -> str:
    if isinstance(atom, RegEquals):
        return f"{atom.tid}:{atom.reg}={atom.value}"
    if isinstance(atom, MemEquals):
        return f"{atom.loc}={atom.value}"
    if isinstance(atom, TxnsSucceeded):
        return "ok=1"
    raise TypeError(f"unknown atom {atom!r}")


def write_litmus(program: Program) -> str:
    """Serialise a program to .litmus text."""
    lines = [f'litmus "{program.name}"']
    for tid, thread in enumerate(program.threads):
        lines.append(f"thread {tid}:")
        for ins in thread:
            lines.append("  " + _format_instruction(ins))
    atoms = " /\\ ".join(
        _format_atom(a) for a in program.postcondition.atoms
    )
    lines.append(f"test: {atoms if atoms else 'true'}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_TAGS_RE = re.compile(r"^\[([A-Za-z_,]*)\]$")
_DEP_RE = re.compile(r"^(addr|data|ctrl|link)=([A-Za-z_][A-Za-z0-9_]*)$")
_RMW_TAGS_RE = re.compile(r"^(read|write)\[([A-Za-z_,]*)\]$")


def _split_tags_and_deps(
    tokens: list[str],
) -> tuple[frozenset[str], dict[str, list[str]], list[str]]:
    tags: set[str] = set()
    deps: dict[str, list[str]] = {"addr": [], "data": [], "ctrl": [], "link": []}
    rest: list[str] = []
    for token in tokens:
        tag_match = _TAGS_RE.match(token)
        dep_match = _DEP_RE.match(token)
        if tag_match:
            tags.update(t for t in tag_match.group(1).split(",") if t)
        elif dep_match:
            deps[dep_match.group(1)].append(dep_match.group(2))
        else:
            rest.append(token)
    return frozenset(tags), deps, rest


def _parse_instruction(line: str, lineno: int) -> Instruction:
    tokens = line.split()
    op, args = tokens[0], tokens[1:]

    def err(message: str) -> LitmusFormatError:
        return LitmusFormatError(f"line {lineno}: {message}")

    if op == "load":
        if len(args) < 2:
            raise err("load needs a register and a location")
        tags, deps, rest = _split_tags_and_deps(args[2:])
        if rest:
            raise err(f"unexpected tokens {rest}")
        return Load(
            args[0], args[1], tags=tags,
            addr_regs=tuple(deps["addr"]), ctrl_regs=tuple(deps["ctrl"]),
        )
    if op == "store":
        if len(args) < 2:
            raise err("store needs a location and a value")
        tags, deps, rest = _split_tags_and_deps(args[2:])
        if rest:
            raise err(f"unexpected tokens {rest}")
        return Store(
            args[0], int(args[1]), tags=tags,
            data_regs=tuple(deps["data"]), addr_regs=tuple(deps["addr"]),
            ctrl_regs=tuple(deps["ctrl"]),
        )
    if op == "rmw":
        if len(args) < 3:
            raise err("rmw needs a register, a location, and a value")
        read_tags: frozenset[str] = frozenset()
        write_tags: frozenset[str] = frozenset()
        status_ctrl = False
        leftover = []
        for token in args[3:]:
            rmw_match = _RMW_TAGS_RE.match(token)
            if rmw_match:
                parsed = frozenset(
                    t for t in rmw_match.group(2).split(",") if t
                )
                if rmw_match.group(1) == "read":
                    read_tags = parsed
                else:
                    write_tags = parsed
            elif token == "status-ctrl":
                status_ctrl = True
            else:
                leftover.append(token)
        _, deps, rest = _split_tags_and_deps(leftover)
        if rest:
            raise err(f"unexpected tokens {rest}")
        return Rmw(
            args[0], args[1], int(args[2]),
            read_tags=read_tags, write_tags=write_tags,
            ctrl_regs=tuple(deps["ctrl"]), status_ctrl=status_ctrl,
        )
    if op == "loadlinked":
        tags, deps, rest = _split_tags_and_deps(args[2:])
        if len(args) < 2 or rest:
            raise err("malformed loadlinked")
        return LoadLinked(
            args[0], args[1], tags=tags, ctrl_regs=tuple(deps["ctrl"])
        )
    if op == "storecond":
        tags, deps, rest = _split_tags_and_deps(args[2:])
        if len(args) < 2 or rest or not deps["link"]:
            raise err("malformed storecond (needs link=reg)")
        return StoreConditional(
            args[0], int(args[1]), link=deps["link"][0],
            tags=tags, ctrl_regs=tuple(deps["ctrl"]),
        )
    if op == "fence":
        if not args:
            raise err("fence needs a flavour")
        tags, deps, rest = _split_tags_and_deps(args[1:])
        if rest:
            raise err(f"unexpected tokens {rest}")
        return Fence(args[0], tags=tags, ctrl_regs=tuple(deps["ctrl"]))
    if op == "txbegin":
        return TxBegin(atomic="atomic" in args)
    if op == "txend":
        return TxEnd()
    if op == "abortunless":
        if len(args) < 2:
            raise err("abortunless needs a register and a value")
        return AbortUnless(args[0], int(args[1]), induce_ctrl="ctrl" in args)
    raise err(f"unknown instruction {op!r}")


def _parse_atom(text: str, lineno: int) -> Atom:
    text = text.strip()
    if text == "ok=1":
        return TxnsSucceeded()
    reg_match = re.match(r"^(\d+):([A-Za-z_][A-Za-z0-9_]*)=(-?\d+)$", text)
    if reg_match:
        return RegEquals(
            int(reg_match.group(1)), reg_match.group(2), int(reg_match.group(3))
        )
    mem_match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)=(-?\d+)$", text)
    if mem_match:
        return MemEquals(mem_match.group(1), int(mem_match.group(2)))
    raise LitmusFormatError(f"line {lineno}: bad postcondition atom {text!r}")


def parse_litmus(text: str) -> Program:
    """Parse .litmus text into a program."""
    name = "unnamed"
    threads: list[list[Instruction]] = []
    postcondition = Postcondition(())
    current: list[Instruction] | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("litmus"):
            match = re.match(r'^litmus\s+"([^"]*)"$', line)
            if not match:
                raise LitmusFormatError(f"line {lineno}: bad litmus header")
            name = match.group(1)
        elif line.startswith("thread"):
            match = re.match(r"^thread\s+(\d+):$", line)
            if not match:
                raise LitmusFormatError(f"line {lineno}: bad thread header")
            tid = int(match.group(1))
            if tid != len(threads):
                raise LitmusFormatError(
                    f"line {lineno}: threads must be declared in order "
                    f"(expected {len(threads)}, got {tid})"
                )
            current = []
            threads.append(current)
        elif line.startswith("test:"):
            body = line[len("test:"):].strip()
            if body == "true":
                postcondition = Postcondition(())
            else:
                atoms = tuple(
                    _parse_atom(part, lineno) for part in body.split("/\\")
                )
                postcondition = Postcondition(atoms)
        else:
            if current is None:
                raise LitmusFormatError(
                    f"line {lineno}: instruction outside a thread"
                )
            current.append(_parse_instruction(line, lineno))

    return Program(
        name=name,
        threads=tuple(tuple(t) for t in threads),
        postcondition=postcondition,
    )
