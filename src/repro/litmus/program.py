"""Litmus-test programs: a small multi-threaded instruction AST.

A litmus test is "a program with a postcondition" (§2.2).  Programs here
are straight-line per thread -- exactly the fragment the paper's tooling
produces -- with six instruction forms:

* :class:`Load` / :class:`Store` -- shared-memory accesses with optional
  acquire/release/SC/mode tags and dependency annotations;
* :class:`Rmw` -- a *successful* atomic read-modify-write (LOCK'd
  instruction / load-exclusive+store-exclusive pair), producing two
  events linked by an ``rmw`` edge;
* :class:`Fence` -- a barrier of some flavour;
* :class:`TxBegin` / :class:`TxEnd` -- transaction delimiters (§3.2);
* :class:`AbortUnless` -- the "load the lock and self-abort if taken"
  idiom of lock elision (§1.1): constrains a register's value in any
  execution where the transaction commits.

Dependencies are annotated by naming the *register* they flow from: a
``Store(..., data_regs=("r0",))`` is data-dependent on the load that
defined ``r0``.  Store values are integer constants; following §2.2, a
well-formed test gives each store to a location a distinct non-zero
value so that rf and co can be identified from register/final values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .postcondition import Postcondition


@dataclass(frozen=True)
class Instruction:
    """Base class for litmus instructions."""


@dataclass(frozen=True)
class Load(Instruction):
    """``reg ← [loc]``."""

    reg: str
    loc: str
    tags: frozenset[str] = field(default_factory=frozenset)
    addr_regs: tuple[str, ...] = ()
    ctrl_regs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", frozenset(self.tags))


@dataclass(frozen=True)
class Store(Instruction):
    """``[loc] ← value``."""

    loc: str
    value: int
    tags: frozenset[str] = field(default_factory=frozenset)
    data_regs: tuple[str, ...] = ()
    addr_regs: tuple[str, ...] = ()
    ctrl_regs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", frozenset(self.tags))


@dataclass(frozen=True)
class Rmw(Instruction):
    """``reg ← [loc]; [loc] ← value`` atomically (and successfully).

    ``status_ctrl`` models the exclusive-pair retry idiom (``stwcx.;
    bne`` / ``STXR; CBNZ``): every later event of the thread becomes
    control-dependent on the RMW's *write* half.  Power's model honours
    such edges (Table 3, footnote 3); ARMv8's ignores them.
    """

    reg: str
    loc: str
    value: int
    read_tags: frozenset[str] = field(default_factory=frozenset)
    write_tags: frozenset[str] = field(default_factory=frozenset)
    ctrl_regs: tuple[str, ...] = ()
    status_ctrl: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "read_tags", frozenset(self.read_tags))
        object.__setattr__(self, "write_tags", frozenset(self.write_tags))


@dataclass(frozen=True)
class LoadLinked(Instruction):
    """A load-exclusive (LDAXR / lwarx): the read half of a split RMW.

    Paired with the :class:`StoreConditional` naming the same register.
    Used when an RMW's halves must straddle a transaction boundary
    (the TxnCancelsRMW shapes of §5.2/§8.1); ordinary successful RMWs
    should use :class:`Rmw`.
    """

    reg: str
    loc: str
    tags: frozenset[str] = field(default_factory=frozenset)
    ctrl_regs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", frozenset(self.tags))


@dataclass(frozen=True)
class StoreConditional(Instruction):
    """A store-exclusive (STXR / stwcx.) linked to a prior
    :class:`LoadLinked` via ``link`` (its register).  The generated
    execution assumes the store succeeds, adding an ``rmw`` edge."""

    loc: str
    value: int
    link: str
    tags: frozenset[str] = field(default_factory=frozenset)
    ctrl_regs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", frozenset(self.tags))


@dataclass(frozen=True)
class Fence(Instruction):
    """A barrier of the given flavour (MFENCE, SYNC, DMB, ...)."""

    flavour: str
    tags: frozenset[str] = field(default_factory=frozenset)
    ctrl_regs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", frozenset(self.tags))


@dataclass(frozen=True)
class TxBegin(Instruction):
    """Start of a transaction (``txbegin Lfail``, §3.2)."""

    atomic: bool = False  # a C++ atomic{} transaction (§7)


@dataclass(frozen=True)
class TxEnd(Instruction):
    """Commit point of the innermost open transaction."""


@dataclass(frozen=True)
class AbortUnless(Instruction):
    """Self-abort the enclosing transaction unless ``reg == expected``.

    In any candidate execution where the enclosing transaction commits,
    the register's value is constrained to ``expected``; in the
    operational machine, the transaction aborts when the test fails.

    ``induce_ctrl`` adds control dependencies from the load defining
    ``reg`` to every later event of the transaction (real encodings
    branch on the register; the paper's Lt mapping does not model that
    edge, so the default is off).
    """

    reg: str
    expected: int
    induce_ctrl: bool = False


@dataclass(frozen=True)
class Program:
    """A litmus-test program: threads of instructions plus a
    postcondition over final registers and memory."""

    name: str
    threads: tuple[tuple[Instruction, ...], ...]
    postcondition: Postcondition

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "threads", tuple(tuple(t) for t in self.threads)
        )
        problems = self.validation_errors()
        if problems:
            raise ValueError(
                f"ill-formed litmus program {self.name!r}:\n  "
                + "\n  ".join(problems)
            )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validation_errors(self) -> list[str]:
        problems: list[str] = []
        for tid, thread in enumerate(self.threads):
            defined: set[str] = set()
            linked: set[str] = set()
            depth = 0
            for idx, ins in enumerate(thread):
                where = f"T{tid}[{idx}]"
                if isinstance(ins, (Load, Rmw, LoadLinked)):
                    if ins.reg in defined:
                        problems.append(f"{where}: register {ins.reg} redefined")
                    defined.add(ins.reg)
                if isinstance(ins, LoadLinked):
                    linked.add(ins.reg)
                if isinstance(ins, StoreConditional):
                    if ins.link not in linked:
                        problems.append(
                            f"{where}: store-conditional without matching "
                            f"load-linked {ins.link}"
                        )
                    else:
                        linked.discard(ins.link)
                for regs in _dep_regs(ins):
                    for reg in regs:
                        if reg not in defined:
                            problems.append(
                                f"{where}: dependency on undefined register {reg}"
                            )
                if isinstance(ins, TxBegin):
                    if depth:
                        problems.append(f"{where}: nested transaction")
                    depth += 1
                elif isinstance(ins, TxEnd):
                    if not depth:
                        problems.append(f"{where}: TxEnd without TxBegin")
                    else:
                        depth -= 1
                elif isinstance(ins, AbortUnless):
                    if not depth:
                        problems.append(f"{where}: AbortUnless outside transaction")
                    if ins.reg not in defined:
                        problems.append(
                            f"{where}: AbortUnless on undefined register {ins.reg}"
                        )
            if depth:
                problems.append(f"T{tid}: unterminated transaction")
        return problems

    def distinct_value_warnings(self) -> list[str]:
        """§2.2 wants each store to a location to write a distinct
        non-zero value, so rf/co can be read off the final state.
        Generated tests satisfy this by construction; hand-written
        programs (e.g. spinlocks, whose unlock writes 0) need not, at
        the cost of postconditions possibly under-constraining rf."""
        problems = []
        by_loc: dict[str, list[int]] = {}
        for thread in self.threads:
            for ins in thread:
                if isinstance(ins, (Store, Rmw, StoreConditional)):
                    by_loc.setdefault(ins.loc, []).append(ins.value)
        for loc, values in by_loc.items():
            if 0 in values:
                problems.append(f"store of 0 to {loc} aliases the initial value")
            if len(values) != len(set(values)):
                problems.append(f"stores to {loc} reuse a value: {values}")
        return problems

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def locations(self) -> tuple[str, ...]:
        locs = set()
        for thread in self.threads:
            for ins in thread:
                if isinstance(ins, (Load, Store, Rmw, LoadLinked, StoreConditional)):
                    locs.add(ins.loc)
        return tuple(sorted(locs))

    def transaction_count(self) -> int:
        return sum(
            1
            for thread in self.threads
            for ins in thread
            if isinstance(ins, TxBegin)
        )

    def instructions(self) -> Iterator[tuple[int, int, Instruction]]:
        """Yield ``(tid, index, instruction)`` triples."""
        for tid, thread in enumerate(self.threads):
            for idx, ins in enumerate(thread):
                yield tid, idx, ins


def _dep_regs(ins: Instruction) -> list[tuple[str, ...]]:
    """All dependency-register tuples mentioned by an instruction."""
    regs: list[tuple[str, ...]] = []
    if isinstance(ins, Load):
        regs = [ins.addr_regs, ins.ctrl_regs]
    elif isinstance(ins, Store):
        regs = [ins.data_regs, ins.addr_regs, ins.ctrl_regs]
    elif isinstance(ins, (Rmw, Fence, LoadLinked, StoreConditional)):
        regs = [ins.ctrl_regs]
    return regs
