"""The stable public facade of the reproduction.

Everything a script, notebook, or CI job needs lives behind four
functions, so callers stop depending on which internal module a
capability happens to live in this month:

* :func:`load_model` -- a memory model by name (``"x86tm"``,
  ``"powertm"``, ``"armv8tm"``, ``"cpptm"``, ``"tsc"``, ...);
* :func:`check` -- judge one execution under one model;
* :func:`synthesize` -- the Forbid/Allow conformance suites, through
  the sharded work-stealing scheduler (byte-identical at any worker
  count), with optional checkpoint/resume and a cross-run verdict
  cache;
* :func:`run_table` -- any of the paper's artifact drivers
  (``"table1"``, ``"table2"``, ``"figure7"``, ``"ablation"``) under
  one set of keyword arguments.

The legacy entry points (``repro.harness.run_table1`` and friends,
``repro.enumeration.synthesise`` called directly from scripts) keep
working but are deprecated shims; new code imports ``repro.api``::

    from repro import api

    model = api.load_model("x86tm")
    result = api.synthesize("x86", bound=3, workers=4,
                            cache="results/verdicts")
    table = api.run_table("table1", arch="x86", bound=4)
    print(table.render())
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .enumeration import SynthesisResult
    from .events import Execution
    from .models.base import MemoryModel

__all__ = ["check", "load_model", "run_table", "synthesize"]

#: ``run_table`` table name → (harness module, driver function name).
_TABLES = {
    "table1": ("table1", "run_table1"),
    "table2": ("table2", "run_table2"),
    "figure7": ("figure7", "run_figure7"),
    "ablation": ("ablation", "run_ablation"),
}


def load_model(name: str) -> "MemoryModel":
    """The memory model registered under ``name``.

    ``repro.models.model_names()`` lists the registry; the transactional
    models of the paper are ``"x86tm"``, ``"powertm"``, ``"armv8tm"``,
    ``"cpptm"`` and the baseline ``"tsc"``.
    """
    from .models import get_model

    return get_model(name)


def check(execution: "Execution", model: "MemoryModel | str") -> bool:
    """Is ``execution`` consistent under ``model``?

    ``model`` may be a model object or a registry name.  For the axioms
    an inconsistent execution violates, call the model's
    ``violated_axioms`` method directly.
    """
    if isinstance(model, str):
        model = load_model(model)
    return model.consistent(execution)


def synthesize(
    target: str,
    bound: int,
    *,
    workers: int | None = None,
    cache: str | Path | None = None,
    checkpoint: str | Path | None = None,
    time_budget: float | None = None,
) -> "SynthesisResult":
    """The Forbid/Allow conformance suites for ``target`` up to ``bound``.

    Runs the sharded work-stealing scheduler: the result is
    byte-identical at every ``workers`` count (and to the sequential
    enumerator), only wall-clock varies.  ``cache`` points at a
    cross-run verdict-cache directory; ``checkpoint`` at a JSONL file a
    killed run resumes from.
    """
    from .harness.pipeline import CheckPipeline

    with CheckPipeline(
        workers=workers, checkpoint=checkpoint, cache=cache
    ) as pipeline:
        return pipeline.synthesis(target, bound, time_budget)


def run_table(
    table: str,
    *,
    arch: str = "x86",
    bound: int | None = None,
    workers: int | None = None,
    checkpoint: str | Path | None = None,
    cache: str | Path | None = None,
    time_budget: float | None = None,
):
    """Regenerate one of the paper's artifacts; returns its result
    object (every one has a ``render()`` method).

    ``table`` is ``"table1"``, ``"table2"``, ``"figure7"`` or
    ``"ablation"``.  ``bound`` defaults per driver (table1/figure7: 4,
    ablation: 3); ``arch``/``bound``/``time_budget`` are ignored by
    ``table2``, which fixes its own bounds.
    """
    try:
        module_name, fn_name = _TABLES[table]
    except KeyError:
        raise ValueError(
            f"unknown table {table!r}; expected one of {sorted(_TABLES)}"
        ) from None
    import importlib

    module = importlib.import_module(f".harness.{module_name}", __package__)
    fn = getattr(module, fn_name)
    common = {"workers": workers, "checkpoint": checkpoint, "cache": cache}
    if table == "table1":
        return fn(arch, bound or 4, time_budget, **common)
    if table == "table2":
        return fn(time_budget=time_budget or 600.0, **common)
    if table == "figure7":
        return fn(arch, bound or 4, time_budget, **common)
    return fn(arch, bound or 3, **common)
