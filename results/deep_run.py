"""Deep reproduction run: collects paper-scale numbers for EXPERIMENTS.md.

Writes incremental results to results/deep_run.txt so partial progress
survives interruption.  Expected total runtime: ~50 minutes single-core.
"""
import json, time, sys

OUT = open("/root/repo/results/deep_run.txt", "a")
def log(msg):
    print(msg)
    OUT.write(msg + "\n")
    OUT.flush()

log(f"=== deep run started {time.strftime('%Y-%m-%d %H:%M:%S')} ===")

from repro.enumeration import synthesise
from repro.harness import run_table1, run_figure7, run_rtl_bug
from repro.metatheory import check_monotonicity, check_compilation, check_lock_elision

# ---- 1. x86 synthesis at 4 events + validation ----
t0 = time.time()
syn_x86 = synthesise("x86", 4)
log(f"[x86 synth |E|<=4] forbid={len(syn_x86.forbidden)} "
    f"by_size={{ {', '.join(f'{k}: {len(v)}' for k,v in sorted(syn_x86.forbidden_by_size().items()))} }} "
    f"allow={len(syn_x86.allowed)} "
    f"allow_by_size={{ {', '.join(f'{k}: {len(v)}' for k,v in sorted(syn_x86.allowed_by_size().items()))} }} "
    f"candidates={syn_x86.candidates_examined} elapsed={syn_x86.elapsed:.1f}s "
    f"txn_hist={syn_x86.transaction_histogram()}")
tbl = run_table1("x86", 4, synthesis=syn_x86)
log("[x86 table1 |E|<=4]\n" + tbl.render())
fig7 = run_figure7("x86", 4, synthesis=syn_x86)
log("[x86 figure7 |E|<=4]\n" + fig7.render())
log(f"[x86 figure7] t50={fig7.time_to_fraction(0.5):.2f}s t98={fig7.time_to_fraction(0.98):.2f}s total={fig7.elapsed:.1f}s")

# ---- 2. armv8 synthesis at 3 events + rtl bug ----
syn_arm = synthesise("armv8", 3)
log(f"[armv8 synth |E|<=3] forbid={len(syn_arm.forbidden)} "
    f"by_size={{ {', '.join(f'{k}: {len(v)}' for k,v in sorted(syn_arm.forbidden_by_size().items()))} }} "
    f"allow={len(syn_arm.allowed)} candidates={syn_arm.candidates_examined} "
    f"elapsed={syn_arm.elapsed:.1f}s txn_hist={syn_arm.transaction_histogram()}")
rtl = run_rtl_bug(max_events=3)
log("[rtl-bug]\n" + rtl.render())

# ---- 3. monotonicity ----
for target, bound, budget in [("power", 2, None), ("armv8", 2, None),
                               ("x86", 4, 1800), ("cpp", 3, 1800)]:
    r = check_monotonicity(target, bound, time_budget=budget)
    note = ""
    if r.counterexample:
        x, c = r.counterexample
        note = f" cex='{c.description}' |E|={len(x)}"
    log(f"[mono {target} |E|<={bound}] holds={r.holds} checked={r.executions_checked} "
        f"elapsed={r.elapsed:.1f}s complete={r.complete}{note}")

# ---- 4. compilation ----
for target in ("x86", "power", "armv8"):
    r = check_compilation(target, 3, time_budget=1800)
    log(f"[compile C++->{target} |E|<=3] sound={r.sound} checked={r.executions_checked} "
        f"elapsed={r.elapsed:.1f}s complete={r.complete}")

# ---- 5. lock elision ----
for arch in ("x86", "power", "armv8", "armv8-fixed"):
    r = check_lock_elision(arch)
    note = ""
    if r.counterexample:
        ce = r.counterexample
        note = (f" cex bodies={'+'.join(op.kind for op in ce.body0)}"
                f"||{'+'.join(op.kind for op in ce.body1)} regs={ce.registers} mem={ce.memory}")
    log(f"[elision {arch}] sound={r.sound} outcomes={r.outcomes_checked} "
        f"elapsed={r.elapsed:.1f}s{note}")

# ---- 6. power synthesis at 4 events + validation (the long one) ----
syn_pwr = synthesise("power", 4)
log(f"[power synth |E|<=4] forbid={len(syn_pwr.forbidden)} "
    f"by_size={{ {', '.join(f'{k}: {len(v)}' for k,v in sorted(syn_pwr.forbidden_by_size().items()))} }} "
    f"allow={len(syn_pwr.allowed)} "
    f"allow_by_size={{ {', '.join(f'{k}: {len(v)}' for k,v in sorted(syn_pwr.allowed_by_size().items()))} }} "
    f"candidates={syn_pwr.candidates_examined} elapsed={syn_pwr.elapsed:.1f}s "
    f"txn_hist={syn_pwr.transaction_histogram()}")
fig7p = run_figure7("power", 4, synthesis=syn_pwr)
log(f"[power figure7] t50={fig7p.time_to_fraction(0.5):.2f}s t98={fig7p.time_to_fraction(0.98):.2f}s total={fig7p.elapsed:.1f}s")
tblp = run_table1("power", 4, synthesis=syn_pwr)
log("[power table1 |E|<=4]\n" + tblp.render())

log(f"=== deep run finished {time.strftime('%Y-%m-%d %H:%M:%S')} ===")
