"""Table 1, x86 rows: synthesis + TSX-machine validation.

Paper (SAT backend, 4-core Haswell):  |E|=2: 0 Forbid, |E|=3: 4,
|E|=4: 22, ... with **no Forbid test seen** on four TSX machines and
83% of Allow tests seen.

Reproduction (explicit enumeration, this machine): identical Forbid
counts at the shared bounds; hardware is the operational TSO+TSX
machine, against which no Forbid test is observable and all small Allow
tests are.
"""

from repro.harness.table1 import run_table1
from repro.litmus import execution_to_litmus
from repro.sim import TSOHardware


def test_table1_x86_synthesis(benchmark, x86_synthesis):
    """Benchmark: regenerate the x86 Forbid/Allow suites."""
    from repro.enumeration import synthesise

    result = benchmark.pedantic(
        lambda: synthesise("x86", 3), iterations=1, rounds=1
    )
    by_size = result.forbidden_by_size()
    assert len(by_size.get(2, [])) == 0, "paper: 0 Forbid tests at |E|=2"
    assert len(by_size.get(3, [])) == 4, "paper: 4 Forbid tests at |E|=3"


def test_table1_x86_hardware_validation(benchmark, x86_synthesis):
    """Benchmark: run the suites on the simulated TSX machine."""
    table = benchmark.pedantic(
        lambda: run_table1("x86", 3, synthesis=x86_synthesis),
        iterations=1,
        rounds=1,
    )
    assert all(row.forbid_seen == 0 for row in table.rows), (
        "a forbidden test was observed: the model would be too strong"
    )
    total_allow = sum(r.allow_total for r in table.rows)
    seen_allow = sum(r.allow_seen for r in table.rows)
    assert seen_allow / total_allow >= 0.8, "paper: 83% of Allow seen"
    print()
    print(table.render())


def test_table1_x86_single_test_cost(benchmark, x86_synthesis):
    """Benchmark: validating one Forbid test on the TSX machine (the
    unit of work the paper repeats 1M times per silicon target)."""
    test = execution_to_litmus(x86_synthesis.forbidden[0], "forbid-0")
    hardware = TSOHardware()
    seen = benchmark(
        lambda: hardware.observable(test.program, test.intended_co)
    )
    assert seen is False
