"""Table 2, Monotonicity rows.

Paper: x86 ✗ (6 events, 20 min), Power ✓ (2 events, <1 s),
ARMv8 ✓ (2 events, <1 s), C++ ✗ (6 events, 91 h on 64 cores).

Reproduction: the Power/ARMv8 counterexample (an RMW split across two
transactions, repaired by coalescing) appears at 2 events in
milliseconds; x86 and C++ hold at our bounds.
"""

from repro.metatheory import check_monotonicity


def test_monotonicity_power_counterexample(benchmark):
    result = benchmark.pedantic(
        lambda: check_monotonicity("power", 2), iterations=1, rounds=1
    )
    assert not result.holds, "paper: counterexample at 2 events"
    x, coarsening = result.counterexample
    assert len(x) == 2 and x.rmw.pairs


def test_monotonicity_armv8_counterexample(benchmark):
    result = benchmark.pedantic(
        lambda: check_monotonicity("armv8", 2), iterations=1, rounds=1
    )
    assert not result.holds, "paper: counterexample at 2 events"


def test_monotonicity_x86_holds(benchmark):
    result = benchmark.pedantic(
        lambda: check_monotonicity("x86", 3), iterations=1, rounds=1
    )
    assert result.holds and result.complete, "paper: no counterexample"


def test_monotonicity_cpp_holds(benchmark):
    result = benchmark.pedantic(
        lambda: check_monotonicity("cpp", 2), iterations=1, rounds=1
    )
    assert result.holds and result.complete, "paper: no counterexample"
