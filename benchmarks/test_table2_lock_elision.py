"""Table 2, Lock elision rows + Table 3 (the lock mappings themselves).

Paper: ARMv8 counterexample in 63 s at 7 events; x86 (8 events), Power
(9 events) and fixed ARMv8 (8 events) timed out after 48 h with no bug
found and no verdict.

Reproduction (program-level check over the §8.3 body menu):

* ARMv8: the Example 1.1 counterexample in well under a second;
* ARMv8 + DMB fix: sound (exhaustive over the menu);
* x86: sound (exhaustive over the menu);
* Power: **a counterexample** -- this reproduction's headline finding.
  The literal Fig. 6 model cannot forbid the Example 1.1 shape because
  its ``hb`` contains no ``fre`` edge for TxnOrder to lift.  The paper's
  SAT search timed out without a verdict at exactly this event count
  (9); see EXPERIMENTS.md for the full analysis.
"""

import pytest

from repro.metatheory import check_lock_elision


def test_lock_elision_armv8_unsound(benchmark):
    result = benchmark.pedantic(
        lambda: check_lock_elision("armv8"), iterations=1, rounds=1
    )
    assert not result.sound, "paper: Example 1.1 exists"
    ce = result.counterexample
    kinds = [op.kind for op in ce.body0] + [op.kind for op in ce.body1]
    assert "update" in kinds or "write" in kinds


def test_lock_elision_armv8_fixed_sound(benchmark):
    result = benchmark.pedantic(
        lambda: check_lock_elision("armv8-fixed"), iterations=1, rounds=1
    )
    assert result.sound and result.complete, "paper: DMB fix, no bug found"


def test_lock_elision_x86_sound(benchmark):
    result = benchmark.pedantic(
        lambda: check_lock_elision("x86"), iterations=1, rounds=1
    )
    assert result.sound and result.complete, "paper: no bug found"


def test_lock_elision_power_finding(benchmark):
    """Reproduction finding (paper: timeout with no verdict)."""
    result = benchmark.pedantic(
        lambda: check_lock_elision("power"), iterations=1, rounds=1
    )
    assert not result.sound
