"""Ablation bench: per-axiom attribution of the Forbid suites.

Not a paper table, but the design-choice analysis DESIGN.md calls for:
quantifies what each TM axiom contributes to the synthesised suites
(e.g. TxnCancelsRMW solely accounts for the |E|=2 Power tests; the
isolation axioms dominate the small x86 suite).
"""

from repro.enumeration import synthesise
from repro.harness.ablation import run_ablation


def test_ablation_x86(benchmark, x86_synthesis):
    result = benchmark.pedantic(
        lambda: run_ablation("x86", synthesis=x86_synthesis),
        iterations=1,
        rounds=1,
    )
    assert result.violation_counts.get("StrongIsol", 0) >= 4
    print()
    print(result.render())


def test_ablation_power(benchmark):
    synthesis = synthesise("power", 2)
    result = benchmark.pedantic(
        lambda: run_ablation("power", synthesis=synthesis),
        iterations=1,
        rounds=1,
    )
    assert result.sole_catcher_counts.get("TxnCancelsRMW", 0) == 2
    print()
    print(result.render())
