"""§6.2: the generated conformance suite catches the RTL prototype bug.

Paper: ARM architects ran the synthesised ARMv8 Forbid/Allow suites
against an RTL prototype and found a TxnOrder violation.

Reproduction: an injected-bug oracle (ARMv8+TM minus TxnOrder) plays the
RTL; the suite flags it with zero false alarms on the faithful oracle.
"""

from repro.harness import run_rtl_bug


def test_rtl_bug_detected(benchmark):
    result = benchmark.pedantic(
        lambda: run_rtl_bug(max_events=3), iterations=1, rounds=1
    )
    assert result.bug_detected, "the suite must flag the TxnOrder bug"
    assert result.false_alarms_on_good_rtl == []
    print()
    print(result.render())
