"""Every figure-level claim in the paper, re-judged by our models.

Covers Figs. 1-3 and 10, the §5.2 executions (1)-(3), Remark 5.1, the
§8.1 counterexample pair, the §9 comparison, and §B.
"""

from repro.harness import run_figures


def test_all_figure_verdicts(benchmark):
    result = benchmark.pedantic(run_figures, iterations=1, rounds=1)
    mismatches = [
        (claim.label, claim.model)
        for claim, got in result.rows
        if got != claim.expected_allowed
    ]
    assert not mismatches, f"differs from the paper: {mismatches}"
    print()
    print(result.render())


def test_single_power_verdict_cost(benchmark):
    """Micro-benchmark: one Power+TM consistency check (the unit of
    work dominating every enumeration loop)."""
    from repro.catalog.figures import power_txn_ordering
    from repro.models import get_model

    model = get_model("powertm")
    x = power_txn_ordering()
    verdict = benchmark(lambda: model.consistent(x))
    assert verdict is False


def test_single_cat_verdict_cost(benchmark):
    """Micro-benchmark: the same check through the cat interpreter."""
    from repro.cat import load_cat_model
    from repro.catalog.figures import power_txn_ordering

    model = load_cat_model("powertm")
    x = power_txn_ordering()
    verdict = benchmark(lambda: model.consistent(x))
    assert verdict is False
