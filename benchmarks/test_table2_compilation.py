"""Table 2, Compilation rows.

Paper: C++ transactions compile soundly to x86 (14 h), Power (16 h) and
ARMv8 (20 h) for all source executions with up to 6 events.

Reproduction: the same verdict (no counterexample) at our bounds, in
seconds -- the mapping is deterministic here, so the search is a single
scan over C++ executions rather than a SAT query over (X, Y, π) triples.
"""

import os

import pytest

from repro.metatheory import check_compilation

# Bound 2 keeps the benchmark suite to seconds; the bound-3 sweep
# (257,968 C++ source executions, ~90-160 s per target, same verdict)
# is recorded in EXPERIMENTS.md and enabled with REPRO_BENCH_EVENTS=3+.
BOUND = 3 if int(os.environ.get("REPRO_BENCH_EVENTS", "3")) >= 4 else 2


@pytest.mark.parametrize("target", ["x86", "power", "armv8"])
def test_compilation_sound(benchmark, target):
    result = benchmark.pedantic(
        lambda: check_compilation(target, BOUND), iterations=1, rounds=1
    )
    assert result.sound, f"paper: compilation to {target} is sound"
    assert result.complete
    assert result.executions_checked > 0
