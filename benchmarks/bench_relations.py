#!/usr/bin/env python3
"""Per-architecture smoke benchmark for the relation engine, recorded to
BENCH_relations.json.

Times the Table 1 pipeline (synthesis + hardware validation) for each
architecture -- SC, x86, Power, and ARMv8 -- and appends one timestamped
entry per architecture to ``BENCH_relations.json`` at the repo root, so
the performance trajectory stays visible per-architecture across PRs.
The synthesis phase is the workload that exercises the relation-algebra
IR executor hardest: Power runs the herding-cats ``ppo`` fixpoint plus
three reflexive-transitive closures per candidate, ARMv8 the large ``ob``
union.

Run:  PYTHONPATH=src python benchmarks/bench_relations.py [label]

Environment:
    REPRO_BENCH_EVENTS   event bound for the synthesis runs (default 3)
    REPRO_BENCH_ARCHES   comma-separated subset of sc,x86,power,armv8
                         (default: all four)
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.enumeration import synthesise  # noqa: E402
from repro.harness import CheckPipeline  # noqa: E402
from repro.harness.table1 import run_table1  # noqa: E402

RESULTS_FILE = REPO_ROOT / "BENCH_relations.json"
DEFAULT_ARCHES = ("sc", "x86", "power", "armv8")


def bench(arch: str, bound: int) -> dict:
    t0 = time.monotonic()
    synthesis = synthesise(arch, bound)
    synth_seconds = time.monotonic() - t0

    with CheckPipeline() as pipeline:
        t0 = time.monotonic()
        table = run_table1(arch, bound, synthesis=synthesis, pipeline=pipeline)
        validate_seconds = time.monotonic() - t0

    forbid_total = sum(r.forbid_total for r in table.rows)
    allow_total = sum(r.allow_total for r in table.rows)
    return {
        "bench": f"table1_{arch}",
        "event_bound": bound,
        "synthesis_seconds": round(synth_seconds, 3),
        "validation_seconds": round(validate_seconds, 3),
        "total_seconds": round(synth_seconds + validate_seconds, 3),
        "candidates_examined": synthesis.candidates_examined,
        "forbid_tests": forbid_total,
        "allow_tests": allow_total,
    }


def main() -> None:
    bound = int(os.environ.get("REPRO_BENCH_EVENTS", "3"))
    arches = tuple(
        a.strip()
        for a in os.environ.get(
            "REPRO_BENCH_ARCHES", ",".join(DEFAULT_ARCHES)
        ).split(",")
        if a.strip()
    )
    label = sys.argv[1] if len(sys.argv) > 1 else "local"
    history = []
    if RESULTS_FILE.exists():
        history = json.loads(RESULTS_FILE.read_text())
    for arch in arches:
        entry = {
            "recorded": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "label": label,
            "python": platform.python_version(),
            **bench(arch, bound),
        }
        history.append(entry)
        print(json.dumps(entry, indent=2))
    RESULTS_FILE.write_text(json.dumps(history, indent=2) + "\n")
    print(f"recorded to {RESULTS_FILE}")


if __name__ == "__main__":
    main()
