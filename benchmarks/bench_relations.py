#!/usr/bin/env python3
"""Smoke benchmark for the relation engine, recorded to BENCH_relations.json.

Times the Table 1 x86 pipeline (synthesis + hardware validation) -- the
workload that exercises the relation-algebra kernel hardest -- and
appends a timestamped entry to ``BENCH_relations.json`` at the repo
root, so the performance trajectory stays visible across PRs.

Run:  PYTHONPATH=src python benchmarks/bench_relations.py [label]

Environment:
    REPRO_BENCH_EVENTS   event bound for the synthesis run (default 3)
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.enumeration import synthesise  # noqa: E402
from repro.harness import CheckPipeline, run_table1  # noqa: E402

RESULTS_FILE = REPO_ROOT / "BENCH_relations.json"


def bench(bound: int) -> dict:
    t0 = time.monotonic()
    synthesis = synthesise("x86", bound)
    synth_seconds = time.monotonic() - t0

    pipeline = CheckPipeline()
    t0 = time.monotonic()
    table = run_table1("x86", bound, synthesis=synthesis, pipeline=pipeline)
    validate_seconds = time.monotonic() - t0

    forbid_total = sum(r.forbid_total for r in table.rows)
    allow_total = sum(r.allow_total for r in table.rows)
    return {
        "bench": "table1_x86",
        "event_bound": bound,
        "synthesis_seconds": round(synth_seconds, 3),
        "validation_seconds": round(validate_seconds, 3),
        "total_seconds": round(synth_seconds + validate_seconds, 3),
        "candidates_examined": synthesis.candidates_examined,
        "forbid_tests": forbid_total,
        "allow_tests": allow_total,
    }


def main() -> None:
    bound = int(os.environ.get("REPRO_BENCH_EVENTS", "3"))
    label = sys.argv[1] if len(sys.argv) > 1 else "local"
    entry = {
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "label": label,
        "python": platform.python_version(),
        **bench(bound),
    }
    history = []
    if RESULTS_FILE.exists():
        history = json.loads(RESULTS_FILE.read_text())
    history.append(entry)
    RESULTS_FILE.write_text(json.dumps(history, indent=2) + "\n")
    print(json.dumps(entry, indent=2))
    print(f"recorded to {RESULTS_FILE}")


if __name__ == "__main__":
    main()
