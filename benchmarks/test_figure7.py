"""Figure 7: the discovery-time distribution of Forbid tests.

Paper: for the 7-event x86 run, 98% of the 313 tests are found within
the first 6% of the 34-hour run.

Reproduction: the same front-loaded shape at our bounds -- most tests
appear early in the enumeration, the remaining wall-clock confirms
exhaustion.
"""

from repro.harness.figure7 import run_figure7


def test_figure7_distribution(benchmark, x86_synthesis):
    fig = benchmark.pedantic(
        lambda: run_figure7(
            "x86", x86_synthesis.max_events, synthesis=x86_synthesis
        ),
        iterations=1,
        rounds=1,
    )
    assert fig.discovery_times, "no Forbid tests found"
    assert fig.fraction_found_by(fig.elapsed) == 1.0
    # The curve is front-loaded: every test is found before the run
    # ends (the tail of the run only confirms exhaustiveness).
    assert fig.time_to_fraction(1.0) <= fig.elapsed
    print()
    print(fig.render())


def test_figure7_percentile_queries(benchmark, x86_synthesis):
    fig = run_figure7("x86", x86_synthesis.max_events, synthesis=x86_synthesis)
    benchmark(lambda: (fig.time_to_fraction(0.5), fig.time_to_fraction(0.98)))
