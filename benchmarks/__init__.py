"""Benchmark suite (package-scoped so module basenames may overlap with
tests/)."""
