"""Differential fuzzing throughput.

Each fuzz case runs 4 verdict paths x 6 models plus (usually) a
simulated-machine check, so cases/second is the honest unit for "how
far beyond the enumeration bound can a CI budget reach".  Fixed seeds
keep the workload identical across runs and machines.
"""

from repro.fuzz import FuzzConfig, run_fuzz


def test_fuzz_throughput_x86(benchmark):
    """Benchmark: a 200-case x86 campaign through the full oracle
    matrix (the CI smoke lane's workload)."""
    report = benchmark.pedantic(
        lambda: run_fuzz(
            FuzzConfig(arch="x86", seed=7, budget=200, corpus=None)
        ),
        iterations=1,
        rounds=1,
    )
    assert report.clean
    assert report.cases == 200


def test_fuzz_throughput_power(benchmark):
    """Benchmark: Power campaign — the sim oracle here is the
    candidate-enumerating axiomatic machine, the matrix's slow path."""
    report = benchmark.pedantic(
        lambda: run_fuzz(
            FuzzConfig(arch="power", seed=7, budget=100, corpus=None)
        ),
        iterations=1,
        rounds=1,
    )
    assert report.clean
    assert report.cases == 100


def test_shrink_cost(benchmark):
    """Benchmark: catching + shrinking every witness of an injected
    model mutation (the fuzzer's worst-case inner loop)."""
    report = benchmark.pedantic(
        lambda: run_fuzz(
            FuzzConfig(
                arch="x86",
                seed=7,
                budget=64,
                corpus=None,
                mutant=("x86tm", ("Coherence",)),
            )
        ),
        iterations=1,
        rounds=1,
    )
    assert not report.clean
    assert all(
        len(d["execution"]["events"]) <= 6 for d in report.discrepancies
    )
