"""Shared fixtures for the benchmark harness.

Synthesis results are cached per session so that the Table 1 and
Figure 7 benchmarks (which share a synthesis run, exactly as in the
paper) do not recompute the suites.

Bounds: exhaustive synthesis is exponential in the event bound.  The
defaults here finish in minutes on one core; EXPERIMENTS.md records the
deeper runs (x86 |E| ≤ 4: 22 tests = the paper's count; Power |E| ≤ 4:
60 tests = the paper's count) which take ~20s and ~35 min respectively.
Set REPRO_BENCH_EVENTS=4 to run those inside the suite.
"""

from __future__ import annotations

import os

import pytest

from repro.enumeration import synthesise

EVENT_BOUND = int(os.environ.get("REPRO_BENCH_EVENTS", "3"))


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ is benchmark-style: part of tier-1,
    but excluded from the fast ``-m "not slow"`` CI lane.

    (The hook sees the whole session's items, so restrict to this
    directory's.)
    """
    here = os.path.dirname(__file__)
    for item in items:
        if str(item.fspath).startswith(here + os.sep):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def x86_synthesis():
    return synthesise("x86", EVENT_BOUND)


@pytest.fixture(scope="session")
def power_synthesis():
    return synthesise("power", min(EVENT_BOUND, 3))


@pytest.fixture(scope="session")
def armv8_synthesis():
    return synthesise("armv8", 3)
