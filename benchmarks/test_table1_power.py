"""Table 1, Power rows: synthesis + POWER8-oracle validation.

Paper (SAT backend): |E|=2: 2 Forbid, |E|=3: 9, |E|=4: 60, ... with no
Forbid test seen on an 80-core POWER8 and 88% of Allow tests seen (the
unseen ones dominated by LB shapes).

Reproduction: |E|=2 gives exactly the paper's 2 tests (the split-RMW
TxnCancelsRMW pair) and |E|=4 gives exactly the paper's 60 (run
separately, ~35 min -- see EXPERIMENTS.md); |E|=3 finds 4 vs. the
paper's 9, a documented open discrepancy.  The POWER8 oracle sees no
Forbid test, and hides LB-shaped Allow tests exactly as real silicon
does.
"""

from repro.harness.table1 import run_table1


def test_table1_power_synthesis(benchmark):
    from repro.enumeration import synthesise

    result = benchmark.pedantic(
        lambda: synthesise("power", 2), iterations=1, rounds=1
    )
    assert len(result.forbidden) == 2, "paper: 2 Forbid tests at |E|=2"
    for x in result.forbidden:
        assert x.rmw.pairs, "both |E|=2 tests are split RMWs"
        assert len(x.txn_classes) == 1


def test_table1_power_hardware_validation(benchmark, power_synthesis):
    table = benchmark.pedantic(
        lambda: run_table1(
            "power", power_synthesis.max_events, synthesis=power_synthesis
        ),
        iterations=1,
        rounds=1,
    )
    assert all(row.forbid_seen == 0 for row in table.rows)
    total_allow = sum(r.allow_total for r in table.rows)
    seen_allow = sum(r.allow_seen for r in table.rows)
    assert seen_allow / max(total_allow, 1) >= 0.8, "paper: 88% of Allow seen"
    print()
    print(table.render())


def test_power8_oracle_hides_lb(benchmark):
    """The implementation-conservatism knob: LB-shaped tests are never
    seen on the simulated POWER8, matching §5.3's observation."""
    from repro.catalog.classics import lb
    from repro.litmus import execution_to_litmus
    from repro.models import get_model
    from repro.sim import OracleHardware

    oracle = OracleHardware.power8(get_model("powertm"))
    test = execution_to_litmus(lb(), "LB")
    seen = benchmark(lambda: oracle.observable(test.program, test.intended_co))
    assert seen is False
