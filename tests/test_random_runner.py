"""The randomised (Litmus-tool-style) runner: determinism and soundness.

Sound means: whatever random scheduling observes must be in the
exhaustive explorer's outcome set -- the sampler explores a subset of
the same transition system, never beyond it.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog import classics
from repro.litmus import execution_to_litmus
from repro.sim.random_runner import RandomisedRunner, SamplingResult
from repro.sim.tso import TSOMachine


def _sb_program():
    return execution_to_litmus(classics.sb(), "sb").program


def test_fixed_seed_reproduces_the_run_sequence():
    program = _sb_program()
    runs = [
        [RandomisedRunner(program, seed=42).run_once() for _ in range(30)],
        [RandomisedRunner(program, seed=42).run_once() for _ in range(30)],
    ]
    assert runs[0] == runs[1]


def test_injected_rng_wins_over_seed():
    program = _sb_program()
    a = RandomisedRunner(program, seed=1, rng=random.Random(42))
    b = RandomisedRunner(program, seed=2, rng=random.Random(42))
    assert [a.run_once() for _ in range(20)] == [
        b.run_once() for _ in range(20)
    ]


def test_env_seed_is_honoured(monkeypatch):
    program = _sb_program()
    monkeypatch.setenv("REPRO_FUZZ_SEED", "123")
    from_env = [RandomisedRunner(program).run_once() for _ in range(20)]
    explicit = [
        RandomisedRunner(program, seed=123).run_once() for _ in range(20)
    ]
    assert from_env == explicit


def test_env_seed_defaults_to_zero(monkeypatch):
    program = _sb_program()
    monkeypatch.delenv("REPRO_FUZZ_SEED", raising=False)
    assert (
        RandomisedRunner(program).run_once()
        == RandomisedRunner(program, seed=0).run_once()
    )


def test_sample_tally_arithmetic():
    program = _sb_program()
    result = RandomisedRunner(program, seed=7).sample(runs=200)
    assert result.runs == 200
    assert sum(result.outcomes.values()) == result.runs
    assert 0 <= result.matching <= result.runs
    assert result.rate == result.matching / result.runs
    assert result.observed == (result.matching > 0)


def test_empty_sample_rate_is_zero():
    result = SamplingResult(runs=0, matching=0)
    assert result.rate == 0.0
    assert not result.observed


def test_stop_on_first_short_circuits():
    # SB's weak outcome shows up fast under TSO; stopping early must
    # leave runs < the requested budget (with overwhelming probability
    # under this fixed seed) and exactly one match.
    program = _sb_program()
    result = RandomisedRunner(program, seed=3).sample(
        runs=10_000, stop_on_first=True
    )
    assert result.observed
    assert result.matching == 1
    assert result.runs < 10_000


@pytest.mark.parametrize(
    "factory,kwargs",
    [
        (classics.sb, {}),
        (classics.sb, {"fences": "mfence"}),
        (classics.mp, {}),
        (classics.corr, {}),
        (classics.sb_txn, {}),
    ],
)
def test_sampled_outcomes_are_a_subset_of_exhaustive(factory, kwargs):
    program = execution_to_litmus(factory(**kwargs), "t").program
    exhaustive = TSOMachine(program).outcomes()
    sampled = RandomisedRunner(program, seed=11).sample(runs=300)
    assert set(sampled.outcomes) <= exhaustive
