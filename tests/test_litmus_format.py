"""The .litmus interchange format: write/parse round trips and errors."""

import pytest

from repro.catalog import classics, figures
from repro.litmus import (
    AbortUnless,
    Fence,
    LitmusFormatError,
    Load,
    LoadLinked,
    MemEquals,
    Postcondition,
    Program,
    RegEquals,
    Rmw,
    Store,
    StoreConditional,
    TxBegin,
    TxEnd,
    TxnsSucceeded,
    execution_to_litmus,
    parse_litmus,
    write_litmus,
)

ROUND_TRIP_SOURCES = [
    ("sb", classics.sb),
    ("sb+mfence", lambda: classics.sb("mfence")),
    ("mp+lwsync+addr", lambda: classics.mp(fence="lwsync", dep="addr")),
    ("mp-acqrel", lambda: classics.mp(acq_rel=True)),
    ("lb+deps", lambda: classics.lb(deps=True)),
    ("fig2", figures.fig2),
    ("fig10", figures.fig10_concrete),
    ("split-rmw", figures.monotonicity_split_rmw),
    ("iriw-txn", figures.power_txn_ordering),
]


@pytest.mark.parametrize("name,factory", ROUND_TRIP_SOURCES)
def test_round_trip(name, factory):
    program = execution_to_litmus(factory(), name).program
    assert parse_litmus(write_litmus(program)) == program


def test_round_trip_exotic_instructions():
    program = Program(
        "exotic",
        (
            (
                Rmw("r0", "m", 1, read_tags={"ACQ"}, status_ctrl=True),
                Fence("ISYNC", ctrl_regs=("r0",)),
                TxBegin(atomic=True),
                Load("r1", "x", addr_regs=("r0",)),
                AbortUnless("r1", 0, induce_ctrl=True),
                Store("y", 3, data_regs=("r1",), ctrl_regs=("r0",)),
                TxEnd(),
                LoadLinked("r2", "z"),
                StoreConditional("z", 7, link="r2"),
            ),
        ),
        Postcondition(
            (RegEquals(0, "r1", 0), MemEquals("y", 3), TxnsSucceeded())
        ),
    )
    assert parse_litmus(write_litmus(program)) == program


def test_written_form_is_readable():
    text = write_litmus(execution_to_litmus(figures.fig2(), "fig2").program)
    assert 'litmus "fig2"' in text
    assert "txbegin" in text and "txend" in text
    assert "test:" in text and "ok=1" in text


def test_comments_and_blank_lines_ignored():
    program = parse_litmus(
        """
        litmus "commented"   # trailing comments are stripped
        # a full-line comment
        thread 0:

          store x 1
        test: x=1
        """
    )
    assert program.name == "commented"
    assert len(program.threads[0]) == 1


def test_empty_postcondition():
    program = parse_litmus('litmus "t"\nthread 0:\n  store x 1\ntest: true')
    assert program.postcondition.atoms == ()


class TestParseErrors:
    def test_bad_header(self):
        with pytest.raises(LitmusFormatError, match="header"):
            parse_litmus("litmus unquoted\n")

    def test_threads_out_of_order(self):
        with pytest.raises(LitmusFormatError, match="order"):
            parse_litmus('litmus "t"\nthread 1:\n  store x 1\ntest: true')

    def test_instruction_outside_thread(self):
        with pytest.raises(LitmusFormatError, match="outside"):
            parse_litmus('litmus "t"\nstore x 1\n')

    def test_unknown_instruction(self):
        with pytest.raises(LitmusFormatError, match="unknown instruction"):
            parse_litmus('litmus "t"\nthread 0:\n  launch x\ntest: true')

    def test_bad_atom(self):
        with pytest.raises(LitmusFormatError, match="atom"):
            parse_litmus('litmus "t"\nthread 0:\n  store x 1\ntest: x>1')

    def test_storecond_without_link(self):
        with pytest.raises(LitmusFormatError, match="link"):
            parse_litmus(
                'litmus "t"\nthread 0:\n'
                "  loadlinked r0 x\n  storecond x 1\ntest: true"
            )

    def test_malformed_load(self):
        with pytest.raises(LitmusFormatError):
            parse_litmus('litmus "t"\nthread 0:\n  load r0\ntest: true')
