"""Fuzzing the cat lexer/parser: hostile input may be rejected, but
only ever with a :class:`~repro.cat.errors.CatError` subclass.

Three generators -- random character soup, random streams of *valid*
tokens, and mutated copies of the bundled ``.cat`` models -- plus
regression cases pinning the failures the fuzzers found (deep paren
nesting and long complement chains used to escape as RecursionError).
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.cat.ast import Model
from repro.cat.errors import CatError, CatSyntaxError
from repro.cat.lexer import KEYWORDS, SIMPLE_TOKENS, tokenize
from repro.cat.loader import MODELS_DIR
from repro.cat.parser import _MAX_DEPTH, parse

BUNDLED = sorted(Path(MODELS_DIR).glob("*.cat"))

_CHAR_POOL = (
    "abcdefgXYZ_0123456789 \t\n\"'|&\\;+*?~()[]=,^-. <>{}@#$%!"
    + "let rec and as acyclic irreflexive empty (* *) ^-1 po rf"
)

_TOKEN_POOL = (
    list(SIMPLE_TOKENS)
    + list(KEYWORDS)
    + ["^-1", '"name"', "po", "rf", "co", "fr", "cross", "0"]
)


def _assert_parses_or_cat_error(source: str) -> None:
    """The only acceptable outcomes: a Model, or a CatError subclass."""
    try:
        model = parse(source)
    except CatError:
        return
    assert isinstance(model, Model)


def test_fuzz_character_soup():
    rng = random.Random(0xCA7)
    for _ in range(400):
        length = rng.randrange(0, 120)
        source = "".join(rng.choice(_CHAR_POOL) for _ in range(length))
        _assert_parses_or_cat_error(source)


def test_fuzz_random_token_streams():
    """Streams of individually-valid tokens in random order: the parser
    must reject bad arrangements grammatically, never crash."""
    rng = random.Random(0x70CE)
    for _ in range(400):
        stream = [rng.choice(_TOKEN_POOL) for _ in range(rng.randrange(0, 60))]
        _assert_parses_or_cat_error('"fuzz" ' + " ".join(stream))
        _assert_parses_or_cat_error(" ".join(stream))


def _mutate(source: str, rng: random.Random) -> str:
    kind = rng.randrange(4)
    if not source:
        return rng.choice(_CHAR_POOL)
    position = rng.randrange(len(source))
    if kind == 0:  # delete a span
        return source[:position] + source[position + rng.randrange(1, 12) :]
    if kind == 1:  # insert noise
        noise = "".join(
            rng.choice(_CHAR_POOL) for _ in range(rng.randrange(1, 8))
        )
        return source[:position] + noise + source[position:]
    if kind == 2:  # duplicate a span
        span = source[position : position + rng.randrange(1, 24)]
        return source[:position] + span + span + source[position:]
    return source[:position]  # truncate


def test_fuzz_mutated_bundled_models():
    assert BUNDLED, "bundled .cat models must exist"
    rng = random.Random(0xBEEF)
    for path in BUNDLED:
        source = path.read_text()
        for _ in range(60):
            mutated = source
            for _ in range(rng.randrange(1, 4)):
                mutated = _mutate(mutated, rng)
            _assert_parses_or_cat_error(mutated)


def test_bundled_models_still_parse_unmutated():
    for path in BUNDLED:
        model = parse(path.read_text())
        assert isinstance(model, Model)
        assert model.statements


# ---------------------------------------------------------------------------
# Regressions pinned from fuzzing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bracket", [("(", ")"), ("[", "]")])
def test_regression_deep_nesting_raises_cat_error(bracket):
    """Found by fuzzing: ~120 nesting levels used to blow the Python
    stack (RecursionError, not CatError).  The parser now enforces a
    depth bound."""
    opening, closing = bracket
    deep = '"m" let x = ' + opening * 5000 + "po" + closing * 5000
    with pytest.raises(CatSyntaxError, match="nesting"):
        parse(deep)


def test_regression_nesting_just_below_the_bound_parses():
    depth = _MAX_DEPTH - 2
    source = '"m" let x = ' + "(" * depth + "po" + ")" * depth
    assert isinstance(parse(source), Model)


def test_regression_long_tilde_chain_parses_iteratively():
    """Found by fuzzing: complement chains recursed outside the depth
    accounting; they now parse iteratively in constant stack."""
    model = parse('"m" let x = ' + "~" * 5000 + "po")
    expr = model.statements[0].bindings[0].value
    for _ in range(5000):
        expr = expr.operand
    assert expr.name == "po"


def test_regression_unterminated_input_raises_cat_error():
    for source in ('"m', '"m" (*', '"m" let x = (po', '"m" let x ='):
        with pytest.raises(CatError):
            parse(source)


def test_lexer_rejects_junk_with_position():
    with pytest.raises(CatSyntaxError) as excinfo:
        tokenize('"m"\nlet x = €')
    assert excinfo.value.line == 2
