"""Cross-model properties checked by exhaustive enumeration (§3.4).

The paper situates its TM models between two bounds: the isolation
axioms below, TSC above.  These tests verify the sandwich -- and several
other structural claims -- over *every* well-formed execution up to a
small event bound, in the spirit of the paper's own bounded
verification.
"""

import pytest

from repro.models import (
    CppModel,
    get_model,
    strongly_isolated,
    weakly_isolated,
)


@pytest.fixture(
    params=["x86", "power", "armv8"], scope="module"
)
def hw_target(request):
    return request.param


def _executions(request, target):
    return request.getfixturevalue(f"{target}_executions_3")


@pytest.mark.parametrize("target", ["x86", "power", "armv8"])
def test_tm_consistent_implies_strongly_isolated(target, request):
    """Lower bound: the hardware TM models all include StrongIsol."""
    model = get_model(f"{target}tm")
    for x in _executions(request, target):
        if x.txn_of and model.consistent(x):
            assert strongly_isolated(x), x.describe()


def test_cpp_consistent_implies_weakly_isolated(cpp_executions_3):
    """§7.2's ☑-marked claim: WeakIsol follows from the other C++
    axioms (for relaxed transactions)."""
    model = CppModel(transactional=True)
    for x in cpp_executions_3:
        if x.txn_of and model.consistent(x):
            assert weakly_isolated(x), x.describe()


@pytest.mark.parametrize("target,model_name", [
    ("x86", "x86tm"),
    ("power", "powertm"),
    ("armv8", "armv8tm"),
    ("sc", "tsc"),
])
def test_tsc_consistent_implies_model_consistent(target, model_name, request):
    """Upper bound: TSC is stronger than every TM model -- on executions
    without RMWs (the RMW-atomicity axioms are orthogonal to TSC)."""
    tsc = get_model("tsc")
    model = get_model(model_name)
    for x in _executions(request, target):
        if x.rmw.pairs:
            continue
        if tsc.consistent(x):
            assert model.consistent(x), (
                f"TSC allows but {model.name} forbids:\n{x.describe()}\n"
                f"violated: {model.violated_axioms(x)}"
            )


@pytest.mark.parametrize("target", ["x86", "power", "armv8"])
def test_tm_consistent_implies_baseline_consistent(target, request):
    """The TM axioms only strengthen: TM-consistent executions are
    baseline-consistent."""
    model = get_model(f"{target}tm")
    baseline = model.baseline()
    for x in _executions(request, target):
        if model.consistent(x):
            assert baseline.consistent(x), x.describe()


@pytest.mark.parametrize("target", ["x86", "power", "armv8", "cpp"])
def test_txn_free_executions_agree_with_baseline(target, request):
    """'Our TM models give the same semantics to transaction-free
    programs as the original models' (§8, ☑-marked)."""
    model = get_model(f"{target}tm")
    baseline = model.baseline()
    for x in _executions(request, target):
        if not x.txn_of:
            assert model.consistent(x) == baseline.consistent(x)


def test_sc_consistent_implies_hw_consistent(sc_executions_3):
    """SC is the strongest non-transactional model."""
    sc = get_model("sc")
    hw_models = [get_model(n) for n in ("x86", "power", "armv8")]
    for x in sc_executions_3:
        if x.rmw.pairs:
            continue
        if sc.consistent(x):
            for model in hw_models:
                assert model.consistent(x), (
                    f"SC allows but {model.name} forbids:\n{x.describe()}"
                )


def test_conflicts_covered_by_extended_communication(cpp_executions_3):
    """§7.2's ☑-marked identity: cnf = ecom ∪ ecom⁻¹."""
    model = CppModel(transactional=True)
    for x in cpp_executions_3:
        cnf = model.conflicts(x)
        ecom = model.ecom(x)
        covered = ecom | ecom.inverse()
        assert cnf.pairs <= covered.pairs, x.describe()


def test_tsc_txn_order_subsumes_strong_isolation(sc_executions_3):
    """§3.4: 'TxnOrder subsumes the StrongIsol axiom'."""
    tsc = get_model("tsc")
    for x in sc_executions_3:
        if tsc.consistent(x):
            assert strongly_isolated(x), x.describe()
