"""The Memalloy-replacement enumeration engine (§4.2)."""

import pytest

from repro.catalog import figures
from repro.enumeration import (
    canonical_key,
    dedup,
    enumerate_executions,
    enumerate_skeletons,
    get_config,
    interval_sets,
    is_minimal_inconsistent,
    partitions,
    restricted_growth_strings,
    synthesise,
    weakenings,
)
from repro.events import ACQ, ExecutionBuilder
from repro.models import get_model


class TestCombinatorics:
    def test_partitions_count(self):
        # p(n): 1, 2, 3, 5, 7 for n = 1..5
        for n, count in [(1, 1), (2, 2), (3, 3), (4, 5), (5, 7)]:
            assert len(list(partitions(n))) == count

    def test_partitions_non_increasing(self):
        for p in partitions(5):
            assert list(p) == sorted(p, reverse=True)

    def test_interval_sets_counts(self):
        # F(k) = F(k-1) + Σ F(j): 1, 2, 5, 13, 34 (odd-index Fibonacci).
        for k, count in [(0, 1), (1, 2), (2, 5), (3, 13), (4, 34)]:
            assert len(list(interval_sets(k))) == count

    def test_interval_sets_disjoint(self):
        for layout in interval_sets(4):
            covered = [i for s, e in layout for i in range(s, e)]
            assert len(covered) == len(set(covered))

    def test_rgs_counts_are_bell_numbers(self):
        # B(n): 1, 2, 5, 15 for n = 1..4.
        for n, bell in [(1, 1), (2, 2), (3, 5), (4, 15)]:
            assert len(list(restricted_growth_strings(n))) == bell

    def test_rgs_canonical(self):
        for code in restricted_growth_strings(4):
            assert code[0] == 0
            for i in range(1, 4):
                assert code[i] <= max(code[:i]) + 1


class TestShapes:
    def test_no_boundary_fences(self):
        config = get_config("x86")
        for sk in enumerate_skeletons(config, 3):
            for seq in sk.threads:
                if seq:
                    assert sk.events[seq[0]].kind != "F"
                    assert sk.events[seq[-1]].kind != "F"

    def test_all_skeleton_completions_well_formed(self):
        from repro.events import is_well_formed

        config = get_config("armv8")
        count = 0
        for x in enumerate_executions(config, 2):
            count += 1
            assert is_well_formed(x), x.describe()
        assert count > 0

    def test_x86_has_no_dependencies(self):
        config = get_config("x86")
        for x in enumerate_executions(config, 3):
            assert x.deps.is_empty()

    def test_cpp_atomic_txns_all_na(self):
        from repro.events import NA

        config = get_config("cpp")
        seen_atomic = False
        for x in enumerate_executions(config, 2):
            for txn in x.atomic_txns:
                seen_atomic = True
                for eid, t in x.txn_of.items():
                    if t == txn:
                        assert NA in x.event(eid).tags
        assert seen_atomic

    def test_rmw_pairs_do_not_overlap(self):
        config = get_config("power")
        for sk in enumerate_skeletons(config, 3):
            used = [e for pair in sk.rmw for e in pair]
            assert len(used) == len(set(used))


class TestCanonical:
    def test_thread_permutation_invariance(self):
        b1 = ExecutionBuilder()
        t0, t1 = b1.thread(), b1.thread()
        w = t0.write("x")
        r = t1.read("x")
        b1.rf(w, r)
        x1 = b1.build()

        b2 = ExecutionBuilder()
        t0, t1 = b2.thread(), b2.thread()
        r = t0.read("x")
        w = t1.write("x")
        b2.rf(w, r)
        x2 = b2.build()

        assert canonical_key(x1) == canonical_key(x2)

    def test_location_renaming_invariance(self):
        def build(loc):
            b = ExecutionBuilder()
            t0 = b.thread()
            t0.write(loc)
            t0.read(loc)
            return b.build()

        assert canonical_key(build("x")) == canonical_key(build("y"))

    def test_distinguishes_tags(self):
        def build(tags):
            b = ExecutionBuilder()
            t0 = b.thread()
            t0.read("x", tags=tags)
            return b.build()

        assert canonical_key(build(set())) != canonical_key(build({ACQ}))

    def test_distinguishes_txn_structure(self):
        assert canonical_key(
            figures.monotonicity_split_rmw()
        ) != canonical_key(figures.monotonicity_joined_rmw())

    def test_dedup(self):
        xs = [figures.fig2(), figures.fig2(), figures.fig1()]
        assert len(dedup(xs)) == 2


class TestMinimality:
    def test_weakenings_include_event_removal(self):
        x = figures.fig2()
        config = get_config("x86")
        children = list(weakenings(x, config))
        sizes = {len(c) for c in children}
        assert 2 in sizes  # an event was removed

    def test_weakenings_include_detransactionalisation(self):
        x = figures.fig2()
        config = get_config("x86")
        assert any(
            len(c) == len(x) and len(c.txn_of) < len(x.txn_of)
            for c in weakenings(x, config)
        )

    def test_armv8_downgrades_acquire(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        t0.read("x", tags={ACQ})
        x = b.build()
        config = get_config("armv8")
        assert any(
            0 in c.eids and not c.event(0).tags
            for c in weakenings(x, config)
        )

    def test_fig3a_is_minimal_for_x86(self):
        assert is_minimal_inconsistent(
            figures.fig3a(), get_model("x86tm"), get_config("x86")
        )

    def test_fig3c_is_not_minimal_for_x86(self):
        """Removing fig3c's external write leaves a coherence violation,
        so fig3c is inconsistent but not *minimally* so."""
        x = figures.fig3c()
        model = get_model("x86tm")
        assert not model.consistent(x)
        assert not is_minimal_inconsistent(x, model, get_config("x86"))

    def test_two_txn_split_rmw_is_not_minimal_for_power(self):
        """Detransactionalising one singleton still leaves the RMW
        crossing the *other* transaction's boundary, so the §8.1
        two-transaction execution is inconsistent but not minimal."""
        assert not is_minimal_inconsistent(
            figures.monotonicity_split_rmw(),
            get_model("powertm"),
            get_config("power"),
        )

    def test_one_txn_split_rmw_is_minimal_for_power(self):
        """The minimal TxnCancelsRMW shapes have a single transaction --
        exactly the two |E|=2 Forbid tests of Table 1."""
        b = ExecutionBuilder()
        t0 = b.thread()
        with t0.transaction():
            r = t0.read("x")
        w = t0.write("x")
        b.rmw(r, w)
        x = b.build()
        assert is_minimal_inconsistent(
            x, get_model("powertm"), get_config("power")
        )

    def test_consistent_execution_is_not_minimal_inconsistent(self):
        assert not is_minimal_inconsistent(
            figures.fig1(), get_model("x86tm"), get_config("x86")
        )


class TestSynthesis:
    """The headline quantitative reproduction: Forbid counts match the
    paper's Table 1 at the shared bounds."""

    @pytest.fixture(scope="class")
    def x86_synthesis(self):
        return synthesise("x86", 3)

    def test_x86_forbid_counts_match_paper(self, x86_synthesis):
        by_size = x86_synthesis.forbidden_by_size()
        # Table 1: x86 |E|=2 -> 0 tests, |E|=3 -> 4 tests.
        assert len(by_size.get(2, [])) == 0
        assert len(by_size.get(3, [])) == 4

    def test_power_forbid_counts_at_two_events(self):
        result = synthesise("power", 2)
        # Table 1: Power |E|=2 -> 2 tests (the split-RMW pair).
        assert len(result.forbidden) == 2
        for x in result.forbidden:
            assert x.rmw.pairs, "both 2-event tests are split RMWs"

    def test_forbidden_are_baseline_consistent(self, x86_synthesis):
        baseline = get_model("x86")
        for x in x86_synthesis.forbidden:
            assert baseline.consistent(x)

    def test_forbidden_are_tm_inconsistent_and_minimal(self, x86_synthesis):
        model = get_model("x86tm")
        config = get_config("x86")
        for x in x86_synthesis.forbidden:
            assert not model.consistent(x)
            assert is_minimal_inconsistent(x, model, config)

    def test_allowed_are_tm_consistent(self, x86_synthesis):
        model = get_model("x86tm")
        for x in x86_synthesis.allowed:
            assert model.consistent(x)

    def test_no_duplicates_up_to_isomorphism(self, x86_synthesis):
        keys = [canonical_key(x) for x in x86_synthesis.forbidden]
        assert len(keys) == len(set(keys))

    def test_discovery_times_monotone(self, x86_synthesis):
        times = x86_synthesis.discovery_times
        assert times == sorted(times)
        assert len(times) == len(x86_synthesis.forbidden)

    def test_time_budget_marks_incomplete(self):
        result = synthesise("power", 4, time_budget=0.3)
        assert not result.complete

    def test_transaction_histogram(self, x86_synthesis):
        hist = x86_synthesis.transaction_histogram()
        assert hist.get(1, 0) == 4  # all 3-event x86 tests have one txn
