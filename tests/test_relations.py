"""Unit tests for the relational algebra (§2.1)."""

import pytest

from repro.relations import (
    Relation,
    inter_thread,
    intra_thread,
    stronglift,
    weaklift,
)


class TestConstruction:
    def test_empty(self):
        r = Relation.empty({1, 2})
        assert r.is_empty()
        assert r.universe == {1, 2}

    def test_pairs_widen_universe(self):
        r = Relation([(1, 2)], universe={1})
        assert r.universe == {1, 2}

    def test_identity(self):
        r = Relation.identity({1, 2, 3})
        assert r.pairs == {(1, 1), (2, 2), (3, 3)}

    def test_full(self):
        r = Relation.full({1, 2})
        assert len(r) == 4

    def test_from_set(self):
        r = Relation.from_set({1, 3}, universe={1, 2, 3})
        assert r.pairs == {(1, 1), (3, 3)}
        assert r.universe == {1, 2, 3}

    def test_cross(self):
        r = Relation.cross({1}, {2, 3})
        assert r.pairs == {(1, 2), (1, 3)}


class TestAccessors:
    def test_domain_range_field(self):
        r = Relation([(1, 2), (2, 3)])
        assert r.domain() == {1, 2}
        assert r.range() == {2, 3}
        assert r.field() == {1, 2, 3}

    def test_successors_predecessors(self):
        r = Relation([(1, 2), (1, 3), (2, 3)])
        assert r.successors(1) == {2, 3}
        assert r.predecessors(3) == {1, 2}

    def test_contains_iter_len(self):
        r = Relation([(2, 1), (1, 2)])
        assert (1, 2) in r
        assert (1, 1) not in r
        assert list(r) == [(1, 2), (2, 1)]
        assert len(r) == 2

    def test_bool(self):
        assert not Relation.empty({1})
        assert Relation([(1, 1)])


class TestBooleanAlgebra:
    def test_union_intersection_difference(self):
        a = Relation([(1, 2), (2, 3)])
        b = Relation([(2, 3), (3, 1)])
        assert (a | b).pairs == {(1, 2), (2, 3), (3, 1)}
        assert (a & b).pairs == {(2, 3)}
        assert (a - b).pairs == {(1, 2)}

    def test_complement(self):
        r = Relation([(1, 2)], universe={1, 2})
        assert (~r).pairs == {(1, 1), (2, 1), (2, 2)}

    def test_complement_involutive(self):
        r = Relation([(1, 2), (2, 2)], universe={1, 2, 3})
        assert ~~r == r


class TestComposition:
    def test_compose(self):
        a = Relation([(1, 2), (2, 3)])
        b = Relation([(2, 10), (3, 11)])
        assert a.compose(b).pairs == {(1, 10), (2, 11)}

    def test_compose_empty(self):
        a = Relation([(1, 2)])
        assert a.compose(Relation.empty()).is_empty()

    def test_rshift_alias(self):
        a = Relation([(1, 2)])
        b = Relation([(2, 3)])
        assert (a >> b).pairs == {(1, 3)}

    def test_inverse(self):
        r = Relation([(1, 2), (3, 4)])
        assert r.inverse().pairs == {(2, 1), (4, 3)}


class TestClosures:
    def test_optional_adds_identity(self):
        r = Relation([(1, 2)], universe={1, 2, 3})
        assert r.optional().pairs == {(1, 2), (1, 1), (2, 2), (3, 3)}

    def test_transitive_closure(self):
        r = Relation([(1, 2), (2, 3), (3, 4)])
        closed = r.transitive_closure()
        assert (1, 4) in closed
        assert (1, 3) in closed
        assert (4, 1) not in closed

    def test_transitive_closure_cycle(self):
        r = Relation([(1, 2), (2, 1)])
        closed = r.transitive_closure()
        assert (1, 1) in closed
        assert (2, 2) in closed

    def test_reflexive_transitive_closure(self):
        r = Relation([(1, 2)], universe={1, 2, 3})
        assert (3, 3) in r.reflexive_transitive_closure()
        assert (1, 2) in r.reflexive_transitive_closure()


class TestPredicates:
    def test_acyclic_empty(self):
        assert Relation.empty({1}).is_acyclic()

    def test_acyclic_dag(self):
        assert Relation([(1, 2), (2, 3), (1, 3)]).is_acyclic()

    def test_cyclic_self_loop(self):
        assert not Relation([(1, 1)]).is_acyclic()

    def test_cyclic_long(self):
        assert not Relation([(1, 2), (2, 3), (3, 1)]).is_acyclic()

    def test_irreflexive(self):
        assert Relation([(1, 2), (2, 1)]).is_irreflexive()
        assert not Relation([(1, 1)]).is_irreflexive()

    def test_symmetric(self):
        assert Relation([(1, 2), (2, 1)]).is_symmetric()
        assert not Relation([(1, 2)]).is_symmetric()

    def test_partial_equivalence(self):
        per = Relation([(1, 1), (1, 2), (2, 1), (2, 2)])
        assert per.is_partial_equivalence()
        # symmetric but not transitive:
        bad = Relation([(1, 2), (2, 1), (2, 3), (3, 2)])
        assert not bad.is_partial_equivalence()

    def test_strict_total_order(self):
        r = Relation([(1, 2), (2, 3), (1, 3)])
        assert r.is_strict_total_order_on({1, 2, 3})
        assert not Relation([(1, 2)]).is_strict_total_order_on({1, 2, 3})
        assert not Relation([(1, 2), (2, 1)]).is_strict_total_order_on({1, 2})

    def test_equivalence_classes(self):
        per = Relation([(1, 2), (2, 1), (1, 1), (2, 2), (5, 5)])
        classes = per.equivalence_classes()
        assert classes == [frozenset({1, 2}), frozenset({5})]

    def test_cycle_witness_none(self):
        assert Relation([(1, 2)]).cycle_witness() is None

    def test_cycle_witness_found(self):
        witness = Relation([(1, 2), (2, 3), (3, 1)]).cycle_witness()
        assert witness is not None
        assert set(witness) == {1, 2, 3}

    def test_cycle_witness_self_loop(self):
        assert Relation([(7, 7)]).cycle_witness() == [7]


class TestRestriction:
    def test_restrict(self):
        r = Relation([(1, 2), (2, 3), (1, 3)])
        assert r.restrict({1}, {2, 3}).pairs == {(1, 2), (1, 3)}

    def test_filter(self):
        r = Relation([(1, 2), (2, 1)])
        assert r.filter(lambda a, b: a < b).pairs == {(1, 2)}

    def test_irreflexive_part(self):
        r = Relation([(1, 1), (1, 2)])
        assert r.irreflexive_part().pairs == {(1, 2)}


class TestLifting:
    """§3.3: weaklift and stronglift."""

    def test_weaklift_needs_both_ends_transactional(self):
        txn = Relation([(1, 1)])  # singleton transaction {1}
        com = Relation([(1, 2), (2, 1)])
        assert weaklift(com, txn).is_empty() is False or True
        # (1,2): target 2 not transactional -> dropped by weaklift
        assert (1, 2) not in weaklift(com, txn)
        assert (2, 1) not in weaklift(com, txn)

    def test_weaklift_two_transactions(self):
        txn = Relation([(1, 1), (2, 2)])  # two singleton transactions
        com = Relation([(1, 2)])
        assert (1, 2) in weaklift(com, txn)

    def test_weaklift_expands_classes(self):
        # transaction {1,2}, transaction {3}; com edge 2 -> 3
        txn = Relation([(1, 1), (1, 2), (2, 1), (2, 2), (3, 3)])
        com = Relation([(2, 3)])
        lifted = weaklift(com, txn)
        assert (1, 3) in lifted and (2, 3) in lifted

    def test_stronglift_keeps_external_endpoints(self):
        txn = Relation([(1, 1)], universe={1, 2})
        com = Relation([(2, 1), (1, 2)], universe={1, 2})
        lifted = stronglift(com, txn)
        assert (2, 1) in lifted and (1, 2) in lifted

    def test_stronglift_excludes_intra_transaction_edges(self):
        txn = Relation([(1, 1), (1, 2), (2, 1), (2, 2)])
        internal = Relation([(1, 2)])
        assert stronglift(internal, txn).is_empty()


class TestThreadRestriction:
    def test_intra_inter(self):
        po = Relation([(0, 1)], universe={0, 1, 2})
        rel = Relation([(0, 1), (0, 2), (1, 0)], universe={0, 1, 2})
        assert intra_thread(rel, po).pairs == {(0, 1), (1, 0)}
        assert inter_thread(rel, po).pairs == {(0, 2)}


class TestEqualityHash:
    def test_equality_ignores_universe(self):
        assert Relation([(1, 2)], universe={1, 2}) == Relation(
            [(1, 2)], universe={1, 2, 3}
        )

    def test_hashable(self):
        assert len({Relation([(1, 2)]), Relation([(1, 2)])}) == 1

    def test_not_equal_to_other_types(self):
        assert Relation([(1, 2)]) != {(1, 2)}
