"""Property tests for the relational-algebra IR (planner + executor).

Three independent implementations of every model's semantics exist in
the codebase: the codegen'd plan runner (the synthesis hot path), the
interpretive node evaluator, and the Relation-level fallback evaluator
(:func:`repro.ir.fallback_value`, the readable reference).  These tests
pin all three to each other -- over the exhaustively enumerated corpora
and over hypothesis-generated random executions -- plus the planner's
scheduling and CSE behaviour.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import ir
from repro.enumeration import enumerate_executions, get_config
from repro.models import get_model
from repro.obs import REGISTRY

from .test_events_properties import executions

#: Every model of the paper, with the enumeration target whose corpus
#: exercises it (strides keep the big hardware corpora affordable).
MODELS = [
    ("sc", "sc", 1),
    ("tsc", "sc", 1),
    ("x86tm", "x86", 3),
    ("powertm", "power", 7),
    ("armv8tm", "armv8", 7),
    ("cpptm", "cpp", 3),
]


def _reference_check(constraint: ir.Constraint, x) -> bool:
    """The constraint's verdict by the Relation-level reference path --
    no row kernels, no codegen, no verdict memo."""
    value = ir.fallback_value(constraint.term, x)
    if constraint.kind == "acyclic":
        return value.is_acyclic()
    if constraint.kind == "irreflexive":
        return value.is_irreflexive()
    return value.is_empty()


def _corpus(request, target: str, stride: int):
    return request.getfixturevalue(f"{target}_executions_3")[::stride]


# ---------------------------------------------------------------------------
# Verdict agreement: executor vs reference, thunks vs conjunction
# ---------------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("model_name,target,stride", MODELS)
def test_verdicts_match_relation_reference(model_name, target, stride, request):
    """For all six models, over enumerated corpora: the executor's
    consistency verdict and failed-axiom set equal the Relation-level
    reference, constraint by constraint."""
    model = get_model(model_name)
    plan = model.plan()
    for x in _corpus(request, target, stride):
        reference = {c.name: _reference_check(c, x) for c in plan.constraints}
        assert model.consistent(x) == all(reference.values()), x.describe()
        assert model.violated_axioms(x) == [
            name for name, ok in reference.items() if not ok
        ], x.describe()


@pytest.mark.parametrize("model_name,target,stride", MODELS)
def test_thunk_conjunction_matches_consistent(model_name, target, stride, request):
    """The axiom-thunk view agrees with the fast path: the conjunction
    of the named thunks is consistent(), and the thunks' failures are
    exactly violated_axioms(), in declaration order."""
    model = get_model(model_name)
    for x in _corpus(request, target, stride * 3):
        thunks = model.axiom_thunks(x)
        failed = [name for name, thunk in thunks if not thunk()]
        assert model.consistent(x) == (not failed), x.describe()
        assert model.violated_axioms(x) == failed, x.describe()


@given(executions())
@settings(max_examples=60, deadline=None)
def test_models_agree_with_reference_on_random_executions(x):
    """Hypothesis sweep: random well-formed executions (no enumerator
    bias) get identical verdicts from the executor and the reference in
    every model."""
    for model_name, _, _ in MODELS:
        model = get_model(model_name)
        reference = [
            (c.name, _reference_check(c, x)) for c in model.plan().constraints
        ]
        assert model.consistent(x) == all(ok for _, ok in reference)
        assert model.violated_axioms(x) == [
            name for name, ok in reference if not ok
        ]


def test_codegen_agrees_with_interpreter():
    """The compiled plan runner and the interpretive constraint loop
    produce the same verdicts (checked on distinct execution objects so
    neither can answer from the other's verdict memo)."""
    plan = get_model("x86tm").plan()
    fast = [
        ir.consistent(plan, x)
        for x in enumerate_executions(get_config("x86"), 3)
    ]
    saved = plan.runner
    plan.runner = False  # force the interpretive path
    try:
        slow = [
            ir.consistent(plan, x)
            for x in enumerate_executions(get_config("x86"), 3)
        ]
    finally:
        plan.runner = saved
    assert fast == slow
    assert any(fast) and not all(fast)  # both verdicts actually occur


# ---------------------------------------------------------------------------
# Planner: CSE, scheduling, early exit
# ---------------------------------------------------------------------------


def test_plans_schedule_cheapest_first():
    """Every model's scheduled order is sorted by the static cost
    estimate, while constraints keep declaration order for reporting."""
    for model_name, _, _ in MODELS:
        plan = get_model(model_name).plan()
        costs = [c.cost for c in plan.scheduled]
        assert costs == sorted(costs), plan
        assert tuple(plan.scheduled[i] for i in _inverse(plan.order)) == (
            plan.constraints
        )


def _inverse(order):
    out = [0] * len(order)
    for position, index in enumerate(order):
        out[index] = position
    return out


def test_hash_consing_shares_subterms_across_models():
    """Building the six models' plans hash-conses common subexpressions
    (the ``ir.plan.cse_hits`` counter the CI fast lane gates on), and
    shared (kind, term) pairs share a verdict-memo key across plans."""
    for model_name, _, _ in MODELS:
        get_model(model_name).plan()
    assert REGISTRY.counter("ir.plan.cse_hits").value > 0
    sc_order = get_model("sc").plan().constraints[0]
    tsc_order = get_model("tsc").plan().constraints[0]
    assert sc_order is not tsc_order
    assert sc_order.term is tsc_order.term
    assert sc_order.vkey == tsc_order.vkey


def test_early_exit_short_circuits_remaining_constraints():
    """A cheap failing constraint stops evaluation before the expensive
    ones (counted by ``ir.exec.constraint_short_circuits``)."""
    from repro.events import ExecutionBuilder

    plan = ir.compile_model(
        "test-early-exit",
        [
            ir.acyclic(
                "Expensive",
                ir.plus(ir.union(ir.rel("po"), ir.rel("com"))),
            ),
            ir.empty_c("NoReads", ir.rel("rf")),
        ],
    )
    assert [c.name for c in plan.scheduled] == ["NoReads", "Expensive"]
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w = t0.write("x")
    r = t1.read("x")
    b.rf(w, r)
    x = b.build()
    counter = REGISTRY.counter("ir.exec.constraint_short_circuits")
    before = counter.value
    plan.runner = False  # count via the interpretive loop
    assert not ir.consistent(plan, x)
    assert counter.value == before + 1
    assert ir.violated_axioms(plan, x) == ["NoReads"]


# ---------------------------------------------------------------------------
# The fallback evaluator itself
# ---------------------------------------------------------------------------


def test_fallback_value_matches_evaluate():
    """Unit check over one execution: every operator's Relation-level
    value equals the row engine's materialisation."""
    from repro.events import ExecutionBuilder

    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w = t0.write("x")
    w2 = t1.write("x")
    r = t1.read("x")
    b.rf(w, r)
    b.co(w, w2)
    x = b.build()

    po, rf, com = ir.rel("po"), ir.rel("rf"), ir.rel("com")
    writes, reads = ir.evset("W"), ir.evset("R")
    terms = [
        ir.union(po, com),
        ir.plus(ir.union(po, rf)),
        ir.star(po),
        ir.opt(rf),
        ir.inv(rf),
        ir.comp(po),
        ir.seq(ir.setrel(writes), po, ir.setrel(reads)),
        ir.diff(po, ir.rel("sloc")),
        ir.inter(po, ir.rel("poloc")),
        ir.cross(writes, reads),
        ir.domain(rf),
        ir.range_(rf),
        ir.inter(writes, ir.evset("EV")),
    ]
    for term in terms:
        fast = ir.evaluate(term, x)
        reference = ir.fallback_value(term, x)
        if term.kind == "rel":
            assert fast.pairs == reference.pairs, term
        else:
            assert fast == frozenset(reference), term


def test_evaluated_executions_pickle_roundtrip():
    """An execution that has been judged (and so carries a populated IR
    evaluation state) must pickle and *unpickle* cleanly -- the pool
    fan-out pickles executions into worker processes, and a cache that
    rides along can kill the worker mid-load (regression: `_ir_state`'s
    reduce-time rebuild read attributes of the half-built execution,
    deadlocking `CheckPipeline(workers=2)` batches)."""
    import pickle

    config = get_config("x86")
    sample = [x for i, x in enumerate(enumerate_executions(config, 3))
              if i % 97 == 0][:20]
    model, baseline = get_model("x86tm"), get_model("x86")
    for x in sample:
        model.consistent(x)          # populate _ir_state + context
        model.violated_axioms(x)
        clone = pickle.loads(pickle.dumps(x))
        assert "_ir_state" not in clone.__dict__
        assert model.consistent(clone) == model.consistent(x)
        assert baseline.consistent(clone) == baseline.consistent(x)
        assert model.violated_axioms(clone) == model.violated_axioms(x)
