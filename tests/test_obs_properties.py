"""Property tests for the observability layer.

Two families of invariants:

* **accounting** -- every instrumented cache satisfies
  ``hits + misses == lookups`` on every path (including uncached
  fallbacks), and the flush-delta/merge algebra loses nothing: merging a
  run's deltas reproduces its snapshot.
* **structure** -- span trees nest exactly as the call tree does, and
  survive exceptions and resets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cat import load_cat_model
from repro.enumeration import enumerate_executions, get_config
from repro.harness import CheckPipeline
from repro.harness.table1 import run_table1
from repro.models import get_model
from repro.obs import REGISTRY, TRACER, reset_observability, stats_snapshot
from repro.obs.metrics import (
    _BUCKET_MAX,
    _BUCKET_MIN,
    MetricsRegistry,
    _bucket_of,
)
from repro.obs.tracing import Tracer

CACHE_PREFIXES = (
    "relations.global_intern",
    "relations.context",
    "relations.acyclic_cache",
    "relations.closure_cache",
    "cat.compile_cache",
    "pipeline.checkpoint",
)


def _cache_counts(prefix: str) -> tuple[int, int, int]:
    counters = REGISTRY.snapshot()["counters"]
    return (
        counters.get(f"{prefix}.lookups", 0),
        counters.get(f"{prefix}.hits", 0),
        counters.get(f"{prefix}.misses", 0),
    )


@pytest.fixture(scope="module")
def x86_executions():
    return list(enumerate_executions(get_config("x86"), 3))


def test_cache_accounting_balances_after_real_workload(
    tmp_path, x86_executions
):
    """hits + misses == lookups for every instrumented cache, measured
    as deltas across a workload that exercises them all: model checks
    (relation caches, compile cache) plus a checkpointed batch."""
    model = get_model("x86tm")
    before = {p: _cache_counts(p) for p in CACHE_PREFIXES}
    for x in x86_executions[:200]:
        model.consistent(x)
    load_cat_model("x86tm")
    with CheckPipeline(checkpoint=tmp_path / "acct.jsonl") as pipe:
        pipe.consistency_batch("x86tm", x86_executions[:20])
        pipe.consistency_batch("x86tm", x86_executions[:20])  # replay
    exercised = 0
    for prefix in CACHE_PREFIXES:
        lookups, hits, misses = (
            after - base
            for after, base in zip(_cache_counts(prefix), before[prefix])
        )
        assert hits + misses == lookups, (prefix, lookups, hits, misses)
        assert hits >= 0 and misses >= 0
        if lookups:
            exercised += 1
    assert exercised == len(CACHE_PREFIXES)


def test_hit_rate_matches_counters(x86_executions):
    model = get_model("x86tm")
    for x in x86_executions[:50]:
        model.consistent(x)
    lookups, hits, _ = _cache_counts("relations.acyclic_cache")
    assert lookups > 0
    assert REGISTRY.hit_rate("relations.acyclic_cache") == pytest.approx(
        hits / lookups
    )
    assert REGISTRY.hit_rate("no.such.cache") is None


# ---------------------------------------------------------------------------
# Flush-delta / merge algebra
# ---------------------------------------------------------------------------

_events = st.lists(
    st.one_of(
        st.tuples(
            st.just("inc"),
            st.sampled_from(("a", "b", "c")),
            st.integers(min_value=1, max_value=10),
        ),
        st.tuples(
            st.just("observe"),
            st.sampled_from(("t1", "t2")),
            st.floats(min_value=0.0, max_value=5.0),
        ),
    ),
    max_size=30,
)


@settings(max_examples=50, deadline=None)
@given(runs=st.lists(_events, min_size=1, max_size=4))
def test_merging_flush_deltas_reproduces_snapshot(runs):
    """A worker that flushes a delta after every batch reports, in
    total, exactly its final snapshot: merge(deltas) == snapshot."""
    worker = MetricsRegistry()
    parent = MetricsRegistry()
    for events in runs:
        for kind, name, value in events:
            if kind == "inc":
                worker.inc(name, value)
            else:
                worker.observe(name, value)
        parent.merge(worker.flush_delta())
    merged, direct = parent.snapshot(), worker.snapshot()
    assert merged["counters"] == direct["counters"]
    for name, stats in direct["timers"].items():
        got = merged["timers"][name]
        assert got["count"] == stats["count"]
        assert got["total"] == pytest.approx(stats["total"])
        assert got["max"] == pytest.approx(stats["max"])


def test_flush_delta_is_empty_when_nothing_happened():
    registry = MetricsRegistry()
    registry.inc("x", 3)
    registry.flush_delta()
    delta = registry.flush_delta()
    assert delta["counters"] == {} and delta["timers"] == {}


def test_unique_set_counts_distinct_keys():
    registry = MetricsRegistry()
    metric = registry.unique("patterns")
    assert metric.add("a") is True
    assert metric.add("a") is False
    assert metric.add("b") is True
    assert metric.value == 2
    assert registry.snapshot()["uniques"] == {"patterns": 2}


@given(
    st.lists(
        st.lists(st.sampled_from("abcdef"), max_size=6), max_size=6
    )
)
@settings(max_examples=40, deadline=None)
def test_unique_set_merge_reproduces_direct_counts(batches):
    """Per-batch flush_delta → merge must reproduce the worker's own
    distinct-key counts: the union over shipped key deltas equals the
    worker's key set."""
    worker = MetricsRegistry()
    parent = MetricsRegistry()
    for batch in batches:
        for key in batch:
            worker.unique("k").add(key)
        parent.merge(worker.flush_delta())
    assert (
        parent.snapshot()["uniques"].get("k", 0)
        == worker.snapshot()["uniques"].get("k", 0)
    )


def test_unique_set_flush_ships_only_new_keys():
    registry = MetricsRegistry()
    registry.unique("k").add("a")
    first = registry.flush_delta()
    assert first["unique_keys"] == {"k": ["a"]}
    registry.unique("k").add("a")
    registry.unique("k").add("b")
    second = registry.flush_delta()
    assert second["unique_keys"] == {"k": ["b"]}


def test_unique_set_reset_clears_keys():
    registry = MetricsRegistry()
    metric = registry.unique("k")
    metric.add("a")
    registry.reset()
    assert metric.value == 0
    assert metric.add("a") is True


def test_reset_preserves_bound_metric_objects():
    """Hot paths bind metric objects once at import; reset must zero
    them in place, not orphan them (a cleared dict would silently drop
    every later increment from snapshots)."""
    registry = MetricsRegistry()
    counter = registry.counter("bound.counter")
    timer = registry.timer("bound.timer")
    counter.inc(7)
    timer.observe(1.0)
    registry.reset()
    assert registry.snapshot()["counters"]["bound.counter"] == 0
    counter.inc(2)
    timer.observe(0.5)
    snap = registry.snapshot()
    assert snap["counters"]["bound.counter"] == 2
    assert snap["timers"]["bound.timer"]["count"] == 1
    assert registry.counter("bound.counter") is counter


# ---------------------------------------------------------------------------
# Histogram bucket/merge algebra
# ---------------------------------------------------------------------------

_durations = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    max_size=40,
)


def _hist_registry(observations) -> MetricsRegistry:
    registry = MetricsRegistry()
    for seconds in observations:
        registry.histogram("h").observe(seconds)
    return registry


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=1e-12, max_value=1e8, allow_nan=False))
def test_bucket_brackets_its_value(seconds):
    """Within the clamp range, bucket ``e`` holds exactly the values in
    ``[2**e, 2**(e+1))``; outside it, observations land on the edges."""
    bucket = _bucket_of(seconds)
    assert _BUCKET_MIN <= bucket <= _BUCKET_MAX
    if _BUCKET_MIN < bucket < _BUCKET_MAX:
        assert 2.0**bucket <= seconds < 2.0 ** (bucket + 1)
    elif bucket == _BUCKET_MIN:
        assert seconds < 2.0 ** (_BUCKET_MIN + 1)
    else:
        assert seconds >= 2.0**_BUCKET_MAX


@settings(max_examples=40, deadline=None)
@given(a=_durations, b=_durations, c=_durations)
def test_histogram_merge_is_associative(a, b, c):
    """merge(merge(A, B), C) == merge(A, merge(B, C)): workers can join
    in any grouping without changing the merged distribution."""
    left = _hist_registry(a)
    left.merge(_hist_registry(b).snapshot())
    left.merge(_hist_registry(c).snapshot())
    bc = _hist_registry(b)
    bc.merge(_hist_registry(c).snapshot())
    right = _hist_registry(a)
    right.merge(bc.snapshot())
    got, want = (
        r.snapshot()["histograms"].get("h") for r in (left, right)
    )
    if got is None or want is None:
        assert got == want
        return
    assert got["count"] == want["count"]
    assert got["total"] == pytest.approx(want["total"])
    assert got["max"] == pytest.approx(want["max"])
    assert got["buckets"] == want["buckets"]


@settings(max_examples=40, deadline=None)
@given(runs=st.lists(_durations, min_size=1, max_size=4))
def test_histogram_flush_deltas_round_trip(runs):
    """Merging a worker's per-batch flush deltas reproduces its own
    snapshot exactly (same algebra as counters/timers)."""
    worker = MetricsRegistry()
    parent = MetricsRegistry()
    for batch in runs:
        for seconds in batch:
            worker.histogram("h").observe(seconds)
        parent.merge(worker.flush_delta())
    direct = worker.snapshot()["histograms"].get("h")
    merged = parent.snapshot()["histograms"].get("h")
    if direct is None or direct["count"] == 0:
        assert merged is None or merged["count"] == 0
        return
    assert merged["count"] == direct["count"]
    assert merged["total"] == pytest.approx(direct["total"])
    assert merged["buckets"] == direct["buckets"]
    assert merged["p50"] == direct["p50"]
    assert merged["p99"] == direct["p99"]


@settings(max_examples=60, deadline=None)
@given(
    observations=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    q1=st.floats(min_value=0.01, max_value=1.0),
    q2=st.floats(min_value=0.01, max_value=1.0),
)
def test_histogram_percentiles_are_monotone(observations, q1, q2):
    """q1 <= q2 implies quantile(q1) <= quantile(q2); the headline
    snapshot percentiles are ordered and bound the observed extremes."""
    registry = _hist_registry(observations)
    h = registry.histogram("h")
    low, high = sorted((q1, q2))
    assert h.quantile(low) <= h.quantile(high)
    stats = h.to_dict()
    assert stats["p50"] <= stats["p90"] <= stats["p99"]
    # The percentile estimate is a bucket upper edge: never below the
    # true value for that rank, so p99 bounds max from above (within
    # the clamp range).
    if 0.0 < stats["max"] < 2.0**_BUCKET_MAX:
        assert stats["p99"] >= stats["max"] or stats["count"] > 1


def test_histogram_reset_zeroes_in_place():
    registry = MetricsRegistry()
    h = registry.histogram("h")
    h.observe(0.25)
    registry.reset()
    assert h.count == 0 and h.buckets == {}
    h.observe(0.5)
    assert registry.snapshot()["histograms"]["h"]["count"] == 1


# ---------------------------------------------------------------------------
# Span trees
# ---------------------------------------------------------------------------


def _span_names(spans):
    return {s["name"] for s in spans}


def _find(spans, name):
    for span in spans:
        if span["name"] == name:
            return span
    raise AssertionError(f"no span named {name!r} in {_span_names(spans)}")


def test_span_tree_nests_under_nested_pipeline_calls(x86_executions):
    """A driver run produces one root span whose children mirror the
    call tree: table1 -> synthesis -> per-bound spans, plus the
    pipeline batches."""
    reset_observability()
    run_table1("x86", 3)
    roots = TRACER.snapshot()
    table1 = _find(roots, "table1:x86")
    synthesis = _find(table1["children"], "synthesis:x86")
    assert "synthesis:x86:bound3" in _span_names(synthesis["children"])
    batches = [
        c for c in table1["children"] if c["name"] == "pipeline.batch"
    ]
    assert batches, "pipeline batches must nest under the driver span"
    for span in batches:
        assert span["elapsed"] >= 0.0
    # spans also land in the stats dump
    assert "table1:x86" in _span_names(stats_snapshot()["spans"])


def test_spans_close_on_exception_and_stay_balanced():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise ValueError("boom")
    roots = tracer.snapshot()
    outer = _find(roots, "outer")
    assert _span_names(outer["children"]) == {"inner"}
    assert tracer.current() is None


@settings(max_examples=30, deadline=None)
@given(depth=st.integers(min_value=1, max_value=12))
def test_span_nesting_depth_matches_call_depth(depth):
    tracer = Tracer()

    def recurse(levels: int) -> None:
        if levels == 0:
            return
        with tracer.span(f"level{levels}"):
            recurse(levels - 1)

    recurse(depth)
    spans = tracer.snapshot()
    seen = 0
    while spans:
        assert len(spans) == 1
        seen += 1
        spans = spans[0]["children"]
    assert seen == depth
