"""The experiment drivers (Tables 1-2, Figure 7, §6.2, figures)."""

import pytest

from repro.enumeration import synthesise
from repro.harness import run_figures, run_rtl_bug
from repro.harness.cli import main as cli_main
from repro.harness.figure7 import run_figure7
from repro.harness.table1 import run_table1
from repro.harness.table2 import run_table2


@pytest.fixture(scope="module")
def x86_synthesis():
    return synthesise("x86", 3)


@pytest.fixture(scope="module")
def table1_x86(x86_synthesis):
    return run_table1("x86", 3, synthesis=x86_synthesis)


class TestTable1:
    def test_forbid_counts_match_paper(self, table1_x86):
        by_events = {row.events: row for row in table1_x86.rows}
        assert by_events[3].forbid_total == 4  # Table 1, x86 |E|=3

    def test_no_forbidden_test_is_seen(self, table1_x86):
        """The soundness claim: the model is not too strong."""
        for row in table1_x86.rows:
            assert row.forbid_seen == 0

    def test_most_allowed_tests_are_seen(self, table1_x86):
        """The completeness claim: the model is not too weak."""
        total = sum(r.allow_total for r in table1_x86.rows)
        seen = sum(r.allow_seen for r in table1_x86.rows)
        assert total > 0
        assert seen / total >= 0.8  # paper: 83% for x86

    def test_render(self, table1_x86):
        out = table1_x86.render()
        assert "Forbid" in out and "Total" in out

    def test_power_table_small(self):
        result = run_table1("power", 2)
        by_events = {row.events: row for row in result.rows}
        assert by_events[2].forbid_total == 2  # Table 1, Power |E|=2
        assert all(r.forbid_seen == 0 for r in result.rows)


class TestFigure7:
    def test_curve_properties(self, x86_synthesis):
        fig = run_figure7("x86", 3, synthesis=x86_synthesis)
        assert fig.fraction_found_by(0) <= fig.fraction_found_by(
            fig.elapsed
        )
        assert fig.fraction_found_by(fig.elapsed) == 1.0
        assert 0 <= fig.time_to_fraction(0.5) <= fig.elapsed

    def test_render(self, x86_synthesis):
        out = run_figure7("x86", 3, synthesis=x86_synthesis).render()
        assert "Figure 7" in out and "%" in out

    def test_empty_result_renders(self):
        from repro.harness.figure7 import Figure7Result

        fig = Figure7Result("x86", 2, [], 0.1)
        assert "no tests" in fig.render()


class TestTable2:
    def test_small_run(self):
        result = run_table2(
            monotonicity_bounds={"power": 2, "armv8": 2, "x86": 2},
            compilation_bound=2,
            time_budget=300,
        )
        verdicts = {
            (row.property_name, row.target): row.counterexample_found
            for row in result.rows
        }
        # Monotonicity: Power/ARMv8 break, x86 holds (Table 2).
        assert verdicts[("Monotonicity", "power")] is True
        assert verdicts[("Monotonicity", "armv8")] is True
        assert verdicts[("Monotonicity", "x86")] is False
        # Compilation: no counterexamples (Table 2).
        assert verdicts[("Compilation", "C++/x86")] is False
        assert verdicts[("Compilation", "C++/power")] is False
        assert verdicts[("Compilation", "C++/armv8")] is False
        # Lock elision: ARMv8 breaks, the fix and x86 hold (Table 2);
        # Power's counterexample is this reproduction's finding.
        assert verdicts[("Lock elision", "armv8")] is True
        assert verdicts[("Lock elision", "armv8-fixed")] is False
        assert verdicts[("Lock elision", "x86")] is False
        assert verdicts[("Lock elision", "power")] is True
        assert "Table 2" in result.render()


class TestRTLBug:
    def test_suite_catches_injected_bug(self):
        result = run_rtl_bug(max_events=3)
        assert result.bug_detected
        assert result.false_alarms_on_good_rtl == []
        assert "DETECTED" in result.render()


class TestFiguresDriver:
    def test_all_claims_match(self):
        result = run_figures()
        assert result.all_match
        assert "all verdicts match the paper" in result.render()


class TestCLI:
    def test_figures_command(self, capsys):
        assert cli_main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Paper figures" in out

    def test_table1_command(self, capsys):
        assert cli_main(["table1", "--arch", "x86", "--events", "2"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_figure7_command(self, capsys):
        assert cli_main(["figure7", "--arch", "x86", "--events", "2"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])

    def test_fuzz_command_clean_run(self, capsys, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        assert (
            cli_main(
                [
                    "fuzz",
                    "--arch",
                    "x86",
                    "--seed",
                    "7",
                    "--budget",
                    "16",
                    "--corpus",
                    str(corpus),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "discrepancies   : 0" in out
        assert corpus.read_text() == ""

    def test_fuzz_command_exits_nonzero_on_discrepancy(self, capsys, tmp_path):
        # No public flag injects a mutant (it is test-only), so drive
        # the engine config through the module instead and check the
        # CLI replay path against its corpus.
        from repro.fuzz import FuzzConfig, run_fuzz

        corpus = tmp_path / "corpus.jsonl"
        report = run_fuzz(
            FuzzConfig(
                arch="x86",
                seed=7,
                budget=48,
                corpus=str(corpus),
                mutant=("x86tm", ("Coherence",)),
            )
        )
        assert not report.clean
        digest = report.discrepancies[0]["digest"]
        assert (
            cli_main(
                ["fuzz", "--replay", digest[:12], "--corpus", str(corpus)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no longer disagrees" in out

    def test_fuzz_replay_unknown_digest(self, capsys, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        corpus.write_text("")
        assert (
            cli_main(["fuzz", "--replay", "feedbeef", "--corpus", str(corpus)])
            == 1
        )
        assert "no corpus record" in capsys.readouterr().out
