"""Bounded verification of Theorems 7.2 and 7.3, plus §7.2's examples.

The paper proves these in Isabelle; we verify them exhaustively over all
enumerated C++ executions up to a bound (the paper's own methodology for
§8-style properties), plus targeted unit examples.
"""

import pytest

from repro.events import ExecutionBuilder, NA, RLX, SC
from repro.models import CppModel, get_model
from repro.models.isolation import strongly_isolated_atomic


class TestDerivedRelationSharing:
    """Regression for the CppModel caching bug: derived relations used
    to be memoised in a throwaway call-local Memo, so hb/psc were
    recomputed on every consistent() call.  With the IR executor they
    are memoised per execution under their hash-consed term, shared
    across axioms, repeated calls, and materialised views."""

    def _execution(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w = t0.write("x", tags={SC})
        r = t1.read("x", tags={SC})
        b.rf(w, r)
        return b.build()

    def test_repeat_queries_do_no_node_work(self):
        """Once consistency has been decided, further consistent() /
        thunk / violated_axioms queries answer from the per-execution
        verdict memo without evaluating a single IR node."""
        from repro.obs import REGISTRY

        model = CppModel(transactional=True)
        x = self._execution()
        model.consistent(x)
        all(t() for _, t in model.axiom_thunks(x))  # prime every verdict
        evals = REGISTRY.counter("ir.exec.node_evals")
        before = evals.value
        model.consistent(x)
        model.consistent(x)
        assert all(t() for _, t in model.axiom_thunks(x))
        assert model.violated_axioms(x) == []
        assert evals.value == before

    def test_materialised_views_are_interned(self):
        """hb/sw materialise once per execution: repeated calls return
        the identical Relation object, across model instances too (the
        term DAG, not the model object, is the cache key)."""
        model = CppModel(transactional=True)
        x = self._execution()
        first = model.hb(x)
        assert model.hb(x) is first
        assert all(t() for _, t in model.axiom_thunks(x))
        assert model.hb(x) is first
        assert CppModel(transactional=True).hb(x) is first
        assert model.sw(x) is model.sw(x)
        # The baseline's hb is a different term with its own slot.
        baseline = CppModel(transactional=False)
        assert baseline.hb(x) is baseline.hb(x)
        assert baseline.hb(x) is not first

    def test_variant_keys_do_not_alias(self):
        """TM and baseline hb differ on transactional executions and
        must not share a cache slot."""
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        with t0.transaction():
            w1 = t0.write("x", tags={NA})
            t0.read("y", tags={NA})
        with t1.transaction():
            t1.write("y", tags={NA})
            r1 = t1.read("x", tags={NA})
        b.rf(w1, r1)
        x = b.build()
        tm = CppModel(transactional=True)
        base = CppModel(transactional=False)
        hb_tm = tm.hb(x)
        hb_base = base.hb(x)
        assert hb_tm is not hb_base
        assert hb_base.pairs <= hb_tm.pairs


def test_theorem_7_2_strong_isolation_for_atomic_transactions(cpp_executions_3):
    """If NoRace holds and atomic transactions contain no atomic
    operations, then acyclic(stronglift(com, stxnat)).

    The theorem (like its proof, which appeals to HbCom) is about
    *consistent* executions; race-freedom is only meaningful there.
    """
    model = CppModel(transactional=True)
    checked = 0
    for x in cpp_executions_3:
        if not x.atomic_txns:
            continue
        # Hypotheses: consistency, race freedom, and atomic transactions
        # containing no atomic operations (the enumerator guarantees the
        # last).
        if not model.consistent(x):
            continue
        if not model.race_free(x):
            continue
        checked += 1
        assert strongly_isolated_atomic(x), x.describe()
    assert checked > 0, "the hypothesis space must not be vacuous"


def test_theorem_7_3_transactional_drf_guarantee(cpp_executions_3):
    """Race-free C++-consistent executions with only atomic transactions
    and only SC atomics are TSC-consistent."""
    model = CppModel(transactional=True)
    tsc = get_model("tsc")
    checked = 0
    for x in cpp_executions_3:
        if not model.consistent(x):
            continue
        # no relaxed transactions:
        if set(x.txn_of.values()) - set(x.atomic_txns):
            continue
        # no non-SC atomics:
        if x.atomics - x.sc_events:
            continue
        # no data races:
        if not model.race_free(x):
            continue
        checked += 1
        assert tsc.consistent(x), (
            f"C++-consistent DRF execution not TSC:\n{x.describe()}"
        )
    assert checked > 0, "the hypothesis space must not be vacuous"


class TestSection72Examples:
    """The two racy programs of §7.2's 'Transactions and Data Races'."""

    def _atomic_txn_vs_atomic_store(self):
        """atomic{ x=1; } || atomic_store(&x, 2): racy, because the
        transactional store is non-atomic and the definition of a race
        is unchanged by TM."""
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        with t0.transaction(atomic=True):
            w1 = t0.write("x", tags={NA})
        w2 = t1.write("x", tags={RLX})
        b.co(w1, w2)
        return b.build()

    def test_atomic_txn_with_plain_store_is_racy(self):
        x = self._atomic_txn_vs_atomic_store()
        model = CppModel(transactional=True)
        assert model.consistent(x)
        assert not model.race_free(x)
        race = model.races(x)
        assert len(race) > 0

    def test_same_program_with_atomic_accesses_is_race_free(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        with t0.transaction():
            w1 = t0.write("x", tags={RLX})
        w2 = t1.write("x", tags={RLX})
        b.co(w1, w2)
        x = b.build()
        assert CppModel(transactional=True).race_free(x)


class TestSynchronisation:
    def test_release_acquire_message_passing_race_free(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x", tags={NA})
        wy = t0.write("y", tags={"REL"})
        ry = t1.read("y", tags={"ACQ"})
        rx = t1.read("x", tags={NA})
        b.rf(wy, ry)
        b.rf(wx, rx)
        x = b.build()
        model = CppModel(transactional=True)
        assert model.consistent(x)
        assert model.race_free(x)
        assert (wy, ry) in model.sw(x)

    def test_relaxed_message_passing_is_racy(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x", tags={NA})
        wy = t0.write("y", tags={RLX})
        ry = t1.read("y", tags={RLX})
        rx = t1.read("x", tags={NA})
        b.rf(wy, ry)
        b.rf(wx, rx)
        x = b.build()
        model = CppModel(transactional=True)
        assert not model.race_free(x)

    def test_transactional_synchronisation_orders_conflicting_txns(self):
        """§7.2: conflicting transactions synchronise in ecom order, so
        the non-atomic payload of transactional MP is race-free."""
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        with t0.transaction():
            wx = t0.write("x", tags={NA})
            wy = t0.write("y", tags={NA})
        with t1.transaction():
            ry = t1.read("y", tags={NA})
            rx = t1.read("x", tags={NA})
        b.rf(wy, ry)
        b.rf(wx, rx)
        x = b.build()
        model = CppModel(transactional=True)
        assert model.consistent(x)
        assert model.race_free(x)
        assert (wx, rx) in model.tsw(x) and (wy, ry) in model.tsw(x)

    def test_sc_fences_restore_sb_order(self):
        """SB with seq_cst fences is forbidden by SeqCst (psc_F)."""
        from repro.events import CPPF

        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.write("x", tags={RLX})
        t0.fence(CPPF, tags={SC})
        t0.read("y", tags={RLX})
        t1.write("y", tags={RLX})
        t1.fence(CPPF, tags={SC})
        t1.read("x", tags={RLX})
        x = b.build()
        model = CppModel(transactional=True)
        assert "SeqCst" in model.violated_axioms(x)

    def test_sc_accesses_restore_sb_order(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.write("x", tags={SC})
        t0.read("y", tags={SC})
        t1.write("y", tags={SC})
        t1.read("x", tags={SC})
        x = b.build()
        assert "SeqCst" in CppModel(transactional=True).violated_axioms(x)

    def test_relaxed_sb_allowed(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.write("x", tags={RLX})
        t0.read("y", tags={RLX})
        t1.write("y", tags={RLX})
        t1.read("x", tags={RLX})
        x = b.build()
        assert CppModel(transactional=True).consistent(x)

    def test_no_thin_air_forbids_rlx_lb_with_po_rf_cycle(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        r0 = t0.read("x", tags={RLX})
        w0 = t0.write("y", tags={RLX})
        r1 = t1.read("y", tags={RLX})
        w1 = t1.write("x", tags={RLX})
        b.rf(w0, r1)
        b.rf(w1, r0)
        x = b.build()
        assert "NoThinAir" in CppModel(transactional=True).violated_axioms(x)
