"""Simulated hardware: the TSO+TSX machine and the oracle machines."""

import pytest

from repro.catalog import classics, figures
from repro.litmus import (
    Load,
    MemEquals,
    Postcondition,
    Program,
    RegEquals,
    Rmw,
    Store,
    TxBegin,
    TxEnd,
    execution_to_litmus,
)
from repro.models import get_model
from repro.sim import (
    FilteredModel,
    OracleHardware,
    TSOHardware,
    TSOMachine,
    run_suite,
)


def machine_for(execution, name="t"):
    test = execution_to_litmus(execution, name)
    return TSOMachine(test.program), test


class TestTSOMachine:
    def test_sb_observable(self):
        machine, test = machine_for(classics.sb())
        assert machine.observable(test.intended_co)

    def test_sb_with_mfence_not_observable(self):
        machine, test = machine_for(classics.sb("mfence"))
        assert not machine.observable(test.intended_co)

    def test_mp_not_observable_on_tso(self):
        machine, test = machine_for(classics.mp())
        assert not machine.observable(test.intended_co)

    def test_fig1_observable(self):
        machine, test = machine_for(figures.fig1())
        assert machine.observable(test.intended_co)

    def test_fig2_isolation_enforced(self):
        machine, test = machine_for(figures.fig2())
        assert not machine.observable(test.intended_co)

    def test_store_forwarding(self):
        program = Program(
            "fwd",
            ((Store("x", 1), Load("r0", "x")),),
            Postcondition((RegEquals(0, "r0", 1),)),
        )
        assert TSOMachine(program).observable()

    def test_transaction_publishes_atomically(self):
        # An observer can never see the first txn write without the second.
        program = Program(
            "atomic-commit",
            (
                (TxBegin(), Store("x", 1), Store("y", 1), TxEnd()),
                (Load("r0", "y"), Load("r1", "x")),
            ),
            Postcondition((RegEquals(1, "r0", 1), RegEquals(1, "r1", 0))),
        )
        assert not TSOMachine(program).observable()

    def test_conflicting_write_aborts_txn(self):
        # If the txn reads x and another thread writes x before commit,
        # the txn aborts -- so "txn committed AND r0 saw the old value
        # AND the external write is co-first" is unreachable.
        program = Program(
            "conflict",
            (
                (TxBegin(), Load("r0", "x"), Store("y", 1), TxEnd()),
                (Store("x", 1), Load("r1", "y")),
            ),
            Postcondition((RegEquals(0, "r0", 0), RegEquals(1, "r1", 1))),
        )
        # r1 = 1 means the txn committed before the external store ran...
        # which contradicts r0 = 0 only through co ordering; the eager
        # machine allows the txn to commit first, so this IS observable.
        assert TSOMachine(program).observable()

    def test_aborted_txn_rolls_back(self):
        # Spontaneous aborts discard buffered transactional writes.
        program = Program(
            "rollback",
            ((TxBegin(), Store("x", 1), TxEnd()),),
            Postcondition(()),
        )
        machine = TSOMachine(program, spontaneous_aborts=True)
        outcomes = machine.outcomes()
        # Some outcome has x=0 (aborted) with ok=False.
        assert any(
            dict(mem).get("x", 0) == 0 and not committed
            for _, mem, committed in outcomes
        )
        assert any(
            dict(mem).get("x", 0) == 1 and committed
            for _, mem, committed in outcomes
        )

    def test_rmw_waits_for_buffer_and_is_atomic(self):
        # Two competing RMWs: exactly one sees 0.
        program = Program(
            "rmw-race",
            (
                (Rmw("r0", "x", 1),),
                (Rmw("r1", "x", 2),),
            ),
            Postcondition((RegEquals(0, "r0", 0), RegEquals(1, "r1", 0))),
        )
        assert not TSOMachine(program).observable()

    def test_write_log_records_coherence(self):
        program = Program(
            "log",
            ((Store("x", 1),), (Store("x", 2),)),
            Postcondition((MemEquals("x", 2),)),
        )
        machine = TSOMachine(program)
        assert machine.observable({"x": (1, 2)})
        assert not machine.observable({"x": (2, 1)})

    def test_rejects_load_linked(self):
        test = execution_to_litmus(figures.monotonicity_split_rmw(), "s")
        with pytest.raises(ValueError):
            TSOMachine(test.program)


class TestMachineSoundness:
    """Machine-observable behaviour must be axiomatically allowed: the
    operational machine is a sound implementation of the x86 TM model."""

    @pytest.mark.parametrize("factory,kwargs", [
        (classics.sb, {}),
        (classics.sb, {"fences": "mfence"}),
        (classics.mp, {}),
        (classics.lb, {}),
        (classics.corr, {}),
        (classics.sb_txn, {}),
        (figures.fig1, {}),
        (figures.fig2, {}),
        (figures.fig3a, {}),
        (figures.fig3b, {}),
        (figures.fig3c, {}),
        (figures.fig3d, {}),
    ])
    def test_observable_implies_allowed(self, factory, kwargs):
        x = factory(**kwargs)
        test = execution_to_litmus(x, "t")
        machine = TSOMachine(test.program)
        model = get_model("x86tm")
        if machine.observable(test.intended_co):
            from repro.litmus import find_witness

            assert find_witness(test.program, model) is not None, (
                f"machine shows {factory.__name__} but the model forbids it"
            )


class TestOracle:
    def test_power8_hides_lb(self):
        oracle = OracleHardware.power8(get_model("powertm"))
        test = execution_to_litmus(classics.lb(), "lb")
        assert not oracle.observable(test.program, test.intended_co)

    def test_power8_shows_mp(self):
        oracle = OracleHardware.power8(get_model("powertm"))
        test = execution_to_litmus(classics.mp(), "mp")
        assert oracle.observable(test.program, test.intended_co)

    def test_filtered_model_drops_axiom(self):
        buggy = FilteredModel(get_model("armv8tm"), drop_axioms=("TxnOrder",))
        x = classics.mp_txn_reader("dmb")
        assert buggy.consistent(x)
        assert not get_model("armv8tm").consistent(x)
        assert "TxnOrder" in buggy.name

    def test_buggy_rtl_story(self):
        model = get_model("armv8tm")
        buggy = OracleHardware.armv8_rtl_buggy(model)
        good = OracleHardware(model, name="good")
        test = execution_to_litmus(classics.mp_txn_reader("dmb"), "rtl")
        assert buggy.observable(test.program, test.intended_co)
        assert not good.observable(test.program, test.intended_co)

    def test_run_suite_tallies(self):
        oracle = OracleHardware(get_model("x86tm"), name="oracle")
        tests = [
            execution_to_litmus(classics.sb(), "sb"),
            execution_to_litmus(classics.mp(), "mp"),
            execution_to_litmus(figures.fig2(), "fig2"),
        ]
        result = run_suite(tests, oracle)
        assert result.total == 3
        assert result.seen + result.not_seen == 3
        assert "sb" in result.seen_tests
        assert "fig2" in result.unseen_tests

    def test_tso_hardware_adapter(self):
        hw = TSOHardware()
        test = execution_to_litmus(classics.sb(), "sb")
        assert hw.observable(test.program, test.intended_co)
