"""Well-formedness checks (§2.1, §3.1): each rule fires when broken."""

import pytest

from repro.events import (
    Event,
    Execution,
    assert_well_formed,
    is_well_formed,
    well_formedness_violations,
)


def simple_events():
    return [
        Event(eid=0, tid=0, kind="R", loc="x"),
        Event(eid=1, tid=0, kind="W", loc="x"),
        Event(eid=2, tid=1, kind="W", loc="x"),
    ]


def test_clean_execution_is_well_formed():
    x = Execution(
        simple_events(), threads=[(0, 1), (2,)], rf=[(2, 0)], co=[(1, 2)]
    )
    assert is_well_formed(x)


def test_event_in_no_thread():
    x = Execution(simple_events(), threads=[(0, 1)])
    assert any("belong to no thread" in p for p in well_formedness_violations(x))


def test_event_in_wrong_thread():
    events = simple_events()
    x = Execution(events, threads=[(0, 1, 2)])
    assert any("has tid" in p for p in well_formedness_violations(x))


def test_event_in_two_threads():
    events = [
        Event(eid=0, tid=0, kind="R", loc="x"),
        Event(eid=1, tid=1, kind="W", loc="x"),
    ]
    x = Execution(events, threads=[(0,), (1, 0)])
    violations = well_formedness_violations(x)
    assert any("several threads" in p for p in violations)


def test_memory_event_needs_location():
    x = Execution([Event(eid=0, tid=0, kind="R", loc=None)], threads=[(0,)])
    assert any("no location" in p for p in well_formedness_violations(x))


def test_fence_must_not_have_location():
    x = Execution(
        [Event(eid=0, tid=0, kind="F", loc="x", tags={"MFENCE"})],
        threads=[(0,)],
    )
    assert any("has a location" in p for p in well_formedness_violations(x))


def test_dependency_outside_po():
    events = simple_events()
    x = Execution(events, threads=[(0, 1), (2,)], data=[(0, 2)])
    assert any("not within po" in p for p in well_formedness_violations(x))


def test_dependency_from_write_rejected():
    events = simple_events()
    x = Execution(events, threads=[(0, 1), (2,)], data=[(1, 0)])
    violations = well_formedness_violations(x)
    assert violations  # not within po AND wrong source


def test_ctrl_from_store_exclusive_allowed():
    """Table 3, footnote 3: ctrl may begin at a store-exclusive."""
    events = [
        Event(eid=0, tid=0, kind="R", loc="m"),
        Event(eid=1, tid=0, kind="W", loc="m"),
        Event(eid=2, tid=0, kind="W", loc="x"),
    ]
    x = Execution(
        events, threads=[(0, 1, 2)], rmw=[(0, 1)], ctrl=[(1, 2)]
    )
    assert is_well_formed(x)


def test_ctrl_from_plain_write_rejected():
    events = [
        Event(eid=0, tid=0, kind="W", loc="m"),
        Event(eid=1, tid=0, kind="W", loc="x"),
    ]
    x = Execution(events, threads=[(0, 1)], ctrl=[(0, 1)])
    assert any("start at a read" in p for p in well_formedness_violations(x))


def test_data_must_target_write():
    events = [
        Event(eid=0, tid=0, kind="R", loc="x"),
        Event(eid=1, tid=0, kind="R", loc="y"),
    ]
    x = Execution(events, threads=[(0, 1)], data=[(0, 1)])
    assert any("target a write" in p for p in well_formedness_violations(x))


def test_rmw_same_location_and_adjacent():
    events = [
        Event(eid=0, tid=0, kind="R", loc="x"),
        Event(eid=1, tid=0, kind="W", loc="y"),
    ]
    x = Execution(events, threads=[(0, 1)], rmw=[(0, 1)])
    assert any("crosses locations" in p for p in well_formedness_violations(x))


def test_rmw_not_adjacent():
    events = [
        Event(eid=0, tid=0, kind="R", loc="x"),
        Event(eid=1, tid=0, kind="R", loc="y"),
        Event(eid=2, tid=0, kind="W", loc="x"),
    ]
    x = Execution(events, threads=[(0, 1, 2)], rmw=[(0, 2)])
    assert any("not po-adjacent" in p for p in well_formedness_violations(x))


def test_rf_same_location():
    events = [
        Event(eid=0, tid=0, kind="W", loc="x"),
        Event(eid=1, tid=1, kind="R", loc="y"),
    ]
    x = Execution(events, threads=[(0,), (1,)], rf=[(0, 1)])
    assert any("crosses locations" in p for p in well_formedness_violations(x))


def test_rf_write_to_read_only():
    events = [
        Event(eid=0, tid=0, kind="R", loc="x"),
        Event(eid=1, tid=1, kind="R", loc="x"),
    ]
    x = Execution(events, threads=[(0,), (1,)], rf=[(0, 1)])
    assert any("not write-to-read" in p for p in well_formedness_violations(x))


def test_read_with_two_rf_sources():
    events = [
        Event(eid=0, tid=0, kind="W", loc="x"),
        Event(eid=1, tid=0, kind="W", loc="x"),
        Event(eid=2, tid=1, kind="R", loc="x"),
    ]
    x = Execution(
        events, threads=[(0, 1), (2,)], rf=[(0, 2), (1, 2)], co=[(0, 1)]
    )
    assert any("incoming rf" in p for p in well_formedness_violations(x))


def test_co_total_order_required():
    events = [
        Event(eid=0, tid=0, kind="W", loc="x"),
        Event(eid=1, tid=1, kind="W", loc="x"),
    ]
    x = Execution(events, threads=[(0,), (1,)])  # no co between them
    assert any("strict total order" in p for p in well_formedness_violations(x))


def test_co_crossing_locations():
    events = [
        Event(eid=0, tid=0, kind="W", loc="x"),
        Event(eid=1, tid=0, kind="W", loc="y"),
    ]
    x = Execution(events, threads=[(0, 1)], co=[(0, 1)])
    assert any("crosses locations" in p for p in well_formedness_violations(x))


def test_transaction_must_be_contiguous():
    events = [
        Event(eid=0, tid=0, kind="W", loc="x"),
        Event(eid=1, tid=0, kind="R", loc="y"),
        Event(eid=2, tid=0, kind="W", loc="z"),
    ]
    x = Execution(
        events, threads=[(0, 1, 2)], txn_of={0: 0, 2: 0}
    )
    assert any("not po-contiguous" in p for p in well_formedness_violations(x))


def test_transaction_must_not_span_threads():
    events = [
        Event(eid=0, tid=0, kind="W", loc="x"),
        Event(eid=1, tid=1, kind="W", loc="y"),
    ]
    x = Execution(events, threads=[(0,), (1,)], txn_of={0: 0, 1: 0})
    assert any("spans threads" in p for p in well_formedness_violations(x))


def test_atomic_txn_without_events():
    events = [Event(eid=0, tid=0, kind="W", loc="x")]
    x = Execution(events, threads=[(0,)], txn_of={0: 0}, atomic_txns={5})
    assert any("no events" in p for p in well_formedness_violations(x))


def test_assert_well_formed_raises():
    x = Execution([Event(eid=0, tid=0, kind="R", loc=None)], threads=[(0,)])
    with pytest.raises(ValueError, match="ill-formed"):
        assert_well_formed(x)


def test_assert_well_formed_returns_execution():
    x = Execution(
        simple_events(), threads=[(0, 1), (2,)], rf=[(2, 0)], co=[(1, 2)]
    )
    assert assert_well_formed(x) is x
