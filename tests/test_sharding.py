"""Sharded enumeration and the work-stealing scheduler.

The load-bearing pin: sharded synthesis is **byte-identical** to the
sequential enumerator -- same Forbid/Allow suites in the same order,
same candidate count -- at every worker count, and a checkpointed run
resumes by replaying recorded chunk ranges instead of recomputing.
"""

import itertools

import pytest

from repro.enumeration import (
    complete_shard_range,
    complete_skeleton_range,
    completion_count,
    cumulative_counts,
    get_config,
    shard_completion_counts,
    shard_signatures,
    shard_skeletons,
    signature_label,
    synthesise,
)
from repro.enumeration.complete import complete_skeleton
from repro.enumeration.shapes import enumerate_skeletons
from repro.harness.pipeline import CheckPipeline
from repro.obs import REGISTRY, reset_observability


@pytest.fixture(scope="module")
def config():
    return get_config("x86")


@pytest.fixture(scope="module")
def legacy(config):
    return synthesise("x86", 3)


class TestShardSpace:
    def test_signatures_cover_enumeration_in_order(self, config):
        # Concatenating shards in signature order reproduces the
        # sequential skeleton stream verbatim.
        for bound in (2, 3):
            sequential = list(enumerate_skeletons(config, bound))
            sharded = [
                skeleton
                for signature in shard_signatures(config, bound)
                for skeleton in shard_skeletons(config, signature)
            ]
            assert len(sharded) == len(sequential)
            assert [s.events for s in sharded] == [
                s.events for s in sequential
            ]

    def test_signature_labels(self, config):
        labels = [
            signature_label(sig) for sig in shard_signatures(config, 2)
        ]
        assert len(set(labels)) == len(labels)  # distinct per shard
        assert all(label for label in labels)

    def test_completion_count_matches_enumeration(self, config):
        for skeleton in itertools.islice(
            enumerate_skeletons(config, 3), 120
        ):
            expected = len(list(complete_skeleton(skeleton)))
            assert completion_count(skeleton) == expected

    def test_range_slices_tile_the_skeleton(self, config):
        skeletons = itertools.islice(enumerate_skeletons(config, 3), 40)
        for skeleton in skeletons:
            full = [x.fingerprint() for x in complete_skeleton(skeleton)]
            total = completion_count(skeleton)
            assert total == len(full)
            for split in {0, 1, total // 3, total - 1, total}:
                left = [
                    x.fingerprint()
                    for x in complete_skeleton_range(skeleton, 0, split)
                ]
                right = [
                    x.fingerprint()
                    for x in complete_skeleton_range(skeleton, split, total)
                ]
                assert left + right == full

    def test_shard_range_concatenates_skeletons(self, config):
        signature = next(iter(shard_signatures(config, 3)))
        skeletons = shard_skeletons(config, signature)
        cumulative = cumulative_counts(
            shard_completion_counts(config, signature)
        )
        total = cumulative[-1]
        full = [
            x.fingerprint()
            for x in complete_shard_range(skeletons, cumulative, 0, total)
        ]
        assert len(full) == total
        split = total // 2
        left = [
            x.fingerprint()
            for x in complete_shard_range(skeletons, cumulative, 0, split)
        ]
        right = [
            x.fingerprint()
            for x in complete_shard_range(skeletons, cumulative, split, total)
        ]
        assert left + right == full


def _assert_identical(legacy, sharded):
    assert [x.fingerprint() for x in sharded.forbidden] == [
        x.fingerprint() for x in legacy.forbidden
    ]
    assert [x.fingerprint() for x in sharded.allowed] == [
        x.fingerprint() for x in legacy.allowed
    ]
    assert sharded.candidates_examined == legacy.candidates_examined
    assert sharded.complete == legacy.complete


class TestShardedSynthesis:
    def test_sequential_pipeline_matches_legacy(self, legacy):
        with CheckPipeline(workers=1) as pipeline:
            _assert_identical(legacy, pipeline.synthesis("x86", 3))

    def test_pool_matches_legacy_and_workers_do_not_matter(self, legacy):
        # The acceptance pin: byte-identical folds at every worker count.
        for workers in (2, 4):
            with CheckPipeline(workers=workers) as pipeline:
                _assert_identical(legacy, pipeline.synthesis("x86", 3))

    def test_no_steals_at_one_worker(self):
        reset_observability()
        with CheckPipeline(workers=1) as pipeline:
            pipeline.synthesis("x86", 3)
        counters = REGISTRY.snapshot()["counters"]
        assert counters.get("scheduler.steals", 0) == 0
        assert counters.get("scheduler.chunks", 0) > 0
        reset_observability()

    def test_per_shard_counters_exist(self):
        reset_observability()
        with CheckPipeline(workers=1) as pipeline:
            pipeline.synthesis("x86", 2)
        counters = REGISTRY.snapshot()["counters"]
        shard_counters = [
            name
            for name in counters
            if name.startswith("synthesis.shard.x86.b2.")
        ]
        assert shard_counters
        total = sum(
            counters[name]
            for name in shard_counters
            if name.endswith(".completions")
        )
        assert total == counters["enumeration.x86.bound2.candidates"]
        reset_observability()

    def test_checkpoint_resume_replays_chunks(self, tmp_path, legacy):
        reset_observability()
        path = tmp_path / "synth.jsonl"
        with CheckPipeline(workers=1, checkpoint=path) as pipeline:
            _assert_identical(legacy, pipeline.synthesis("x86", 3))
        first = REGISTRY.snapshot()["counters"]["scheduler.chunks"]
        assert first > 0
        reset_observability()
        with CheckPipeline(workers=1, checkpoint=path) as pipeline:
            _assert_identical(legacy, pipeline.synthesis("x86", 3))
        resumed = REGISTRY.snapshot()["counters"].get("scheduler.chunks", 0)
        assert resumed == 0  # every range answered from the checkpoint
        reset_observability()

    def test_verdict_cache_warm_run_skips_verdicts(self, tmp_path, legacy):
        reset_observability()
        with CheckPipeline(workers=1, cache=tmp_path / "verdicts") as p:
            _assert_identical(legacy, p.synthesis("x86", 3))
        reset_observability()
        with CheckPipeline(workers=1, cache=tmp_path / "verdicts") as p:
            _assert_identical(legacy, p.synthesis("x86", 3))
        counters = REGISTRY.snapshot()["counters"]
        lookups = counters["verdict_cache.lookups"]
        hits = counters["verdict_cache.hits"]
        assert lookups > 0
        assert hits / lookups >= 0.90
        reset_observability()


class TestStatsRender:
    def test_per_shard_summary_and_unknown_keys(self):
        from repro.harness.cli import _render_stats_dump

        dump = {
            "counters": {
                "synthesis.shard.x86.b3.RW+W.completions": 120,
                "synthesis.shard.x86.b3.RW+W.survivors": 2,
                "synthesis.shard.x86.b3.RW+W.chunks": 3,
                "synthesis.shard.x86.b3.RW+W.steals": 1,
                "scheduler.chunks": 3,
            },
            "timers": {
                "synthesis.shard.x86.b3.RW+W.seconds": {
                    "count": 3,
                    "total": 0.25,
                    "max": 0.1,
                }
            },
            "novel_section": {"answer": 42},
        }
        text = _render_stats_dump(dump)
        assert "synthesis shards:" in text
        assert "x86.b3.RW+W" in text
        assert "completions=120" in text
        assert "steals=1" in text
        # Shard counters fold into the summary, not the counter dump...
        assert "synthesis.shard.x86.b3.RW+W.completions" not in text
        # ...while ordinary counters still list normally.
        assert "scheduler.chunks" in text
        # Unknown top-level keys render instead of vanishing.
        assert "novel_section" in text and "42" in text
