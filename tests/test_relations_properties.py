"""Property-based tests for the relational algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relations import Relation, stronglift, weaklift

UNIVERSE = list(range(5))


def relations(max_size: int = 10):
    pair = st.tuples(st.sampled_from(UNIVERSE), st.sampled_from(UNIVERSE))
    return st.builds(
        lambda pairs: Relation(pairs, UNIVERSE),
        st.lists(pair, max_size=max_size),
    )


@given(relations(), relations(), relations())
def test_composition_associative(a, b, c):
    assert a.compose(b).compose(c) == a.compose(b.compose(c))


@given(relations(), relations(), relations())
def test_composition_distributes_over_union(a, b, c):
    assert a.compose(b | c) == a.compose(b) | a.compose(c)


@given(relations())
def test_transitive_closure_idempotent(r):
    once = r.transitive_closure()
    assert once.transitive_closure() == once


@given(relations())
def test_transitive_closure_contains_relation(r):
    assert r.pairs <= r.transitive_closure().pairs


@given(relations())
def test_reflexive_transitive_closure_reflexive(r):
    star = r.reflexive_transitive_closure()
    for u in UNIVERSE:
        assert (u, u) in star


@given(relations())
def test_inverse_involutive(r):
    assert r.inverse().inverse() == r


@given(relations(), relations())
def test_inverse_antidistributes_over_composition(a, b):
    assert a.compose(b).inverse() == b.inverse().compose(a.inverse())


@given(relations())
def test_complement_partitions_full(r):
    full = Relation.full(UNIVERSE)
    assert (r | ~r) == full
    assert (r & ~r).is_empty()


@given(relations())
def test_acyclic_iff_closure_irreflexive(r):
    assert r.is_acyclic() == r.transitive_closure().is_irreflexive()


@given(relations())
def test_cycle_witness_agrees_with_acyclicity(r):
    witness = r.cycle_witness()
    if r.is_acyclic():
        assert witness is None
    else:
        assert witness is not None
        closed = r.transitive_closure()
        # Consecutive witness nodes are r-related, and it closes a loop.
        loop = witness + [witness[0]]
        for a, b in zip(loop, loop[1:]):
            assert (a, b) in r.pairs or (a, b) in closed.pairs


@given(relations(), relations())
def test_weaklift_subset_of_stronglift(r, t):
    # t is made a PER first so both lifts are meaningful.
    per = (t | t.inverse()).transitive_closure()
    per = per | Relation([(a, a) for a, _ in per.pairs], UNIVERSE)
    assert weaklift(r, per).pairs <= stronglift(r, per).pairs


@given(relations(), relations())
def test_stronglift_contains_unlifted_edges(r, t):
    assert (r - t).pairs <= stronglift(r, t).pairs


@given(relations())
def test_restrict_is_intersection_with_cross(r):
    sources = {0, 1}
    targets = {2, 3}
    direct = r.restrict(sources, targets)
    via_cross = r & Relation.cross(sources, targets, UNIVERSE)
    assert direct == via_cross
