"""Property tests: the bitset-backed Relation against a pair-set oracle.

The bitset engine (adjacency bitmasks over a dense-indexed universe) is
an internal representation change; these tests pin its observable
behaviour to a deliberately naive frozenset-of-pairs model for every
operator the memory models use.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import get_model
from repro.relations import Relation

# Small universes keep the oracle exhaustive and shrinking readable.
ELEMENTS = st.integers(min_value=0, max_value=7)
PAIRS = st.frozensets(st.tuples(ELEMENTS, ELEMENTS), max_size=20)
UNIVERSES = st.frozensets(ELEMENTS, max_size=8)


def widen(pairs: frozenset, universe: frozenset) -> frozenset:
    out = set(universe)
    for a, b in pairs:
        out.add(a)
        out.add(b)
    return frozenset(out)


def oracle_compose(p1: frozenset, p2: frozenset) -> frozenset:
    return frozenset(
        (a, d) for a, b in p1 for c, d in p2 if b == c
    )


def oracle_closure(pairs: frozenset) -> frozenset:
    out = set(pairs)
    changed = True
    while changed:
        changed = False
        for (a, b), (c, d) in itertools.product(tuple(out), tuple(out)):
            if b == c and (a, d) not in out:
                out.add((a, d))
                changed = True
    return frozenset(out)


def oracle_acyclic(pairs: frozenset) -> bool:
    return all(a != b for a, b in oracle_closure(pairs))


@given(PAIRS, PAIRS, UNIVERSES)
@settings(max_examples=300)
def test_boolean_algebra_matches_oracle(p1, p2, uni):
    r1 = Relation(p1, uni)
    r2 = Relation(p2, uni)
    assert (r1 | r2).pairs == p1 | p2
    assert (r1 & r2).pairs == p1 & p2
    assert (r1 - r2).pairs == p1 - p2


@given(PAIRS, UNIVERSES)
@settings(max_examples=300)
def test_complement_matches_oracle(pairs, uni):
    r = Relation(pairs, uni)
    full_uni = widen(pairs, uni)
    expected = frozenset(
        (a, b)
        for a in full_uni
        for b in full_uni
        if (a, b) not in pairs
    )
    assert (~r).pairs == expected
    assert (~~r).pairs == pairs


@given(PAIRS, PAIRS, UNIVERSES)
@settings(max_examples=300)
def test_compose_matches_oracle(p1, p2, uni):
    r1 = Relation(p1, uni)
    r2 = Relation(p2, uni)
    assert r1.compose(r2).pairs == oracle_compose(p1, p2)


@given(PAIRS, UNIVERSES)
@settings(max_examples=200)
def test_closure_matches_oracle(pairs, uni):
    r = Relation(pairs, uni)
    closed = oracle_closure(pairs)
    assert r.transitive_closure().pairs == closed
    full_uni = widen(pairs, uni)
    assert r.reflexive_transitive_closure().pairs == closed | {
        (u, u) for u in full_uni
    }


@given(PAIRS, UNIVERSES)
@settings(max_examples=300)
def test_acyclicity_matches_oracle(pairs, uni):
    r = Relation(pairs, uni)
    assert r.is_acyclic() == oracle_acyclic(pairs)
    # The cached second query must agree with the first.
    assert r.is_acyclic() == oracle_acyclic(pairs)


@given(PAIRS, UNIVERSES)
@settings(max_examples=300)
def test_inverse_accessors_match_oracle(pairs, uni):
    r = Relation(pairs, uni)
    assert r.inverse().pairs == frozenset((b, a) for a, b in pairs)
    assert r.domain() == frozenset(a for a, _ in pairs)
    assert r.range() == frozenset(b for _, b in pairs)
    assert len(r) == len(pairs)
    assert bool(r) == bool(pairs)
    for a in widen(pairs, uni):
        assert r.successors(a) == frozenset(y for x, y in pairs if x == a)
        assert r.predecessors(a) == frozenset(x for x, y in pairs if y == a)


@given(PAIRS, UNIVERSES, st.frozensets(ELEMENTS), st.frozensets(ELEMENTS))
@settings(max_examples=200)
def test_restrict_matches_oracle(pairs, uni, sources, targets):
    r = Relation(pairs, uni)
    assert r.restrict(sources, targets).pairs == frozenset(
        (a, b) for a, b in pairs if a in sources and b in targets
    )


@given(PAIRS, UNIVERSES)
@settings(max_examples=200)
def test_optional_and_irreflexive_part(pairs, uni):
    r = Relation(pairs, uni)
    full_uni = widen(pairs, uni)
    assert r.optional().pairs == pairs | {(u, u) for u in full_uni}
    assert r.irreflexive_part().pairs == frozenset(
        (a, b) for a, b in pairs if a != b
    )
    assert r.is_irreflexive() == all(a != b for a, b in pairs)
    assert r.is_symmetric() == all((b, a) in pairs for a, b in pairs)


@given(PAIRS, PAIRS, UNIVERSES, UNIVERSES)
@settings(max_examples=200)
def test_mixed_universe_operations(p1, p2, u1, u2):
    """Operations align relations over different universes correctly."""
    r1 = Relation(p1, u1)
    r2 = Relation(p2, u2)
    assert (r1 | r2).pairs == p1 | p2
    assert (r1 & r2).pairs == p1 & p2
    assert (r1 - r2).pairs == p1 - p2
    assert r1.compose(r2).pairs == oracle_compose(p1, p2)
    assert (r1 | r2).universe == widen(p1, u1) | widen(p2, u2)


@given(PAIRS, UNIVERSES)
@settings(max_examples=200)
def test_equality_hash_pickle_roundtrip(pairs, uni):
    import pickle

    r = Relation(pairs, uni)
    # Equality ignores the universe; hash must agree with equality.
    assert r == Relation(pairs, uni | {7})
    assert hash(r) == hash(Relation(pairs, uni | {7}))
    clone = pickle.loads(pickle.dumps(r))
    assert clone == r
    assert clone.universe == r.universe


def test_x86_kernel_agrees_with_axiom_thunks(x86_executions_3):
    """The IR executor's fast path (compiled plan runner) is
    verdict-identical to the axiom-thunk conjunction (TM and baseline)."""
    for model in (get_model("x86tm"), get_model("x86")):
        for x in x86_executions_3:
            generic = all(thunk() for _, thunk in model.axiom_thunks(x))
            assert model.consistent(x) == generic, x.describe()


def test_power_kernel_agrees_with_axiom_thunks(power_executions_3):
    """Power's IR plan (row-level ppo fixpoint, thb, hb, prop) is
    verdict-identical to the generic axiom-thunk conjunction."""
    for model in (get_model("powertm"), get_model("power")):
        for x in power_executions_3:
            generic = all(thunk() for _, thunk in model.axiom_thunks(x))
            assert model.consistent(x) == generic, x.describe()


@pytest.mark.slow
def test_armv8_kernel_agrees_with_axiom_thunks(armv8_executions_3):
    """ARMv8's IR plan (the large ob union) is verdict-identical to the
    generic axiom-thunk conjunction (full bound-3 sweep: ~190k
    executions)."""
    for model in (get_model("armv8tm"), get_model("armv8")):
        for x in armv8_executions_3:
            generic = all(thunk() for _, thunk in model.axiom_thunks(x))
            assert model.consistent(x) == generic, x.describe()


def test_armv8_kernel_agrees_on_sample(armv8_executions_3):
    """Fast-lane subset of the ARMv8 sweep above."""
    for model in (get_model("armv8tm"), get_model("armv8")):
        for x in armv8_executions_3[::17]:
            generic = all(thunk() for _, thunk in model.axiom_thunks(x))
            assert model.consistent(x) == generic, x.describe()


@pytest.mark.slow
def test_cpp_consistent_agrees_with_axiom_thunks(cpp_executions_3):
    """C++'s IR plan (shared hb/eco/psc/sw subdags) is
    verdict-identical to the generic axiom-thunk conjunction."""
    for model in (get_model("cpptm"), get_model("cpp")):
        for x in cpp_executions_3:
            generic = all(thunk() for _, thunk in model.axiom_thunks(x))
            assert model.consistent(x) == generic, x.describe()


def test_cpp_consistent_agrees_on_sample(cpp_executions_3):
    """Fast-lane subset of the C++ sweep above."""
    for model in (get_model("cpptm"), get_model("cpp")):
        for x in cpp_executions_3[::17]:
            generic = all(thunk() for _, thunk in model.axiom_thunks(x))
            assert model.consistent(x) == generic, x.describe()


def test_kernels_agree_on_hand_built_catalog():
    """The IR executor agrees with the thunk view on the hand-built
    paper catalog too (these executions exercise the mixed-universe
    Relation-level fallback and the txn-free degenerate branches)."""
    from repro.catalog import classics, figures

    catalog = [
        classics.corr, classics.sb, classics.sb_txn, classics.mp,
        classics.mp_txn, classics.lb, classics.iriw, classics.wrc_txn,
        figures.fig1, figures.fig2, figures.fig10_concrete,
        figures.power_integrated_barrier, figures.power_txn_ordering,
    ]
    models = [
        get_model(name)
        for name in ("x86tm", "x86", "powertm", "power",
                     "armv8tm", "armv8", "cpptm", "cpp")
    ]
    for build in catalog:
        x = build()
        for model in models:
            generic = all(thunk() for _, thunk in model.axiom_thunks(x))
            assert model.consistent(x) == generic, (
                model.name,
                x.describe(),
            )


@given(PAIRS, UNIVERSES)
@settings(max_examples=200)
def test_closure_cache_matches_oracle(pairs, uni):
    """The globally interned transitive closure (closure_rows_cached)
    agrees with the oracle, including on repeated queries."""
    r = Relation(pairs, uni)
    closed = oracle_closure(pairs)
    assert r.transitive_closure().pairs == closed
    assert r.transitive_closure().pairs == closed  # cached second query
    assert Relation(pairs, uni).transitive_closure().pairs == closed
