"""Unit tests for events, the builder, and derived execution relations."""

import pytest

from repro.events import (
    ACQ,
    DMB,
    Event,
    ExecutionBuilder,
    LWSYNC,
    MFENCE,
    REL,
    SC,
    SYNC,
)


class TestEvent:
    def test_basic_fields(self):
        e = Event(eid=0, tid=1, kind="R", loc="x", tags=frozenset({ACQ}))
        assert e.is_read and not e.is_write
        assert e.is_memory_access
        assert e.has_tag(ACQ)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Event(eid=0, tid=0, kind="Q")

    def test_tags_coerced_to_frozenset(self):
        e = Event(eid=0, tid=0, kind="W", loc="x", tags={REL})
        assert isinstance(e.tags, frozenset)

    def test_fence_flavour(self):
        e = Event(eid=0, tid=0, kind="F", tags=frozenset({MFENCE}))
        assert e.fence_flavour == MFENCE

    def test_cpp_mode(self):
        e = Event(eid=0, tid=0, kind="R", loc="x", tags=frozenset({SC}))
        assert e.cpp_mode == SC

    def test_functional_updates(self):
        e = Event(eid=0, tid=0, kind="R", loc="x", tags=frozenset({ACQ}))
        assert e.without_tag(ACQ).tags == frozenset()
        assert e.with_tag(SC).tags == {ACQ, SC}
        assert e.with_eid(7).eid == 7
        assert e.with_tid(3).tid == 3

    def test_label(self):
        e = Event(eid=0, tid=0, kind="R", loc="x")
        assert e.label() == "a: R x"

    def test_call_kinds(self):
        e = Event(eid=0, tid=0, kind="Lt")
        assert e.is_call and not e.is_memory_access


class TestBuilder:
    def test_po_from_thread_order(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        a = t0.write("x")
        c = t0.read("x")
        x = b.build()
        assert (a, c) in x.po
        assert (c, a) not in x.po

    def test_two_threads_no_cross_po(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        a = t0.write("x")
        c = t1.read("x")
        b.rf(a, c)
        x = b.build()
        assert (a, c) not in x.po

    def test_transaction_context_manager(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        with t0.transaction() as txn:
            a = t0.write("x")
            c = t0.write("x")
        b.co(a, c)
        x = b.build()
        assert x.txn_of[a] == txn
        assert x.txn_of[c] == txn
        assert (a, c) in x.stxn

    def test_atomic_transaction(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        with t0.transaction(atomic=True):
            a = t0.write("x")
        x = b.build()
        assert (a, a) in x.stxnat

    def test_co_chain(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        a = t0.write("x")
        c = t0.write("x")
        e = t0.write("x")
        b.co(a, c, e)
        x = b.build()
        assert (a, e) in x.co  # stored transitively closed

    def test_lock_events(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        lock = t0.lock()
        t0.write("x")
        unlock = t0.unlock()
        x = b.build()
        assert x.event(lock).kind == "L"
        assert x.event(unlock).kind == "U"


class TestDerivedRelations:
    def _mp(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x")
        wy = t0.write("y")
        ry = t1.read("y")
        rx = t1.read("x")
        b.rf(wy, ry)
        return b.build(), (wx, wy, ry, rx)

    def test_sloc(self):
        x, (wx, wy, ry, rx) = self._mp()
        assert (wx, rx) in x.sloc
        assert (wx, ry) not in x.sloc

    def test_fr_for_init_read(self):
        x, (wx, wy, ry, rx) = self._mp()
        # rx reads the initial value, so it is fr-before the write to x.
        assert (rx, wx) in x.fr
        # ry reads wy, and nothing is co-after wy.
        assert not x.fr.successors(ry)

    def test_fr_excludes_seen_write(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w1 = t0.write("x")
        w2 = t0.write("x")
        r = t1.read("x")
        b.co(w1, w2)
        b.rf(w1, r)
        x = b.build()
        assert (r, w2) in x.fr
        assert (r, w1) not in x.fr

    def test_com_union(self):
        x, _ = self._mp()
        assert x.com == (x.rf | x.co | x.fr)

    def test_external_internal_split(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w = t0.write("x")
        r_same = t0.read("x")
        r_other = t1.read("x")
        b.rf(w, r_same)
        x = b.build()
        assert (w, r_same) in x.rfi
        assert (w, r_same) not in x.rfe
        b2 = ExecutionBuilder()
        t0, t1 = b2.thread(), b2.thread()
        w = t0.write("x")
        r = t1.read("x")
        b2.rf(w, r)
        x2 = b2.build()
        assert (w, r) in x2.rfe

    def test_fence_relations(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        a = t0.write("x")
        t0.fence(SYNC)
        c = t0.write("y")
        x = b.build()
        assert (a, c) in x.sync
        assert x.lwsync.is_empty()

    def test_fence_relation_scoped_to_thread(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        a = t0.write("x")
        t0.fence(DMB)
        c = t0.write("y")
        d = t1.read("y")
        b.rf(c, d)
        x = b.build()
        assert (a, c) in x.dmb
        assert (a, d) not in x.dmb

    def test_tfence_boundaries(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        before = t0.read("y")
        with t0.transaction():
            inside1 = t0.write("x")
            inside2 = t0.read("x")
        after = t0.write("y")
        b.rf(inside1, inside2)
        x = b.build()
        assert (before, inside1) in x.tfence  # entering edge
        assert (before, inside2) in x.tfence  # enters to every member
        assert (inside2, after) in x.tfence  # exiting edge
        assert (inside1, after) in x.tfence  # exits from every member
        # tfence only relates pairs with a transactional endpoint:
        assert (before, after) not in x.tfence
        assert (inside1, inside2) not in x.tfence  # internal

    def test_tfence_empty_for_whole_thread_txn(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        with t0.transaction():
            t0.read("m")
            t0.write("x")
        x = b.build()
        assert x.tfence.is_empty()

    def test_acq_rel_sets(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        r = t0.read("x", tags={ACQ})
        w = t0.write("x", tags={REL})
        s = t0.read("y", tags={SC})
        x = b.build()
        assert r in x.acq and s in x.acq
        assert w in x.rel
        assert s in x.sc_events

    def test_atomics_exclude_untagged(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        plain = t0.read("x")
        sc = t0.read("x", tags={SC})
        x = b.build()
        assert sc in x.atomics
        assert plain not in x.atomics


class TestFunctionalUpdates:
    def _fig2(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        with t0.transaction():
            a = t0.write("x")
            r = t0.read("x")
        c = t1.write("x")
        b.co(a, c)
        b.rf(c, r)
        return b.build(), (a, r, c)

    def test_without_event(self):
        x, (a, r, c) = self._fig2()
        smaller = x.without_event(c)
        assert c not in smaller.eids
        assert smaller.rf.is_empty()  # r now reads the initial value
        # thread 1 emptied and disappeared; tids stay dense
        assert len(smaller.threads) == 1
        assert all(smaller.event(e).tid == 0 for e in smaller.eids)

    def test_without_event_renumbers_middle_thread(self):
        b = ExecutionBuilder()
        t0, t1, t2 = b.thread(), b.thread(), b.thread()
        a = t0.write("x")
        c = t1.read("x")
        e = t2.write("y")
        b.rf(a, c)
        x = b.build()
        from repro.events import is_well_formed

        smaller = x.without_event(c)
        assert is_well_formed(smaller)
        assert len(smaller.threads) == 2
        assert smaller.event(e).tid == 1

    def test_without_txn_membership(self):
        x, (a, r, c) = self._fig2()
        weakened = x.without_txn_membership(a)
        assert a not in weakened.txn_of
        assert r in weakened.txn_of

    def test_erase_transactions(self):
        x, _ = self._fig2()
        erased = x.erase_transactions()
        assert not erased.txn_of
        assert erased.stxn.is_empty()

    def test_with_event_tags(self):
        x, (a, r, c) = self._fig2()
        tagged = x.with_event_tags(r, frozenset({ACQ}))
        assert tagged.event(r).tags == {ACQ}

    def test_replace_preserves_other_fields(self):
        x, (a, r, c) = self._fig2()
        same = x.replace()
        assert same == x

    def test_equality_and_hash(self):
        x1, _ = self._fig2()
        x2, _ = self._fig2()
        assert x1 == x2
        assert hash(x1) == hash(x2)
        assert x1 != x1.erase_transactions()

    def test_describe_mentions_transactions(self):
        x, _ = self._fig2()
        assert "#T" in x.describe()
