"""The disk-backed verdict cache: hits, crash tolerance, compaction."""

import json

import pytest

from repro.enumeration import enumerate_executions, get_config
from repro.harness import verdict_cache
from repro.harness.verdict_cache import VerdictCache, execution_digest
from repro.ir import model_digest
from repro.models import get_model


@pytest.fixture(scope="module")
def executions():
    return list(enumerate_executions(get_config("x86"), 2))


@pytest.fixture(scope="module")
def x86tm():
    return get_model("x86tm")


@pytest.fixture(autouse=True)
def no_active_cache():
    yield
    verdict_cache.deactivate()


class TestHits:
    def test_hit_returns_identical_verdict(self, tmp_path, executions, x86tm):
        cache = VerdictCache(tmp_path, writer=True)
        digest = model_digest(x86tm)
        for x in executions:
            verdict = x86tm.consistent(x)
            cache.record(digest, execution_digest(x), "consistent", verdict)
        for x in executions:
            hit, verdict = cache.lookup(
                digest, execution_digest(x), "consistent"
            )
            assert hit
            assert verdict == x86tm.consistent(x)
        cache.close()

    def test_cross_run_persistence(self, tmp_path, executions, x86tm):
        digest = model_digest(x86tm)
        writer = VerdictCache(tmp_path, writer=True)
        for x in executions:
            writer.record(
                digest, execution_digest(x), "consistent", x86tm.consistent(x)
            )
        writer.close()
        # A fresh process-equivalent open sees every verdict.
        reader = VerdictCache(tmp_path)
        assert reader.loaded == len(writer)
        for x in executions:
            hit, verdict = reader.lookup(
                digest, execution_digest(x), "consistent"
            )
            assert hit and verdict == x86tm.consistent(x)

    def test_isomorphic_executions_share_an_entry(self, executions):
        # The digest hashes the canonical form, so at least two of the
        # raw 2-event executions collide onto one canonical key only if
        # they are isomorphic -- and identical executions always do.
        assert execution_digest(executions[0]) == execution_digest(
            executions[0]
        )

    def test_kinds_are_separate_keys(self, tmp_path, executions):
        cache = VerdictCache(tmp_path, writer=True)
        xd = execution_digest(executions[0])
        cache.record("m", xd, "consistent", False)
        cache.record("m", xd, "violated", ["TxnOrder"])
        assert cache.lookup("m", xd, "consistent") == (True, False)
        assert cache.lookup("m", xd, "violated") == (True, ["TxnOrder"])
        cache.close()


class TestCrashTolerance:
    def _write_some(self, root, n=5):
        cache = VerdictCache(root, writer=True)
        for i in range(n):
            cache.record("m", f"x{i}", "consistent", i % 2 == 0)
        cache.close()
        return cache

    def test_torn_tail_is_skipped(self, tmp_path):
        self._write_some(tmp_path)
        segment = sorted(tmp_path.glob("segment-*.jsonl"))[0]
        with segment.open("a", encoding="utf-8") as f:
            f.write('{"m": "m", "x": "torn", "k": "consi')  # killed mid-write
        reloaded = VerdictCache(tmp_path)
        assert reloaded.loaded == 5
        assert reloaded.lookup("m", "torn", "consistent") == (False, None)

    def test_corrupt_lines_are_skipped(self, tmp_path):
        self._write_some(tmp_path)
        segment = sorted(tmp_path.glob("segment-*.jsonl"))[0]
        lines = segment.read_text().splitlines()
        lines[2] = "not json at all"
        lines.insert(0, json.dumps({"m": "m"}))  # missing keys
        lines.insert(0, json.dumps({"m": "m", "x": "x", "k": "bogus", "v": 1}))
        segment.write_text("\n".join(lines) + "\n")
        reloaded = VerdictCache(tmp_path)
        assert reloaded.loaded == 4  # one real record lost, none invented
        assert reloaded.lookup("m", "x0", "consistent") == (True, True)

    def test_missing_directory_is_empty_cache(self, tmp_path):
        cache = VerdictCache(tmp_path / "never-created")
        assert len(cache) == 0


class TestCompaction:
    def test_compaction_merges_segments(self, tmp_path):
        for generation in range(3):
            cache = VerdictCache(tmp_path, writer=True)
            for i in range(4):
                cache.record("m", f"g{generation}-x{i}", "consistent", True)
            cache.close()
        assert len(list(tmp_path.glob("segment-*.jsonl"))) == 3
        cache = VerdictCache(tmp_path, writer=True)
        final = cache.compact()
        assert final is not None
        assert list(tmp_path.glob("segment-*.jsonl")) == [final]
        assert VerdictCache(tmp_path).loaded == 12

    def test_compaction_is_idempotent(self, tmp_path):
        cache = VerdictCache(tmp_path, writer=True)
        for i in range(6):
            cache.record("m", f"x{i}", "consistent", bool(i % 2))
        first = cache.compact()
        before = first.read_text()
        second = cache.compact()
        assert second == first
        assert second.read_text() == before

    def test_readers_may_not_compact(self, tmp_path):
        cache = VerdictCache(tmp_path)
        with pytest.raises(RuntimeError):
            cache.compact()

    def test_close_autocompacts_fragmented_cache(self, tmp_path):
        for generation in range(verdict_cache._COMPACT_SEGMENTS):
            cache = VerdictCache(tmp_path, writer=True)
            cache.record("m", f"x{generation}", "consistent", True)
            cache.close()
        assert len(list(tmp_path.glob("segment-*.jsonl"))) == 1
        assert (
            VerdictCache(tmp_path).loaded == verdict_cache._COMPACT_SEGMENTS
        )


class TestWorkerProtocol:
    def test_nonwriter_records_go_to_pending(self, tmp_path):
        cache = VerdictCache(tmp_path)
        cache.record("m", "x", "consistent", True)
        assert not list(tmp_path.glob("segment-*.jsonl"))
        shipped = cache.flush_pending()
        assert shipped == [
            {"m": "m", "x": "x", "k": "consistent", "v": True}
        ]
        assert cache.flush_pending() == []

    def test_parent_absorbs_worker_records(self, tmp_path):
        worker = VerdictCache(tmp_path / "w")  # reader: nothing on disk
        worker.record("m", "x", "consistent", False)
        parent = VerdictCache(tmp_path / "p", writer=True)
        parent.absorb(worker.flush_pending())
        parent.absorb([{"bad": "record"}])  # tolerated, skipped
        parent.close()
        assert VerdictCache(tmp_path / "p").lookup(
            "m", "x", "consistent"
        ) == (True, False)
