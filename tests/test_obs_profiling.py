"""Tests for the profiling/trace-export layer (PR 9).

Covers the four tentpole pieces end to end:

* Chrome trace export: a golden-file check over a fixed span forest,
  and a real ``workers=2`` pipeline run asserting every job span lands
  in exactly one worker pid lane;
* the per-IR-plan-node profiler: samples, hot-node table, calibration
  report, dot export, cross-process flush/merge;
* the JSONL run-event log (torn-tail tolerance, pipeline integration);
* the CLI satellites: ``stats`` renders span trees and histograms and
  tolerates malformed timer records.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.catalog import classics
from repro.harness.cli import _render_stats_dump, main as cli_main
from repro.harness.pipeline import CheckPipeline
from repro.models import get_model
from repro.obs import (
    PROFILER,
    REGISTRY,
    TRACER,
    RunLog,
    chrome_trace_events,
    read_runlog,
    reset_observability,
    stats_snapshot,
    write_chrome_trace,
)
from repro.obs.profile import PlanProfiler
from repro.obs.trace_export import trace_pid_lanes

GOLDEN = Path(__file__).parent / "data" / "golden_trace.json"

#: A fixed span forest: one driver root, a synthesis child, and a batch
#: with two grafted worker jobs (pid-tagged, as the pipeline tags them).
FIXED_FOREST = [
    {
        "name": "table1:x86",
        "started": 100.0,
        "elapsed": 2.5,
        "children": [
            {
                "name": "synthesis:x86",
                "started": 100.1,
                "elapsed": 1.0,
                "children": [],
            },
            {
                "name": "pipeline.batch",
                "started": 101.2,
                "elapsed": 1.2,
                "children": [
                    {
                        "name": "job:observable",
                        "started": 101.25,
                        "elapsed": 0.5,
                        "children": [],
                        "tags": {"pid": 4242},
                    },
                    {
                        "name": "job:observable",
                        "started": 101.8,
                        "elapsed": 0.55,
                        "children": [],
                        "tags": {"pid": 4243},
                    },
                ],
            },
        ],
    }
]


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------


def test_chrome_trace_matches_golden_file():
    events = chrome_trace_events(FIXED_FOREST, main_pid=1)
    assert events == json.loads(GOLDEN.read_text())


def test_chrome_trace_shape_and_lanes():
    events = chrome_trace_events(FIXED_FOREST, main_pid=1)
    lanes = trace_pid_lanes(events)
    assert set(lanes) == {1, 4242, 4243}
    # Children inherit the lane of the nearest tagged ancestor; the
    # untagged driver tree stays in the main lane.
    assert [e["name"] for e in lanes[1]] == [
        "table1:x86",
        "synthesis:x86",
        "pipeline.batch",
    ]
    assert [e["name"] for e in lanes[4242]] == ["job:observable"]
    # Timestamps re-base to the earliest span; µs units.
    root = lanes[1][0]
    assert root["ts"] == 0 and root["dur"] == 2_500_000
    # One process_name metadata row per lane.
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["pid"] for m in meta} == {1, 4242, 4243}
    names = {m["pid"]: m["args"]["name"] for m in meta}
    assert names[1] == "main" and names[4242] == "worker-4242"


def test_write_chrome_trace_is_json_loadable(tmp_path):
    reset_observability()
    with TRACER.span("outer"):
        with TRACER.span("inner"):
            pass
    path = write_chrome_trace(tmp_path / "trace.json")
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
    assert names == ["outer", "inner"]


def _tiny_job(item):
    time.sleep(0.02)
    return item * 2


def test_pool_jobs_land_in_exactly_one_worker_lane():
    """With workers=2, every job span ships from its worker and grafts
    under the parent's batch span exactly once, tagged with that
    worker's pid -- never duplicated into the main lane."""
    reset_observability()
    items = list(range(8))
    with CheckPipeline(workers=2) as pipeline:
        results = pipeline.map(_tiny_job, items)
    assert results == [i * 2 for i in items]
    spans = TRACER.snapshot()
    batch = next(s for s in spans if s["name"] == "pipeline.batch")
    jobs = [c for c in batch["children"] if c["name"] == "job:_tiny_job"]
    assert len(jobs) == len(items)  # each job exactly once
    worker_pids = {job["tags"]["pid"] for job in jobs}
    assert os.getpid() not in worker_pids  # all shipped from workers
    events = chrome_trace_events(spans, main_pid=os.getpid())
    lanes = trace_pid_lanes(events)
    job_events = [
        e
        for lane in lanes.values()
        for e in lane
        if e["name"] == "job:_tiny_job"
    ]
    assert len(job_events) == len(items)
    for event in job_events:
        assert event["pid"] in worker_pids
    # The merged trace has the main lane plus at least one worker lane.
    assert os.getpid() in lanes and len(lanes) >= 2


def test_sequential_jobs_nest_under_batch_span():
    reset_observability()
    with CheckPipeline(workers=1) as pipeline:
        pipeline.map(_tiny_job, [1, 2])
    batch = next(
        s for s in TRACER.snapshot() if s["name"] == "pipeline.batch"
    )
    names = [c["name"] for c in batch["children"]]
    assert names == ["job:_tiny_job", "job:_tiny_job"]


# ---------------------------------------------------------------------------
# Per-plan-node profiler
# ---------------------------------------------------------------------------


@pytest.fixture
def profiled():
    reset_observability()
    PROFILER.enable()
    yield PROFILER
    reset_observability()


def test_profiler_attributes_samples_to_axioms(profiled):
    model = get_model("x86")
    x = classics.sb()
    assert model.consistent(x) is True
    snap = profiled.snapshot()
    assert snap["nodes"], "profiling a real check must record samples"
    axioms = {c.name for c in model.plan().constraints}
    sampled = {n["constraint"] for n in snap["nodes"]}
    assert sampled & axioms
    total_self = sum(n["self_seconds"] for n in snap["nodes"])
    assert total_self > 0.0
    # Self time never exceeds inclusive time, rows are non-negative.
    for node in snap["nodes"]:
        assert 0.0 <= node["self_seconds"] <= node["seconds"] + 1e-9
        assert node["rows"] >= 0 and node["count"] >= 0


def test_executor_counts_node_memo_hits(profiled):
    from repro.ir.executor import _eval, _state

    model = get_model("x86")
    x = classics.sb()
    model.consistent(x)
    total = lambda: sum(n["hits"] for n in profiled.snapshot()["nodes"])
    before = total()
    # Re-asking for an already-evaluated node answers from the
    # per-execution memo, which the profiler counts as a hit.
    _eval(_state(x), model.plan().constraints[0].term)
    assert total() == before + 1


def test_profiler_hot_table_and_calibration_parse(profiled):
    model = get_model("x86")
    model.consistent(classics.sb())
    table = profiled.hot_table(5)
    assert "self-s" in table and "x86/" in table
    reports = profiled.calibration()
    assert [r["model"] for r in reports] == ["x86"]
    report = reports[0]
    assert set(report["observed_seconds"]) == set(report["scheduled"])
    assert isinstance(report["agrees"], bool)
    text = profiled.calibration_report()
    assert "x86" in text
    # The full snapshot JSON round-trips.
    assert json.loads(json.dumps(profiled.snapshot()))["plans"]["x86"]


def test_profiler_dot_export_names_plan_nodes(profiled):
    model = get_model("x86")
    model.consistent(classics.sb())
    dot = profiled.dot(model.plan())
    assert dot.startswith('digraph "x86"')
    assert "evals" in dot  # at least one node annotated with samples
    for constraint in model.plan().constraints:
        assert constraint.name in dot


def test_profiler_flush_merge_round_trip():
    worker = PlanProfiler()
    worker.enable()
    with worker.constraint("m", "ax"):
        worker.begin()
        worker.end(_FakeTerm(7), 0.5, (0b11, 0b01))
        worker.hit(_FakeTerm(7))
    delta = worker.flush_delta()
    assert worker.flush_delta() is None  # drained
    parent = PlanProfiler()
    parent.merge(delta)
    parent.merge(None)  # tolerated
    [node] = parent.snapshot()["nodes"]
    assert node["model"] == "m" and node["constraint"] == "ax"
    assert node["count"] == 1 and node["hits"] == 1
    assert node["rows"] == 3 and node["seconds"] == pytest.approx(0.5)


def test_profiler_self_time_subtracts_children():
    profiler = PlanProfiler()
    profiler.begin()  # parent node starts
    profiler.begin()  # child node starts
    profiler.end(_FakeTerm(1), 0.3, 0)  # child: 0.3s, no grandchildren
    profiler.end(_FakeTerm(2), 1.0, 0)  # parent: 1.0s inclusive
    by_uid = {n["uid"]: n for n in profiler.snapshot()["nodes"]}
    assert by_uid[1]["self_seconds"] == pytest.approx(0.3)
    assert by_uid[2]["self_seconds"] == pytest.approx(0.7)


def test_profiler_disabled_records_nothing():
    reset_observability()
    assert PROFILER.enabled is False
    get_model("x86").consistent(classics.sb())
    assert PROFILER.snapshot()["nodes"] == []


class _FakeTerm:
    """Just enough of a Term for profiler unit tests."""

    op = "seq"
    args = ()

    def __init__(self, uid: int):
        self.uid = uid


# ---------------------------------------------------------------------------
# Run-event log
# ---------------------------------------------------------------------------


def test_runlog_appends_and_reads_back(tmp_path):
    path = tmp_path / "run.events.jsonl"
    log = RunLog(path)
    log.event("run.start", workers=2)
    log.event("run.end", jobs=5)
    log.close()
    events = read_runlog(path)
    assert [e["type"] for e in events] == ["run.start", "run.end"]
    assert events[0]["workers"] == 2 and "ts" in events[0]


def test_runlog_survives_torn_tail(tmp_path):
    path = tmp_path / "run.events.jsonl"
    log = RunLog(path)
    log.event("run.start")
    log.close()
    with path.open("a") as handle:
        handle.write('{"type": "run.batch", "trunc')  # crash mid-append
    log = RunLog(path)
    log.event("run.end")
    log.close()
    assert [e["type"] for e in read_runlog(path)] == ["run.start", "run.end"]


def test_pipeline_writes_runlog_next_to_checkpoint(tmp_path):
    checkpoint = tmp_path / "t1.jsonl"
    with CheckPipeline(workers=1, checkpoint=checkpoint) as pipeline:
        pipeline.map(_tiny_job, [1, 2, 3])
    events = read_runlog(tmp_path / "t1.events.jsonl")
    types = [e["type"] for e in events]
    assert types[0] == "run.start" and types[-1] == "run.end"
    assert "run.batch" in types
    start = events[0]
    assert start["workers"] == 1 and start["checkpoint"] == str(checkpoint)
    batch = next(e for e in events if e["type"] == "run.batch")
    assert batch["jobs"] == 3 and batch["seconds"] >= 0
    assert events[-1]["jobs"] == 3


def test_pipeline_without_checkpoint_writes_no_runlog(tmp_path):
    with CheckPipeline(workers=1) as pipeline:
        pipeline.map(_tiny_job, [1])
        assert pipeline.runlog is None


# ---------------------------------------------------------------------------
# CLI satellites: stats rendering
# ---------------------------------------------------------------------------


def test_render_stats_dump_shows_span_tree_with_shares():
    dump = {
        "hit_rates": {},
        "timers": {},
        "spans": [
            {
                "name": "table1:x86",
                "elapsed": 2.0,
                "children": [
                    {
                        "name": "pipeline.batch",
                        "elapsed": 1.0,
                        "children": [],
                        "tags": {"pid": 7},
                    }
                ],
            }
        ],
    }
    text = _render_stats_dump(dump)
    assert "spans:" in text
    assert "table1:x86" in text
    assert "% of parent)" in text  # child annotated with its share
    assert "pid=7" in text
    # The batch is half its parent.
    assert " 50.0% of parent" in text


def test_render_stats_dump_elides_huge_span_fanout():
    children = [
        {"name": f"job:{i}", "elapsed": 0.1, "children": []}
        for i in range(40)
    ]
    dump = {
        "spans": [{"name": "batch", "elapsed": 4.0, "children": children}]
    }
    text = _render_stats_dump(dump)
    assert "more children" in text


def test_render_stats_dump_tolerates_malformed_timers():
    dump = {
        "timers": {
            "good": {"count": 2, "total": 1.0, "max": 0.7},
            "missing.count": {"total": 1.0},
            "not.a.dict": 3.5,
            "bad.types": {"count": "many", "total": "lots"},
        },
    }
    text = _render_stats_dump(dump)  # must not raise
    assert "good" in text and "mean=0.500000s" in text
    assert text.count("partial record") == 3


def test_render_stats_dump_shows_histograms_and_profile():
    dump = {
        "histograms": {
            "pipeline.job.seconds": {
                "count": 4,
                "total": 1.0,
                "max": 0.5,
                "p50": 0.25,
                "p90": 0.5,
                "p99": 0.5,
            },
            "broken": {"count": None},
        },
        "profile": {
            "nodes": [
                {
                    "model": "x86",
                    "constraint": "Order",
                    "label": "seq#9",
                    "count": 3,
                    "hits": 1,
                    "self_seconds": 0.01,
                    "seconds": 0.02,
                }
            ]
        },
    }
    text = _render_stats_dump(dump)
    assert "latency histograms:" in text
    assert "p50=0.250000s" in text
    assert "partial record" in text
    assert "hot plan nodes" in text and "x86/Order" in text


def test_stats_snapshot_includes_histograms_and_profile_sections():
    reset_observability()
    REGISTRY.histogram("pipeline.job.seconds").observe(0.1)
    snap = stats_snapshot()
    assert snap["histograms"]["pipeline.job.seconds"]["count"] == 1
    assert "profile" not in snap  # disabled profiler stays out
    PROFILER.enable()
    get_model("x86").consistent(classics.sb())
    assert stats_snapshot()["profile"]["nodes"]
    reset_observability()


def test_cli_stats_subcommand_renders_new_dump(tmp_path, capsys):
    reset_observability()
    REGISTRY.histogram("pipeline.job.seconds").observe(0.1)
    with TRACER.span("root"):
        pass
    from repro.obs import write_stats

    path = tmp_path / "metrics.json"
    write_stats(path)
    assert cli_main(["stats", str(path)]) == 0
    out = capsys.readouterr().out
    assert "latency histograms:" in out and "spans:" in out
