"""The stable ``repro.api`` facade and the deprecation shims behind it."""

import warnings

import pytest

import repro
from repro import api
from repro.catalog import figures
from repro.enumeration import synthesise


@pytest.fixture(scope="module")
def x86_synthesis():
    return synthesise("x86", 3)


class TestFacade:
    def test_lazy_api_attribute(self):
        # ``repro.api`` resolves through the package's __getattr__ and
        # is the same module object as a direct import.
        assert repro.api is api

    def test_load_model_matches_registry(self):
        from repro.models import get_model

        assert api.load_model("x86tm").name == get_model("x86tm").name

    def test_load_model_unknown_name(self):
        with pytest.raises(Exception):
            api.load_model("no-such-model")

    def test_check_accepts_model_or_name(self):
        execution = figures.fig2()
        model = api.load_model("x86tm")
        assert api.check(execution, model) == api.check(execution, "x86tm")
        assert api.check(execution, "x86tm") == model.consistent(execution)

    def test_synthesize_matches_sequential_enumerator(self, x86_synthesis):
        result = api.synthesize("x86", 3)
        assert [x.fingerprint() for x in result.forbidden] == [
            x.fingerprint() for x in x86_synthesis.forbidden
        ]
        assert [x.fingerprint() for x in result.allowed] == [
            x.fingerprint() for x in x86_synthesis.allowed
        ]
        assert result.candidates_examined == x86_synthesis.candidates_examined

    def test_run_table_table1(self, x86_synthesis):
        table = api.run_table("table1", arch="x86", bound=3)
        assert table.arch == "x86"
        by_events = {row.events: row for row in table.rows}
        assert by_events[3].forbid_total == len(
            x86_synthesis.forbidden_by_size()[3]
        )
        assert "Table 1" in table.render()

    def test_run_table_figure7(self):
        fig = api.run_table("figure7", arch="x86", bound=3)
        assert fig.discovery_times
        assert "discovery" in fig.render()

    def test_run_table_unknown_name(self):
        with pytest.raises(ValueError, match="unknown table"):
            api.run_table("table9")


class TestDeprecationShims:
    def test_shims_warn_and_delegate(self, x86_synthesis):
        import repro.harness as harness

        with pytest.warns(DeprecationWarning, match="run_table1"):
            table = harness.run_table1("x86", 3, synthesis=x86_synthesis)
        assert table.rows  # the shim still runs the real driver

    def test_every_driver_alias_is_shimmed(self):
        import repro.harness as harness

        for name in ("run_table1", "run_table2", "run_figure7", "run_ablation"):
            shim = getattr(harness, name)
            # functools.wraps preserves the wrapped driver's identity.
            assert shim.__name__ == name
            assert shim.__wrapped__ is not shim

    def test_module_level_driver_imports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.harness.table1 import run_table1  # noqa: F401
