"""The batched checking pipeline returns verdicts identical to the
sequential path, and its shared synthesis cache actually shares."""

from __future__ import annotations

import pytest

from repro.harness import CheckPipeline
from repro.harness.ablation import run_ablation
from repro.harness.table1 import run_table1
from repro.harness.pipeline import hardware_for, model_for, run_job
from repro.litmus import execution_to_litmus


@pytest.fixture(scope="module")
def pipeline():
    return CheckPipeline()


@pytest.fixture(scope="module")
def x86_synthesis(pipeline):
    return pipeline.synthesis("x86", 3)


def _row_tuples(table):
    return [
        (
            row.events,
            row.forbid_total,
            row.forbid_seen,
            row.allow_total,
            row.allow_seen,
        )
        for row in table.rows
    ]


def test_synthesis_cache_shares_runs(pipeline):
    assert pipeline.synthesis("x86", 3) is pipeline.synthesis("x86", 3)


def test_observable_batch_matches_direct_loop(pipeline, x86_synthesis):
    tests = [
        execution_to_litmus(x, f"t{i}")
        for i, x in enumerate(x86_synthesis.forbidden + x86_synthesis.allowed)
    ]
    hardware = hardware_for("x86")
    direct = [
        hardware.observable(t.program, t.intended_co) for t in tests
    ]
    batched = pipeline.observable_batch(
        "x86", [(t.program, t.intended_co) for t in tests]
    )
    assert batched == direct


def test_table1_x86_pipeline_matches_sequential(x86_synthesis):
    """Regression: the batched pipeline produces the Table 1 x86 row
    verdict-for-verdict identically to a fresh sequential run."""
    sequential = run_table1("x86", 3, synthesis=x86_synthesis)
    piped = run_table1(
        "x86", 3, synthesis=x86_synthesis, pipeline=CheckPipeline(workers=1)
    )
    assert _row_tuples(sequential) == _row_tuples(piped)
    assert sequential.unseen_allow_total == piped.unseen_allow_total
    assert (
        sequential.unseen_allow_lb_shaped == piped.unseen_allow_lb_shaped
    )


def test_table1_x86_expected_shape(pipeline, x86_synthesis):
    table = run_table1("x86", 3, synthesis=x86_synthesis, pipeline=pipeline)
    assert all(row.forbid_seen == 0 for row in table.rows)
    total_allow = sum(r.allow_total for r in table.rows)
    seen_allow = sum(r.allow_seen for r in table.rows)
    assert seen_allow / total_allow >= 0.8


def test_ablation_pipeline_matches_direct(pipeline, x86_synthesis):
    """The batched ablation agrees with per-test model queries."""
    result = run_ablation("x86", 3, synthesis=x86_synthesis, pipeline=pipeline)
    model = model_for("x86tm")
    expected_counts: dict[str, int] = {}
    for x in x86_synthesis.forbidden:
        for axiom in model.violated_axioms(x):
            expected_counts[axiom] = expected_counts.get(axiom, 0) + 1
    assert result.violation_counts == expected_counts
    assert result.total_tests == len(x86_synthesis.forbidden)


def test_run_job_kinds(x86_synthesis):
    x = x86_synthesis.forbidden[0]
    test = execution_to_litmus(x, "job")
    assert run_job(("consistent", "x86tm", (), x)) is False
    assert isinstance(run_job(("violated", "x86tm", (), x)), list)
    assert run_job(
        ("observable", "x86", test.program, test.intended_co)
    ) in (True, False)
    with pytest.raises(ValueError):
        run_job(("unknown",))


def _fork_or_skip():
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")


def test_pipeline_multiprocess_fanout_matches_sequential(x86_synthesis):
    """With workers > 1 the fan-out path returns identical verdicts in
    identical order (fork start method; skipped where unavailable)."""
    _fork_or_skip()
    tests = [
        execution_to_litmus(x, f"t{i}")
        for i, x in enumerate(x86_synthesis.forbidden)
    ]
    jobs = [(t.program, t.intended_co) for t in tests]
    with CheckPipeline(workers=1) as sequential_pipe:
        sequential = sequential_pipe.observable_batch("x86", jobs)
    with CheckPipeline(workers=2) as fanned_pipe:
        fanned = fanned_pipe.observable_batch("x86", jobs)
    assert fanned == sequential


def test_consistency_batch_fanout_matches_sequential(x86_synthesis):
    """The workers=2 fan-out path returns consistency verdicts pinned
    against the sequential path, over every model, in order."""
    _fork_or_skip()
    executions = (x86_synthesis.forbidden + x86_synthesis.allowed)[:24]
    for model_name in ("x86tm", "x86", "powertm", "armv8tm", "cpptm"):
        sequential = CheckPipeline(workers=1).consistency_batch(
            model_name, executions
        )
        with CheckPipeline(workers=2) as fanned:
            assert fanned.consistency_batch(model_name, executions) == sequential


def test_table1_fanout_matches_sequential(x86_synthesis):
    """End-to-end: the Table 1 driver produces identical rows whether
    its pipeline is sequential or a two-worker pool."""
    _fork_or_skip()
    sequential = run_table1("x86", 3, synthesis=x86_synthesis)
    with CheckPipeline(workers=2) as pipe:
        fanned = run_table1("x86", 3, synthesis=x86_synthesis, pipeline=pipe)
    assert _row_tuples(sequential) == _row_tuples(fanned)


def test_close_drains_and_is_idempotent():
    """close() drains the pool gracefully (close+join, not terminate)
    and may be called repeatedly; the context manager routes through
    it."""
    _fork_or_skip()
    pipe = CheckPipeline(workers=2)
    jobs = [("unused", i) for i in range(8)]
    assert pipe.map(_double_second, jobs) == [i * 2 for i in range(8)]
    assert pipe._pool is not None
    pipe.close()
    assert pipe._pool is None
    pipe.close()  # idempotent

    with CheckPipeline(workers=2) as ctx_pipe:
        ctx_pipe.map(_double_second, jobs)
        assert ctx_pipe._pool is not None
    assert ctx_pipe._pool is None


def _double_second(job):
    return job[1] * 2


def test_map_batched_feeds_results_back_between_batches():
    """map_batched is a feedback loop: each generate() call must see
    the folds of every earlier batch, batches arrive in order, and the
    item count is exact even when the budget is not a batch multiple."""
    pipe = CheckPipeline(workers=1)
    folded: list[int] = []
    generated_at: list[int] = []

    def generate(start, count):
        generated_at.append(len(folded))
        return [start + i for i in range(count)]

    def fold(start, items, results):
        assert results == [item * 2 for item in items]
        folded.extend(results)

    total = pipe.map_batched(_double_item, generate, 10, 4, fold)
    assert total == 10
    assert folded == [i * 2 for i in range(10)]
    # generate() for batch k saw exactly k full batches folded.
    assert generated_at == [0, 4, 8]


def test_map_batched_stops_on_empty_generation():
    pipe = CheckPipeline(workers=1)
    assert pipe.map_batched(_double_item, lambda s, c: [], 10, 4, lambda *a: None) == 0


def _double_item(item):
    return item * 2
