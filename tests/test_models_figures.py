"""Model verdicts on every execution discussed in the paper."""

import pytest

from repro.catalog import figures
from repro.harness.figures import CLAIMS, run_figures
from repro.models import (
    get_model,
    strongly_isolated,
    weakly_isolated,
)


def test_all_figure_claims_match_paper():
    result = run_figures()
    mismatches = [
        (claim.label, claim.model)
        for claim, got in result.rows
        if got != claim.expected_allowed
    ]
    assert not mismatches, f"verdicts differing from the paper: {mismatches}"


def test_figure_claims_cover_all_models():
    models = {claim.model for claim in CLAIMS}
    assert {"sc", "tsc", "x86", "x86tm", "powertm", "armv8tm", "cpptm"} <= models


class TestFig3Isolation:
    """Fig. 3: the four executions separating weak from strong isolation."""

    @pytest.mark.parametrize("key", ["a", "b", "c", "d"])
    def test_weakly_isolated_but_not_strongly(self, key):
        x = figures.fig3_all()[key]
        assert weakly_isolated(x), f"fig3{key} should satisfy WeakIsol"
        assert not strongly_isolated(x), f"fig3{key} should violate StrongIsol"

    @pytest.mark.parametrize("key", ["a", "b", "c", "d"])
    def test_sc_allows_when_txn_ignored(self, key):
        x = figures.fig3_all()[key]
        assert get_model("sc").consistent(x.erase_transactions())

    @pytest.mark.parametrize("key", ["a", "b", "c", "d"])
    def test_forbidden_by_all_tm_models(self, key):
        x = figures.fig3_all()[key]
        for name in ("tsc", "x86tm", "powertm", "armv8tm"):
            assert not get_model(name).consistent(x)


class TestPowerTMAxioms:
    """§5.2: each TM amendment is exercised by its epitomising execution."""

    def test_exec1_needs_integrated_barrier(self):
        x = figures.power_integrated_barrier()
        violated = get_model("powertm").violated_axioms(x)
        assert "Observation" in violated  # via tprop1

    def test_exec2_needs_txn_multicopy_atomicity(self):
        x = figures.power_txn_multicopy_atomic()
        violated = get_model("powertm").violated_axioms(x)
        assert "Observation" in violated  # via tprop2

    def test_exec3_needs_transaction_ordering(self):
        x = figures.power_txn_ordering()
        violated = get_model("powertm").violated_axioms(x)
        assert "Order" in violated  # via the thb cycle

    def test_exec3_single_txn_remains_allowed(self):
        """Observed on POWER8 during the paper's testing -- must stay
        allowed (the careful non-overgeneralisation of §5.2)."""
        assert get_model("powertm").consistent(
            figures.power_txn_ordering_single()
        )

    def test_remark51_read_only_transactions_allowed(self):
        """The Power manual is ambiguous; the model errs on the side of
        caution and permits both Remark 5.1 executions."""
        model = get_model("powertm")
        assert model.consistent(figures.remark51_first())
        assert model.consistent(figures.remark51_second())


class TestMonotonicityCounterexample:
    def test_split_rmw_violates_txn_cancels_rmw(self):
        x = figures.monotonicity_split_rmw()
        for name in ("powertm", "armv8tm"):
            assert get_model(name).violated_axioms(x) == ["TxnCancelsRMW"]

    def test_coalesced_rmw_consistent(self):
        x = figures.monotonicity_joined_rmw()
        for name in ("powertm", "armv8tm"):
            assert get_model(name).consistent(x)

    def test_x86_has_no_txn_cancels_rmw(self):
        x = figures.monotonicity_split_rmw()
        assert get_model("x86tm").consistent(x)


class TestLockElisionExecutions:
    def test_fig10_consistent_under_armv8_tm(self):
        """The unsoundness witness: mutual exclusion violated, yet the
        execution is architecturally consistent."""
        assert get_model("armv8tm").consistent(figures.fig10_concrete())

    def test_fig10_forbidden_after_dmb_fix(self):
        x = figures.fig10_concrete_fixed()
        violated = get_model("armv8tm").violated_axioms(x)
        assert "TxnOrder" in violated

    def test_appendix_b_consistent_under_armv8_tm(self):
        assert get_model("armv8tm").consistent(figures.appendix_b_concrete())


class TestDongolComparison:
    """§9: our Power model is strong enough for the C++ mapping on the
    transactional-MP shape; Dongol et al.'s is not."""

    def test_forbidden_by_cpp(self):
        assert not get_model("cpptm").consistent(figures.dongol_comparison())

    def test_forbidden_by_our_power(self):
        assert not get_model("powertm").consistent(figures.dongol_comparison())
