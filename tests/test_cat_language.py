"""Unit tests for the cat-language lexer, parser, and evaluator."""

import pytest

from repro.cat import (
    CatNameError,
    CatSyntaxError,
    CatTypeError,
    Evaluator,
    parse,
    tokenize,
)
from repro.cat.ast import (
    Call,
    Check,
    Complement,
    Diff,
    Ident,
    Inter,
    Let,
    Optional,
    ReflTransClosure,
    Seq,
    SetToRel,
    TransClosure,
    Union,
)
from repro.events import ExecutionBuilder


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize('"m" let x = po | rf')
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "STRING", "LET", "IDENT", "EQUALS", "IDENT", "PIPE", "IDENT", "EOF",
        ]

    def test_comments_nest(self):
        tokens = tokenize('"m" (* outer (* inner *) still out *) let')
        assert [t.kind for t in tokens] == ["STRING", "LET", "EOF"]

    def test_unterminated_comment(self):
        with pytest.raises(CatSyntaxError, match="comment"):
            tokenize('"m" (* oops')

    def test_unterminated_string(self):
        with pytest.raises(CatSyntaxError, match="string"):
            tokenize('"oops')

    def test_inverse_token(self):
        tokens = tokenize('"m" po^-1')
        assert "INVERSE" in [t.kind for t in tokens]

    def test_unexpected_character(self):
        with pytest.raises(CatSyntaxError):
            tokenize('"m" po @ rf')

    def test_positions_tracked(self):
        tokens = tokenize('"m"\nlet x = po')
        let = tokens[1]
        assert let.line == 2 and let.column == 1


class TestParser:
    def test_model_name(self):
        model = parse('"my model"')
        assert model.name == "my model"
        assert model.statements == ()

    def test_precedence_semi_tighter_than_amp(self):
        model = parse('"m" acyclic rmw & fre ; coe as A')
        check = model.statements[0]
        assert isinstance(check.expr, Inter)
        assert isinstance(check.expr.right, Seq)

    def test_precedence_amp_tighter_than_diff(self):
        model = parse('"m" acyclic a \\ b & c as A')
        check = model.statements[0]
        assert isinstance(check.expr, Diff)
        assert isinstance(check.expr.right, Inter)

    def test_precedence_diff_tighter_than_pipe(self):
        model = parse('"m" acyclic a | b \\ c as A')
        check = model.statements[0]
        assert isinstance(check.expr, Union)
        assert isinstance(check.expr.right, Diff)

    def test_postfix_operators(self):
        model = parse('"m" acyclic po+ | rf* | co? as A')
        expr = model.statements[0].expr
        assert isinstance(expr.left.left, TransClosure)
        assert isinstance(expr.left.right, ReflTransClosure)
        assert isinstance(expr.right, Optional)

    def test_complement_and_brackets(self):
        model = parse('"m" acyclic ~stxn ; [W] as A')
        expr = model.statements[0].expr
        assert isinstance(expr, Seq)
        assert isinstance(expr.left, Complement)
        assert isinstance(expr.right, SetToRel)

    def test_function_call(self):
        model = parse('"m" acyclic weaklift(com, stxn) as A')
        expr = model.statements[0].expr
        assert isinstance(expr, Call)
        assert expr.function == "weaklift"
        assert len(expr.arguments) == 2

    def test_let_rec_groups(self):
        model = parse('"m" let rec a = b and b = a')
        let = model.statements[0]
        assert isinstance(let, Let) and let.recursive
        assert [b.name for b in let.bindings] == ["a", "b"]

    def test_check_kinds(self):
        model = parse(
            '"m" acyclic po as A irreflexive rf as B empty co as C'
        )
        assert [s.kind for s in model.statements] == [
            "acyclic", "irreflexive", "empty",
        ]
        assert model.axiom_names() == ["A", "B", "C"]

    def test_missing_as_is_error(self):
        with pytest.raises(CatSyntaxError):
            parse('"m" acyclic po')

    def test_garbage_statement(self):
        with pytest.raises(CatSyntaxError, match="statement"):
            parse('"m" frobnicate')


class TestEvaluator:
    def _execution(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        w = t0.write("x")
        r = t1.read("x")
        b.rf(w, r)
        return b.build(), (w, r)

    def _eval(self, source: str):
        x, _ = self._execution()
        return Evaluator(x).run(parse(source))

    def test_simple_check(self):
        assert self._eval('"m" acyclic po | com as Order') == {"Order": True}

    def test_failing_check(self):
        # rf ∪ rf⁻¹ has a 2-cycle.
        assert self._eval('"m" acyclic rf | rf^-1 as A') == {"A": False}

    def test_let_binding_used_by_check(self):
        results = self._eval('"m" let hb = po | rf acyclic hb as Order')
        assert results == {"Order": True}

    def test_let_rec_fixpoint(self):
        # rec r = r;r | rf  computes rf's transitive closure.
        results = self._eval(
            '"m" let rec r = (r ; r) | rf irreflexive r as Irr'
        )
        assert results == {"Irr": True}

    def test_let_rec_set_valued_binding(self):
        """A legal recursive *set* definition must be seeded from the
        empty set, not an empty relation (regression: it used to die
        with a spurious CatTypeError).  ``obs`` is the set of events
        reachable from the writes through rf: here {w, r}."""
        x, (w, r) = self._execution()
        results = Evaluator(x).run(
            parse(
                '"m" let rec obs = W | range([obs] ; rf) '
                "empty [obs] & ~(rf | rf^-1 | [EV]) as ObsCovered"
            )
        )
        assert results == {"ObsCovered": True}

    def test_let_rec_set_fixpoint_value(self):
        """The recursive set reaches the expected fixpoint."""
        x, (w, r) = self._execution()
        evaluator = Evaluator(x)
        evaluator.run(parse('"m" let rec obs = W | range([obs] ; rf)'))
        assert evaluator.env["obs"] == {w, r}

    def test_let_rec_mixed_kind_group(self):
        """A rec group mixing a set binding and a relation binding seeds
        each from its own kind."""
        x, (w, r) = self._execution()
        evaluator = Evaluator(x)
        evaluator.run(
            parse(
                '"m" let rec obs = W | range([obs] ; step) '
                "and step = rf | ([obs] ; po)"
            )
        )
        assert evaluator.env["obs"] == {w, r}
        assert not isinstance(evaluator.env["obs"], type(evaluator.env["step"]))

    def test_set_operations(self):
        results = self._eval('"m" empty [R & W] as Disjoint')
        assert results == {"Disjoint": True}

    def test_cross_function(self):
        results = self._eval('"m" empty cross(W, R) & po as NoPoWR')
        assert results == {"NoPoWR": True}  # w and r are on other threads

    def test_domain_range(self):
        results = self._eval('"m" empty [domain(rf) & R] as WritesOnly')
        assert results == {"WritesOnly": True}

    def test_undefined_identifier(self):
        with pytest.raises(CatNameError):
            self._eval('"m" acyclic nonsense as A')

    def test_undefined_function(self):
        with pytest.raises(CatNameError):
            self._eval('"m" acyclic frob(po) as A')

    def test_type_error_compose_sets(self):
        with pytest.raises(CatTypeError):
            self._eval('"m" acyclic W ; R as A')

    def test_type_error_mixed_union(self):
        with pytest.raises(CatTypeError):
            self._eval('"m" acyclic W | po as A')

    def test_type_error_brackets_on_relation(self):
        with pytest.raises(CatTypeError):
            self._eval('"m" acyclic [po] as A')

    def test_zero_literal(self):
        assert self._eval('"m" empty 0 as E') == {"E": True}

    def test_complement(self):
        # ~0 is the full relation, which has cycles on >=1 events.
        assert self._eval('"m" acyclic ~0 as A') == {"A": False}
